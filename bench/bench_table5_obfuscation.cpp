// Reproduces Table 5 (RQ3a): detection accuracy under code obfuscation
// (popcount data-flow encoding + unsatisfiable recursion). EOSAFE's
// dispatcher heuristic collapses (0 TP for Fake EOS / MissAuth); WASAI's
// trace-based analysis is unaffected.
#include "bench/accuracy_common.hpp"

int main() {
  using wasai::bench::PaperRow;
  using wasai::bench::PaperTable;
  using wasai::scanner::VulnType;

  const PaperTable paper = {
      {VulnType::FakeEos,
       {"100.0% 100.0% 100.0%", " 91.4%  92.1%  91.8%",
        "  0.0%   0.0%   0.0%"}},
      {VulnType::FakeNotif,
       {" 92.4% 100.0%  96.0%", " 94.6%  78.1%  85.5%",
        " 67.5%  98.4%  80.0%"}},
      {VulnType::MissAuth,
       {"100.0%  94.2%  97.0%", "    -      -      -  ",
        "  0.0%   0.0%   0.0%"}},
      {VulnType::BlockinfoDep,
       {"100.0% 100.0% 100.0%", "  0.0%   0.0%   0.0%",
        "    -      -      -  "}},
      {VulnType::Rollback,
       {"100.0%  95.7%  97.8%", "    -      -      -  ",
        " 50.4%  97.1%  66.3%"}},
  };
  const PaperRow paper_total = {" 96.6%  97.9%  97.3%",
                                " 94.0%  64.5%  76.5%",
                                " 62.6%  59.9%  61.2%"};

  wasai::corpus::BenchmarkSpec spec;
  spec.scale = 0.08;
  spec.seed = 43;
  spec.obfuscated = true;
  wasai::bench::run_accuracy_bench(
      "Table 5 (RQ3a): the impact of code obfuscation", spec, paper,
      paper_total);
  return 0;
}
