// Static pre-analysis performance suite: runs the shared perf corpus
// through the full concolic pipeline with the static pass off (baseline),
// on (the default configuration) and on with --static-prioritize, and
// writes BENCH_static.json.
//
// What it measures, per configuration and corpus-wide:
//   * per-contract static analysis cost (analyze_ms; also reported as the
//     corpus total so the "pruning must pay for itself" argument has both
//     sides on one page);
//   * Z3 flip-query work: solver queries issued, flips pruned by the gate,
//     replays skipped wholesale on feedback-futile contracts;
//   * end-to-end pipeline wall time.
//
// Gate: the baseline and the default static configuration must produce
// identical per-contract fingerprints — findings, transactions, coverage,
// adaptive seeds AND a digest of the final captured trace bytes — and zero
// oracle-gate violations. The static pass is advertised as verdict- and
// fingerprint-neutral; ANY divergence fails the bench (exit 1). The
// prioritize configuration legitimately reschedules the flip budget, so it
// is measured but not parity-gated. `pruned_ok` additionally reports
// whether the gate removed any solver work at all on this corpus (recorded
// in the JSON, not an exit criterion: the committed corpus evolves).
//
// Knobs: WASAI_BENCH_ITERATIONS (default 24 rounds per contract),
// WASAI_BENCH_OUT (default BENCH_static.json in the working directory).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_corpus.hpp"
#include "bench/bench_util.hpp"
#include "engine/fuzzer.hpp"
#include "instrument/trace_io.hpp"
#include "util/digest.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

using bench::Contract;
using bench::Fingerprint;

struct Config {
  std::string name;
  bool static_analysis;
  bool static_prioritize;
};

struct ConfigTotals {
  double fuzz_ms = 0;
  double analyze_ms = 0;
  std::size_t transactions = 0;
  std::size_t solver_queries = 0;
  std::size_t flips_pruned = 0;
  std::size_t replays = 0;
  std::size_t replays_skipped = 0;
  std::size_t gate_violations = 0;
  std::size_t adaptive_seeds = 0;
  std::vector<Fingerprint> fingerprints;
};

ConfigTotals run_config(const std::vector<Contract>& corpus,
                        const Config& config, int iterations) {
  ConfigTotals totals;
  for (const auto& contract : corpus) {
    engine::FuzzOptions options;
    options.iterations = iterations;
    options.rng_seed = 1;
    options.static_analysis = config.static_analysis;
    options.static_prioritize = config.static_prioritize;
    engine::Fuzzer fuzzer(contract.wasm, contract.abi, options);
    const auto report = fuzzer.run();

    util::Digest digest;
    digest.bytes(
        instrument::serialize_traces(fuzzer.harness().sink().actions()));
    totals.fingerprints.push_back(Fingerprint{
        report.adaptive_seeds, report.distinct_branches, report.transactions,
        bench::findings_fingerprint(report), digest.value()});

    totals.fuzz_ms += report.fuzz_ms;
    totals.transactions += report.transactions;
    totals.solver_queries += report.solver_queries;
    totals.flips_pruned += report.flips_pruned;
    totals.replays += report.replays;
    totals.replays_skipped += report.replays_skipped;
    totals.gate_violations += report.oracle_gate_violations;
    totals.adaptive_seeds += report.adaptive_seeds;
    if (report.static_report.has_value()) {
      totals.analyze_ms += report.static_report->analyze_ms;
    }
  }
  return totals;
}

util::Json totals_to_json(const ConfigTotals& t) {
  util::JsonObject out;
  const auto num = [](auto v) { return util::Json(static_cast<double>(v)); };
  out.emplace("fuzz_ms", num(t.fuzz_ms));
  out.emplace("analyze_ms", num(t.analyze_ms));
  out.emplace("transactions", num(t.transactions));
  out.emplace("solver_queries", num(t.solver_queries));
  out.emplace("flips_pruned", num(t.flips_pruned));
  out.emplace("replays", num(t.replays));
  out.emplace("replays_skipped", num(t.replays_skipped));
  out.emplace("gate_violations", num(t.gate_violations));
  out.emplace("adaptive_seeds", num(t.adaptive_seeds));
  return util::Json(std::move(out));
}

}  // namespace

int main() {
  const int iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 24));
  const char* out_env = std::getenv("WASAI_BENCH_OUT");
  const std::string out_path =
      out_env == nullptr ? "BENCH_static.json" : out_env;

  const auto corpus = bench::build_perf_corpus();
  std::printf("bench_perf_static: %zu contracts, %d iterations each\n",
              corpus.size(), iterations);

  const Config configs[] = {
      {"baseline", false, false},
      {"static", true, false},
      {"static-prioritize", true, true},
  };

  std::map<std::string, ConfigTotals> totals;
  for (const auto& config : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    totals[config.name] = run_config(corpus, config, iterations);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ConfigTotals& t = totals[config.name];
    std::printf(
        "  %-18s %8.1f fuzz ms, %4zu queries, %4zu pruned, %3zu replays "
        "skipped, %5.2f analyze ms  (%.1fs)\n",
        config.name.c_str(), t.fuzz_ms, t.solver_queries, t.flips_pruned,
        t.replays_skipped, t.analyze_ms, secs);
  }

  // Parity gate: the default static configuration must reproduce the
  // baseline's per-contract outcomes (including the trace bytes) exactly,
  // with zero oracle-gate violations.
  bool parity_ok = totals["static"].gate_violations == 0;
  if (!parity_ok) {
    std::printf("GATE VIOLATIONS: %zu findings fired against statically "
                "impossible verdicts\n",
                totals["static"].gate_violations);
  }
  const auto& reference = totals["baseline"].fingerprints;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (totals["static"].fingerprints[i] == reference[i]) continue;
    parity_ok = false;
    std::printf("PARITY DIVERGENCE: static on %s\n", corpus[i].id.c_str());
  }

  const std::size_t baseline_queries = totals["baseline"].solver_queries;
  const std::size_t static_queries = totals["static"].solver_queries;
  const bool pruned_ok = totals["static"].flips_pruned > 0 &&
                         static_queries <= baseline_queries;
  std::printf(
      "flip queries: %zu -> %zu (%zu pruned, %zu replays skipped), "
      "parity %s, pruning %s\n",
      baseline_queries, static_queries, totals["static"].flips_pruned,
      totals["static"].replays_skipped, parity_ok ? "ok" : "DIVERGED",
      pruned_ok ? "effective" : "inert on this corpus");

  util::JsonObject doc;
  util::JsonArray ids;
  for (const auto& contract : corpus) ids.emplace_back(contract.id);
  doc.emplace("corpus", util::Json(std::move(ids)));
  doc.emplace("iterations", util::Json(static_cast<double>(iterations)));
  util::JsonObject config_obj;
  for (const auto& [name, t] : totals) {
    config_obj.emplace(name, totals_to_json(t));
  }
  doc.emplace("configs", util::Json(std::move(config_obj)));
  doc.emplace("parity_ok", util::Json(parity_ok));
  doc.emplace("pruned_ok", util::Json(pruned_ok));

  std::ofstream out(out_path, std::ios::trunc);
  out << util::dump_json(util::Json(std::move(doc))) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  // Only parity is a hard failure: whether pruning fires depends on the
  // corpus composition, but any baseline/static divergence breaks the
  // pass's neutrality contract.
  return parity_ok ? 0 : 1;
}
