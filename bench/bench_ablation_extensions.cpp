// Ablations for the implemented extensions:
//   1. parallel constraint solving (§3.4.4) — wall-clock per analysis on a
//      verification-heavy contract, serial vs worker pool;
//   2. the dynamic address pool (§4.2 future work) — recall on admin-gated
//      Rollback contracts, the paper's documented false-negative class.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <z3++.h>

#include "bench/bench_util.hpp"
#include "corpus/templates.hpp"
#include "wasai/wasai.hpp"

namespace {

/// A deliberately solver-bound query: invert a chained bitvector mix.
std::string hard_query(std::uint64_t seed) {
  z3::context ctx;
  z3::expr x = ctx.bv_const("x", 64);
  z3::expr mixed = ((x * ctx.bv_val(static_cast<std::uint64_t>(0x5851f42d4c957f2dull), 64u)) ^
                    z3::lshr(x, 13)) *
                   ctx.bv_val(static_cast<std::uint64_t>(0x14057b7ef767814full), 64u);
  // Compute the target from a known witness so the query is satisfiable.
  const std::uint64_t wx = 0x9e3779b97f4a7c15ull * (seed + 1);
  const std::uint64_t target =
      ((wx * 0x5851f42d4c957f2dull) ^ (wx >> 13)) * 0x14057b7ef767814full;
  z3::solver s(ctx);
  s.add(mixed == ctx.bv_val(static_cast<std::uint64_t>(target), 64u));
  return s.to_smt2();
}

double solve_all(const std::vector<std::string>& queries, unsigned threads) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      z3::context ctx;
      z3::solver s(ctx);
      s.from_string(queries[i].c_str());
      (void)s.check();
    }
  };
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace wasai;

  std::printf("Ablation: extensions\n\n");

  // ---- 1. parallel solving ------------------------------------------------
  {
    util::Rng rng(11);
    corpus::TemplateOptions o;
    o.complicated_verification = true;
    o.verification_depth = 3;
    const auto sample = corpus::make_fake_eos_sample(rng, true, o);
    for (const bool parallel : {false, true}) {
      AnalysisOptions ao;
      ao.fuzz.iterations = 48;
      ao.fuzz.parallel_solving = parallel;
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = analyze(sample.wasm, sample.abi, ao);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::printf(
          "solver=%-8s  %7.0f ms, %zu queries, %zu adaptive seeds, "
          "verdict=%s\n",
          parallel ? "parallel" : "serial", ms, result.details.solver_queries,
          result.details.adaptive_seeds,
          result.has(scanner::VulnType::FakeEos) ? "VULNERABLE" : "safe");
    }
  }

  // The fuzzer-integrated comparison above uses tiny queries, where the
  // SMT-LIB2 export/re-parse overhead dominates; the paper's 3,000 ms-class
  // queries are solver-bound. The synthetic workload below isolates that
  // regime: inverting chained bitvector mixes. It needs real cores.
  {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 2) {
      std::printf(
          "solver-bound workload: skipped — single-core host, thread-level "
          "solving cannot yield wall-clock speedup here\n");
    } else {
      std::vector<std::string> queries;
      for (std::uint64_t i = 0; i < 8; ++i) queries.push_back(hard_query(i));
      const double serial_ms = solve_all(queries, 1);
      const double parallel_ms = solve_all(queries, hw);
      std::printf(
          "solver-bound workload (8 bitvector-inversion queries): serial "
          "%.0f ms vs %u threads %.0f ms -> %.2fx\n",
          serial_ms, hw, parallel_ms, serial_ms / parallel_ms);
    }
  }

  // ---- 2. dynamic address pool ---------------------------------------------
  {
    std::printf(
        "\nadmin-gated Rollback recall (paper: 9 FNs from the missing "
        "address pool):\n");
    int detected_without = 0, detected_with = 0;
    const int n = 6;
    for (int i = 0; i < n; ++i) {
      util::Rng rng(100 + i);
      const auto sample =
          corpus::make_rollback_sample(rng, true, {}, /*admin_gated=*/true);
      AnalysisOptions base;
      base.fuzz.iterations = 60;
      base.fuzz.rng_seed = i + 1;
      detected_without +=
          analyze(sample.wasm, sample.abi, base).has(scanner::VulnType::Rollback);
      AnalysisOptions pool = base;
      pool.fuzz.dynamic_address_pool = true;
      detected_with +=
          analyze(sample.wasm, sample.abi, pool).has(scanner::VulnType::Rollback);
    }
    std::printf("  without pool: %d/%d detected (the paper's WASAI)\n",
                detected_without, n);
    std::printf("  with pool   : %d/%d detected (extension)\n", detected_with,
                n);
  }
  return 0;
}
