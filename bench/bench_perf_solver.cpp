// Solver performance suite: fuzzes the committed corpus with the
// incremental path-prefix walk and the cross-iteration query cache toggled
// independently, and writes BENCH_solver.json with per-config throughput
// (transactions/sec), solver wall time, Z3 query counts and cache hit
// rates.
//
// The suite doubles as an end-to-end parity gate: all four configurations
// must produce identical findings, adaptive-seed counts and coverage for
// every contract — the solver layer guarantees byte-identical seed
// streams, so ANY downstream divergence fails the bench (exit 1). CI runs
// this on every push.
//
// Corpus: the `examples/wasm/testgen_<seed>.wasm` modules (regenerated
// from the seed encoded in the filename, which also yields their ABIs)
// plus one vulnerable sample of each corpus template family.
//
// Knobs: WASAI_BENCH_ITERATIONS (default 36 fuzzing rounds per contract),
// WASAI_BENCH_OUT (default BENCH_solver.json in the working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "corpus/templates.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "testgen/generator.hpp"
#include "util/jsonl.hpp"
#include "wasai/wasai.hpp"
#include "wasm/encoder.hpp"

#ifndef WASAI_EXAMPLES_DIR
#error "build must define WASAI_EXAMPLES_DIR"
#endif

namespace {

using namespace wasai;

struct Contract {
  std::string id;
  util::Bytes wasm;
  abi::Abi abi;
};

struct Config {
  std::string name;
  bool incremental;
  bool cache;
};

/// What each configuration must reproduce exactly, per contract. Seeds are
/// applied back into the fuzz loop, so a single diverging model would
/// cascade into different transactions/branches/findings here.
struct Fingerprint {
  std::size_t adaptive_seeds = 0;
  std::size_t distinct_branches = 0;
  std::size_t transactions = 0;
  std::string findings;

  bool operator==(const Fingerprint&) const = default;
};

struct ConfigTotals {
  double solver_wall_ms = 0;
  double fuzz_ms = 0;
  std::size_t transactions = 0;
  std::size_t queries = 0;
  std::size_t sat = 0;
  std::size_t sat_late = 0;
  std::size_t unsat = 0;
  std::size_t unknown = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t adaptive_seeds = 0;
  obs::PhaseTotals phases;
  std::vector<Fingerprint> fingerprints;

  [[nodiscard]] double transactions_per_sec() const {
    return fuzz_ms > 0 ? static_cast<double>(transactions) / (fuzz_ms / 1e3)
                       : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    const std::size_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

std::vector<Contract> build_corpus() {
  namespace fs = std::filesystem;
  std::vector<Contract> corpus;

  // Committed testgen modules: the filename encodes the generator seed,
  // which deterministically reproduces both the module and its ABI.
  std::vector<std::uint64_t> seeds;
  const fs::path dir = fs::path(WASAI_EXAMPLES_DIR) / "wasm";
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string stem = entry.path().stem().string();
    if (entry.path().extension() != ".wasm") continue;
    if (stem.rfind("testgen_", 0) != 0) continue;
    seeds.push_back(std::stoull(stem.substr(8)));
  }
  std::sort(seeds.begin(), seeds.end());
  for (const auto seed : seeds) {
    const auto gen = testgen::generate(seed);
    corpus.push_back(Contract{"testgen_" + std::to_string(seed),
                              wasm::encode(gen.module), gen.abi});
  }

  // One vulnerable sample per template family — branchy contracts whose
  // paths actually exercise the flip solver.
  util::Rng rng(2022);
  const auto add = [&corpus](corpus::Sample sample) {
    corpus.push_back(
        Contract{sample.tag, std::move(sample.wasm), std::move(sample.abi)});
  };
  add(corpus::make_fake_eos_sample(rng, /*vulnerable=*/true));
  add(corpus::make_fake_notif_sample(rng, /*vulnerable=*/true));
  add(corpus::make_missauth_sample(rng, /*vulnerable=*/true));
  add(corpus::make_blockinfo_sample(rng, /*vulnerable=*/true));
  return corpus;
}

std::string findings_fingerprint(const AnalysisResult& result) {
  std::string out;
  for (const auto& finding : result.report.findings) {
    out += scanner::to_string(finding.type);
    out += ';';
  }
  return out;
}

ConfigTotals run_config(const std::vector<Contract>& corpus,
                        const Config& config, int iterations) {
  ConfigTotals totals;
  // One obs registry per configuration: the per-phase breakdown lands in
  // BENCH_solver.json next to the wall clocks, so a perf regression can be
  // attributed to a phase (replay vs solve_flips vs execute) without a
  // rerun. Spans are neutral w.r.t. the parity gate — pinned by
  // tests/obs_neutrality_test.cpp.
  obs::Registry registry;
  obs::Obs& obs = registry.track("bench");
  for (const auto& contract : corpus) {
    AnalysisOptions options;
    options.fuzz.iterations = iterations;
    options.fuzz.rng_seed = 1;
    options.fuzz.obs = &obs;
    options.fuzz.solver.incremental = config.incremental;
    options.fuzz.solver_cache = config.cache;
    const auto result = analyze(contract.wasm, contract.abi, options);
    const auto& d = result.details;
    totals.solver_wall_ms += d.solver_wall_ms;
    totals.fuzz_ms += d.fuzz_ms;
    totals.transactions += d.transactions;
    totals.queries += d.solver_queries;
    totals.sat += d.solver_sat;
    totals.sat_late += d.solver_sat_late;
    totals.unsat += d.solver_unsat;
    totals.unknown += d.solver_unknown;
    totals.cache_hits += d.solver_cache_hits;
    totals.cache_misses += d.solver_cache_misses;
    totals.adaptive_seeds += d.adaptive_seeds;
    totals.fingerprints.push_back(Fingerprint{
        d.adaptive_seeds, d.distinct_branches, d.transactions,
        findings_fingerprint(result)});
  }
  totals.phases = registry.aggregate_all();
  return totals;
}

util::Json totals_to_json(const ConfigTotals& t) {
  util::JsonObject out;
  const auto num = [](auto v) {
    return util::Json(static_cast<double>(v));
  };
  out.emplace("solver_wall_ms", num(t.solver_wall_ms));
  out.emplace("fuzz_ms", num(t.fuzz_ms));
  out.emplace("transactions_per_sec", num(t.transactions_per_sec()));
  out.emplace("transactions", num(t.transactions));
  out.emplace("queries", num(t.queries));
  out.emplace("sat", num(t.sat));
  out.emplace("sat_late", num(t.sat_late));
  out.emplace("unsat", num(t.unsat));
  out.emplace("unknown", num(t.unknown));
  out.emplace("cache_hits", num(t.cache_hits));
  out.emplace("cache_misses", num(t.cache_misses));
  out.emplace("cache_hit_rate", num(t.hit_rate()));
  out.emplace("adaptive_seeds", num(t.adaptive_seeds));
  out.emplace("obs", obs::phase_totals_json(t.phases));
  return util::Json(std::move(out));
}

}  // namespace

int main() {
  const int iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 36));
  const char* out_env = std::getenv("WASAI_BENCH_OUT");
  const std::string out_path =
      out_env == nullptr ? "BENCH_solver.json" : out_env;

  const auto corpus = build_corpus();
  std::printf("bench_perf_solver: %zu contracts, %d iterations each\n",
              corpus.size(), iterations);

  const Config configs[] = {
      {"legacy", false, false},
      {"incremental", true, false},
      {"cached", false, true},
      {"incremental_cached", true, true},
  };

  std::map<std::string, ConfigTotals> totals;
  for (const auto& config : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    totals[config.name] = run_config(corpus, config, iterations);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ConfigTotals& t = totals[config.name];
    std::printf(
        "  %-18s %7.1f solver ms, %5zu queries, %5zu hits (%4.1f%%), "
        "%7.1f txn/sec  (%.1fs)\n",
        config.name.c_str(), t.solver_wall_ms, t.queries, t.cache_hits,
        100.0 * t.hit_rate(), t.transactions_per_sec(), secs);
  }

  // Parity gate: every configuration must reproduce the legacy run's
  // per-contract outcomes exactly.
  bool parity_ok = true;
  const auto& reference = totals["legacy"].fingerprints;
  for (const auto& config : configs) {
    if (totals[config.name].fingerprints == reference) continue;
    parity_ok = false;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (totals[config.name].fingerprints[i] == reference[i]) continue;
      std::printf("PARITY DIVERGENCE: %s on %s\n", config.name.c_str(),
                  corpus[i].id.c_str());
    }
  }

  const ConfigTotals& legacy = totals["legacy"];
  const ConfigTotals& best = totals["incremental_cached"];
  const bool wall_reduced = best.solver_wall_ms < legacy.solver_wall_ms;
  const bool queries_reduced = best.queries < legacy.queries;
  std::printf(
      "incremental+cached vs legacy: solver wall %.1f -> %.1f ms (%s), "
      "queries %zu -> %zu (%s), parity %s\n",
      legacy.solver_wall_ms, best.solver_wall_ms,
      wall_reduced ? "reduced" : "NOT reduced", legacy.queries, best.queries,
      queries_reduced ? "reduced" : "NOT reduced",
      parity_ok ? "ok" : "DIVERGED");

  util::JsonObject doc;
  util::JsonArray ids;
  for (const auto& contract : corpus) ids.emplace_back(contract.id);
  doc.emplace("corpus", util::Json(std::move(ids)));
  doc.emplace("iterations", util::Json(static_cast<double>(iterations)));
  util::JsonObject config_obj;
  for (const auto& [name, t] : totals) config_obj.emplace(name, totals_to_json(t));
  doc.emplace("configs", util::Json(std::move(config_obj)));
  doc.emplace("parity_ok", util::Json(parity_ok));
  doc.emplace("solver_wall_reduced", util::Json(wall_reduced));
  doc.emplace("queries_reduced", util::Json(queries_reduced));

  std::ofstream out(out_path, std::ios::trunc);
  out << util::dump_json(util::Json(std::move(doc))) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  // Only parity is a hard failure: timing is hardware-dependent, but a
  // diverging seed stream is a correctness bug.
  return parity_ok ? 0 : 1;
}
