// Shared helpers for the experiment-reproduction benches: precision /
// recall / F1 accumulation and paper-style table printing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace wasai::bench {

/// Binary-classification tally.
struct Prf {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  void add(bool truth, bool flagged) {
    if (truth && flagged) {
      ++tp;
    } else if (truth && !flagged) {
      ++fn;
    } else if (!truth && flagged) {
      ++fp;
    } else {
      ++tn;
    }
  }

  void merge(const Prf& other) {
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
  }

  [[nodiscard]] double precision() const {
    return tp + fp == 0 ? 0.0 : 100.0 * tp / static_cast<double>(tp + fp);
  }
  [[nodiscard]] double recall() const {
    return tp + fn == 0 ? 0.0 : 100.0 * tp / static_cast<double>(tp + fn);
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  [[nodiscard]] std::size_t total() const { return tp + fp + tn + fn; }
};

/// "P/R/F1" cell, or "-" for unsupported detectors.
inline std::string prf_cell(const Prf& prf, bool supported = true) {
  if (!supported) return "    -      -      -  ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.1f%% %5.1f%% %5.1f%%", prf.precision(),
                prf.recall(), prf.f1());
  return buf;
}

/// Environment-variable override with a default (for scale knobs).
inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atol(v);
}

}  // namespace wasai::bench
