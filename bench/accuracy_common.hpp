// Shared driver for the Table 4 / 5 / 6 accuracy benches: run WASAI,
// EOSFuzzer and EOSAFE over a generated benchmark and print the paper-style
// per-category P/R/F1 table next to the paper's reported values.
#pragma once

#include <array>
#include <chrono>
#include <cstdio>
#include <map>

#include "baselines/eosafe.hpp"
#include "baselines/eosfuzzer.hpp"
#include "bench/bench_util.hpp"
#include "corpus/dataset.hpp"
#include "wasai/wasai.hpp"

namespace wasai::bench {

struct PaperRow {
  const char* wasai;
  const char* eosfuzzer;
  const char* eosafe;
};

using PaperTable = std::map<scanner::VulnType, PaperRow>;

struct ToolTallies {
  Prf wasai, eosfuzzer, eosafe;
};

inline void run_accuracy_bench(const char* title,
                               corpus::BenchmarkSpec spec,
                               const PaperTable& paper,
                               const PaperRow& paper_total) {
  const double scale = env_double("WASAI_BENCH_SCALE", spec.scale);
  spec.scale = scale;
  const int iterations =
      static_cast<int>(env_long("WASAI_BENCH_ITERATIONS", 36));

  const auto t0 = std::chrono::steady_clock::now();
  const auto samples = corpus::make_benchmark(spec);

  std::map<scanner::VulnType, ToolTallies> per_type;
  std::size_t done = 0;
  for (const auto& sample : samples) {
    ToolTallies& tally = per_type[sample.category];

    AnalysisOptions wasai_opts;
    wasai_opts.fuzz.iterations = iterations;
    wasai_opts.fuzz.rng_seed = 1 + done;
    const auto wasai_result = analyze(sample.wasm, sample.abi, wasai_opts);
    tally.wasai.add(sample.vulnerable, wasai_result.has(sample.category));

    baselines::EosFuzzer eosfuzzer(
        sample.wasm, sample.abi,
        baselines::EosFuzzerOptions{iterations, 1 + done});
    tally.eosfuzzer.add(sample.vulnerable,
                        eosfuzzer.run().has(sample.category));

    baselines::Eosafe eosafe(sample.wasm, sample.abi);
    tally.eosafe.add(sample.vulnerable, eosafe.run().has(sample.category));
    ++done;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::printf("%s\n", title);
  std::printf(
      "samples=%zu (scale=%.3f of the paper's benchmark), %d fuzzing "
      "iterations/tool, %.1fs total\n\n",
      samples.size(), scale, iterations, secs);
  std::printf("%-13s %-7s | %-21s | %-21s | %-21s\n", "Type",
              "(V/N)", "WASAI  P      R     F1",
              "EOSFuzzer P    R     F1", "EOSAFE P     R     F1");

  static const std::array<scanner::VulnType, 5> kOrder = {
      scanner::VulnType::FakeEos, scanner::VulnType::FakeNotif,
      scanner::VulnType::MissAuth, scanner::VulnType::BlockinfoDep,
      scanner::VulnType::Rollback};

  ToolTallies total;
  for (const auto type : kOrder) {
    const auto it = per_type.find(type);
    if (it == per_type.end()) continue;
    const ToolTallies& tally = it->second;
    const bool eosfuzzer_supported =
        type == scanner::VulnType::FakeEos ||
        type == scanner::VulnType::FakeNotif ||
        type == scanner::VulnType::BlockinfoDep;
    const bool eosafe_supported = type != scanner::VulnType::BlockinfoDep;
    std::printf("%-13s %3zu/%-3zu | %s | %s | %s\n",
                scanner::to_string(type), tally.wasai.tp + tally.wasai.fn,
                tally.wasai.fp + tally.wasai.tn, prf_cell(tally.wasai).c_str(),
                prf_cell(tally.eosfuzzer, eosfuzzer_supported).c_str(),
                prf_cell(tally.eosafe, eosafe_supported).c_str());
    const auto paper_it = paper.find(type);
    if (paper_it != paper.end()) {
      std::printf("%-13s %7s | %-21s | %-21s | %-21s\n", "  (paper)", "",
                  paper_it->second.wasai, paper_it->second.eosfuzzer,
                  paper_it->second.eosafe);
    }
    total.wasai.merge(tally.wasai);
    if (eosfuzzer_supported) total.eosfuzzer.merge(tally.eosfuzzer);
    if (eosafe_supported) total.eosafe.merge(tally.eosafe);
  }
  std::printf("%-13s %7s | %s | %s | %s\n", "Total", "",
              prf_cell(total.wasai).c_str(), prf_cell(total.eosfuzzer).c_str(),
              prf_cell(total.eosafe).c_str());
  std::printf("%-13s %7s | %-21s | %-21s | %-21s\n", "  (paper)", "",
              paper_total.wasai, paper_total.eosfuzzer, paper_total.eosafe);
}

}  // namespace wasai::bench
