// VM execution-engine performance suite: fuzzes the committed corpus on
// the legacy interpreter and on the fast path (pre-flattened instruction
// streams, direct hook dispatch, arena-backed trace capture) and writes
// BENCH_vm.json with per-config throughput.
//
// Two phases per configuration:
//   pipeline — the full concolic loop (symbolic feedback on), whose
//              per-contract fingerprints pin end-to-end parity: findings,
//              transactions, coverage, adaptive seeds AND a digest of the
//              final captured trace bytes must be identical across
//              configurations. ANY divergence fails the bench (exit 1).
//   exec     — feedback off (execution-dominated loop), which isolates the
//              interpreter + trace-capture + scan throughput the fast path
//              targets; `transactions_per_sec` and the headline speedup
//              come from this phase.
//
// Corpus: the `examples/wasm/testgen_<seed>.wasm` modules (regenerated
// from the seed in the filename), one vulnerable sample per corpus
// template family, and a compute-representative `hotloop` contract whose
// action body is a counted arithmetic loop (see make_hotloop_contract).
//
// Knobs: WASAI_BENCH_ITERATIONS (default 36 pipeline rounds per contract),
// WASAI_BENCH_EXEC_ITERATIONS (default 160 exec rounds per contract),
// WASAI_BENCH_OUT (default BENCH_vm.json in the working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "corpus/contract_builder.hpp"
#include "corpus/templates.hpp"
#include "engine/fuzzer.hpp"
#include "instrument/trace_io.hpp"
#include "testgen/generator.hpp"
#include "util/digest.hpp"
#include "util/jsonl.hpp"
#include "wasm/encoder.hpp"

#ifndef WASAI_EXAMPLES_DIR
#error "build must define WASAI_EXAMPLES_DIR"
#endif

namespace {

using namespace wasai;

struct Contract {
  std::string id;
  util::Bytes wasm;
  abi::Abi abi;
};

struct Config {
  std::string name;
  bool fastpath;
};

/// What both configurations must reproduce exactly, per contract. The
/// trace digest covers the serialized bytes of the final iteration's
/// captured traces, so a single diverging value, event order or payload
/// byte shows up even when the aggregate counters happen to agree.
struct Fingerprint {
  std::size_t adaptive_seeds = 0;
  std::size_t distinct_branches = 0;
  std::size_t transactions = 0;
  std::string findings;
  std::uint64_t trace_digest = 0;

  bool operator==(const Fingerprint&) const = default;
};

struct ConfigTotals {
  double fuzz_ms = 0;            // exec phase wall time
  std::size_t transactions = 0;  // exec phase transactions
  double pipeline_fuzz_ms = 0;
  std::size_t pipeline_transactions = 0;
  std::size_t distinct_branches = 0;
  std::vector<Fingerprint> fingerprints;

  [[nodiscard]] double transactions_per_sec() const {
    return fuzz_ms > 0 ? static_cast<double>(transactions) / (fuzz_ms / 1e3)
                       : 0.0;
  }
  [[nodiscard]] double pipeline_transactions_per_sec() const {
    return pipeline_fuzz_ms > 0 ? static_cast<double>(pipeline_transactions) /
                                      (pipeline_fuzz_ms / 1e3)
                                : 0.0;
  }
};

/// Compute-representative contract. The testgen modules and template
/// families execute a few dozen instructions per transaction, so chain-side
/// per-transaction costs (abi packing, scheduling, native token transfers)
/// dominate the exec phase and mask interpreter throughput. Real contracts
/// spend most of an action inside loops — memo parsing, token math, table
/// scans — so the corpus gets one contract whose action runs a counted LCG
/// loop: ~17 interpreted instructions plus two hook sites (the loop-exit
/// br_if and an i64 comparison) per round. The loop state is seeded from a
/// constant, not the action parameter, so the symbolic-feedback phase sees
/// concrete branch conditions and the pipeline stays solver-light.
Contract make_hotloop_contract() {
  constexpr std::int64_t kRounds = 4000;
  constexpr std::uint32_t kAcc = 2;  // extra locals follow self + param
  constexpr std::uint32_t kIdx = 3;
  corpus::ContractBuilder b;
  const abi::ActionDef def{abi::name("churn"), {abi::ParamType::U64}};
  std::vector<wasm::Instr> body = {
      wasm::i64_const(0x9e3779b9),
      wasm::local_set(kAcc),
      wasm::block(),
      wasm::loop(),
      wasm::local_get(kIdx),
      wasm::i64_const(kRounds),
      wasm::Instr(wasm::Opcode::I64GeS),
      wasm::br_if(1),
      wasm::local_get(kAcc),
      wasm::i64_const_u(0x5851f42d4c957f2dULL),
      wasm::Instr(wasm::Opcode::I64Mul),
      wasm::i64_const_u(0x14057b7ef767814fULL),
      wasm::Instr(wasm::Opcode::I64Add),
      wasm::local_get(kIdx),
      wasm::Instr(wasm::Opcode::I64Xor),
      wasm::local_set(kAcc),
      wasm::local_get(kIdx),
      wasm::i64_const(1),
      wasm::Instr(wasm::Opcode::I64Add),
      wasm::local_set(kIdx),
      wasm::br(0),
      wasm::Instr(wasm::Opcode::End),  // loop
      wasm::Instr(wasm::Opcode::End),  // block
      wasm::Instr(wasm::Opcode::End),  // function
  };
  b.add_action(def, {wasm::ValType::I64, wasm::ValType::I64},
               std::move(body));
  const abi::Abi contract_abi = b.abi();
  return Contract{"hotloop",
                  std::move(b).build_binary(corpus::DispatcherStyle::Standard),
                  contract_abi};
}

std::vector<Contract> build_corpus() {
  namespace fs = std::filesystem;
  std::vector<Contract> corpus;

  std::vector<std::uint64_t> seeds;
  const fs::path dir = fs::path(WASAI_EXAMPLES_DIR) / "wasm";
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string stem = entry.path().stem().string();
    if (entry.path().extension() != ".wasm") continue;
    if (stem.rfind("testgen_", 0) != 0) continue;
    seeds.push_back(std::stoull(stem.substr(8)));
  }
  std::sort(seeds.begin(), seeds.end());
  for (const auto seed : seeds) {
    const auto gen = testgen::generate(seed);
    corpus.push_back(Contract{"testgen_" + std::to_string(seed),
                              wasm::encode(gen.module), gen.abi});
  }

  util::Rng rng(2022);
  const auto add = [&corpus](corpus::Sample sample) {
    corpus.push_back(
        Contract{sample.tag, std::move(sample.wasm), std::move(sample.abi)});
  };
  add(corpus::make_fake_eos_sample(rng, /*vulnerable=*/true));
  add(corpus::make_fake_notif_sample(rng, /*vulnerable=*/true));
  add(corpus::make_missauth_sample(rng, /*vulnerable=*/true));
  add(corpus::make_blockinfo_sample(rng, /*vulnerable=*/true));
  add(corpus::make_rollback_sample(rng, /*vulnerable=*/true));
  corpus.push_back(make_hotloop_contract());
  return corpus;
}

std::string findings_fingerprint(const engine::FuzzReport& report) {
  std::string out;
  for (const auto& finding : report.scan.findings) {
    out += scanner::to_string(finding.type);
    out += ';';
  }
  return out;
}

/// One fuzzing run; returns the report and folds the final captured traces
/// into a digest (the fuzzer's sink still holds the last iteration's
/// capture window when run() returns).
engine::FuzzReport run_one(const Contract& contract, bool fastpath,
                           bool feedback, int iterations,
                           std::uint64_t* trace_digest) {
  engine::FuzzOptions options;
  options.iterations = iterations;
  options.rng_seed = 1;
  options.symbolic_feedback = feedback;
  options.vm_fastpath = fastpath;
  engine::Fuzzer fuzzer(contract.wasm, contract.abi, options);
  auto report = fuzzer.run();
  if (trace_digest != nullptr) {
    util::Digest digest;
    digest.bytes(instrument::serialize_traces(
        fuzzer.harness().sink().actions()));
    *trace_digest = digest.value();
  }
  return report;
}

ConfigTotals run_config(const std::vector<Contract>& corpus,
                        const Config& config, int pipeline_iterations,
                        int exec_iterations) {
  ConfigTotals totals;
  for (const auto& contract : corpus) {
    std::uint64_t trace_digest = 0;
    const auto pipeline =
        run_one(contract, config.fastpath, /*feedback=*/true,
                pipeline_iterations, &trace_digest);
    totals.pipeline_fuzz_ms += pipeline.fuzz_ms;
    totals.pipeline_transactions += pipeline.transactions;
    totals.distinct_branches += pipeline.distinct_branches;
    totals.fingerprints.push_back(Fingerprint{
        pipeline.adaptive_seeds, pipeline.distinct_branches,
        pipeline.transactions, findings_fingerprint(pipeline),
        trace_digest});

    const auto exec = run_one(contract, config.fastpath, /*feedback=*/false,
                              exec_iterations, nullptr);
    totals.fuzz_ms += exec.fuzz_ms;
    totals.transactions += exec.transactions;
  }
  return totals;
}

util::Json totals_to_json(const ConfigTotals& t) {
  util::JsonObject out;
  const auto num = [](auto v) { return util::Json(static_cast<double>(v)); };
  out.emplace("fuzz_ms", num(t.fuzz_ms));
  out.emplace("transactions", num(t.transactions));
  out.emplace("transactions_per_sec", num(t.transactions_per_sec()));
  out.emplace("pipeline_fuzz_ms", num(t.pipeline_fuzz_ms));
  out.emplace("pipeline_transactions", num(t.pipeline_transactions));
  out.emplace("pipeline_transactions_per_sec",
              num(t.pipeline_transactions_per_sec()));
  out.emplace("distinct_branches", num(t.distinct_branches));
  return util::Json(std::move(out));
}

}  // namespace

int main() {
  const int pipeline_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 36));
  const int exec_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_EXEC_ITERATIONS", 160));
  const char* out_env = std::getenv("WASAI_BENCH_OUT");
  const std::string out_path = out_env == nullptr ? "BENCH_vm.json" : out_env;

  const auto corpus = build_corpus();
  std::printf(
      "bench_perf_vm: %zu contracts, %d pipeline + %d exec iterations each\n",
      corpus.size(), pipeline_iterations, exec_iterations);

  const Config configs[] = {
      {"legacy", false},
      {"fastpath", true},
  };

  std::map<std::string, ConfigTotals> totals;
  for (const auto& config : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    totals[config.name] =
        run_config(corpus, config, pipeline_iterations, exec_iterations);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ConfigTotals& t = totals[config.name];
    std::printf("  %-9s %8.1f exec ms, %5zu txns, %8.1f txn/sec  (%.1fs)\n",
                config.name.c_str(), t.fuzz_ms, t.transactions,
                t.transactions_per_sec(), secs);
  }

  // Parity gate: the fast path must reproduce the legacy run's
  // per-contract outcomes (including the trace bytes) exactly.
  bool parity_ok = true;
  const auto& reference = totals["legacy"].fingerprints;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (totals["fastpath"].fingerprints[i] == reference[i]) continue;
    parity_ok = false;
    std::printf("PARITY DIVERGENCE: fastpath on %s\n", corpus[i].id.c_str());
  }

  const double legacy_tps = totals["legacy"].transactions_per_sec();
  const double fast_tps = totals["fastpath"].transactions_per_sec();
  const double speedup = legacy_tps > 0 ? fast_tps / legacy_tps : 0.0;
  std::printf(
      "fastpath vs legacy: %.1f -> %.1f txn/sec (%.2fx), parity %s\n",
      legacy_tps, fast_tps, speedup, parity_ok ? "ok" : "DIVERGED");

  util::JsonObject doc;
  util::JsonArray ids;
  for (const auto& contract : corpus) ids.emplace_back(contract.id);
  doc.emplace("corpus", util::Json(std::move(ids)));
  doc.emplace("iterations",
              util::Json(static_cast<double>(pipeline_iterations)));
  doc.emplace("exec_iterations",
              util::Json(static_cast<double>(exec_iterations)));
  util::JsonObject config_obj;
  for (const auto& [name, t] : totals) {
    config_obj.emplace(name, totals_to_json(t));
  }
  doc.emplace("configs", util::Json(std::move(config_obj)));
  doc.emplace("parity_ok", util::Json(parity_ok));
  doc.emplace("speedup", util::Json(speedup));
  doc.emplace("speedup_ok", util::Json(speedup >= 2.0));

  std::ofstream out(out_path, std::ios::trunc);
  out << util::dump_json(util::Json(std::move(doc))) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  // Only parity is a hard failure: timing is hardware-dependent, but any
  // observable legacy/fastpath divergence is a correctness bug.
  return parity_ok ? 0 : 1;
}
