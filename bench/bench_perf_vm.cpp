// VM execution-engine performance suite: fuzzes the committed corpus on
// the legacy interpreter and on the fast path (pre-flattened instruction
// streams, direct hook dispatch, arena-backed trace capture) and writes
// BENCH_vm.json with per-config throughput.
//
// Two phases per configuration:
//   pipeline — the full concolic loop (symbolic feedback on), whose
//              per-contract fingerprints pin end-to-end parity: findings,
//              transactions, coverage, adaptive seeds AND a digest of the
//              final captured trace bytes must be identical across
//              configurations. ANY divergence fails the bench (exit 1).
//   exec     — feedback off (execution-dominated loop), which isolates the
//              interpreter + trace-capture + scan throughput the fast path
//              targets; `transactions_per_sec` and the headline speedup
//              come from this phase.
//
// Corpus: the shared perf corpus (bench/bench_corpus.hpp) — testgen
// modules, one vulnerable sample per template family, and the `hotloop`
// compute contract.
//
// Knobs: WASAI_BENCH_ITERATIONS (default 36 pipeline rounds per contract),
// WASAI_BENCH_EXEC_ITERATIONS (default 160 exec rounds per contract),
// WASAI_BENCH_OUT (default BENCH_vm.json in the working directory).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_corpus.hpp"
#include "bench/bench_util.hpp"
#include "engine/fuzzer.hpp"
#include "instrument/trace_io.hpp"
#include "util/digest.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

using bench::Contract;
using bench::Fingerprint;

struct Config {
  std::string name;
  bool fastpath;
};

struct ConfigTotals {
  double fuzz_ms = 0;            // exec phase wall time
  std::size_t transactions = 0;  // exec phase transactions
  double pipeline_fuzz_ms = 0;
  std::size_t pipeline_transactions = 0;
  std::size_t distinct_branches = 0;
  std::vector<Fingerprint> fingerprints;

  [[nodiscard]] double transactions_per_sec() const {
    return fuzz_ms > 0 ? static_cast<double>(transactions) / (fuzz_ms / 1e3)
                       : 0.0;
  }
  [[nodiscard]] double pipeline_transactions_per_sec() const {
    return pipeline_fuzz_ms > 0 ? static_cast<double>(pipeline_transactions) /
                                      (pipeline_fuzz_ms / 1e3)
                                : 0.0;
  }
};

std::vector<Contract> build_corpus() { return bench::build_perf_corpus(); }

/// One fuzzing run; returns the report and folds the final captured traces
/// into a digest (the fuzzer's sink still holds the last iteration's
/// capture window when run() returns).
engine::FuzzReport run_one(const Contract& contract, bool fastpath,
                           bool feedback, int iterations,
                           std::uint64_t* trace_digest) {
  engine::FuzzOptions options;
  options.iterations = iterations;
  options.rng_seed = 1;
  options.symbolic_feedback = feedback;
  options.vm_fastpath = fastpath;
  engine::Fuzzer fuzzer(contract.wasm, contract.abi, options);
  auto report = fuzzer.run();
  if (trace_digest != nullptr) {
    util::Digest digest;
    digest.bytes(instrument::serialize_traces(
        fuzzer.harness().sink().actions()));
    *trace_digest = digest.value();
  }
  return report;
}

ConfigTotals run_config(const std::vector<Contract>& corpus,
                        const Config& config, int pipeline_iterations,
                        int exec_iterations) {
  ConfigTotals totals;
  for (const auto& contract : corpus) {
    std::uint64_t trace_digest = 0;
    const auto pipeline =
        run_one(contract, config.fastpath, /*feedback=*/true,
                pipeline_iterations, &trace_digest);
    totals.pipeline_fuzz_ms += pipeline.fuzz_ms;
    totals.pipeline_transactions += pipeline.transactions;
    totals.distinct_branches += pipeline.distinct_branches;
    totals.fingerprints.push_back(Fingerprint{
        pipeline.adaptive_seeds, pipeline.distinct_branches,
        pipeline.transactions, bench::findings_fingerprint(pipeline),
        trace_digest});

    const auto exec = run_one(contract, config.fastpath, /*feedback=*/false,
                              exec_iterations, nullptr);
    totals.fuzz_ms += exec.fuzz_ms;
    totals.transactions += exec.transactions;
  }
  return totals;
}

util::Json totals_to_json(const ConfigTotals& t) {
  util::JsonObject out;
  const auto num = [](auto v) { return util::Json(static_cast<double>(v)); };
  out.emplace("fuzz_ms", num(t.fuzz_ms));
  out.emplace("transactions", num(t.transactions));
  out.emplace("transactions_per_sec", num(t.transactions_per_sec()));
  out.emplace("pipeline_fuzz_ms", num(t.pipeline_fuzz_ms));
  out.emplace("pipeline_transactions", num(t.pipeline_transactions));
  out.emplace("pipeline_transactions_per_sec",
              num(t.pipeline_transactions_per_sec()));
  out.emplace("distinct_branches", num(t.distinct_branches));
  return util::Json(std::move(out));
}

}  // namespace

int main() {
  const int pipeline_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 36));
  const int exec_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_EXEC_ITERATIONS", 160));
  const char* out_env = std::getenv("WASAI_BENCH_OUT");
  const std::string out_path = out_env == nullptr ? "BENCH_vm.json" : out_env;

  const auto corpus = build_corpus();
  std::printf(
      "bench_perf_vm: %zu contracts, %d pipeline + %d exec iterations each\n",
      corpus.size(), pipeline_iterations, exec_iterations);

  const Config configs[] = {
      {"legacy", false},
      {"fastpath", true},
  };

  std::map<std::string, ConfigTotals> totals;
  for (const auto& config : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    totals[config.name] =
        run_config(corpus, config, pipeline_iterations, exec_iterations);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ConfigTotals& t = totals[config.name];
    std::printf("  %-9s %8.1f exec ms, %5zu txns, %8.1f txn/sec  (%.1fs)\n",
                config.name.c_str(), t.fuzz_ms, t.transactions,
                t.transactions_per_sec(), secs);
  }

  // Parity gate: the fast path must reproduce the legacy run's
  // per-contract outcomes (including the trace bytes) exactly.
  bool parity_ok = true;
  const auto& reference = totals["legacy"].fingerprints;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (totals["fastpath"].fingerprints[i] == reference[i]) continue;
    parity_ok = false;
    std::printf("PARITY DIVERGENCE: fastpath on %s\n", corpus[i].id.c_str());
  }

  const double legacy_tps = totals["legacy"].transactions_per_sec();
  const double fast_tps = totals["fastpath"].transactions_per_sec();
  const double speedup = legacy_tps > 0 ? fast_tps / legacy_tps : 0.0;
  std::printf(
      "fastpath vs legacy: %.1f -> %.1f txn/sec (%.2fx), parity %s\n",
      legacy_tps, fast_tps, speedup, parity_ok ? "ok" : "DIVERGED");

  util::JsonObject doc;
  util::JsonArray ids;
  for (const auto& contract : corpus) ids.emplace_back(contract.id);
  doc.emplace("corpus", util::Json(std::move(ids)));
  doc.emplace("iterations",
              util::Json(static_cast<double>(pipeline_iterations)));
  doc.emplace("exec_iterations",
              util::Json(static_cast<double>(exec_iterations)));
  util::JsonObject config_obj;
  for (const auto& [name, t] : totals) {
    config_obj.emplace(name, totals_to_json(t));
  }
  doc.emplace("configs", util::Json(std::move(config_obj)));
  doc.emplace("parity_ok", util::Json(parity_ok));
  doc.emplace("speedup", util::Json(speedup));
  doc.emplace("speedup_ok", util::Json(speedup >= 2.0));

  std::ofstream out(out_path, std::ios::trunc);
  out << util::dump_json(util::Json(std::move(doc))) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  // Only parity is a hard failure: timing is hardware-dependent, but any
  // observable legacy/fastpath divergence is a correctness bug.
  return parity_ok ? 0 : 1;
}
