// Shared corpus for the perf benches (bench_perf_vm, bench_perf_fuzz): the
// committed `examples/wasm/testgen_<seed>.wasm` modules (regenerated from
// the seed in the filename), one vulnerable sample per corpus template
// family, and a compute-representative `hotloop` contract. Keeping one
// definition ensures the two benches measure the same workload and that
// their fingerprint gates cover identical inputs.
#pragma once

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "corpus/contract_builder.hpp"
#include "corpus/templates.hpp"
#include "engine/fuzzer.hpp"
#include "testgen/generator.hpp"
#include "wasm/encoder.hpp"

#ifndef WASAI_EXAMPLES_DIR
#error "build must define WASAI_EXAMPLES_DIR"
#endif

namespace wasai::bench {

struct Contract {
  std::string id;
  util::Bytes wasm;
  abi::Abi abi;
};

/// What every configuration of a perf bench must reproduce exactly, per
/// contract. The trace digest covers the serialized bytes of the final
/// iteration's captured traces, so a single diverging value, event order or
/// payload byte shows up even when the aggregate counters happen to agree.
struct Fingerprint {
  std::size_t adaptive_seeds = 0;
  std::size_t distinct_branches = 0;
  std::size_t transactions = 0;
  std::string findings;
  std::uint64_t trace_digest = 0;

  bool operator==(const Fingerprint&) const = default;
};

inline std::string findings_fingerprint(const engine::FuzzReport& report) {
  std::string out;
  for (const auto& finding : report.scan.findings) {
    out += scanner::to_string(finding.type);
    out += ';';
  }
  return out;
}

/// Compute-representative contract. The testgen modules and template
/// families execute a few dozen instructions per transaction, so chain-side
/// per-transaction costs (abi packing, scheduling, native token transfers)
/// dominate the exec phase and mask interpreter throughput. Real contracts
/// spend most of an action inside loops — memo parsing, token math, table
/// scans — so the corpus gets one contract whose action runs a counted LCG
/// loop: ~17 interpreted instructions plus two hook sites (the loop-exit
/// br_if and an i64 comparison) per round. The loop state is seeded from a
/// constant, not the action parameter, so the symbolic-feedback phase sees
/// concrete branch conditions and the pipeline stays solver-light.
inline Contract make_hotloop_contract() {
  constexpr std::int64_t kRounds = 4000;
  constexpr std::uint32_t kAcc = 2;  // extra locals follow self + param
  constexpr std::uint32_t kIdx = 3;
  corpus::ContractBuilder b;
  const abi::ActionDef def{abi::name("churn"), {abi::ParamType::U64}};
  std::vector<wasm::Instr> body = {
      wasm::i64_const(0x9e3779b9),
      wasm::local_set(kAcc),
      wasm::block(),
      wasm::loop(),
      wasm::local_get(kIdx),
      wasm::i64_const(kRounds),
      wasm::Instr(wasm::Opcode::I64GeS),
      wasm::br_if(1),
      wasm::local_get(kAcc),
      wasm::i64_const_u(0x5851f42d4c957f2dULL),
      wasm::Instr(wasm::Opcode::I64Mul),
      wasm::i64_const_u(0x14057b7ef767814fULL),
      wasm::Instr(wasm::Opcode::I64Add),
      wasm::local_get(kIdx),
      wasm::Instr(wasm::Opcode::I64Xor),
      wasm::local_set(kAcc),
      wasm::local_get(kIdx),
      wasm::i64_const(1),
      wasm::Instr(wasm::Opcode::I64Add),
      wasm::local_set(kIdx),
      wasm::br(0),
      wasm::Instr(wasm::Opcode::End),  // loop
      wasm::Instr(wasm::Opcode::End),  // block
      wasm::Instr(wasm::Opcode::End),  // function
  };
  b.add_action(def, {wasm::ValType::I64, wasm::ValType::I64},
               std::move(body));
  const abi::Abi contract_abi = b.abi();
  return Contract{"hotloop",
                  std::move(b).build_binary(corpus::DispatcherStyle::Standard),
                  contract_abi};
}

inline std::vector<Contract> build_perf_corpus() {
  namespace fs = std::filesystem;
  std::vector<Contract> corpus;

  std::vector<std::uint64_t> seeds;
  const fs::path dir = fs::path(WASAI_EXAMPLES_DIR) / "wasm";
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string stem = entry.path().stem().string();
    if (entry.path().extension() != ".wasm") continue;
    if (stem.rfind("testgen_", 0) != 0) continue;
    seeds.push_back(std::stoull(stem.substr(8)));
  }
  std::sort(seeds.begin(), seeds.end());
  for (const auto seed : seeds) {
    const auto gen = testgen::generate(seed);
    corpus.push_back(Contract{"testgen_" + std::to_string(seed),
                              wasm::encode(gen.module), gen.abi});
  }

  util::Rng rng(2022);
  const auto add = [&corpus](corpus::Sample sample) {
    corpus.push_back(
        Contract{sample.tag, std::move(sample.wasm), std::move(sample.abi)});
  };
  add(corpus::make_fake_eos_sample(rng, /*vulnerable=*/true));
  add(corpus::make_fake_notif_sample(rng, /*vulnerable=*/true));
  add(corpus::make_missauth_sample(rng, /*vulnerable=*/true));
  add(corpus::make_blockinfo_sample(rng, /*vulnerable=*/true));
  add(corpus::make_rollback_sample(rng, /*vulnerable=*/true));
  corpus.push_back(make_hotloop_contract());
  return corpus;
}

}  // namespace wasai::bench
