// Reproduces Table 6 (RQ3b): detection accuracy under complicated input
// verification (injected `if (i64.ne <param> <const>) unreachable` checks).
// EOSFuzzer collapses (its random seeds never satisfy the checks, and its
// all-failed oracle flaw flags everything as Fake EOS); WASAI's adaptive
// seeds solve the checks.
#include "bench/accuracy_common.hpp"

int main() {
  using wasai::bench::PaperRow;
  using wasai::bench::PaperTable;
  using wasai::scanner::VulnType;

  const PaperTable paper = {
      {VulnType::FakeEos,
       {"100.0% 100.0% 100.0%", " 50.0% 100.0%  66.7%",
        "100.0%  43.2%  60.3%"}},
      {VulnType::FakeNotif,
       {" 99.6%  83.0%  90.6%", "  0.0%   0.0%   0.0%",
        " 68.1%  99.3%  80.8%"}},
      {VulnType::MissAuth,
       {"100.0%  97.4%  98.7%", "    -      -      -  ",
        "100.0%  40.5%  57.6%"}},
      {VulnType::BlockinfoDep,
       {"100.0% 100.0% 100.0%", "  0.0%   0.0%   0.0%",
        "    -      -      -  "}},
      {VulnType::Rollback,
       {"100.0% 100.0% 100.0%", "    -      -      -  ",
        " 50.0% 100.0%  66.7%"}},
  };
  const PaperRow paper_total = {" 99.9%  92.5%  96.0%",
                                " 50.0%  10.7%  17.7%",
                                " 67.4%  77.6%  72.1%"};

  wasai::corpus::BenchmarkSpec spec;
  spec.scale = 0.08;
  spec.seed = 44;
  spec.complicated_verification = true;
  wasai::bench::run_accuracy_bench(
      "Table 6 (RQ3b): the impact of complicated verification", spec, paper,
      paper_total);
  return 0;
}
