// Reproduces Table 4 (RQ2): detection accuracy of WASAI vs EOSFuzzer vs
// EOSAFE on the ground-truth benchmark (paper: 3,340 samples, half
// vulnerable). Scale with WASAI_BENCH_SCALE (1.0 = full size).
#include "bench/accuracy_common.hpp"

int main() {
  using wasai::bench::PaperRow;
  using wasai::bench::PaperTable;
  using wasai::scanner::VulnType;

  const PaperTable paper = {
      {VulnType::FakeEos,
       {"100.0% 100.0% 100.0%", " 90.7%  84.3%  87.3%",
        " 98.3%  44.9%  61.6%"}},
      {VulnType::FakeNotif,
       {"100.0% 100.0% 100.0%", " 94.9%  78.7%  86.0%",
        " 67.4%  98.3%  79.9%"}},
      {VulnType::MissAuth,
       {"100.0%  96.0%  97.9%", "    -      -      -  ",
        "100.0%  38.9%  56.0%"}},
      {VulnType::BlockinfoDep,
       {"100.0% 100.0% 100.0%", "  0.0%   0.0%   0.0%",
        "    -      -      -  "}},
      {VulnType::Rollback,
       {"100.0%  95.7%  97.8%", "    -      -      -  ",
        " 50.5%  97.6%  66.6%"}},
  };
  const PaperRow paper_total = {"100.0%  98.4%  99.2%",
                                " 94.2%  63.9%  76.1%",
                                " 67.7%  75.6%  71.4%"};

  wasai::corpus::BenchmarkSpec spec;
  spec.scale = 0.08;  // default CI-friendly subset; override via env
  spec.seed = 42;
  wasai::bench::run_accuracy_bench(
      "Table 4 (RQ2): vulnerability-detection accuracy on the ground-truth "
      "benchmark",
      spec, paper, paper_total);
  return 0;
}
