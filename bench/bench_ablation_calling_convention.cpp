// Ablation (§3.4.2): starting the symbolic analysis at the action function
// (WASAI's calling-convention shortcut) vs whole-program static symbolic
// execution. On a contract whose eosponser contains a memo-checksum loop
// and layered verification, the static explorer exhausts its budget while
// WASAI's trace replay reaches a correct verdict.
#include <chrono>
#include <cstdio>

#include "baselines/eosafe.hpp"
#include "bench/bench_util.hpp"
#include "corpus/templates.hpp"
#include "wasai/wasai.hpp"

int main() {
  using namespace wasai;
  util::Rng rng(7);
  corpus::TemplateOptions options;
  options.memo_scan = true;
  options.verification_depth = 2;
  // Safe contract: the correct verdict is "no Fake Notif".
  const auto sample = corpus::make_fake_notif_sample(rng, false, options);

  std::printf(
      "Ablation (calling convention): trace replay from the action function "
      "vs whole-program static SE\n");
  std::printf("contract: %s (memo-scan loop + depth-2 verification)\n\n",
              sample.tag.c_str());

  {
    const auto t0 = std::chrono::steady_clock::now();
    AnalysisOptions o;
    o.fuzz.iterations = 40;
    const auto result = analyze(sample.wasm, sample.abi, o);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf(
        "WASAI  : verdict=%-10s  %.0f ms, %zu replays, %zu solver queries, "
        "%zu adaptive seeds (correct: not vulnerable)\n",
        result.has(scanner::VulnType::FakeNotif) ? "VULNERABLE" : "safe", ms,
        result.details.replays, result.details.solver_queries,
        result.details.adaptive_seeds);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    baselines::Eosafe eosafe(sample.wasm, sample.abi);
    const auto report = eosafe.run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf(
        "EOSAFE : verdict=%-10s  %.0f ms, timed_out=%s (the symbolic-bound "
        "loop exhausts the budget; timeout defaults to vulnerable)\n",
        report.has(scanner::VulnType::FakeNotif) ? "VULNERABLE" : "safe", ms,
        report.timed_out ? "yes" : "no");
  }

  // Control: on a shallow contract both reach the right verdict.
  util::Rng rng2(8);
  const auto shallow = corpus::make_fake_notif_sample(rng2, false);
  {
    AnalysisOptions o;
    o.fuzz.iterations = 24;
    const auto result = analyze(shallow.wasm, shallow.abi, o);
    baselines::Eosafe eosafe(shallow.wasm, shallow.abi);
    const auto report = eosafe.run();
    std::printf(
        "\ncontrol (shallow eosponser): WASAI=%s EOSAFE=%s (both correct)\n",
        result.has(scanner::VulnType::FakeNotif) ? "VULNERABLE" : "safe",
        report.has(scanner::VulnType::FakeNotif) ? "VULNERABLE" : "safe");
  }
  return 0;
}
