// Sharded fuzz-engine performance suite: runs the shared perf corpus
// through the serial fuzz loop and through the batch-synchronous sharded
// engine at 1, 2, 4 and 8 lanes, and writes BENCH_fuzz.json.
//
// Two phases per configuration (mirroring bench_perf_vm):
//   pipeline — the full concolic loop (symbolic feedback on). The serial
//              and shards-1 runs must produce identical per-contract
//              fingerprints — findings, transactions, coverage, adaptive
//              seeds AND a digest of the final captured trace bytes. ANY
//              divergence fails the bench (exit 1). Higher shard counts
//              legitimately explore different per-lane chain schedules, so
//              they are measured but not fingerprint-gated.
//   exec     — feedback off (execution-dominated loop). The headline
//              `speedup` is the hotloop contract's transactions/sec at 4
//              shards over the serial loop: the hotloop spends its time
//              inside the interpreter, which is exactly the work the shard
//              lanes parallelize. `speedup_ok` requires >= 1.8x AND parity;
//              it reflects the host's core count (a single-core runner
//              cannot pass it), so only fingerprint parity gates the exit
//              status — same policy as bench_perf_vm.
//
// Knobs: WASAI_BENCH_ITERATIONS (default 24 pipeline rounds per contract),
// WASAI_BENCH_EXEC_ITERATIONS (default 120 exec rounds per contract),
// WASAI_BENCH_OUT (default BENCH_fuzz.json in the working directory).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_corpus.hpp"
#include "bench/bench_util.hpp"
#include "engine/fuzzer.hpp"
#include "instrument/trace_io.hpp"
#include "util/digest.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

using bench::Contract;
using bench::Fingerprint;

struct Config {
  std::string name;
  int fuzz_shards;  // 0 = serial loop
};

struct ConfigTotals {
  double fuzz_ms = 0;            // exec phase wall time, whole corpus
  std::size_t transactions = 0;  // exec phase transactions, whole corpus
  double hotloop_fuzz_ms = 0;    // exec phase, hotloop contract only
  std::size_t hotloop_transactions = 0;
  double pipeline_fuzz_ms = 0;
  std::size_t pipeline_transactions = 0;
  std::size_t distinct_branches = 0;
  std::vector<Fingerprint> fingerprints;

  [[nodiscard]] static double tps(std::size_t txns, double ms) {
    return ms > 0 ? static_cast<double>(txns) / (ms / 1e3) : 0.0;
  }
  [[nodiscard]] double transactions_per_sec() const {
    return tps(transactions, fuzz_ms);
  }
  [[nodiscard]] double hotloop_transactions_per_sec() const {
    return tps(hotloop_transactions, hotloop_fuzz_ms);
  }
  [[nodiscard]] double pipeline_transactions_per_sec() const {
    return tps(pipeline_transactions, pipeline_fuzz_ms);
  }
};

/// One fuzzing run; returns the report and folds the final captured traces
/// of the primary harness into a digest.
engine::FuzzReport run_one(const Contract& contract, int fuzz_shards,
                           bool feedback, int iterations,
                           std::uint64_t* trace_digest) {
  engine::FuzzOptions options;
  options.iterations = iterations;
  options.rng_seed = 1;
  options.symbolic_feedback = feedback;
  options.fuzz_shards = fuzz_shards;
  engine::Fuzzer fuzzer(contract.wasm, contract.abi, options);
  auto report = fuzzer.run();
  if (trace_digest != nullptr) {
    util::Digest digest;
    digest.bytes(instrument::serialize_traces(
        fuzzer.harness().sink().actions()));
    *trace_digest = digest.value();
  }
  return report;
}

ConfigTotals run_config(const std::vector<Contract>& corpus,
                        const Config& config, int pipeline_iterations,
                        int exec_iterations) {
  ConfigTotals totals;
  for (const auto& contract : corpus) {
    std::uint64_t trace_digest = 0;
    const auto pipeline =
        run_one(contract, config.fuzz_shards, /*feedback=*/true,
                pipeline_iterations, &trace_digest);
    totals.pipeline_fuzz_ms += pipeline.fuzz_ms;
    totals.pipeline_transactions += pipeline.transactions;
    totals.distinct_branches += pipeline.distinct_branches;
    totals.fingerprints.push_back(Fingerprint{
        pipeline.adaptive_seeds, pipeline.distinct_branches,
        pipeline.transactions, bench::findings_fingerprint(pipeline),
        trace_digest});

    const auto exec = run_one(contract, config.fuzz_shards,
                              /*feedback=*/false, exec_iterations, nullptr);
    totals.fuzz_ms += exec.fuzz_ms;
    totals.transactions += exec.transactions;
    if (contract.id == "hotloop") {
      totals.hotloop_fuzz_ms += exec.fuzz_ms;
      totals.hotloop_transactions += exec.transactions;
    }
  }
  return totals;
}

util::Json totals_to_json(const ConfigTotals& t) {
  util::JsonObject out;
  const auto num = [](auto v) { return util::Json(static_cast<double>(v)); };
  out.emplace("fuzz_ms", num(t.fuzz_ms));
  out.emplace("transactions", num(t.transactions));
  out.emplace("transactions_per_sec", num(t.transactions_per_sec()));
  out.emplace("hotloop_fuzz_ms", num(t.hotloop_fuzz_ms));
  out.emplace("hotloop_transactions", num(t.hotloop_transactions));
  out.emplace("hotloop_transactions_per_sec",
              num(t.hotloop_transactions_per_sec()));
  out.emplace("pipeline_fuzz_ms", num(t.pipeline_fuzz_ms));
  out.emplace("pipeline_transactions", num(t.pipeline_transactions));
  out.emplace("pipeline_transactions_per_sec",
              num(t.pipeline_transactions_per_sec()));
  out.emplace("distinct_branches", num(t.distinct_branches));
  return util::Json(std::move(out));
}

}  // namespace

int main() {
  const int pipeline_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 24));
  const int exec_iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_EXEC_ITERATIONS", 120));
  const char* out_env = std::getenv("WASAI_BENCH_OUT");
  const std::string out_path =
      out_env == nullptr ? "BENCH_fuzz.json" : out_env;

  const auto corpus = bench::build_perf_corpus();
  std::printf(
      "bench_perf_fuzz: %zu contracts, %d pipeline + %d exec iterations "
      "each\n",
      corpus.size(), pipeline_iterations, exec_iterations);

  const Config configs[] = {
      {"serial", 0}, {"shards-1", 1}, {"shards-2", 2},
      {"shards-4", 4}, {"shards-8", 8},
  };

  std::map<std::string, ConfigTotals> totals;
  for (const auto& config : configs) {
    const auto t0 = std::chrono::steady_clock::now();
    totals[config.name] =
        run_config(corpus, config, pipeline_iterations, exec_iterations);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ConfigTotals& t = totals[config.name];
    std::printf(
        "  %-9s %8.1f exec ms, %5zu txns, %8.1f txn/sec, "
        "hotloop %8.1f txn/sec  (%.1fs)\n",
        config.name.c_str(), t.fuzz_ms, t.transactions,
        t.transactions_per_sec(), t.hotloop_transactions_per_sec(), secs);
  }

  // Parity gate: one shard lane must reproduce the serial loop's
  // per-contract outcomes (including the trace bytes) exactly.
  bool parity_ok = true;
  const auto& reference = totals["serial"].fingerprints;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (totals["shards-1"].fingerprints[i] == reference[i]) continue;
    parity_ok = false;
    std::printf("PARITY DIVERGENCE: shards-1 on %s\n", corpus[i].id.c_str());
  }

  const double serial_tps = totals["serial"].hotloop_transactions_per_sec();
  const double quad_tps = totals["shards-4"].hotloop_transactions_per_sec();
  const double speedup = serial_tps > 0 ? quad_tps / serial_tps : 0.0;
  const bool speedup_ok = parity_ok && speedup >= 1.8;
  std::printf(
      "shards-4 vs serial (hotloop): %.1f -> %.1f txn/sec (%.2fx), "
      "parity %s, speedup %s\n",
      serial_tps, quad_tps, speedup, parity_ok ? "ok" : "DIVERGED",
      speedup_ok ? "ok" : "below 1.8x");

  util::JsonObject doc;
  util::JsonArray ids;
  for (const auto& contract : corpus) ids.emplace_back(contract.id);
  doc.emplace("corpus", util::Json(std::move(ids)));
  doc.emplace("iterations",
              util::Json(static_cast<double>(pipeline_iterations)));
  doc.emplace("exec_iterations",
              util::Json(static_cast<double>(exec_iterations)));
  util::JsonObject config_obj;
  for (const auto& [name, t] : totals) {
    config_obj.emplace(name, totals_to_json(t));
  }
  doc.emplace("configs", util::Json(std::move(config_obj)));
  doc.emplace("parity_ok", util::Json(parity_ok));
  doc.emplace("speedup", util::Json(speedup));
  doc.emplace("speedup_ok", util::Json(speedup_ok));

  std::ofstream out(out_path, std::ios::trunc);
  out << util::dump_json(util::Json(std::move(doc))) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  // Only parity is a hard failure: throughput scaling depends on the
  // host's core count, but any serial/shards-1 divergence is a
  // determinism-contract bug.
  return parity_ok ? 0 : 1;
}
