// Reproduces RQ4 (§4.4): applying WASAI to the profitable-contract
// population. The paper ran 991 Mainnet contracts and found 707 (71.3%)
// vulnerable (241 Fake EOS, 264 Fake Notif, 470 MissAuth, 22 BlockinfoDep,
// 122 Rollback); 58.4% of flagged contracts were still operating and 341
// remained exposed. Our population is synthetic with known injections, so
// this bench additionally reports per-type precision/recall — something
// the paper could only sample manually (it found 2 FPs and 1 FN in 100
// manually-verified contracts).
#include <chrono>
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "corpus/dataset.hpp"
#include "util/rng.hpp"
#include "wasai/wasai.hpp"

int main() {
  using namespace wasai;
  const auto n = static_cast<std::size_t>(bench::env_long("WASAI_RQ4_N", 160));
  const int iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 36));
  const auto population = corpus::make_wild_population(n, /*seed=*/991);

  static const scanner::VulnType kTypes[] = {
      scanner::VulnType::FakeEos, scanner::VulnType::FakeNotif,
      scanner::VulnType::MissAuth, scanner::VulnType::BlockinfoDep,
      scanner::VulnType::Rollback};

  std::map<scanner::VulnType, std::size_t> flagged_counts;
  std::map<scanner::VulnType, bench::Prf> accuracy;
  std::size_t flagged_contracts = 0;
  std::size_t injected_contracts = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t idx = 0;
  for (const auto& wc : population) {
    AnalysisOptions options;
    options.fuzz.iterations = iterations;
    options.fuzz.rng_seed = 7000 + idx++;
    const auto result = analyze(wc.sample.wasm, wc.sample.abi, options);
    if (result.vulnerable()) ++flagged_contracts;
    if (!wc.injected.empty()) ++injected_contracts;
    for (const auto type : kTypes) {
      if (result.has(type)) ++flagged_counts[type];
      accuracy[type].add(wc.injected.contains(type), result.has(type));
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::printf("RQ4: vulnerabilities in the wild (profitable contracts)\n");
  std::printf("population=%zu, iterations=%d, %.1fs total\n\n",
              population.size(), iterations, secs);
  std::printf("flagged contracts: %zu/%zu (%.1f%%)   paper: 707/991 (71.3%%)\n",
              flagged_contracts, population.size(),
              100.0 * flagged_contracts / population.size());
  std::printf("injected ground truth: %zu vulnerable contracts\n\n",
              injected_contracts);

  const std::map<scanner::VulnType, double> paper_counts = {
      {scanner::VulnType::FakeEos, 241},
      {scanner::VulnType::FakeNotif, 264},
      {scanner::VulnType::MissAuth, 470},
      {scanner::VulnType::BlockinfoDep, 22},
      {scanner::VulnType::Rollback, 122}};

  std::printf("%-13s %9s %16s %10s %8s\n", "Type", "flagged",
              "paper(scaled)", "precision", "recall");
  for (const auto type : kTypes) {
    const double paper_scaled =
        paper_counts.at(type) * static_cast<double>(n) / 991.0;
    std::printf("%-13s %9zu %16.1f %9.1f%% %7.1f%%\n",
                scanner::to_string(type), flagged_counts[type], paper_scaled,
                accuracy[type].precision(), accuracy[type].recall());
  }

  // Patch-status model (§4.4): the paper found 58.4% of flagged contracts
  // still operating, 72 of those patched, 341 exposed. Mainnet history is
  // not available offline; a seeded model reproduces the proportions.
  util::Rng rng(404);
  std::size_t operating = 0, patched = 0;
  for (std::size_t i = 0; i < flagged_contracts; ++i) {
    if (rng.chance(0.584)) {
      ++operating;
      if (rng.chance(72.0 / 413.0)) ++patched;
    }
  }
  std::printf(
      "\npatch-status model: %zu still operating (paper 413), %zu patched "
      "(paper 72), %zu exposed (paper 341)\n",
      operating, patched, operating - patched);
  return 0;
}
