// Ablation (§3.2-C2): WASAI's concrete-address byte-map memory model vs
// EOSAFE's list-scan-and-merge model. The paper's claim: the trace-derived
// concrete addresses make memory recovery fast enough for fuzzing
// throughput, where EOSAFE degrades as analyses touch deeper memory.
#include <benchmark/benchmark.h>

#include "baselines/eosafe_memory.hpp"
#include "symbolic/memory_model.hpp"

namespace {

using wasai::baselines::EosafeMemory;
using wasai::symbolic::MemoryModel;
using wasai::symbolic::SymValue;
using wasai::symbolic::Z3Env;

// The paper's scenario (§3.2-C2): analyses that touch deeper code leave a
// long history of writes; every subsequent load has to recover the right
// content. WASAI's map keyed by the trace's concrete addresses answers in
// O(1); EOSAFE's list must scan-and-merge, so early-written locations cost
// a pass over the entire write history. The loads below deliberately hit
// the OLDEST writes — the deep-code access pattern.

void BM_WasaiMemoryModel(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  Z3Env env;
  MemoryModel mem(env);
  for (std::uint64_t i = 0; i < depth; ++i) {
    mem.store(1024 + i * 8, SymValue{wasai::wasm::ValType::I64, env.bv(i, 64)},
              8);
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 32; ++i) {  // hit the oldest writes
      const auto loaded =
          mem.load(1024 + i * 8, 8, false, wasai::wasm::ValType::I64);
      acc ^= loaded.concrete().value_or(0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void BM_EosafeMemoryModel(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  Z3Env env;
  EosafeMemory mem(env);
  for (std::uint64_t i = 0; i < depth; ++i) {
    mem.store(env.bv(1024 + i * 8, 32), env.bv(i, 64), 8);
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 32; ++i) {  // oldest writes: full scans
      const auto loaded = mem.load(env.bv(1024 + i * 8, 32), 8, false,
                                   wasai::wasm::ValType::I64);
      acc ^= loaded.concrete().value_or(0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

BENCHMARK(BM_WasaiMemoryModel)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_EosafeMemoryModel)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
