// Micro-benchmarks: raw interpreter throughput, the §3.3.1 instrumentation
// overhead (hooks execute alongside every contract instruction), rewrite
// and codec throughput.
#include <benchmark/benchmark.h>

#include "corpus/templates.hpp"
#include "instrument/instrumenter.hpp"
#include "instrument/trace_sink.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"
#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/encoder.hpp"

namespace {

using namespace wasai;
using vm::Value;
using wasm::FuncType;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;

/// f(n): tight arithmetic loop with a branch per iteration.
wasm::Module loop_module() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  constexpr ValType I64 = ValType::I64;
  const std::vector<Instr> body = {
      wasm::loop(),
      // acc = acc * 3 + i
      wasm::local_get(2),
      wasm::i64_const(3),
      Instr(Opcode::I64Mul),
      wasm::local_get(1),
      Instr(Opcode::I64Add),
      wasm::local_set(2),
      // i++ < n ?
      wasm::local_get(1),
      wasm::i64_const(1),
      Instr(Opcode::I64Add),
      wasm::local_tee(1),
      wasm::local_get(0),
      Instr(Opcode::I64LtU),
      wasm::br_if(0),
      Instr(Opcode::End),
      wasm::local_get(2),
      Instr(Opcode::End),
  };
  const auto f = b.add_func(FuncType{{I64}, {I64}}, {I64, I64}, body, "f");
  b.export_func("f", f);
  return std::move(b).build();
}

void BM_InterpreterLoop(benchmark::State& state) {
  test::RecordingHost host;
  vm::Instance inst = test::instantiate(loop_module(), host);
  const auto f = *inst.module().find_export("f");
  vm::Vm vm;
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    vm.reset_steps();
    auto out = vm.invoke(inst, f, {{Value::i64(10'000)}});
    total_steps += vm.steps();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kIsRate);
}

void BM_InterpreterLoopFast(benchmark::State& state) {
  test::RecordingHost host;
  auto module = std::make_shared<const wasm::Module>(loop_module());
  vm::Instance inst(module, host, vm::FlatModule::build(module));
  const auto f = *inst.module().find_export("f");
  vm::Vm vm;
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    vm.reset_steps();
    auto out = vm.invoke(inst, f, {{Value::i64(10'000)}});
    total_steps += vm.steps();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kIsRate);
}

void BM_InterpreterLoopInstrumented(benchmark::State& state) {
  const auto instrumented = instrument::instrument(loop_module());
  instrument::TraceSink sink;
  vm::Instance inst(std::make_shared<wasm::Module>(instrumented.module),
                    sink);
  // No open action: hook calls are dispatched but dropped, isolating the
  // instrumentation overhead itself.
  const auto f = *inst.module().find_export("f");
  vm::Vm vm;
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    vm.reset_steps();
    auto out = vm.invoke(inst, f, {{Value::i64(10'000)}});
    total_steps += vm.steps();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kIsRate);
}

void BM_InterpreterLoopInstrumentedFast(benchmark::State& state) {
  const auto instrumented = instrument::instrument(loop_module());
  instrument::TraceSink sink;
  auto module = std::make_shared<const wasm::Module>(instrumented.module);
  // Fast path: flattened stream plus direct hook dispatch (the hook
  // imports bypass call_host and land on TraceSink::on_hook).
  vm::Instance inst(module, sink, vm::FlatModule::build(module));
  const auto f = *inst.module().find_export("f");
  vm::Vm vm;
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    vm.reset_steps();
    auto out = vm.invoke(inst, f, {{Value::i64(10'000)}});
    total_steps += vm.steps();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_steps));
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kIsRate);
}

void BM_InstrumenterRewrite(benchmark::State& state) {
  util::Rng rng(1);
  const auto sample = corpus::make_fake_notif_sample(rng, true);
  const auto module = wasm::decode(sample.wasm);
  for (auto _ : state) {
    auto result = instrument::instrument(module);
    benchmark::DoNotOptimize(result.sites.size());
  }
}

void BM_CodecRoundTrip(benchmark::State& state) {
  util::Rng rng(2);
  const auto sample = corpus::make_rollback_sample(rng, true);
  for (auto _ : state) {
    auto module = wasm::decode(sample.wasm);
    auto bytes = wasm::encode(module);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(sample.wasm.size()));
}

BENCHMARK(BM_InterpreterLoop);
BENCHMARK(BM_InterpreterLoopFast);
BENCHMARK(BM_InterpreterLoopInstrumented);
BENCHMARK(BM_InterpreterLoopInstrumentedFast);
BENCHMARK(BM_InstrumenterRewrite);
BENCHMARK(BM_CodecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
