// Reproduces Figure 3 (RQ1): cumulative distinct branches explored over
// fuzzing time, WASAI vs EOSFuzzer, on a set of branch-heavy contracts
// (paper: 100 real-world contracts, 5 minutes). WASAI pays an early solver
// cost, then roughly doubles the blind fuzzer's coverage. A third series
// ablates the DBG-guided seed selection (§3.3.2).
#include <chrono>
#include <cstdio>
#include <set>
#include <vector>

#include "baselines/eosfuzzer.hpp"
#include "bench/bench_util.hpp"
#include "corpus/dataset.hpp"
#include "engine/fuzzer.hpp"

int main() {
  using namespace wasai;
  const auto n = static_cast<std::size_t>(bench::env_long("WASAI_FIG3_N", 60));
  const int iterations =
      static_cast<int>(bench::env_long("WASAI_BENCH_ITERATIONS", 48));
  const auto contracts = corpus::make_coverage_set(n, /*seed=*/2023);

  // Per-iteration cumulative branch totals across all contracts.
  std::vector<std::size_t> wasai_total(iterations, 0);
  std::vector<std::size_t> wasai_nodbg_total(iterations, 0);
  std::vector<std::size_t> eosfuzzer_total(iterations, 0);
  double wasai_secs = 0, eosfuzzer_secs = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t idx = 0;
  for (const auto& sample : contracts) {
    {
      engine::FuzzOptions o;
      o.iterations = iterations;
      o.rng_seed = 100 + idx;
      engine::Fuzzer fuzzer(sample.wasm, sample.abi, o);
      const auto report = fuzzer.run();
      for (const auto& pt : report.curve) {
        wasai_total[static_cast<std::size_t>(pt.iteration)] += pt.branches;
      }
      wasai_secs += report.curve.back().elapsed_ms / 1000.0;
    }
    {
      engine::FuzzOptions o;
      o.iterations = iterations;
      o.rng_seed = 100 + idx;
      o.use_dbg = false;
      engine::Fuzzer fuzzer(sample.wasm, sample.abi, o);
      for (const auto& pt : fuzzer.run().curve) {
        wasai_nodbg_total[static_cast<std::size_t>(pt.iteration)] +=
            pt.branches;
      }
    }
    {
      baselines::EosFuzzer fuzzer(
          sample.wasm, sample.abi,
          baselines::EosFuzzerOptions{iterations, 100 + idx});
      const auto report = fuzzer.run();
      for (const auto& pt : report.curve) {
        eosfuzzer_total[static_cast<std::size_t>(pt.iteration)] +=
            pt.branches;
      }
      eosfuzzer_secs += report.curve.back().elapsed_ms / 1000.0;
    }
    ++idx;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::printf(
      "Figure 3 (RQ1): cumulative distinct branches vs fuzzing progress\n");
  std::printf("contracts=%zu, iterations=%d, %.1fs total\n\n", contracts.size(),
              iterations, secs);
  std::printf("%-10s %12s %14s %12s %8s\n", "iteration", "WASAI",
              "WASAI(noDBG)", "EOSFuzzer", "ratio");
  for (int i = 0; i < iterations; ++i) {
    if (i % 4 != 0 && i != iterations - 1) continue;
    const double ratio =
        eosfuzzer_total[i] == 0
            ? 0.0
            : static_cast<double>(wasai_total[i]) / eosfuzzer_total[i];
    std::printf("%-10d %12zu %14zu %12zu %7.2fx\n", i, wasai_total[i],
                wasai_nodbg_total[i], eosfuzzer_total[i], ratio);
  }
  const double final_ratio =
      eosfuzzer_total.back() == 0
          ? 0.0
          : static_cast<double>(wasai_total.back()) / eosfuzzer_total.back();
  std::printf(
      "\nfinal: WASAI %zu branches in %.1fs vs EOSFuzzer %zu in %.1fs -> "
      "%.2fx  (paper: ~2x after 5 minutes)\n",
      wasai_total.back(), wasai_secs, eosfuzzer_total.back(), eosfuzzer_secs,
      final_ratio);
  return 0;
}
