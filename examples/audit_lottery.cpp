// Audit + exploit demo: a Listing-4-style lottery that draws its
// randomness from tapos block state (§2.3.4) and pays winners with an
// inline action (§2.3.5).
//
// Part 1 builds the lottery contract (as the EOSIO SDK would) and audits
// it with WASAI: both the BlockinfoDep and the Rollback findings appear.
// Part 2 actually runs the rollback exploit: an attacker contract plays
// the lottery and, inside the SAME transaction, checks its balance and
// reverts whenever it lost — a strategy that can never lose money.
//
//   ./audit_lottery
#include <cstdio>
#include <cstring>

#include "chain/token.hpp"
#include "corpus/templates.hpp"
#include "wasai/wasai.hpp"

namespace {

using namespace wasai;
using abi::eos;
using abi::eos_symbol;
using abi::name;
using abi::Name;
using chain::Action;
using chain::active;
using wasm::Instr;
using wasm::Opcode;

/// Build the lottery: transfer(from, to, quantity, memo) pays 5.0000 EOS
/// back to the player whenever (tapos_prefix * tapos_num) % 3 == 0.
corpus::Sample build_lottery() {
  corpus::ContractBuilder b;
  const auto env = b.env();

  // Packed payout action template with placeholder names; the contract
  // patches in _self (authorizer/sender) and the player at runtime.
  const Name ph_self(0xd1d2d3d4d5d6d7d8ull);
  const Name ph_from(0xe1e2e3e4e5e6e7e8ull);
  const auto packed = chain::pack_action(chain::token_transfer(
      name("eosio.token"), ph_self, ph_from, eos(5'0000), "win!"));
  std::vector<std::uint32_t> self_offsets, from_offsets;
  for (std::size_t i = 0; i + 8 <= packed.size(); ++i) {
    std::uint64_t v = 0;
    std::memcpy(&v, packed.data() + i, 8);
    if (v == ph_self.value()) self_offsets.push_back(i);
    if (v == ph_from.value()) from_offsets.push_back(i);
  }
  constexpr std::uint32_t kPayout = corpus::kScratchRegion + 256;
  b.raw().add_data(kPayout, std::vector<std::uint8_t>(packed.begin(),
                                                      packed.end()));

  std::vector<Instr> body = {
      // if (to != _self) return;  — the Listing-2 payee check (also keeps
      // the lottery from reacting to its own outgoing payouts)
      wasm::local_get(2),
      wasm::local_get(0),
      Instr(Opcode::I64Ne),
      wasm::if_(),
      Instr(Opcode::Return),
      Instr(Opcode::End),
      // if ((tapos_block_prefix() * tapos_block_num()) % 3 == 0) ...
      wasm::call(env.tapos_block_prefix),
      wasm::call(env.tapos_block_num),
      Instr(Opcode::I32Mul),
      wasm::i32_const(3),
      Instr(Opcode::I32RemU),
      Instr(Opcode::I32Eqz),
      wasm::if_(),
  };
  for (const auto off : self_offsets) {
    body.push_back(wasm::i32_const(static_cast<std::int32_t>(kPayout + off)));
    body.push_back(wasm::local_get(0));  // _self
    body.push_back(wasm::mem_store(Opcode::I64Store));
  }
  for (const auto off : from_offsets) {
    body.push_back(wasm::i32_const(static_cast<std::int32_t>(kPayout + off)));
    body.push_back(wasm::local_get(1));  // the player
    body.push_back(wasm::mem_store(Opcode::I64Store));
  }
  body.push_back(wasm::i32_const(kPayout));
  body.push_back(wasm::i32_const(static_cast<std::int32_t>(packed.size())));
  body.push_back(wasm::call(env.send_inline));  // the Rollback flaw
  body.push_back(Instr(Opcode::End));
  body.push_back(Instr(Opcode::End));

  corpus::ActionOptions opts;
  opts.require_code_match = false;
  opts.guard_code_is_token = true;  // Fake-EOS-patched, per Listing 1
  b.add_action(abi::transfer_action_def(), {}, std::move(body), opts);

  corpus::Sample sample;
  sample.abi = b.abi();
  sample.wasm = std::move(b).build_binary(corpus::DispatcherStyle::Standard);
  sample.tag = "tapos-lottery";
  return sample;
}

/// The exploit contract of §2.3.5: play and verify inside ONE transaction.
class RollbackAttacker : public chain::NativeContract {
 public:
  RollbackAttacker(Name self, Name token, Name lottery)
      : self_(self), token_(token), lottery_(lottery) {}

  void apply(chain::ApplyContext& ctx) override {
    if (ctx.action_name() == name("attack")) {
      balance_before_ =
          chain::token_balance(ctx.chain(), token_, self_, eos_symbol())
              .amount;
      // Inline #1: play the lottery (the stake leaves our balance).
      ctx.send_inline(chain::token_transfer(token_, self_, lottery_,
                                            eos(1'0000), "play"));
      // Inline #2: afterwards, audit our own balance.
      Action check;
      check.account = self_;
      check.name = name("check");
      check.authorization = {active(self_)};
      ctx.send_inline(check);
    } else if (ctx.action_name() == name("check")) {
      const auto now =
          chain::token_balance(ctx.chain(), token_, self_, eos_symbol())
              .amount;
      if (now < balance_before_) {
        // Lost: revert the whole transaction — the stake is restored.
        throw util::Trap("eosio_assert: revert to avoid loss");
      }
    }
  }

 private:
  Name self_, token_, lottery_;
  std::int64_t balance_before_ = 0;
};

}  // namespace

int main() {
  const corpus::Sample lottery = build_lottery();

  // ---- Part 1: audit -----------------------------------------------------
  std::printf("=== Part 1: WASAI audit of the tapos lottery ===\n");
  AnalysisOptions analysis;
  analysis.fuzz.iterations = 48;
  const auto result = analyze(lottery.wasm, lottery.abi, analysis);
  for (const auto& finding : result.report.findings) {
    std::printf("  [%s] %s\n", scanner::to_string(finding.type),
                finding.detail.c_str());
  }

  // ---- Part 2: exploit ----------------------------------------------------
  std::printf("\n=== Part 2: running the rollback exploit ===\n");
  chain::Controller chain;
  const Name token = name("eosio.token");
  const Name victim = name("lotto");
  const Name evil = name("evilplayer");
  chain.deploy_native(token, std::make_shared<chain::TokenContract>());
  chain.deploy_contract(victim, lottery.wasm, lottery.abi);
  chain.deploy_native(evil,
                      std::make_shared<RollbackAttacker>(evil, token, victim));
  chain.push_action(chain::token_create(token, token, eos(1'000'000'0000)));
  chain.push_action(
      chain::token_issue(token, token, evil, eos(100'0000), "stake"));
  chain.push_action(
      chain::token_issue(token, token, victim, eos(1'000'0000), "bankroll"));

  const auto balance = [&](Name who) {
    return chain::token_balance(chain, token, who, eos_symbol());
  };

  const auto start = balance(evil);
  int wins = 0, reverted = 0;
  for (int i = 0; i < 30; ++i) {
    Action attack;
    attack.account = evil;
    attack.name = name("attack");
    attack.authorization = {active(evil)};
    const auto r = chain.push_action(attack);
    if (r.success) {
      ++wins;
    } else {
      ++reverted;
    }
  }
  const auto end = balance(evil);

  std::printf("  30 rounds: %d wins kept, %d losses reverted\n", wins,
              reverted);
  std::printf("  attacker balance: %s -> %s (net %+0.4f EOS, never a loss)\n",
              start.to_string().c_str(), end.to_string().c_str(),
              (end.amount - start.amount) / 10000.0);
  std::printf(
      "\nThe patch (§2.3.5): schedule the reveal with send_deferred so the "
      "play and the payout land in different transactions.\n");
  return 0;
}
