// Coverage race: watch the concolic feedback loop overtake blind fuzzing
// on one verification-heavy contract (a single-contract Figure 3).
//
//   ./coverage_race
#include <algorithm>
#include <cstdio>
#include <string>

#include "baselines/eosfuzzer.hpp"
#include "corpus/templates.hpp"
#include "engine/fuzzer.hpp"

int main() {
  using namespace wasai;
  util::Rng rng(99);
  corpus::WildFlags flags;
  flags.fake_eos = true;
  flags.rollback = true;
  flags.miss_auth = true;
  flags.verification_depth = 4;  // four nested input checks guard the prize
  const auto contract = corpus::make_wild_sample(rng, flags);

  constexpr int kIterations = 48;
  engine::Fuzzer wasai_fuzzer(contract.wasm, contract.abi,
                              engine::FuzzOptions{.iterations = kIterations,
                                                  .rng_seed = 5});
  const auto wasai_report = wasai_fuzzer.run();

  baselines::EosFuzzer blind(contract.wasm, contract.abi,
                             baselines::EosFuzzerOptions{kIterations, 5});
  const auto blind_report = blind.run();

  std::printf("coverage race on a depth-4 verification contract\n\n");
  std::printf("%-10s %-28s %-28s\n", "iteration", "WASAI", "EOSFuzzer");
  const auto bar = [](std::size_t branches) {
    return std::string(std::min<std::size_t>(branches, 24), '#') + " " +
           std::to_string(branches);
  };
  for (int i = 0; i < kIterations; i += 4) {
    std::printf("%-10d %-28s %-28s\n", i,
                bar(wasai_report.curve[static_cast<std::size_t>(i)].branches)
                    .c_str(),
                bar(blind_report.curve[static_cast<std::size_t>(i)].branches)
                    .c_str());
  }
  std::printf("\nfinal branches: WASAI %zu vs EOSFuzzer %zu (%.2fx)\n",
              wasai_report.distinct_branches, blind_report.distinct_branches,
              static_cast<double>(wasai_report.distinct_branches) /
                  std::max<std::size_t>(blind_report.distinct_branches, 1));
  std::printf("adaptive seeds: %zu (from %zu SMT queries)\n",
              wasai_report.adaptive_seeds, wasai_report.solver_queries);
  std::printf("WASAI findings:");
  for (const auto& f : wasai_report.scan.findings) {
    std::printf(" [%s]", scanner::to_string(f.type));
  }
  std::printf("\n");
  return 0;
}
