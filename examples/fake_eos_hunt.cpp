// A miniature §4.4-style field study: sweep a population of profitable
// contracts with WASAI, report every finding, and show the
// CVE-2022-27134-style narrative for a Fake EOS hit (anyone can invoke the
// eosponser directly with counterfeit tokens and collect the service).
//
//   ./fake_eos_hunt [population-size]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "corpus/dataset.hpp"
#include "wasai/wasai.hpp"

int main(int argc, char** argv) {
  using namespace wasai;
  const std::size_t population_size =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 24;

  const auto population = corpus::make_wild_population(population_size, 7134);
  std::printf("auditing %zu profitable contracts...\n\n", population.size());

  std::map<scanner::VulnType, int> totals;
  std::size_t vulnerable = 0;
  bool narrated = false;

  for (std::size_t i = 0; i < population.size(); ++i) {
    AnalysisOptions options;
    options.fuzz.iterations = 36;
    options.fuzz.rng_seed = i + 1;
    const auto result =
        analyze(population[i].sample.wasm, population[i].sample.abi, options);
    if (!result.vulnerable()) continue;
    ++vulnerable;
    std::printf("contract #%02zu:", i);
    for (const auto& finding : result.report.findings) {
      std::printf(" [%s]", scanner::to_string(finding.type));
      ++totals[finding.type];
    }
    std::printf("\n");

    if (!narrated && result.has(scanner::VulnType::FakeEos)) {
      narrated = true;
      std::printf(
          "  ^ exploitation narrative (the CVE-2022-27134 pattern):\n"
          "    1. the attacker calls transfer@contract directly — the\n"
          "       dispatcher never checks that `code` is eosio.token;\n"
          "    2. the eosponser runs as if a real payment had arrived and\n"
          "       performs its paid service for free;\n"
          "    3. alternatively the attacker deploys fake.token, issues\n"
          "       counterfeit \"EOS\", and transfers it to the contract.\n");
    }
  }

  std::printf("\n%zu/%zu contracts vulnerable (%.1f%%)\n", vulnerable,
              population.size(), 100.0 * vulnerable / population.size());
  for (const auto& [type, count] : totals) {
    std::printf("  %-13s %d\n", scanner::to_string(type), count);
  }
  return 0;
}
