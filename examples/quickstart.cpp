// Quickstart: analyze a Wasm smart contract with WASAI.
//
// The library takes a contract binary + its ABI (the two artifacts the
// EOSIO compiler produces) and runs the full concolic-fuzzing pipeline:
// instrumentation, a local blockchain with adversary agents, trace-driven
// symbolic feedback, and the five vulnerability oracles.
//
//   ./quickstart
#include <cstdio>

#include "corpus/templates.hpp"
#include "wasai/wasai.hpp"

int main() {
  using namespace wasai;

  // A Listing-1-style contract: its eosponser accepts token transfers
  // without checking that the issuer is the real eosio.token.
  util::Rng rng(1);
  const corpus::Sample contract = corpus::make_fake_eos_sample(
      rng, /*vulnerable=*/true);

  std::printf("analyzing %zu-byte contract (%s)...\n\n",
              contract.wasm.size(), contract.tag.c_str());

  AnalysisOptions options;
  options.fuzz.iterations = 48;  // the paper fuzzes for 5 minutes; the
                                 // simulator needs only a few dozen rounds
  const AnalysisResult result = analyze(contract.wasm, contract.abi, options);

  if (result.report.found.empty()) {
    std::printf("no vulnerabilities detected\n");
  } else {
    std::printf("vulnerabilities detected:\n");
    for (const auto& finding : result.report.findings) {
      std::printf("  [%s] %s\n", scanner::to_string(finding.type),
                  finding.detail.c_str());
    }
  }

  std::printf("\nfuzzing statistics:\n");
  std::printf("  transactions executed : %zu\n", result.details.transactions);
  std::printf("  distinct branches     : %zu\n",
              result.details.distinct_branches);
  std::printf("  trace replays         : %zu\n", result.details.replays);
  std::printf("  SMT queries           : %zu\n",
              result.details.solver_queries);
  std::printf("  adaptive seeds        : %zu\n",
              result.details.adaptive_seeds);
  return 0;
}
