file(REMOVE_RECURSE
  "../bench/bench_fig3_coverage"
  "../bench/bench_fig3_coverage.pdb"
  "CMakeFiles/bench_fig3_coverage.dir/bench_fig3_coverage.cpp.o"
  "CMakeFiles/bench_fig3_coverage.dir/bench_fig3_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
