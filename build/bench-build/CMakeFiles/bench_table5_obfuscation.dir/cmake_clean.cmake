file(REMOVE_RECURSE
  "../bench/bench_table5_obfuscation"
  "../bench/bench_table5_obfuscation.pdb"
  "CMakeFiles/bench_table5_obfuscation.dir/bench_table5_obfuscation.cpp.o"
  "CMakeFiles/bench_table5_obfuscation.dir/bench_table5_obfuscation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
