file(REMOVE_RECURSE
  "../bench/bench_table6_verification"
  "../bench/bench_table6_verification.pdb"
  "CMakeFiles/bench_table6_verification.dir/bench_table6_verification.cpp.o"
  "CMakeFiles/bench_table6_verification.dir/bench_table6_verification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
