file(REMOVE_RECURSE
  "../bench/bench_ablation_calling_convention"
  "../bench/bench_ablation_calling_convention.pdb"
  "CMakeFiles/bench_ablation_calling_convention.dir/bench_ablation_calling_convention.cpp.o"
  "CMakeFiles/bench_ablation_calling_convention.dir/bench_ablation_calling_convention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_calling_convention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
