# Empty compiler generated dependencies file for bench_ablation_calling_convention.
# This may be replaced when dependencies are built.
