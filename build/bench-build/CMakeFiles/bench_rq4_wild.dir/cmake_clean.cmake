file(REMOVE_RECURSE
  "../bench/bench_rq4_wild"
  "../bench/bench_rq4_wild.pdb"
  "CMakeFiles/bench_rq4_wild.dir/bench_rq4_wild.cpp.o"
  "CMakeFiles/bench_rq4_wild.dir/bench_rq4_wild.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq4_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
