# Empty dependencies file for bench_rq4_wild.
# This may be replaced when dependencies are built.
