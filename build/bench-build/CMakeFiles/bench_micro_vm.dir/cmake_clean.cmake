file(REMOVE_RECURSE
  "../bench/bench_micro_vm"
  "../bench/bench_micro_vm.pdb"
  "CMakeFiles/bench_micro_vm.dir/bench_micro_vm.cpp.o"
  "CMakeFiles/bench_micro_vm.dir/bench_micro_vm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
