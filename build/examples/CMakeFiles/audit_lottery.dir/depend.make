# Empty dependencies file for audit_lottery.
# This may be replaced when dependencies are built.
