file(REMOVE_RECURSE
  "CMakeFiles/audit_lottery.dir/audit_lottery.cpp.o"
  "CMakeFiles/audit_lottery.dir/audit_lottery.cpp.o.d"
  "audit_lottery"
  "audit_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
