file(REMOVE_RECURSE
  "CMakeFiles/fake_eos_hunt.dir/fake_eos_hunt.cpp.o"
  "CMakeFiles/fake_eos_hunt.dir/fake_eos_hunt.cpp.o.d"
  "fake_eos_hunt"
  "fake_eos_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fake_eos_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
