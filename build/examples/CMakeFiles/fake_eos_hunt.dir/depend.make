# Empty dependencies file for fake_eos_hunt.
# This may be replaced when dependencies are built.
