# Empty compiler generated dependencies file for coverage_race.
# This may be replaced when dependencies are built.
