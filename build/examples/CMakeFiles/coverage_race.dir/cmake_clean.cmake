file(REMOVE_RECURSE
  "CMakeFiles/coverage_race.dir/coverage_race.cpp.o"
  "CMakeFiles/coverage_race.dir/coverage_race.cpp.o.d"
  "coverage_race"
  "coverage_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
