file(REMOVE_RECURSE
  "CMakeFiles/wasai_scanner.dir/facts.cpp.o"
  "CMakeFiles/wasai_scanner.dir/facts.cpp.o.d"
  "CMakeFiles/wasai_scanner.dir/scanner.cpp.o"
  "CMakeFiles/wasai_scanner.dir/scanner.cpp.o.d"
  "libwasai_scanner.a"
  "libwasai_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
