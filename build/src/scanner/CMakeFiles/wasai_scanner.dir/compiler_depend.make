# Empty compiler generated dependencies file for wasai_scanner.
# This may be replaced when dependencies are built.
