file(REMOVE_RECURSE
  "libwasai_scanner.a"
)
