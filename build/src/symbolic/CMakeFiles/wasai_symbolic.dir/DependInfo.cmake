
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/inputs.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/inputs.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/inputs.cpp.o.d"
  "/root/repo/src/symbolic/memory_model.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/memory_model.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/memory_model.cpp.o.d"
  "/root/repo/src/symbolic/ops.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/ops.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/ops.cpp.o.d"
  "/root/repo/src/symbolic/parallel_solver.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/parallel_solver.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/parallel_solver.cpp.o.d"
  "/root/repo/src/symbolic/replayer.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/replayer.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/replayer.cpp.o.d"
  "/root/repo/src/symbolic/solver.cpp" "src/symbolic/CMakeFiles/wasai_symbolic.dir/solver.cpp.o" "gcc" "src/symbolic/CMakeFiles/wasai_symbolic.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/wasai_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/wasai_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/eosvm/CMakeFiles/wasai_eosvm.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/wasai_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wasai_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/wasai_chain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
