file(REMOVE_RECURSE
  "libwasai_symbolic.a"
)
