file(REMOVE_RECURSE
  "CMakeFiles/wasai_symbolic.dir/inputs.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/inputs.cpp.o.d"
  "CMakeFiles/wasai_symbolic.dir/memory_model.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/memory_model.cpp.o.d"
  "CMakeFiles/wasai_symbolic.dir/ops.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/ops.cpp.o.d"
  "CMakeFiles/wasai_symbolic.dir/parallel_solver.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/parallel_solver.cpp.o.d"
  "CMakeFiles/wasai_symbolic.dir/replayer.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/replayer.cpp.o.d"
  "CMakeFiles/wasai_symbolic.dir/solver.cpp.o"
  "CMakeFiles/wasai_symbolic.dir/solver.cpp.o.d"
  "libwasai_symbolic.a"
  "libwasai_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
