# Empty compiler generated dependencies file for wasai_symbolic.
# This may be replaced when dependencies are built.
