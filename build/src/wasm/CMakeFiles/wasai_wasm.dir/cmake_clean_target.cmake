file(REMOVE_RECURSE
  "libwasai_wasm.a"
)
