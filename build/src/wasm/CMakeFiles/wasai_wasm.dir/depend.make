# Empty dependencies file for wasai_wasm.
# This may be replaced when dependencies are built.
