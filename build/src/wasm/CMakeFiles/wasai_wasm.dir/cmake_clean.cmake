file(REMOVE_RECURSE
  "CMakeFiles/wasai_wasm.dir/builder.cpp.o"
  "CMakeFiles/wasai_wasm.dir/builder.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/control.cpp.o"
  "CMakeFiles/wasai_wasm.dir/control.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/decoder.cpp.o"
  "CMakeFiles/wasai_wasm.dir/decoder.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/encoder.cpp.o"
  "CMakeFiles/wasai_wasm.dir/encoder.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/module.cpp.o"
  "CMakeFiles/wasai_wasm.dir/module.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/opcode.cpp.o"
  "CMakeFiles/wasai_wasm.dir/opcode.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/printer.cpp.o"
  "CMakeFiles/wasai_wasm.dir/printer.cpp.o.d"
  "CMakeFiles/wasai_wasm.dir/validator.cpp.o"
  "CMakeFiles/wasai_wasm.dir/validator.cpp.o.d"
  "libwasai_wasm.a"
  "libwasai_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
