file(REMOVE_RECURSE
  "libwasai_util.a"
)
