file(REMOVE_RECURSE
  "CMakeFiles/wasai_util.dir/hex.cpp.o"
  "CMakeFiles/wasai_util.dir/hex.cpp.o.d"
  "CMakeFiles/wasai_util.dir/json.cpp.o"
  "CMakeFiles/wasai_util.dir/json.cpp.o.d"
  "CMakeFiles/wasai_util.dir/leb128.cpp.o"
  "CMakeFiles/wasai_util.dir/leb128.cpp.o.d"
  "CMakeFiles/wasai_util.dir/rng.cpp.o"
  "CMakeFiles/wasai_util.dir/rng.cpp.o.d"
  "libwasai_util.a"
  "libwasai_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
