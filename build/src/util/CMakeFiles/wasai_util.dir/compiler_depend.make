# Empty compiler generated dependencies file for wasai_util.
# This may be replaced when dependencies are built.
