# Empty dependencies file for wasai_chain.
# This may be replaced when dependencies are built.
