
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/action.cpp" "src/chain/CMakeFiles/wasai_chain.dir/action.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/action.cpp.o.d"
  "/root/repo/src/chain/apply_context.cpp" "src/chain/CMakeFiles/wasai_chain.dir/apply_context.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/apply_context.cpp.o.d"
  "/root/repo/src/chain/chain_host.cpp" "src/chain/CMakeFiles/wasai_chain.dir/chain_host.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/chain_host.cpp.o.d"
  "/root/repo/src/chain/controller.cpp" "src/chain/CMakeFiles/wasai_chain.dir/controller.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/controller.cpp.o.d"
  "/root/repo/src/chain/database.cpp" "src/chain/CMakeFiles/wasai_chain.dir/database.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/database.cpp.o.d"
  "/root/repo/src/chain/token.cpp" "src/chain/CMakeFiles/wasai_chain.dir/token.cpp.o" "gcc" "src/chain/CMakeFiles/wasai_chain.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/wasai_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/eosvm/CMakeFiles/wasai_eosvm.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/wasai_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wasai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
