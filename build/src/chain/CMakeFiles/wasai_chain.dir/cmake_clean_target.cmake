file(REMOVE_RECURSE
  "libwasai_chain.a"
)
