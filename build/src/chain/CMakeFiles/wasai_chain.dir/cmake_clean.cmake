file(REMOVE_RECURSE
  "CMakeFiles/wasai_chain.dir/action.cpp.o"
  "CMakeFiles/wasai_chain.dir/action.cpp.o.d"
  "CMakeFiles/wasai_chain.dir/apply_context.cpp.o"
  "CMakeFiles/wasai_chain.dir/apply_context.cpp.o.d"
  "CMakeFiles/wasai_chain.dir/chain_host.cpp.o"
  "CMakeFiles/wasai_chain.dir/chain_host.cpp.o.d"
  "CMakeFiles/wasai_chain.dir/controller.cpp.o"
  "CMakeFiles/wasai_chain.dir/controller.cpp.o.d"
  "CMakeFiles/wasai_chain.dir/database.cpp.o"
  "CMakeFiles/wasai_chain.dir/database.cpp.o.d"
  "CMakeFiles/wasai_chain.dir/token.cpp.o"
  "CMakeFiles/wasai_chain.dir/token.cpp.o.d"
  "libwasai_chain.a"
  "libwasai_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
