# Empty dependencies file for wasai_eosvm.
# This may be replaced when dependencies are built.
