file(REMOVE_RECURSE
  "libwasai_eosvm.a"
)
