file(REMOVE_RECURSE
  "CMakeFiles/wasai_eosvm.dir/instance.cpp.o"
  "CMakeFiles/wasai_eosvm.dir/instance.cpp.o.d"
  "CMakeFiles/wasai_eosvm.dir/vm.cpp.o"
  "CMakeFiles/wasai_eosvm.dir/vm.cpp.o.d"
  "libwasai_eosvm.a"
  "libwasai_eosvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_eosvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
