# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("wasm")
subdirs("eosvm")
subdirs("abi")
subdirs("chain")
subdirs("instrument")
subdirs("symbolic")
subdirs("engine")
subdirs("scanner")
subdirs("corpus")
subdirs("baselines")
subdirs("wasai")
