# Empty compiler generated dependencies file for wasai_core.
# This may be replaced when dependencies are built.
