file(REMOVE_RECURSE
  "libwasai_core.a"
)
