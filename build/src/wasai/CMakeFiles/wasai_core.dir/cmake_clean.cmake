file(REMOVE_RECURSE
  "CMakeFiles/wasai_core.dir/wasai.cpp.o"
  "CMakeFiles/wasai_core.dir/wasai.cpp.o.d"
  "libwasai_core.a"
  "libwasai_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
