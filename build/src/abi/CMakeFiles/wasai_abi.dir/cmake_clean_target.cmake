file(REMOVE_RECURSE
  "libwasai_abi.a"
)
