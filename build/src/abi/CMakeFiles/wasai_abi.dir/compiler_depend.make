# Empty compiler generated dependencies file for wasai_abi.
# This may be replaced when dependencies are built.
