file(REMOVE_RECURSE
  "CMakeFiles/wasai_abi.dir/abi_json.cpp.o"
  "CMakeFiles/wasai_abi.dir/abi_json.cpp.o.d"
  "CMakeFiles/wasai_abi.dir/asset.cpp.o"
  "CMakeFiles/wasai_abi.dir/asset.cpp.o.d"
  "CMakeFiles/wasai_abi.dir/name.cpp.o"
  "CMakeFiles/wasai_abi.dir/name.cpp.o.d"
  "CMakeFiles/wasai_abi.dir/serializer.cpp.o"
  "CMakeFiles/wasai_abi.dir/serializer.cpp.o.d"
  "libwasai_abi.a"
  "libwasai_abi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_abi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
