
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abi/abi_json.cpp" "src/abi/CMakeFiles/wasai_abi.dir/abi_json.cpp.o" "gcc" "src/abi/CMakeFiles/wasai_abi.dir/abi_json.cpp.o.d"
  "/root/repo/src/abi/asset.cpp" "src/abi/CMakeFiles/wasai_abi.dir/asset.cpp.o" "gcc" "src/abi/CMakeFiles/wasai_abi.dir/asset.cpp.o.d"
  "/root/repo/src/abi/name.cpp" "src/abi/CMakeFiles/wasai_abi.dir/name.cpp.o" "gcc" "src/abi/CMakeFiles/wasai_abi.dir/name.cpp.o.d"
  "/root/repo/src/abi/serializer.cpp" "src/abi/CMakeFiles/wasai_abi.dir/serializer.cpp.o" "gcc" "src/abi/CMakeFiles/wasai_abi.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wasai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
