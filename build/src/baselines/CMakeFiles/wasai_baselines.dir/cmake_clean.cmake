file(REMOVE_RECURSE
  "CMakeFiles/wasai_baselines.dir/eosafe.cpp.o"
  "CMakeFiles/wasai_baselines.dir/eosafe.cpp.o.d"
  "CMakeFiles/wasai_baselines.dir/eosafe_memory.cpp.o"
  "CMakeFiles/wasai_baselines.dir/eosafe_memory.cpp.o.d"
  "CMakeFiles/wasai_baselines.dir/eosfuzzer.cpp.o"
  "CMakeFiles/wasai_baselines.dir/eosfuzzer.cpp.o.d"
  "libwasai_baselines.a"
  "libwasai_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
