file(REMOVE_RECURSE
  "libwasai_baselines.a"
)
