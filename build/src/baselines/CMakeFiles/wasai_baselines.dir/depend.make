# Empty dependencies file for wasai_baselines.
# This may be replaced when dependencies are built.
