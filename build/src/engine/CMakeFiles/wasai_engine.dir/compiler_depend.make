# Empty compiler generated dependencies file for wasai_engine.
# This may be replaced when dependencies are built.
