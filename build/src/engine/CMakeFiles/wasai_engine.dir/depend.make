# Empty dependencies file for wasai_engine.
# This may be replaced when dependencies are built.
