file(REMOVE_RECURSE
  "CMakeFiles/wasai_engine.dir/dbg.cpp.o"
  "CMakeFiles/wasai_engine.dir/dbg.cpp.o.d"
  "CMakeFiles/wasai_engine.dir/fuzzer.cpp.o"
  "CMakeFiles/wasai_engine.dir/fuzzer.cpp.o.d"
  "CMakeFiles/wasai_engine.dir/harness.cpp.o"
  "CMakeFiles/wasai_engine.dir/harness.cpp.o.d"
  "CMakeFiles/wasai_engine.dir/mutator.cpp.o"
  "CMakeFiles/wasai_engine.dir/mutator.cpp.o.d"
  "libwasai_engine.a"
  "libwasai_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
