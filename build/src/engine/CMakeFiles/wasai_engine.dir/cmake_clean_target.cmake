file(REMOVE_RECURSE
  "libwasai_engine.a"
)
