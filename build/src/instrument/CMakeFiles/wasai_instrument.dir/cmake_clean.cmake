file(REMOVE_RECURSE
  "CMakeFiles/wasai_instrument.dir/hooks.cpp.o"
  "CMakeFiles/wasai_instrument.dir/hooks.cpp.o.d"
  "CMakeFiles/wasai_instrument.dir/instrumenter.cpp.o"
  "CMakeFiles/wasai_instrument.dir/instrumenter.cpp.o.d"
  "CMakeFiles/wasai_instrument.dir/trace_io.cpp.o"
  "CMakeFiles/wasai_instrument.dir/trace_io.cpp.o.d"
  "CMakeFiles/wasai_instrument.dir/trace_sink.cpp.o"
  "CMakeFiles/wasai_instrument.dir/trace_sink.cpp.o.d"
  "libwasai_instrument.a"
  "libwasai_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
