# Empty dependencies file for wasai_instrument.
# This may be replaced when dependencies are built.
