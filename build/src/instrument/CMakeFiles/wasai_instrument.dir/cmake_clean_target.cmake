file(REMOVE_RECURSE
  "libwasai_instrument.a"
)
