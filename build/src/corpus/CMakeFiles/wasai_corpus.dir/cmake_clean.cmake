file(REMOVE_RECURSE
  "CMakeFiles/wasai_corpus.dir/contract_builder.cpp.o"
  "CMakeFiles/wasai_corpus.dir/contract_builder.cpp.o.d"
  "CMakeFiles/wasai_corpus.dir/dataset.cpp.o"
  "CMakeFiles/wasai_corpus.dir/dataset.cpp.o.d"
  "CMakeFiles/wasai_corpus.dir/obfuscator.cpp.o"
  "CMakeFiles/wasai_corpus.dir/obfuscator.cpp.o.d"
  "CMakeFiles/wasai_corpus.dir/templates.cpp.o"
  "CMakeFiles/wasai_corpus.dir/templates.cpp.o.d"
  "libwasai_corpus.a"
  "libwasai_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
