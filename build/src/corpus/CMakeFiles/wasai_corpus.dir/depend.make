# Empty dependencies file for wasai_corpus.
# This may be replaced when dependencies are built.
