file(REMOVE_RECURSE
  "libwasai_corpus.a"
)
