# Empty dependencies file for chain_host_test.
# This may be replaced when dependencies are built.
