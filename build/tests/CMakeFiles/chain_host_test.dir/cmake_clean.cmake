file(REMOVE_RECURSE
  "CMakeFiles/chain_host_test.dir/chain_host_test.cpp.o"
  "CMakeFiles/chain_host_test.dir/chain_host_test.cpp.o.d"
  "chain_host_test"
  "chain_host_test.pdb"
  "chain_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
