file(REMOVE_RECURSE
  "CMakeFiles/wasm_codec_test.dir/wasm_codec_test.cpp.o"
  "CMakeFiles/wasm_codec_test.dir/wasm_codec_test.cpp.o.d"
  "wasm_codec_test"
  "wasm_codec_test.pdb"
  "wasm_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
