# Empty compiler generated dependencies file for wasm_codec_test.
# This may be replaced when dependencies are built.
