file(REMOVE_RECURSE
  "CMakeFiles/symbolic_edge_test.dir/symbolic_edge_test.cpp.o"
  "CMakeFiles/symbolic_edge_test.dir/symbolic_edge_test.cpp.o.d"
  "symbolic_edge_test"
  "symbolic_edge_test.pdb"
  "symbolic_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
