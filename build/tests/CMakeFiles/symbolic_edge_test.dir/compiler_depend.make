# Empty compiler generated dependencies file for symbolic_edge_test.
# This may be replaced when dependencies are built.
