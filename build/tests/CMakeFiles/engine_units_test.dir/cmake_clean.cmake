file(REMOVE_RECURSE
  "CMakeFiles/engine_units_test.dir/engine_units_test.cpp.o"
  "CMakeFiles/engine_units_test.dir/engine_units_test.cpp.o.d"
  "engine_units_test"
  "engine_units_test.pdb"
  "engine_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
