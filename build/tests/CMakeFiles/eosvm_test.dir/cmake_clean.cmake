file(REMOVE_RECURSE
  "CMakeFiles/eosvm_test.dir/eosvm_test.cpp.o"
  "CMakeFiles/eosvm_test.dir/eosvm_test.cpp.o.d"
  "eosvm_test"
  "eosvm_test.pdb"
  "eosvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eosvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
