# Empty compiler generated dependencies file for eosvm_test.
# This may be replaced when dependencies are built.
