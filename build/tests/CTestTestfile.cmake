# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_codec_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_validator_test[1]_include.cmake")
include("/root/repo/build/tests/eosvm_test[1]_include.cmake")
include("/root/repo/build/tests/abi_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/scanner_test[1]_include.cmake")
include("/root/repo/build/tests/engine_units_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_edge_test[1]_include.cmake")
include("/root/repo/build/tests/chain_host_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
