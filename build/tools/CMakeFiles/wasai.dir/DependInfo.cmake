
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/wasai_cli.cpp" "tools/CMakeFiles/wasai.dir/wasai_cli.cpp.o" "gcc" "tools/CMakeFiles/wasai.dir/wasai_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasai/CMakeFiles/wasai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/wasai_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/wasai_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/wasai_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/wasai_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/wasai_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/wasai_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/eosvm/CMakeFiles/wasai_eosvm.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/wasai_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/wasai_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wasai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
