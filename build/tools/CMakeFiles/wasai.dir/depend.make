# Empty dependencies file for wasai.
# This may be replaced when dependencies are built.
