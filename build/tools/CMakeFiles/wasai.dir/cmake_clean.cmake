file(REMOVE_RECURSE
  "CMakeFiles/wasai.dir/wasai_cli.cpp.o"
  "CMakeFiles/wasai.dir/wasai_cli.cpp.o.d"
  "wasai"
  "wasai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
