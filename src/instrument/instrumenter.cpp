#include "instrument/instrumenter.hpp"

#include <map>

#include "wasm/validator.hpp"

namespace wasai::instrument {

namespace {

using wasm::FuncType;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;
using wasm::OpClass;
using wasm::ValType;

constexpr std::uint32_t kNumHooks = static_cast<std::uint32_t>(HookId::Count);

/// Per-function rewriting state.
class FunctionRewriter {
 public:
  FunctionRewriter(const Module& original, const wasm::Function& fn,
                   const wasm::FunctionTyping& typing,
                   std::uint32_t original_func_index,
                   std::uint32_t old_func_imports, std::uint32_t hook_base,
                   std::uint32_t& site_counter, SiteTable& sites)
      : original_(original),
        fn_(fn),
        typing_(typing),
        original_func_index_(original_func_index),
        old_func_imports_(old_func_imports),
        hook_base_(hook_base),
        site_counter_(site_counter),
        sites_(sites) {
    const FuncType& ft = original.types.at(fn.type_index);
    next_local_ = static_cast<std::uint32_t>(ft.params.size() +
                                             fn.locals.size());
    out_.type_index = fn.type_index;
    out_.locals = fn.locals;
    out_.name = fn.name;
  }

  wasm::Function run() {
    // function_begin hook: labels entry into this function's body.
    emit_hook1(HookId::FuncBegin,
               wasm::i32_const(static_cast<std::int32_t>(
                   original_func_index_)));

    for (std::uint32_t idx = 0; idx < fn_.body.size(); ++idx) {
      const Instr& ins = fn_.body[idx];
      const std::uint32_t site = site_counter_++;
      sites_.sites.push_back(SiteInfo{original_func_index_, idx});
      emit_pre_hook(ins, typing_.per_instr[idx], site);
      emit_original(ins);
      emit_post_hook(ins, typing_.per_instr[idx], site);
    }
    return std::move(out_);
  }

 private:
  /// Scratch local of the given type; `slot` separates concurrently live
  /// scratches of the same type.
  std::uint32_t scratch(ValType type, int slot) {
    const auto key = std::make_pair(type, slot);
    const auto it = scratch_.find(key);
    if (it != scratch_.end()) return it->second;
    out_.locals.push_back(type);
    const std::uint32_t idx = next_local_++;
    scratch_.emplace(key, idx);
    return idx;
  }

  std::uint32_t hook_index(HookId id) const {
    return hook_base_ + static_cast<std::uint32_t>(id);
  }

  void emit(Instr ins) { out_.body.push_back(std::move(ins)); }

  /// hook(site): i32.const site; call hook
  void emit_hook0(HookId id, std::uint32_t site) {
    emit(wasm::i32_const(static_cast<std::int32_t>(site)));
    emit(wasm::call(hook_index(id)));
  }

  /// hook(arg): <arg>; call hook — used for func_begin.
  void emit_hook1(HookId id, Instr arg) {
    emit(std::move(arg));
    emit(wasm::call(hook_index(id)));
  }

  /// Capture the top-of-stack value (type T) without disturbing it, then
  /// call hook(site, value). Uses the local.tee trick.
  void emit_capture1(HookId id, std::uint32_t site, ValType type) {
    const std::uint32_t s = scratch(type, 0);
    emit(wasm::local_tee(s));
    emit(wasm::i32_const(static_cast<std::int32_t>(site)));
    emit(wasm::local_get(s));
    emit(wasm::call(hook_index(id)));
  }

  /// Capture the top two values (value of type T on top, i32 address
  /// below), restore them, then call hook(site, addr, value).
  void emit_capture_store(HookId id, std::uint32_t site, ValType value_type) {
    const std::uint32_t sv = scratch(value_type, 0);
    const std::uint32_t sa =
        scratch(ValType::I32, value_type == ValType::I32 ? 1 : 0);
    emit(wasm::local_set(sv));
    emit(wasm::local_set(sa));
    emit(wasm::local_get(sa));
    emit(wasm::local_get(sv));
    emit(wasm::i32_const(static_cast<std::int32_t>(site)));
    emit(wasm::local_get(sa));
    emit(wasm::local_get(sv));
    emit(wasm::call(hook_index(id)));
  }

  static HookId store_hook(ValType value_type) {
    switch (value_type) {
      case ValType::I32:
        return HookId::SiteII;
      case ValType::I64:
        return HookId::SiteIL;
      case ValType::F32:
        return HookId::SiteIF;
      case ValType::F64:
        return HookId::SiteID;
    }
    return HookId::SiteII;
  }

  static HookId arg_hook(ValType type) {
    switch (type) {
      case ValType::I32:
        return HookId::ArgI;
      case ValType::I64:
        return HookId::ArgL;
      case ValType::F32:
        return HookId::ArgF;
      case ValType::F64:
        return HookId::ArgD;
    }
    return HookId::ArgI;
  }

  static HookId post_hook(ValType result_type) {
    switch (result_type) {
      case ValType::I32:
        return HookId::PostI;
      case ValType::I64:
        return HookId::PostL;
      case ValType::F32:
        return HookId::PostF;
      case ValType::F64:
        return HookId::PostD;
    }
    return HookId::PostI;
  }

  void emit_pre_hook(const Instr& ins, const wasm::InstrOperands& ops,
                     std::uint32_t site) {
    // In provably dead code operand types are unreliable; a bare event is
    // enough (it never executes anyway, but must stay valid).
    if (ops.unreachable) {
      emit_hook0(HookId::SiteV, site);
      return;
    }
    const auto& info = wasm::op_info(ins.op);
    switch (ins.op) {
      case Opcode::If:
      case Opcode::BrIf:
      case Opcode::BrTable:
      case Opcode::Select:
        // Condition / table index / select condition: top i32.
        emit_capture1(HookId::SiteI, site, ValType::I32);
        return;
      case Opcode::Call:
        // call_pre: duplicate the invocation parameters (Table 1) for calls
        // into defined functions — the replayer needs them to seed the
        // action function's Local section without emulating the dispatcher.
        if (ins.a >= old_func_imports_) {
          emit_call_args(site, original_.function_type(ins.a).params, false);
        }
        emit_hook0(HookId::CallD, site);
        return;
      case Opcode::CallIndirect:
        emit_call_args(site, original_.types.at(ins.a).params, true);
        return;
      // The Fake Notif guard oracle (§3.5) inspects the two operands of
      // executed i64 equality comparisons, so those are captured too.
      case Opcode::I64Eq:
      case Opcode::I64Ne:
        emit_capture_pair(HookId::SiteLL, site, ValType::I64, ValType::I64);
        return;
      default:
        break;
    }
    switch (info.cls) {
      case OpClass::Load:
        emit_capture1(HookId::SiteI, site, ValType::I32);  // address
        return;
      case OpClass::Store:
        emit_capture_store(store_hook(info.operand), site, info.operand);
        return;
      default:
        emit_hook0(HookId::SiteV, site);
        return;
    }
  }

  /// Capture the arguments of an upcoming call (and, for call_indirect, the
  /// element index on top): pop everything into scratches, restore, then
  /// emit one arg event per parameter (in declaration order) and the call
  /// event itself.
  void emit_call_args(std::uint32_t site, const std::vector<ValType>& params,
                      bool indirect) {
    const std::uint32_t n = static_cast<std::uint32_t>(params.size());
    const std::uint32_t elem_scratch =
        indirect ? scratch(ValType::I32, 100) : 0;
    if (indirect) emit(wasm::local_set(elem_scratch));
    std::vector<std::uint32_t> slots(n);
    for (std::uint32_t k = n; k-- > 0;) {
      slots[k] = scratch(params[k], static_cast<int>(k) + 2);
      emit(wasm::local_set(slots[k]));
    }
    for (std::uint32_t k = 0; k < n; ++k) emit(wasm::local_get(slots[k]));
    if (indirect) emit(wasm::local_get(elem_scratch));
    for (std::uint32_t k = 0; k < n; ++k) {
      emit(wasm::i32_const(static_cast<std::int32_t>(site)));
      emit(wasm::local_get(slots[k]));
      emit(wasm::call(hook_index(arg_hook(params[k]))));
    }
    if (indirect) {
      emit(wasm::i32_const(static_cast<std::int32_t>(site)));
      emit(wasm::local_get(elem_scratch));
      emit(wasm::call(hook_index(HookId::CallI)));
    }
  }

  /// Capture the top two stack values (b on top of a) without type overlap
  /// concerns, restore, call hook(site, a, b).
  void emit_capture_pair(HookId id, std::uint32_t site, ValType type_a,
                         ValType type_b) {
    const std::uint32_t sb = scratch(type_b, 0);
    const std::uint32_t sa = scratch(type_a, type_a == type_b ? 1 : 0);
    emit(wasm::local_set(sb));
    emit(wasm::local_set(sa));
    emit(wasm::local_get(sa));
    emit(wasm::local_get(sb));
    emit(wasm::i32_const(static_cast<std::int32_t>(site)));
    emit(wasm::local_get(sa));
    emit(wasm::local_get(sb));
    emit(wasm::call(hook_index(id)));
  }

  void emit_original(const Instr& ins) {
    Instr copy = ins;
    if (ins.op == Opcode::Call) {
      // Remap defined-function targets past the added hook imports.
      if (copy.a >= old_func_imports_) copy.a += kNumHooks;
    }
    emit(std::move(copy));
  }

  void emit_post_hook(const Instr& ins, const wasm::InstrOperands& ops,
                      std::uint32_t site) {
    if (ins.op != Opcode::Call && ins.op != Opcode::CallIndirect) return;
    if (ops.unreachable) return;
    const FuncType& callee = ins.op == Opcode::Call
                                 ? original_.function_type(ins.a)
                                 : original_.types.at(ins.a);
    if (callee.results.empty()) {
      emit_hook0(HookId::PostV, site);
    } else {
      emit_capture1(post_hook(callee.results[0]), site, callee.results[0]);
    }
  }

  const Module& original_;
  const wasm::Function& fn_;
  const wasm::FunctionTyping& typing_;
  std::uint32_t original_func_index_;
  std::uint32_t old_func_imports_;
  std::uint32_t hook_base_;
  std::uint32_t& site_counter_;
  SiteTable& sites_;

  wasm::Function out_;
  std::map<std::pair<ValType, int>, std::uint32_t> scratch_;
  std::uint32_t next_local_ = 0;
};

}  // namespace

Instrumented instrument(const Module& original, obs::Obs* obs) {
  const obs::Span span(obs, obs::span_name::kInstrument);
  for (const auto& imp : original.imports) {
    if (imp.module == kHookModule) {
      throw util::ValidationError("module already instrumented");
    }
  }
  const wasm::ValidationResult typing = wasm::validate(original);

  Instrumented out;
  Module& m = out.module;
  m = original;  // copy, then rewrite in place

  const std::uint32_t old_func_imports = original.num_imported_functions();
  const std::uint32_t hook_base = old_func_imports;

  // Register hook imports (after the original imports, so original import
  // indices are stable; defined functions shift by kNumHooks).
  for (const auto& def : hook_table()) {
    wasm::Import imp;
    imp.module = std::string(kHookModule);
    imp.field = std::string(def.name);
    imp.kind = wasm::ExternalKind::Function;
    imp.type_index = m.type_index_for(def.type);
    m.imports.push_back(std::move(imp));
  }

  // Remap all function-index references outside code bodies.
  const auto remap = [&](std::uint32_t idx) {
    return idx < old_func_imports ? idx : idx + kNumHooks;
  };
  for (auto& e : m.exports) {
    if (e.kind == wasm::ExternalKind::Function) e.index = remap(e.index);
  }
  for (auto& seg : m.elements) {
    for (auto& f : seg.func_indices) f = remap(f);
  }
  if (m.start) m.start = remap(*m.start);

  // Rewrite every function body.
  std::uint32_t site_counter = 0;
  for (std::uint32_t d = 0; d < original.functions.size(); ++d) {
    FunctionRewriter rewriter(original, original.functions[d],
                              typing.functions[d], old_func_imports + d,
                              old_func_imports, hook_base, site_counter,
                              out.sites);
    m.functions[d] = rewriter.run();
  }

  wasm::validate(m);  // the rewrite must preserve validity
  if (obs != nullptr) {
    obs->count("instrument.modules");
    obs->count("instrument.sites", out.sites.size());
  }
  return out;
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Instr:
      return "instr";
    case EventKind::CallDirect:
      return "call";
    case EventKind::CallIndirect:
      return "call_indirect";
    case EventKind::CallArg:
      return "call_arg";
    case EventKind::CallPost:
      return "call_post";
    case EventKind::FunctionBegin:
      return "function_begin";
  }
  return "?";
}

}  // namespace wasai::instrument
