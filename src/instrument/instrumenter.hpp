// Contract-level instrumentation (§3.3.1): rewrites a Wasm module so that a
// low-level hook runs before every original instruction, duplicating the
// runtime operands the symbolic replayer needs (memory addresses, branch
// conditions, indirect-call targets, host-call returns) via scratch locals.
#pragma once

#include "instrument/hooks.hpp"
#include "instrument/trace.hpp"
#include "obs/obs.hpp"
#include "wasm/module.hpp"

namespace wasai::instrument {

struct Instrumented {
  wasm::Module module;  // hook-injected module (deploy this)
  SiteTable sites;      // site id -> original instruction
};

/// Instrument `original`. The returned module imports the full hook set
/// from the "wasai" module; all function indices are remapped accordingly.
/// Throws util::ValidationError if the module is invalid or already
/// imports from "wasai". A non-null `obs` wraps the rewrite in an
/// `instrument` phase span and counts injected sites.
Instrumented instrument(const wasm::Module& original,
                        obs::Obs* obs = nullptr);

}  // namespace wasai::instrument
