// The low-level hook import set ("wasai" module) the instrumenter injects —
// our native equivalent of the Wasabi hooks extended with EOSVM library
// printing APIs (§3.3.1, Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "wasm/types.hpp"

namespace wasai::instrument {

enum class HookId : std::uint32_t {
  SiteV,    // site_v(site)                  bare instruction event
  SiteI,    // site_i(site, i32)             one captured i32 operand
  SiteII,   // site_ii(site, i32, i32)       store: (addr, i32 value)
  SiteIL,   // site_il(site, i32, i64)       store: (addr, i64 value)
  SiteIF,   // site_if(site, i32, f32)       store: (addr, f32 value)
  SiteID,   // site_id(site, i32, f64)       store: (addr, f64 value)
  SiteLL,   // site_ll(site, i64, i64)       i64.eq/ne operand pair (oracle)
  CallD,    // call_d(site)                  direct call
  CallI,    // call_i(site, elem)            indirect call + element index
  ArgI,     // arg_i(site, i32)              one invocation argument (call_pre)
  ArgL,     // arg_l(site, i64)
  ArgF,     // arg_f(site, f32)
  ArgD,     // arg_d(site, f64)
  PostV,    // post_v(site)                  call returned, no value
  PostI,    // post_i(site, i32)
  PostL,    // post_l(site, i64)
  PostF,    // post_f(site, f32)
  PostD,    // post_d(site, f64)
  FuncBegin,  // func_begin(func_index)
  Count,
};

struct HookDef {
  std::string_view name;
  HookId id;
  wasm::FuncType type;
};

/// Definition table for all hooks (import order == HookId order).
const std::array<HookDef, static_cast<std::size_t>(HookId::Count)>&
hook_table();

/// Module name the hooks are imported from.
inline constexpr std::string_view kHookModule = "wasai";

}  // namespace wasai::instrument
