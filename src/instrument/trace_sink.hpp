// Collects trace events emitted by the injected hooks, segmented per action
// execution — the in-memory equivalent of the per-thread trace files WASAI
// redirects on apply_context::finalize_trace() (§3.3.1).
//
// Storage is arena-style: action slots and their event vectors are recycled
// across clear() calls, so a steady-state fuzzing iteration appends events
// into already-allocated memory. Hook events arrive either through the
// host-binding path (call_host) or, on the VM fast path, directly through
// vm::HookSink::on_hook — both feed the same record() and are observably
// identical.
#pragma once

#include <span>
#include <vector>

#include "chain/observer.hpp"
#include "instrument/hooks.hpp"
#include "instrument/trace.hpp"

namespace wasai::instrument {

class TraceSink : public vm::HostInterface,
                  public vm::HookSink,
                  public chain::ExecutionObserver {
 public:
  // ---- vm::HostInterface (receives the "wasai" hook calls) -------------
  std::uint32_t bind(std::string_view module, std::string_view field,
                     const wasm::FuncType& type) override;
  std::optional<vm::Value> call_host(std::uint32_t binding,
                                     std::span<const vm::Value> args,
                                     vm::Instance& instance) override;
  vm::HookSink* hook_sink(std::uint32_t binding,
                          std::uint32_t& sink_binding) override {
    sink_binding = binding;
    return this;
  }

  // ---- vm::HookSink (fast-path direct dispatch) ------------------------
  void on_hook(std::uint32_t binding, const vm::Value* args,
               std::size_t nargs) override;

  // ---- chain::ExecutionObserver ----------------------------------------
  void on_action_begin(abi::Name receiver, abi::Name code,
                       abi::Name action) override;
  void on_action_end(bool ok) override;
  vm::HostInterface* hook_host() override { return this; }

  // ---- collected traces -------------------------------------------------
  [[nodiscard]] std::span<const ActionTrace> actions() const {
    return {actions_.data(), live_};
  }
  /// Traces of a specific receiver only (the fuzzing target) — auxiliary
  /// contracts produce no events but do produce action segments.
  [[nodiscard]] std::vector<const ActionTrace*> actions_of(
      abi::Name receiver) const;

  /// Drop all traces but keep the slot and event allocations for reuse.
  void clear();

  /// Total events captured since the last clear().
  [[nodiscard]] std::size_t event_count() const;

 private:
  std::vector<ActionTrace> actions_;  // slot pool; first live_ are current
  std::size_t live_ = 0;
  std::vector<std::size_t> open_;  // stack of indices into actions_
};

}  // namespace wasai::instrument
