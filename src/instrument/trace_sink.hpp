// Collects trace events emitted by the injected hooks, segmented per action
// execution — the in-memory equivalent of the per-thread trace files WASAI
// redirects on apply_context::finalize_trace() (§3.3.1).
#pragma once

#include <vector>

#include "chain/observer.hpp"
#include "instrument/hooks.hpp"
#include "instrument/trace.hpp"

namespace wasai::instrument {

class TraceSink : public vm::HostInterface, public chain::ExecutionObserver {
 public:
  // ---- vm::HostInterface (receives the "wasai" hook calls) -------------
  std::uint32_t bind(std::string_view module, std::string_view field,
                     const wasm::FuncType& type) override;
  std::optional<vm::Value> call_host(std::uint32_t binding,
                                     std::span<const vm::Value> args,
                                     vm::Instance& instance) override;

  // ---- chain::ExecutionObserver ----------------------------------------
  void on_action_begin(abi::Name receiver, abi::Name code,
                       abi::Name action) override;
  void on_action_end(bool ok) override;
  vm::HostInterface* hook_host() override { return this; }

  // ---- collected traces -------------------------------------------------
  [[nodiscard]] const std::vector<ActionTrace>& actions() const {
    return actions_;
  }
  /// Traces of a specific receiver only (the fuzzing target) — auxiliary
  /// contracts produce no events but do produce action segments.
  [[nodiscard]] std::vector<const ActionTrace*> actions_of(
      abi::Name receiver) const;

  void clear();

  /// Total events captured since the last clear().
  [[nodiscard]] std::size_t event_count() const;

 private:
  std::vector<ActionTrace> actions_;
  std::vector<std::size_t> open_;  // stack of indices into actions_
};

}  // namespace wasai::instrument
