#include "instrument/trace_sink.hpp"

#include "util/error.hpp"

namespace wasai::instrument {

std::uint32_t TraceSink::bind(std::string_view module, std::string_view field,
                              const wasm::FuncType& type) {
  if (module != kHookModule) {
    throw util::ValidationError("TraceSink cannot bind " +
                                std::string(module) + "." +
                                std::string(field));
  }
  for (const auto& def : hook_table()) {
    if (def.name == field) {
      if (def.type != type) {
        throw util::ValidationError("hook signature mismatch for " +
                                    std::string(field));
      }
      return static_cast<std::uint32_t>(def.id);
    }
  }
  throw util::ValidationError("unknown hook " + std::string(field));
}

void TraceSink::on_hook(std::uint32_t binding, const vm::Value* args,
                        std::size_t) {
  if (open_.empty()) return;  // hooks outside an action: drop
  ActionTrace& trace = actions_[open_.back()];

  TraceEvent ev;
  switch (static_cast<HookId>(binding)) {
    case HookId::SiteV:
      ev.kind = EventKind::Instr;
      ev.site = args[0].u32();
      break;
    case HookId::SiteI:
      ev.kind = EventKind::Instr;
      ev.site = args[0].u32();
      ev.nvals = 1;
      ev.vals[0] = args[1];
      break;
    case HookId::SiteII:
    case HookId::SiteIL:
    case HookId::SiteIF:
    case HookId::SiteID:
    case HookId::SiteLL:
      ev.kind = EventKind::Instr;
      ev.site = args[0].u32();
      ev.nvals = 2;
      ev.vals[0] = args[1];  // address (stores) / lhs (comparisons)
      ev.vals[1] = args[2];  // stored value / rhs
      break;
    case HookId::CallD:
      ev.kind = EventKind::CallDirect;
      ev.site = args[0].u32();
      break;
    case HookId::CallI:
      ev.kind = EventKind::CallIndirect;
      ev.site = args[0].u32();
      ev.nvals = 1;
      ev.vals[0] = args[1];  // element index
      break;
    case HookId::ArgI:
    case HookId::ArgL:
    case HookId::ArgF:
    case HookId::ArgD:
      ev.kind = EventKind::CallArg;
      ev.site = args[0].u32();
      ev.nvals = 1;
      ev.vals[0] = args[1];
      break;
    case HookId::PostV:
      ev.kind = EventKind::CallPost;
      ev.site = args[0].u32();
      break;
    case HookId::PostI:
    case HookId::PostL:
    case HookId::PostF:
    case HookId::PostD:
      ev.kind = EventKind::CallPost;
      ev.site = args[0].u32();
      ev.nvals = 1;
      ev.vals[0] = args[1];  // return value
      break;
    case HookId::FuncBegin:
      ev.kind = EventKind::FunctionBegin;
      ev.site = args[0].u32();  // original function index
      break;
    case HookId::Count:
      throw util::Trap("invalid hook binding");
  }
  trace.events.push_back(ev);
}

std::optional<vm::Value> TraceSink::call_host(std::uint32_t binding,
                                              std::span<const vm::Value> args,
                                              vm::Instance&) {
  on_hook(binding, args.data(), args.size());
  return std::nullopt;
}

void TraceSink::on_action_begin(abi::Name receiver, abi::Name code,
                                abi::Name action) {
  if (live_ == actions_.size()) actions_.emplace_back();
  ActionTrace& trace = actions_[live_];
  trace.receiver = receiver;
  trace.code = code;
  trace.action = action;
  trace.completed = false;
  trace.events.clear();  // keeps the slot's event capacity
  open_.push_back(live_);
  ++live_;
}

void TraceSink::on_action_end(bool ok) {
  if (open_.empty()) return;
  actions_[open_.back()].completed = ok;
  open_.pop_back();
}

std::vector<const ActionTrace*> TraceSink::actions_of(
    abi::Name receiver) const {
  std::vector<const ActionTrace*> out;
  for (const auto& a : actions()) {
    if (a.receiver == receiver) out.push_back(&a);
  }
  return out;
}

void TraceSink::clear() {
  live_ = 0;  // slots and their event vectors stay allocated
  open_.clear();
}

std::size_t TraceSink::event_count() const {
  std::size_t n = 0;
  for (const auto& a : actions()) n += a.events.size();
  return n;
}

}  // namespace wasai::instrument
