#include "instrument/trace_io.hpp"

#include <cstdio>
#include <memory>

#include "util/leb128.hpp"

namespace wasai::instrument {

namespace {

constexpr std::uint32_t kMagic = 0x43525457;  // "WTRC"
constexpr std::uint32_t kVersion = 1;

void write_event(util::ByteWriter& w, const TraceEvent& ev) {
  w.u8(static_cast<std::uint8_t>(ev.kind));
  util::write_uleb(w, ev.site);
  w.u8(ev.nvals);
  for (std::uint8_t i = 0; i < ev.nvals; ++i) {
    w.u8(static_cast<std::uint8_t>(ev.vals[i].type));
    w.u64_le(ev.vals[i].bits);
  }
}

TraceEvent read_event(util::ByteReader& r) {
  TraceEvent ev;
  const auto kind = r.u8();
  if (kind > static_cast<std::uint8_t>(EventKind::FunctionBegin)) {
    throw util::DecodeError("invalid trace event kind");
  }
  ev.kind = static_cast<EventKind>(kind);
  ev.site = util::read_uleb32(r);
  ev.nvals = r.u8();
  if (ev.nvals > 2) throw util::DecodeError("invalid trace value count");
  for (std::uint8_t i = 0; i < ev.nvals; ++i) {
    ev.vals[i].type = wasm::valtype_from_byte(r.u8());
    ev.vals[i].bits = r.u64_le();
  }
  return ev;
}

}  // namespace

util::Bytes serialize_traces(std::span<const ActionTrace> traces) {
  util::ByteWriter w;
  w.u32_le(kMagic);
  w.u32_le(kVersion);
  util::write_uleb(w, traces.size());
  for (const auto& trace : traces) {
    w.u64_le(trace.receiver.value());
    w.u64_le(trace.code.value());
    w.u64_le(trace.action.value());
    w.u8(trace.completed ? 1 : 0);
    util::write_uleb(w, trace.events.size());
    for (const auto& ev : trace.events) write_event(w, ev);
  }
  return std::move(w).take();
}

std::vector<ActionTrace> deserialize_traces(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32_le() != kMagic) throw util::DecodeError("bad trace file magic");
  if (r.u32_le() != kVersion) {
    throw util::DecodeError("unsupported trace file version");
  }
  const auto count = util::read_uleb32(r);
  std::vector<ActionTrace> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ActionTrace trace;
    trace.receiver = abi::Name(r.u64_le());
    trace.code = abi::Name(r.u64_le());
    trace.action = abi::Name(r.u64_le());
    trace.completed = r.u8() != 0;
    const auto n = util::read_uleb32(r);
    trace.events.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      trace.events.push_back(read_event(r));
    }
    out.push_back(std::move(trace));
  }
  if (!r.eof()) throw util::DecodeError("trailing bytes in trace file");
  return out;
}

void save_traces(const std::string& path,
                 std::span<const ActionTrace> traces) {
  const auto bytes = serialize_traces(traces);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!file) throw util::UsageError("cannot open " + path + " for writing");
  if (std::fwrite(bytes.data(), 1, bytes.size(), file.get()) !=
      bytes.size()) {
    throw util::UsageError("short write to " + path);
  }
}

std::vector<ActionTrace> load_traces(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file) throw util::UsageError("cannot open " + path);
  util::Bytes bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file.get())) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  return deserialize_traces(bytes);
}

}  // namespace wasai::instrument
