// Offline trace files (§3.3.1): WASAI redirects captured traces to files
// once an EOSVM thread finishes, so Symback can analyze them on demand.
// This module serializes ActionTraces to a compact binary format and back.
#pragma once

#include <span>
#include <string>

#include "instrument/trace.hpp"
#include "util/bytes.hpp"

namespace wasai::instrument {

/// Serialize traces (magic "WTRC" + version header).
util::Bytes serialize_traces(std::span<const ActionTrace> traces);

/// Parse traces; throws util::DecodeError on malformed input.
std::vector<ActionTrace> deserialize_traces(
    std::span<const std::uint8_t> bytes);

/// Write/read a trace file on disk. Throws util::UsageError on IO failure.
void save_traces(const std::string& path,
                 std::span<const ActionTrace> traces);
std::vector<ActionTrace> load_traces(const std::string& path);

}  // namespace wasai::instrument
