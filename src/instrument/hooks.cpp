#include "instrument/hooks.hpp"

namespace wasai::instrument {

const std::array<HookDef, static_cast<std::size_t>(HookId::Count)>&
hook_table() {
  using wasm::ValType;
  constexpr ValType I32 = ValType::I32;
  constexpr ValType I64 = ValType::I64;
  constexpr ValType F32 = ValType::F32;
  constexpr ValType F64 = ValType::F64;
  static const std::array<HookDef, static_cast<std::size_t>(HookId::Count)>
      defs = {{
          {"site_v", HookId::SiteV, {{I32}, {}}},
          {"site_i", HookId::SiteI, {{I32, I32}, {}}},
          {"site_ii", HookId::SiteII, {{I32, I32, I32}, {}}},
          {"site_il", HookId::SiteIL, {{I32, I32, I64}, {}}},
          {"site_if", HookId::SiteIF, {{I32, I32, F32}, {}}},
          {"site_id", HookId::SiteID, {{I32, I32, F64}, {}}},
          {"site_ll", HookId::SiteLL, {{I32, I64, I64}, {}}},
          {"call_d", HookId::CallD, {{I32}, {}}},
          {"call_i", HookId::CallI, {{I32, I32}, {}}},
          {"arg_i", HookId::ArgI, {{I32, I32}, {}}},
          {"arg_l", HookId::ArgL, {{I32, I64}, {}}},
          {"arg_f", HookId::ArgF, {{I32, F32}, {}}},
          {"arg_d", HookId::ArgD, {{I32, F64}, {}}},
          {"post_v", HookId::PostV, {{I32}, {}}},
          {"post_i", HookId::PostI, {{I32, I32}, {}}},
          {"post_l", HookId::PostL, {{I32, I64}, {}}},
          {"post_f", HookId::PostF, {{I32, F32}, {}}},
          {"post_d", HookId::PostD, {{I32, F64}, {}}},
          {"func_begin", HookId::FuncBegin, {{I32}, {}}},
      }};
  return defs;
}

}  // namespace wasai::instrument
