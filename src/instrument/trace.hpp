// Trace model: the τ(i, p̄) records of §3.1, produced by the low-level hooks
// the instrumenter injects and consumed by the Symback replayer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abi/name.hpp"
#include "eosvm/value.hpp"

namespace wasai::instrument {

/// What a trace event describes.
enum class EventKind : std::uint8_t {
  Instr,          // an original instruction is about to execute
  CallDirect,     // a (direct) call instruction is about to execute
  CallIndirect,   // a call_indirect; vals[0] = runtime element index
  CallArg,        // one invocation argument of the upcoming call (call_pre)
  CallPost,       // a call returned; vals[0] = return value (if any)
  FunctionBegin,  // a defined function's body was entered; site = func index
};

/// One trace record. `site` indexes the SiteTable for instruction events
/// (and call events); for FunctionBegin it is the function-space index in
/// the ORIGINAL module.
struct TraceEvent {
  EventKind kind = EventKind::Instr;
  std::uint32_t site = 0;
  std::uint8_t nvals = 0;
  vm::Value vals[2];

  [[nodiscard]] const vm::Value& val(std::size_t i) const { return vals[i]; }
};

/// Maps a site id back to the original instruction.
struct SiteInfo {
  std::uint32_t func_index;   // function-space index in the original module
  std::uint32_t instr_index;  // position within that function's body
};

struct SiteTable {
  std::vector<SiteInfo> sites;

  [[nodiscard]] const SiteInfo& at(std::uint32_t site) const {
    return sites.at(site);
  }
  [[nodiscard]] std::size_t size() const { return sites.size(); }
};

/// Trace of one action execution (one apply() run on one receiver) —
/// the per-thread trace file WASAI exports when a run finishes (§3.3.1).
struct ActionTrace {
  abi::Name receiver;
  abi::Name code;
  abi::Name action;
  bool completed = false;  // false when the execution trapped
  std::vector<TraceEvent> events;
};

std::string to_string(EventKind kind);

}  // namespace wasai::instrument
