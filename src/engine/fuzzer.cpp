#include "engine/fuzzer.hpp"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "scanner/facts.hpp"
#include "symbolic/parallel_solver.hpp"

namespace wasai::engine {

using scanner::PayloadMode;

namespace {

std::vector<abi::Name> default_accounts(const HarnessNames& names) {
  return {names.attacker, names.victim, names.token, names.fake_token,
          names.fake_notif, abi::name("lucky"), abi::name("admin")};
}

// The verdict-to-gate lowering below maps by index.
static_assert(static_cast<int>(analysis::Oracle::FakeEos) ==
              static_cast<int>(scanner::VulnType::FakeEos));
static_assert(static_cast<int>(analysis::Oracle::FakeNotif) ==
              static_cast<int>(scanner::VulnType::FakeNotif));
static_assert(static_cast<int>(analysis::Oracle::MissAuth) ==
              static_cast<int>(scanner::VulnType::MissAuth));
static_assert(static_cast<int>(analysis::Oracle::BlockinfoDep) ==
              static_cast<int>(scanner::VulnType::BlockinfoDep));
static_assert(static_cast<int>(analysis::Oracle::Rollback) ==
              static_cast<int>(scanner::VulnType::Rollback));

}  // namespace

Fuzzer::Fuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
               FuzzOptions options)
    : options_(options),
      harness_(contract_wasm, std::move(abi), HarnessNames{}, options.obs,
               options.vm_fastpath),
      scanner_(scanner::Scanner::Config{
          harness_.names().victim, harness_.names().token,
          harness_.names().fake_token, harness_.names().fake_notif}) {
  if (options_.solver_cache) {
    solver_cache_ = std::make_unique<symbolic::SolverCache>(
        options_.solver_cache_capacity);
  }
  // Lane 0 runs the serial loop's exact RNG streams (and executes on the
  // primary harness), so serial and --fuzz-shards 1 draw identical seeds.
  shards_.emplace_back(
      &harness_,
      Mutator(util::Rng(options_.rng_seed), default_accounts(harness_.names())),
      util::Rng(options_.rng_seed ^ 0xfeedfacecafebeefull), options_.obs);
  // L2 of Algorithm 1: fill the seed pool with random data. The eosponser
  // ("transfer") is exercised by the payload modes; Normal mode rotates
  // over the remaining actions.
  Mutator& mutator = shards_.front().mutator;
  for (const auto& def : harness_.contract_abi().actions) {
    if (def.name != abi::name("transfer")) {
      action_rotation_.push_back(def.name);
    }
    for (int i = 0; i < 2; ++i) pool_.add(mutator.random_seed(def));
  }
  // Payload transfers mutate transfer-shaped seeds even when the ABI does
  // not declare a transfer action.
  if (harness_.contract_abi().find(abi::name("transfer")) == nullptr) {
    pool_.add(mutator.random_seed(abi::transfer_action_def()));
  }
  harness_.set_dynamic_senders(options_.dynamic_address_pool);

  // Static pre-analysis: one pass over the original module at deploy time.
  // Everything it feeds downstream is a proof of futility, so the fuzz
  // loop's observable outcome (seeds, coverage, verdicts) is unchanged —
  // only the wasted work goes away.
  if (options_.static_analysis) {
    analysis::StaticReport static_report =
        analysis::analyze_module(harness_.original(), options_.obs);
    flip_gate_ = analysis::make_flip_gate(static_report, harness_.sites());
    scanner::OracleGate gate;
    for (std::size_t i = 0; i < analysis::kNumOracles; ++i) {
      if (!static_report.oracles[i].possible) {
        gate.forbid(static_cast<scanner::VulnType>(i));
      }
    }
    scanner_.set_gate(gate);
    replay_skip_ =
        static_report.flip_feedback_futile && !static_report.uses_db;
    report_.static_report = std::move(static_report);
  }
}

void Fuzzer::ensure_lanes(int lanes) {
  while (static_cast<int>(shards_.size()) < lanes) {
    const std::uint64_t k = shards_.size();
    obs::Obs* track = nullptr;
    if (options_.obs != nullptr) {
      track = &options_.obs->registry().track("fuzz-shard-" +
                                              std::to_string(k));
    }
    // Lanes beyond the first fork both of lane 0's streams by shard index:
    // deterministic per lane, uncorrelated across lanes (see Rng::fork).
    shards_.emplace_back(
        nullptr,
        Mutator(util::Rng(options_.rng_seed).fork(k),
                default_accounts(harness_.names())),
        util::Rng(options_.rng_seed ^ 0xfeedfacecafebeefull).fork(k), track);
    shards_.back().owned = harness_.clone_for_shard(track);
    shards_.back().harness = shards_.back().owned.get();
  }
}

PayloadMode Fuzzer::schedule(int iteration) const {
  if (!options_.adversary_payloads) return PayloadMode::Normal;
  if (iteration == 0) return PayloadMode::ValidTransfer;
  switch (iteration % 6) {
    case 1:
      return PayloadMode::DirectFakeEos;
    case 2:
      return PayloadMode::FakeTokenTransfer;
    case 3:
      return PayloadMode::FakeNotifForward;
    case 4:
      return PayloadMode::ValidTransfer;
    default:
      return PayloadMode::Normal;
  }
}

Seed Fuzzer::select_seed(PayloadMode mode, Shard& shard) {
  const abi::ActionDef transfer_def = abi::transfer_action_def();
  if (mode != PayloadMode::Normal) {
    // All payloads are parameterized by a transfer-shaped seed. The fake
    // payloads revert at patched dispatchers regardless of the seed, so
    // they peek at the best candidate instead of consuming it — adaptive
    // seeds stay at the front for the modes that can actually run them.
    auto seed = (mode == PayloadMode::DirectFakeEos ||
                 mode == PayloadMode::FakeTokenTransfer)
                    ? pool_.peek(transfer_def.name)
                    : pool_.next(transfer_def.name);
    if (!seed) seed = shard.mutator.random_seed(transfer_def);
    if (shard.rng.chance(0.3)) shard.mutator.mutate(*seed, transfer_def);
    return *seed;
  }

  // Normal mode: §3.3.2's transaction-dependency-aware selection.
  abi::Name action;
  if (action_rotation_.empty()) {
    // Transfer-only contract: another valid payment beats a direct call
    // that a patched dispatcher would reject anyway.
    auto seed = pool_.next(transfer_def.name);
    if (!seed) seed = shard.mutator.random_seed(transfer_def);
    return *seed;
  } else {
    action = action_rotation_[rotation_pos_++ % action_rotation_.size()];
    if (options_.use_dbg && dbg_.blocked(action)) {
      if (const auto writer = dbg_.writer_for(action)) action = *writer;
    }
  }
  const abi::ActionDef* def = harness_.contract_abi().find(action);
  if (def == nullptr) def = &transfer_def;
  auto seed = pool_.next(action);
  if (!seed || shard.rng.chance(0.25)) {
    Seed fresh = shard.mutator.random_seed(*def);
    if (seed && shard.rng.chance(0.5)) {
      fresh = *seed;
      shard.mutator.mutate(fresh, *def);
    }
    return fresh;
  }
  return *seed;
}

FuzzReport Fuzzer::run() {
  if (options_.fuzz_shards >= 1) return run_sharded(options_.fuzz_shards);
  return run_serial();
}

FuzzReport Fuzzer::run_serial() {
  const obs::Span fuzz_span(options_.obs, obs::span_name::kFuzz);
  const auto start = Clock::now();
  Shard& lane = shards_.front();
  std::unordered_set<std::uint64_t> branches;
  // Sized for both directions of every branch site — the cap on distinct
  // coverage keys — so the set never rehashes mid-campaign.
  branches.reserve(2 * harness_.sites().size());
  report_.curve.reserve(static_cast<std::size_t>(
      std::max(options_.iterations, 0)));

  for (int i = 0; i < options_.iterations; ++i) {
    if (options_.cancel && options_.cancel->expired()) {
      report_.deadline_hit = true;
      break;
    }
    PayloadMode mode = schedule(i);
    const Seed seed = select_seed(mode, lane);
    if (mode == PayloadMode::Normal &&
        seed.action == abi::name("transfer")) {
      mode = PayloadMode::ValidTransfer;  // transfer-only contract
    }

    chain::TxResult result;
    switch (mode) {
      case PayloadMode::ValidTransfer:
        result = harness_.run_valid_transfer(seed);
        break;
      case PayloadMode::DirectFakeEos:
        result = harness_.run_direct_fake_eos(seed);
        break;
      case PayloadMode::FakeTokenTransfer:
        result = harness_.run_fake_token_transfer(seed);
        break;
      case PayloadMode::FakeNotifForward:
        result = harness_.run_fake_notif_forward(seed);
        break;
      case PayloadMode::Normal:
        result = harness_.run_normal(seed);
        break;
    }
    ++report_.transactions;
    ++lane.transactions;

    // Vulnerability detection on every victim trace (L7 of Algorithm 1).
    {
      const obs::Span scan_span(options_.obs, obs::span_name::kOracleScan);
      for (const auto* trace : harness_.victim_traces()) {
        const auto facts =
            scanner::extract_facts(*trace, harness_.site_index());
        scanner_.observe(mode, trace->action, facts, result.success);
        for (const auto& oracle : custom_oracles_) {
          oracle->observe(mode, trace->action, facts, result.success);
        }
      }
    }

    harness_.accumulate_branches(branches);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    report_.curve.push_back(
        CoveragePoint{i, elapsed_ms, branches.size()});

    // Symbolic feedback (L8-11 of Algorithm 1).
    if (options_.symbolic_feedback) {
      for (const auto* trace : harness_.victim_traces()) {
        feedback_trace(lane, *trace);
        break;  // one replay per iteration keeps throughput high
      }
    }
    pool_.trim(options_.max_pool_per_action);
    ++report_.iterations_run;
  }

  finalize_report(branches, start, /*lanes=*/1);
  return report_;
}

FuzzReport Fuzzer::run_sharded(int lanes) {
  const obs::Span fuzz_span(options_.obs, obs::span_name::kFuzz);
  const auto start = Clock::now();
  ensure_lanes(lanes);
  std::unordered_set<std::uint64_t> branches;
  branches.reserve(2 * harness_.sites().size());
  report_.curve.reserve(static_cast<std::size_t>(
      std::max(options_.iterations, 0)));

  int i = 0;
  while (i < options_.iterations) {
    if (options_.cancel && options_.cancel->expired()) {
      report_.deadline_hit = true;
      break;
    }
    const int batch = std::min(lanes, options_.iterations - i);
    // Planning mutates the shared pool / rotation / DBG state, so the
    // coordinator assigns the batch's iterations to lanes sequentially —
    // the same draws the serial loop would make, in the same order.
    for (int k = 0; k < batch; ++k) plan_iteration(i + k, shards_[k]);
    // Execution is embarrassingly parallel: each lane owns its chain.
    // Lane 0 runs on the calling thread (with --fuzz-shards 1 no thread is
    // ever spawned); the join gives the coordinator a happens-before edge
    // over every lane's scratch before merging.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(batch > 0 ? batch - 1 : 0));
    for (int k = 1; k < batch; ++k) {
      workers.emplace_back([this, k] { execute_planned(shards_[k]); });
    }
    execute_planned(shards_.front());
    for (auto& worker : workers) worker.join();
    // Merge in shard-index order: the observable outcome depends only on
    // (rng_seed, iterations, N), never on thread scheduling.
    for (int k = 0; k < batch; ++k) {
      merge_iteration(i + k, shards_[k], branches, start);
    }
    i += batch;
  }

  finalize_report(branches, start, lanes);
  return report_;
}

void Fuzzer::plan_iteration(int iteration, Shard& shard) {
  shard.mode = schedule(iteration);
  shard.seed = select_seed(shard.mode, shard);
  if (shard.mode == PayloadMode::Normal &&
      shard.seed.action == abi::name("transfer")) {
    shard.mode = PayloadMode::ValidTransfer;  // transfer-only contract
  }
}

void Fuzzer::execute_planned(Shard& shard) noexcept {
  shard.error = nullptr;
  shard.traces.clear();
  shard.facts.clear();
  shard.fresh_branches.clear();
  try {
    ChainHarness& h = *shard.harness;
    switch (shard.mode) {
      case PayloadMode::ValidTransfer:
        shard.result = h.run_valid_transfer(shard.seed);
        break;
      case PayloadMode::DirectFakeEos:
        shard.result = h.run_direct_fake_eos(shard.seed);
        break;
      case PayloadMode::FakeTokenTransfer:
        shard.result = h.run_fake_token_transfer(shard.seed);
        break;
      case PayloadMode::FakeNotifForward:
        shard.result = h.run_fake_notif_forward(shard.seed);
        break;
      case PayloadMode::Normal:
        shard.result = h.run_normal(shard.seed);
        break;
    }
    shard.traces = h.victim_traces();
    // Fact extraction is pure (per-trace, per-shard SiteIndex), so it runs
    // here in the worker; the stateful scanner stays with the coordinator.
    {
      const obs::Span scan_span(shard.obs, obs::span_name::kOracleScan);
      shard.facts.reserve(shard.traces.size());
      for (const auto* trace : shard.traces) {
        shard.facts.push_back(scanner::extract_facts(*trace, h.site_index()));
      }
    }
    h.fresh_branch_keys(shard.seen_branches, shard.fresh_branches);
  } catch (...) {
    shard.error = std::current_exception();
  }
}

void Fuzzer::merge_iteration(int iteration, Shard& shard,
                             std::unordered_set<std::uint64_t>& branches,
                             Clock::time_point start) {
  if (shard.error) std::rethrow_exception(shard.error);
  ++report_.transactions;
  ++shard.transactions;

  for (std::size_t t = 0; t < shard.traces.size(); ++t) {
    scanner_.observe(shard.mode, shard.traces[t]->action, shard.facts[t],
                     shard.result.success);
    for (const auto& oracle : custom_oracles_) {
      oracle->observe(shard.mode, shard.traces[t]->action, shard.facts[t],
                      shard.result.success);
    }
  }

  // `fresh_branches` holds keys this lane saw for the first time; the global
  // set dedups across lanes, so it equals the union the serial accumulation
  // would have built.
  branches.insert(shard.fresh_branches.begin(), shard.fresh_branches.end());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  report_.curve.push_back(CoveragePoint{iteration, elapsed_ms,
                                        branches.size()});

  // Symbolic feedback (L8-11 of Algorithm 1): one replay per iteration,
  // applied coordinator-side so pool insertions land in shard-index order.
  if (options_.symbolic_feedback && !shard.traces.empty()) {
    feedback_trace(shard, *shard.traces.front());
  }
  pool_.trim(options_.max_pool_per_action);
  ++report_.iterations_run;
}

void Fuzzer::finalize_report(
    const std::unordered_set<std::uint64_t>& branches,
    Clock::time_point start, int lanes) {
  report_.scan = scanner_.report();
  for (const auto& oracle : custom_oracles_) {
    if (const auto detail = oracle->verdict()) {
      report_.custom.push_back(
          scanner::CustomFinding{oracle->id(), *detail});
    }
  }
  report_.distinct_branches = branches.size();
  report_.oracle_gate_violations = scanner_.gate_violations();
  if (solver_cache_ != nullptr) {
    report_.solver_cache_evictions = solver_cache_->stats().evictions;
  }
  report_.fuzz_shards = static_cast<std::size_t>(lanes);
  report_.shard_transactions.clear();
  for (int k = 0; k < lanes; ++k) {
    report_.shard_transactions.push_back(
        shards_[static_cast<std::size_t>(k)].transactions);
  }
  report_.fuzz_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void Fuzzer::feedback_trace(Shard& shard,
                            const instrument::ActionTrace& trace) {
  if (replay_skip_) {
    // Statically proven futile: no flip site can bind action input and the
    // DBG has no database traffic to observe, so the replay could neither
    // add a seed nor change seed selection.
    ++report_.replays_skipped;
    return;
  }
  static const abi::ActionDef kTransferDef = abi::transfer_action_def();
  ChainHarness& h = *shard.harness;
  const abi::ActionDef* def = h.contract_abi().find(trace.action);
  if (def == nullptr && trace.action == kTransferDef.name) {
    def = &kTransferDef;
  }
  if (def == nullptr) return;

  const auto site =
      symbolic::locate_action_call(trace, h.sites(), h.original(),
                                   def->params.size() + 1);
  if (!site) return;
  if (site->concrete_args.size() != def->params.size() + 1) return;
  if (h.last_params().size() != def->params.size()) return;

  ++report_.replays;
  try {
    const auto replayed =
        symbolic::replay(env_, h.original(), h.sites(), trace, *site, *def,
                         h.last_params(), /*observer=*/nullptr, options_.obs);
    dbg_.record(trace.action, replayed.api_calls);
    symbolic::SolverOptions solver_opts = options_.solver;
    if (solver_opts.cancel == nullptr) {
      solver_opts.cancel = options_.cancel.get();
    }
    if (solver_opts.cache == nullptr) {
      solver_opts.cache = solver_cache_.get();
    }
    if (solver_opts.obs == nullptr) solver_opts.obs = options_.obs;
    if (!flip_gate_.empty() && solver_opts.prune_flip_sites == nullptr) {
      solver_opts.prune_flip_sites = &flip_gate_;
      solver_opts.pruned_flips_free_budget = options_.static_prioritize;
    }
    auto adaptive =
        options_.parallel_solving
            ? symbolic::solve_flips_parallel(env_, replayed, h.last_params(),
                                             solver_opts,
                                             options_.solver_threads)
            : symbolic::solve_flips(env_, replayed, h.last_params(),
                                    solver_opts);
    report_.solver_queries += adaptive.queries;
    report_.solver_sat += adaptive.sat;
    report_.solver_sat_late += adaptive.sat_late;
    report_.solver_unsat += adaptive.unsat;
    report_.solver_unknown += adaptive.unknown;
    report_.solver_wall_ms += adaptive.wall_ms;
    report_.solver_cache_hits += adaptive.cache_hits;
    report_.solver_cache_misses += adaptive.cache_misses;
    report_.flips_pruned += adaptive.pruned;
    for (auto& params : adaptive.seeds) {
      pool_.add_priority(Seed{trace.action, std::move(params)});
      ++report_.adaptive_seeds;
    }
  } catch (const util::Error&) {
    ++report_.replay_failures;
  }
}

}  // namespace wasai::engine
