#include "engine/fuzzer.hpp"

#include <algorithm>
#include <unordered_set>

#include "scanner/facts.hpp"
#include "symbolic/parallel_solver.hpp"

namespace wasai::engine {

using scanner::PayloadMode;

namespace {

std::vector<abi::Name> default_accounts(const HarnessNames& names) {
  return {names.attacker, names.victim, names.token, names.fake_token,
          names.fake_notif, abi::name("lucky"), abi::name("admin")};
}

}  // namespace

Fuzzer::Fuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
               FuzzOptions options)
    : options_(options),
      harness_(contract_wasm, std::move(abi), HarnessNames{}, options.obs,
               options.vm_fastpath),
      mutator_(util::Rng(options.rng_seed), default_accounts(harness_.names())),
      scanner_(scanner::Scanner::Config{
          harness_.names().victim, harness_.names().token,
          harness_.names().fake_token, harness_.names().fake_notif}),
      rng_(options.rng_seed ^ 0xfeedfacecafebeefull) {
  if (options_.solver_cache) {
    solver_cache_ = std::make_unique<symbolic::SolverCache>(
        options_.solver_cache_capacity);
  }
  // L2 of Algorithm 1: fill the seed pool with random data. The eosponser
  // ("transfer") is exercised by the payload modes; Normal mode rotates
  // over the remaining actions.
  for (const auto& def : harness_.contract_abi().actions) {
    if (def.name != abi::name("transfer")) {
      action_rotation_.push_back(def.name);
    }
    for (int i = 0; i < 2; ++i) pool_.add(mutator_.random_seed(def));
  }
  // Payload transfers mutate transfer-shaped seeds even when the ABI does
  // not declare a transfer action.
  if (harness_.contract_abi().find(abi::name("transfer")) == nullptr) {
    pool_.add(mutator_.random_seed(abi::transfer_action_def()));
  }
  harness_.set_dynamic_senders(options_.dynamic_address_pool);
}

PayloadMode Fuzzer::schedule(int iteration) const {
  if (!options_.adversary_payloads) return PayloadMode::Normal;
  if (iteration == 0) return PayloadMode::ValidTransfer;
  switch (iteration % 6) {
    case 1:
      return PayloadMode::DirectFakeEos;
    case 2:
      return PayloadMode::FakeTokenTransfer;
    case 3:
      return PayloadMode::FakeNotifForward;
    case 4:
      return PayloadMode::ValidTransfer;
    default:
      return PayloadMode::Normal;
  }
}

Seed Fuzzer::select_seed(PayloadMode mode) {
  const abi::ActionDef transfer_def = abi::transfer_action_def();
  if (mode != PayloadMode::Normal) {
    // All payloads are parameterized by a transfer-shaped seed. The fake
    // payloads revert at patched dispatchers regardless of the seed, so
    // they peek at the best candidate instead of consuming it — adaptive
    // seeds stay at the front for the modes that can actually run them.
    auto seed = (mode == PayloadMode::DirectFakeEos ||
                 mode == PayloadMode::FakeTokenTransfer)
                    ? pool_.peek(transfer_def.name)
                    : pool_.next(transfer_def.name);
    if (!seed) seed = mutator_.random_seed(transfer_def);
    if (rng_.chance(0.3)) mutator_.mutate(*seed, transfer_def);
    return *seed;
  }

  // Normal mode: §3.3.2's transaction-dependency-aware selection.
  abi::Name action;
  if (action_rotation_.empty()) {
    // Transfer-only contract: another valid payment beats a direct call
    // that a patched dispatcher would reject anyway.
    auto seed = pool_.next(transfer_def.name);
    if (!seed) seed = mutator_.random_seed(transfer_def);
    return *seed;
  } else {
    action = action_rotation_[rotation_pos_++ % action_rotation_.size()];
    if (options_.use_dbg && dbg_.blocked(action)) {
      if (const auto writer = dbg_.writer_for(action)) action = *writer;
    }
  }
  const abi::ActionDef* def = harness_.contract_abi().find(action);
  if (def == nullptr) def = &transfer_def;
  auto seed = pool_.next(action);
  if (!seed || rng_.chance(0.25)) {
    Seed fresh = mutator_.random_seed(*def);
    if (seed && rng_.chance(0.5)) {
      fresh = *seed;
      mutator_.mutate(fresh, *def);
    }
    return fresh;
  }
  return *seed;
}

FuzzReport Fuzzer::run() {
  const obs::Span fuzz_span(options_.obs, obs::span_name::kFuzz);
  const auto start = std::chrono::steady_clock::now();
  std::unordered_set<std::uint64_t> branches;
  // Sized for both directions of every branch site — the cap on distinct
  // coverage keys — so the set never rehashes mid-campaign.
  branches.reserve(2 * harness_.sites().size());
  report_.curve.reserve(static_cast<std::size_t>(
      std::max(options_.iterations, 0)));

  for (int i = 0; i < options_.iterations; ++i) {
    if (options_.cancel && options_.cancel->expired()) {
      report_.deadline_hit = true;
      break;
    }
    PayloadMode mode = schedule(i);
    const Seed seed = select_seed(mode);
    if (mode == PayloadMode::Normal &&
        seed.action == abi::name("transfer")) {
      mode = PayloadMode::ValidTransfer;  // transfer-only contract
    }

    chain::TxResult result;
    switch (mode) {
      case PayloadMode::ValidTransfer:
        result = harness_.run_valid_transfer(seed);
        break;
      case PayloadMode::DirectFakeEos:
        result = harness_.run_direct_fake_eos(seed);
        break;
      case PayloadMode::FakeTokenTransfer:
        result = harness_.run_fake_token_transfer(seed);
        break;
      case PayloadMode::FakeNotifForward:
        result = harness_.run_fake_notif_forward(seed);
        break;
      case PayloadMode::Normal:
        result = harness_.run_normal(seed);
        break;
    }
    ++report_.transactions;

    // Vulnerability detection on every victim trace (L7 of Algorithm 1).
    {
      const obs::Span scan_span(options_.obs, obs::span_name::kOracleScan);
      for (const auto* trace : harness_.victim_traces()) {
        const auto facts =
            scanner::extract_facts(*trace, harness_.site_index());
        scanner_.observe(mode, trace->action, facts, result.success);
        for (const auto& oracle : custom_oracles_) {
          oracle->observe(mode, trace->action, facts, result.success);
        }
      }
    }

    harness_.accumulate_branches(branches);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    report_.curve.push_back(
        CoveragePoint{i, elapsed_ms, branches.size()});

    // Symbolic feedback (L8-11 of Algorithm 1).
    if (options_.symbolic_feedback) {
      for (const auto* trace : harness_.victim_traces()) {
        feedback_trace(*trace);
        break;  // one replay per iteration keeps throughput high
      }
    }
    pool_.trim(options_.max_pool_per_action);
    ++report_.iterations_run;
  }

  report_.scan = scanner_.report();
  for (const auto& oracle : custom_oracles_) {
    if (const auto detail = oracle->verdict()) {
      report_.custom.push_back(
          scanner::CustomFinding{oracle->id(), *detail});
    }
  }
  report_.distinct_branches = branches.size();
  if (solver_cache_ != nullptr) {
    report_.solver_cache_evictions = solver_cache_->stats().evictions;
  }
  report_.fuzz_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return report_;
}

void Fuzzer::feedback_trace(const instrument::ActionTrace& trace) {
  static const abi::ActionDef kTransferDef = abi::transfer_action_def();
  const abi::ActionDef* def = harness_.contract_abi().find(trace.action);
  if (def == nullptr && trace.action == kTransferDef.name) {
    def = &kTransferDef;
  }
  if (def == nullptr) return;

  const auto site =
      symbolic::locate_action_call(trace, harness_.sites(),
                                   harness_.original(),
                                   def->params.size() + 1);
  if (!site) return;
  if (site->concrete_args.size() != def->params.size() + 1) return;
  if (harness_.last_params().size() != def->params.size()) return;

  ++report_.replays;
  try {
    const auto replayed =
        symbolic::replay(env_, harness_.original(), harness_.sites(), trace,
                         *site, *def, harness_.last_params(),
                         /*observer=*/nullptr, options_.obs);
    dbg_.record(trace.action, replayed.api_calls);
    symbolic::SolverOptions solver_opts = options_.solver;
    if (solver_opts.cancel == nullptr) {
      solver_opts.cancel = options_.cancel.get();
    }
    if (solver_opts.cache == nullptr) {
      solver_opts.cache = solver_cache_.get();
    }
    if (solver_opts.obs == nullptr) solver_opts.obs = options_.obs;
    auto adaptive =
        options_.parallel_solving
            ? symbolic::solve_flips_parallel(env_, replayed,
                                             harness_.last_params(),
                                             solver_opts,
                                             options_.solver_threads)
            : symbolic::solve_flips(env_, replayed, harness_.last_params(),
                                    solver_opts);
    report_.solver_queries += adaptive.queries;
    report_.solver_sat += adaptive.sat;
    report_.solver_sat_late += adaptive.sat_late;
    report_.solver_unsat += adaptive.unsat;
    report_.solver_unknown += adaptive.unknown;
    report_.solver_wall_ms += adaptive.wall_ms;
    report_.solver_cache_hits += adaptive.cache_hits;
    report_.solver_cache_misses += adaptive.cache_misses;
    for (auto& params : adaptive.seeds) {
      pool_.add_priority(Seed{trace.action, std::move(params)});
      ++report_.adaptive_seeds;
    }
  } catch (const util::Error&) {
    ++report_.replay_failures;
  }
}

}  // namespace wasai::engine
