// Seeds (§3.1): Γ⟨φ, ρ⃗⟩ — an action function name plus concrete parameters.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "abi/abi_def.hpp"

namespace wasai::engine {

struct Seed {
  abi::Name action;                     // φ
  std::vector<abi::ParamValue> params;  // ρ⃗
};

/// The seed pool of §3.3.2: one circular queue of candidates per action.
class SeedPool {
 public:
  void add(Seed seed) {
    pools_[seed.action.value()].push_back(std::move(seed));
  }

  /// Adaptive seeds go to the front so the very next round executes them —
  /// the feedback loop of Algorithm 1 (L11: "solve constraints and find
  /// new seeds") is only effective if solved seeds run promptly.
  void add_priority(Seed seed) {
    pools_[seed.action.value()].push_front(std::move(seed));
  }

  /// Pop the head of φ's queue and push it back to the tail.
  std::optional<Seed> next(abi::Name action) {
    const auto it = pools_.find(action.value());
    if (it == pools_.end() || it->second.empty()) return std::nullopt;
    Seed seed = it->second.front();
    it->second.pop_front();
    it->second.push_back(seed);
    return seed;
  }

  /// Front of φ's queue without rotating (used by oracle payloads that
  /// should reuse the best candidate instead of consuming it).
  [[nodiscard]] std::optional<Seed> peek(abi::Name action) const {
    const auto it = pools_.find(action.value());
    if (it == pools_.end() || it->second.empty()) return std::nullopt;
    return it->second.front();
  }

  [[nodiscard]] std::size_t size(abi::Name action) const {
    const auto it = pools_.find(action.value());
    return it == pools_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total() const {
    std::size_t n = 0;
    for (const auto& [_, q] : pools_) n += q.size();
    return n;
  }

  /// Bound each queue. The tail holds the seeds that have already been
  /// rotated through; fresh adaptive seeds sit at the front and survive.
  void trim(std::size_t max_per_action) {
    for (auto& [_, q] : pools_) {
      while (q.size() > max_per_action) q.pop_back();
    }
  }

 private:
  std::map<std::uint64_t, std::deque<Seed>> pools_;
};

}  // namespace wasai::engine
