// The database dependency graph (§3.3.2): table-level reads/writes per
// action, used to build transaction sequences that satisfy transaction
// dependency (write the table another action needs before fuzzing it).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "abi/name.hpp"
#include "symbolic/replayer.hpp"

namespace wasai::engine {

class Dbg {
 public:
  /// Update the graph from one executed action's API calls. Reads that
  /// returned "not found" mark the action as blocked on its table.
  void record(abi::Name action,
              const std::vector<symbolic::ApiCall>& api_calls);

  /// An action that writes a table `reader` failed to read, if known.
  [[nodiscard]] std::optional<abi::Name> writer_for(abi::Name reader) const;

  /// True when `action`'s last run read a table that had no row.
  [[nodiscard]] bool blocked(abi::Name action) const {
    const auto it = blocked_.find(action.value());
    return it != blocked_.end() && !it->second.empty();
  }

  [[nodiscard]] std::size_t tables_seen() const { return writers_.size(); }

 private:
  // table id -> actions that wrote it
  std::map<std::uint64_t, std::set<std::uint64_t>> writers_;
  // action -> tables whose read came back empty on the last run
  std::map<std::uint64_t, std::set<std::uint64_t>> blocked_;
};

}  // namespace wasai::engine
