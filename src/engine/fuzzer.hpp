// The WASAI fuzzing loop — Algorithm 1: instrument, initiate a local
// blockchain, then iterate seed selection → execution → trace capture →
// vulnerability detection → symbolic feedback.
#pragma once

#include <chrono>
#include <memory>

#include "engine/dbg.hpp"
#include "engine/harness.hpp"
#include "engine/mutator.hpp"
#include "scanner/custom.hpp"
#include "scanner/scanner.hpp"
#include "symbolic/solver.hpp"

namespace wasai::engine {

struct FuzzOptions {
  int iterations = 48;
  std::uint64_t rng_seed = 1;
  /// Symbolic feedback on/off (off ≈ a blind fuzzer; ablation knob).
  bool symbolic_feedback = true;
  /// DBG-guided seed selection (§3.3.2) on/off (ablation knob).
  bool use_dbg = true;
  /// Run the adversary payload transactions (§2.3 oracles). Off restricts
  /// the loop to Normal mode — useful for pure coverage measurements.
  bool adversary_payloads = true;
  /// §3.4.4: solve the collected flip constraints on a worker pool instead
  /// of sequentially (0 threads = hardware concurrency).
  bool parallel_solving = false;
  unsigned solver_threads = 0;
  /// Cross-iteration flip dedup: cache solver verdicts + models keyed by
  /// the query's constraint digest, so a flip already decided in an earlier
  /// iteration costs a hash lookup instead of a Z3 call. Off = every flip
  /// goes to Z3 (perf-bench/ablation knob; the seed stream is identical
  /// either way).
  bool solver_cache = true;
  std::size_t solver_cache_capacity = 4096;
  /// Extension of §4.2's "address pool" future work: let the fuzzer create
  /// and authorize additional local sender accounts, so contracts that
  /// serve only specific addresses (e.g. an administrator) can still be
  /// driven. Off by default — the paper's WASAI lacks this, producing the
  /// documented Rollback false negatives.
  bool dynamic_address_pool = false;
  /// VM fast path (pre-flattened instruction streams + direct hook
  /// dispatch). Off = legacy interpreter; the two are observably identical
  /// (byte-identical traces, seeds and report), so this is purely an A/B
  /// benchmarking kill switch (--no-fastpath).
  bool vm_fastpath = true;
  symbolic::SolverOptions solver{};
  std::size_t max_pool_per_action = 32;
  /// Cooperative cancellation: checked at every iteration boundary and
  /// between solver queries. When it expires the loop unwinds cleanly and
  /// the report carries whatever was found so far (deadline_hit = true).
  /// The campaign runner uses this to enforce per-contract deadlines.
  std::shared_ptr<const util::CancelToken> cancel = nullptr;
  /// Observability track of the thread running this fuzzer (may be null =
  /// off). Threaded to the harness (decode/instrument/deploy/execute), the
  /// replayer and the solvers; the run itself records `fuzz` and
  /// `oracle_scan` spans. Observability never touches the RNG or any
  /// dataflow, so the seed stream and report are identical either way.
  obs::Obs* obs = nullptr;
};

struct CoveragePoint {
  int iteration;
  double elapsed_ms;
  std::size_t branches;
};

struct FuzzReport {
  scanner::Report scan;
  std::vector<scanner::CustomFinding> custom;  // §5 extension detectors
  std::size_t distinct_branches = 0;
  std::vector<CoveragePoint> curve;
  std::size_t transactions = 0;
  std::size_t adaptive_seeds = 0;
  std::size_t solver_queries = 0;
  std::size_t replays = 0;
  std::size_t replay_failures = 0;
  // Solver verdict breakdown and wall time (campaign observability).
  std::size_t solver_sat = 0;
  std::size_t solver_sat_late = 0;  // sat past the hard cap, model discarded
  std::size_t solver_unsat = 0;
  std::size_t solver_unknown = 0;
  double solver_wall_ms = 0;
  // Cross-iteration query-cache effectiveness (zero when the cache is off).
  std::size_t solver_cache_hits = 0;
  std::size_t solver_cache_misses = 0;
  std::size_t solver_cache_evictions = 0;
  /// Wall time of the fuzz loop itself (excludes harness construction).
  double fuzz_ms = 0;
  /// Iterations actually executed (< options.iterations when cancelled).
  int iterations_run = 0;
  /// True when a cancel token expired and the loop stopped early.
  bool deadline_hit = false;
};

class Fuzzer {
 public:
  Fuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
         FuzzOptions options = {});

  FuzzReport run();

  /// Register a §5-style extension detector; call before run().
  void add_oracle(std::shared_ptr<scanner::CustomOracle> oracle) {
    custom_oracles_.push_back(std::move(oracle));
  }

  [[nodiscard]] ChainHarness& harness() { return harness_; }

 private:
  scanner::PayloadMode schedule(int iteration) const;
  Seed select_seed(scanner::PayloadMode mode);
  void feedback_trace(const instrument::ActionTrace& trace);

  FuzzOptions options_;
  ChainHarness harness_;
  Mutator mutator_;
  SeedPool pool_;
  Dbg dbg_;
  scanner::Scanner scanner_;
  symbolic::Z3Env env_;
  std::unique_ptr<symbolic::SolverCache> solver_cache_;
  FuzzReport report_;
  std::vector<abi::Name> action_rotation_;
  std::vector<std::shared_ptr<scanner::CustomOracle>> custom_oracles_;
  std::size_t rotation_pos_ = 0;
  util::Rng rng_;
};

}  // namespace wasai::engine
