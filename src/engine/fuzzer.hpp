// The WASAI fuzzing loop — Algorithm 1: instrument, initiate a local
// blockchain, then iterate seed selection → execution → trace capture →
// vulnerability detection → symbolic feedback.
//
// Two execution engines share the per-iteration machinery:
//  * the serial loop (fuzz_shards == 0, the default) — one transaction per
//    iteration on the primary harness, exactly the paper's Algorithm 1;
//  * the batch-synchronous sharded engine (--fuzz-shards N) — each batch
//    plans N consecutive iterations sequentially (seed selection mutates
//    the shared pool/DBG state, so it stays on the coordinator), executes
//    them concurrently on N shard lanes (each lane owns a cloned chain
//    snapshot, a forked mutator stream and a private trace sink), then
//    merges results in shard-index order: scanner observations, coverage
//    keys, the coverage-curve point and the single symbolic-feedback
//    replay are applied by the coordinator exactly as the serial loop
//    would. Lane 0 runs the serial loop's RNG streams on the calling
//    thread, so `--fuzz-shards 1` is byte-identical to the serial loop
//    (pinned by fuzz_shard_test); any fixed N is run-to-run deterministic
//    because nothing observable depends on thread scheduling.
#pragma once

#include <chrono>
#include <memory>
#include <unordered_set>

#include "analysis/report.hpp"
#include "engine/dbg.hpp"
#include "engine/harness.hpp"
#include "engine/mutator.hpp"
#include "scanner/custom.hpp"
#include "scanner/scanner.hpp"
#include "symbolic/solver.hpp"

namespace wasai::engine {

struct FuzzOptions {
  int iterations = 48;
  std::uint64_t rng_seed = 1;
  /// Symbolic feedback on/off (off ≈ a blind fuzzer; ablation knob).
  bool symbolic_feedback = true;
  /// DBG-guided seed selection (§3.3.2) on/off (ablation knob).
  bool use_dbg = true;
  /// Run the adversary payload transactions (§2.3 oracles). Off restricts
  /// the loop to Normal mode — useful for pure coverage measurements.
  bool adversary_payloads = true;
  /// §3.4.4: solve the collected flip constraints on a worker pool instead
  /// of sequentially (0 threads = hardware concurrency).
  bool parallel_solving = false;
  unsigned solver_threads = 0;
  /// Cross-iteration flip dedup: cache solver verdicts + models keyed by
  /// the query's constraint digest, so a flip already decided in an earlier
  /// iteration costs a hash lookup instead of a Z3 call. Off = every flip
  /// goes to Z3 (perf-bench/ablation knob; the seed stream is identical
  /// either way).
  bool solver_cache = true;
  std::size_t solver_cache_capacity = 4096;
  /// Extension of §4.2's "address pool" future work: let the fuzzer create
  /// and authorize additional local sender accounts, so contracts that
  /// serve only specific addresses (e.g. an administrator) can still be
  /// driven. Off by default — the paper's WASAI lacks this, producing the
  /// documented Rollback false negatives.
  bool dynamic_address_pool = false;
  /// VM fast path (pre-flattened instruction streams + direct hook
  /// dispatch). Off = legacy interpreter; the two are observably identical
  /// (byte-identical traces, seeds and report), so this is purely an A/B
  /// benchmarking kill switch (--no-fastpath).
  bool vm_fastpath = true;
  /// Batch-synchronous in-contract sharding. 0 (default) runs the serial
  /// loop; N >= 1 runs the sharded engine with N lanes over cloned chain
  /// snapshots. N == 1 is byte-identical to the serial loop; N > 1 trades
  /// the serial schedule's cross-iteration state coupling for concurrency
  /// (each lane's chain evolves independently) while staying run-to-run
  /// deterministic for fixed N. See DESIGN.md "Sharded fuzzing".
  int fuzz_shards = 0;
  /// Static pre-analysis (call graph + CFGs + taint pass) at construction
  /// time: flip queries on provably input-independent branches are skipped,
  /// replay+solve is skipped wholesale on feedback-futile contracts, and
  /// statically impossible oracles are gated (non-suppressively — see
  /// scanner::OracleGate). Verdict- and fingerprint-neutral by design; the
  /// --no-static kill switch turns it off for A/B comparison.
  bool static_analysis = true;
  /// Opt-in, NOT schedule-neutral: let pruned flips free their max_flips
  /// slots so the budget reaches deeper taint-reachable flip targets (see
  /// SolverOptions::pruned_flips_free_budget). Off by default.
  bool static_prioritize = false;
  symbolic::SolverOptions solver{};
  std::size_t max_pool_per_action = 32;
  /// Cooperative cancellation: checked at every iteration-batch boundary
  /// and between solver queries. When it expires the loop unwinds cleanly
  /// and the report carries whatever was found so far (deadline_hit =
  /// true). The campaign runner uses this to enforce per-contract
  /// deadlines.
  std::shared_ptr<const util::CancelToken> cancel = nullptr;
  /// Observability track of the thread running this fuzzer (may be null =
  /// off). Threaded to the harness (decode/instrument/deploy/execute), the
  /// replayer and the solvers; the run itself records `fuzz` and
  /// `oracle_scan` spans. Shard lanes beyond the first get their own
  /// "fuzz-shard-K" tracks from the same registry (their execute spans
  /// come from shard threads, and tracks are single-writer). Observability
  /// never touches the RNG or any dataflow, so the seed stream and report
  /// are identical either way.
  obs::Obs* obs = nullptr;
};

struct CoveragePoint {
  int iteration;
  double elapsed_ms;
  std::size_t branches;
};

struct FuzzReport {
  scanner::Report scan;
  std::vector<scanner::CustomFinding> custom;  // §5 extension detectors
  std::size_t distinct_branches = 0;
  std::vector<CoveragePoint> curve;
  std::size_t transactions = 0;
  std::size_t adaptive_seeds = 0;
  std::size_t solver_queries = 0;
  std::size_t replays = 0;
  std::size_t replay_failures = 0;
  // Solver verdict breakdown and wall time (campaign observability).
  std::size_t solver_sat = 0;
  std::size_t solver_sat_late = 0;  // sat past the hard cap, model discarded
  std::size_t solver_unsat = 0;
  std::size_t solver_unknown = 0;
  double solver_wall_ms = 0;
  // Cross-iteration query-cache effectiveness (zero when the cache is off).
  std::size_t solver_cache_hits = 0;
  std::size_t solver_cache_misses = 0;
  std::size_t solver_cache_evictions = 0;
  /// Shard lanes the run used (1 for the serial loop and --fuzz-shards 1).
  std::size_t fuzz_shards = 1;
  /// Transactions executed per shard lane, indexed by lane; sums to
  /// `transactions`. The serial loop reports the single-lane vector.
  std::vector<std::size_t> shard_transactions;
  /// Static pre-analysis results; engaged when static_analysis was on.
  std::optional<analysis::StaticReport> static_report;
  /// Flip queries skipped by the static gate across the whole run.
  std::size_t flips_pruned = 0;
  /// Replay+solve invocations skipped because the contract is statically
  /// feedback-futile (no taint-reachable flip site, no database traffic).
  std::size_t replays_skipped = 0;
  /// Scanner findings that contradicted a statically impossible verdict
  /// (always 0 when the analysis is sound; see Scanner::gate_violations).
  std::size_t oracle_gate_violations = 0;
  /// Wall time of the fuzz loop itself (excludes harness construction).
  double fuzz_ms = 0;
  /// Iterations actually executed (< options.iterations when cancelled).
  int iterations_run = 0;
  /// True when a cancel token expired and the loop stopped early.
  bool deadline_hit = false;
};

class Fuzzer {
 public:
  Fuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
         FuzzOptions options = {});

  FuzzReport run();

  /// Register a §5-style extension detector; call before run().
  void add_oracle(std::shared_ptr<scanner::CustomOracle> oracle) {
    custom_oracles_.push_back(std::move(oracle));
  }

  [[nodiscard]] ChainHarness& harness() { return harness_; }

 private:
  /// One shard lane: a harness (lane 0 borrows the primary, lanes >= 1 own
  /// a chain-snapshot clone), the lane's RNG streams, and the per-batch
  /// scratch the lane's worker fills for the coordinator to merge. Lane 0
  /// carries the serial loop's exact streams (seed-pool fill included), so
  /// the serial engine is simply "lane 0, batch size 1".
  struct Shard {
    Shard(ChainHarness* h, Mutator m, util::Rng r, obs::Obs* o)
        : harness(h), mutator(std::move(m)), rng(r), obs(o) {}

    ChainHarness* harness;
    std::unique_ptr<ChainHarness> owned;  // backing storage for lanes >= 1
    Mutator mutator;
    util::Rng rng;
    obs::Obs* obs;
    std::size_t transactions = 0;
    // ---- per-batch scratch (worker-written, coordinator-read) ----------
    scanner::PayloadMode mode{};
    Seed seed;
    chain::TxResult result;
    std::vector<const instrument::ActionTrace*> traces;
    std::vector<scanner::TraceFacts> facts;
    /// Branch keys this lane has ever emitted; fresh holds the keys first
    /// seen in the current batch (what the coordinator folds in).
    std::unordered_set<std::uint64_t> seen_branches;
    std::vector<std::uint64_t> fresh_branches;
    std::exception_ptr error;
  };

  using Clock = std::chrono::steady_clock;

  FuzzReport run_serial();
  FuzzReport run_sharded(int lanes);
  /// Clone shard lanes 1..lanes-1 off the primary harness (lane 0 exists
  /// from construction).
  void ensure_lanes(int lanes);

  scanner::PayloadMode schedule(int iteration) const;
  Seed select_seed(scanner::PayloadMode mode, Shard& shard);
  /// Coordinator step: pick mode + seed for global iteration `i` on `shard`
  /// (mutates the shared pool / rotation / DBG state — sequential only).
  void plan_iteration(int iteration, Shard& shard);
  /// Worker step: run the planned transaction on the shard's chain and
  /// pre-extract everything the merge needs (facts, fresh branch keys).
  /// Exceptions land in shard.error. Safe to run concurrently across
  /// distinct shards.
  void execute_planned(Shard& shard) noexcept;
  /// Coordinator step: fold one executed iteration into the shared scanner,
  /// coverage set, curve and (optionally) the symbolic feedback loop —
  /// identical to the serial loop's post-execution tail.
  void merge_iteration(int iteration, Shard& shard,
                       std::unordered_set<std::uint64_t>& branches,
                       Clock::time_point start);
  void finalize_report(const std::unordered_set<std::uint64_t>& branches,
                       Clock::time_point start, int lanes);
  void feedback_trace(Shard& shard, const instrument::ActionTrace& trace);

  FuzzOptions options_;
  ChainHarness harness_;
  /// Static flip gate by site id (empty when static_analysis is off).
  std::vector<std::uint8_t> flip_gate_;
  /// Statically proven: replay+solve can produce nothing (no taint-reachable
  /// flip and no DBG-observable database traffic).
  bool replay_skip_ = false;
  SeedPool pool_;
  Dbg dbg_;
  scanner::Scanner scanner_;
  symbolic::Z3Env env_;
  std::unique_ptr<symbolic::SolverCache> solver_cache_;
  FuzzReport report_;
  std::vector<abi::Name> action_rotation_;
  std::vector<std::shared_ptr<scanner::CustomOracle>> custom_oracles_;
  std::size_t rotation_pos_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace wasai::engine
