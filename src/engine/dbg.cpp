#include "engine/dbg.hpp"

namespace wasai::engine {

void Dbg::record(abi::Name action,
                 const std::vector<symbolic::ApiCall>& api_calls) {
  auto& blocked = blocked_[action.value()];
  blocked.clear();
  for (const auto& api : api_calls) {
    if (api.name == "db_store_i64" || api.name == "db_update_i64") {
      // db_store_i64(scope, table, payer, id, ...): table is argument 1.
      if (api.args.size() > 1) {
        if (const auto table = api.args[1].concrete()) {
          writers_[*table].insert(action.value());
        }
      }
    } else if (api.name == "db_find_i64" || api.name == "db_lowerbound_i64") {
      // db_find_i64(code, scope, table, id): table is argument 2.
      if (api.args.size() > 2 && api.ret.has_value()) {
        if (const auto table = api.args[2].concrete()) {
          if (api.ret->s32() < 0) blocked.insert(*table);
        }
      }
    }
  }
}

std::optional<abi::Name> Dbg::writer_for(abi::Name reader) const {
  const auto it = blocked_.find(reader.value());
  if (it == blocked_.end()) return std::nullopt;
  for (const auto table : it->second) {
    const auto w = writers_.find(table);
    if (w == writers_.end()) continue;
    for (const auto writer : w->second) {
      if (writer != reader.value()) return abi::Name(writer);
    }
  }
  return std::nullopt;
}

}  // namespace wasai::engine
