#include "engine/harness.hpp"

#include "abi/serializer.hpp"
#include "chain/agents.hpp"
#include "chain/token.hpp"
#include "wasm/decoder.hpp"
#include "wasm/encoder.hpp"

namespace wasai::engine {

using abi::Asset;
using abi::eos;
using abi::ParamValue;
using chain::Action;
using chain::active;
using chain::token_create;
using chain::token_issue;
using chain::token_transfer;

ChainHarness::ChainHarness(const util::Bytes& contract_wasm, abi::Abi abi,
                           HarnessNames names, obs::Obs* obs,
                           bool vm_fastpath)
    : names_(names), abi_(std::move(abi)) {
  chain_.set_fastpath(vm_fastpath);
  original_ = wasm::decode(contract_wasm, obs);
  instrument::Instrumented inst = instrument::instrument(original_, obs);
  sites_ = std::move(inst.sites);
  site_index_ = scanner::SiteIndex(sites_, original_);

  chain_.set_observer(&sink_);
  chain_.set_obs(obs);
  chain_.create_account(names_.attacker);

  chain_.deploy_native(names_.token, std::make_shared<chain::TokenContract>());
  chain_.deploy_native(names_.fake_token,
                       std::make_shared<chain::TokenContract>());
  chain_.deploy_native(names_.fake_notif,
                       std::make_shared<chain::ForwardNotifAgent>(
                           names_.token, names_.victim));
  chain_.deploy_contract(names_.victim, wasm::encode(inst.module), abi_);

  // Funding: real EOS for the attacker and the victim's bankroll, fake EOS
  // for the counterfeit payload.
  auto must = [&](chain::TxResult r) {
    if (!r.success) throw util::UsageError("harness setup failed: " + r.error);
  };
  must(chain_.push_action(
      token_create(names_.token, names_.token, eos(4'000'000'000'0000ll))));
  must(chain_.push_action(token_issue(names_.token, names_.token,
                                      names_.attacker,
                                      eos(1'000'000'000'0000ll), "fund")));
  must(chain_.push_action(token_issue(names_.token, names_.token,
                                      names_.victim,
                                      eos(1'000'000'000'0000ll), "bankroll")));
  must(chain_.push_action(token_create(names_.fake_token, names_.fake_token,
                                       eos(4'000'000'000'0000ll))));
  must(chain_.push_action(token_issue(names_.fake_token, names_.fake_token,
                                      names_.attacker,
                                      eos(1'000'000'000'0000ll), "fake")));
  sink_.clear();  // setup traces are not part of any fuzzing run
}

std::pair<Asset, std::string> ChainHarness::sanitize(const Seed& seed) const {
  Asset quantity = eos(1'0000);
  std::string memo = "wasai";
  for (std::size_t i = 0; i < seed.params.size(); ++i) {
    if (const auto* a = std::get_if<Asset>(&seed.params[i])) {
      // Force a valid, affordable EOS quantity but keep the seed's amount
      // signal so solver-derived amounts survive.
      std::int64_t amount = a->amount;
      if (amount <= 0 || amount > 1'000'000'0000ll) amount = 1'0000;
      quantity = eos(amount);
    } else if (const auto* s = std::get_if<std::string>(&seed.params[i])) {
      memo = *s;
    }
  }
  return {quantity, memo};
}

chain::TxResult ChainHarness::execute(Action act) {
  sink_.clear();
  auto result = chain_.push_transaction(chain::Transaction{{std::move(act)}});
  // Deferred actions run as their own transactions (§2.3.5); their traces
  // accumulate in the same capture window.
  chain_.execute_deferred();
  return result;
}

abi::Name ChainHarness::sender_for(const Seed& seed) {
  if (!dynamic_senders_) return names_.attacker;
  for (const auto& p : seed.params) {
    if (const auto* n = std::get_if<abi::Name>(&p)) {
      if (!n->empty() && *n != names_.victim && *n != names_.token &&
          *n != names_.fake_token) {
        ensure_funded(*n);
        return *n;
      }
    }
  }
  return names_.attacker;
}

void ChainHarness::ensure_funded(abi::Name account) {
  if (!funded_.insert(account.value()).second) return;
  chain_.create_account(account);
  // Funding mints directly; the setup transactions' traces are dropped by
  // the next run's sink.clear().
  chain_.push_action(token_issue(names_.token, names_.token, account,
                                 eos(1'000'000'0000ll), "pool"));
}

chain::TxResult ChainHarness::run_valid_transfer(const Seed& seed) {
  const auto [quantity, memo] = sanitize(seed);
  const abi::Name sender = sender_for(seed);
  last_params_ = {sender, names_.victim, quantity, memo};
  return execute(
      token_transfer(names_.token, sender, names_.victim, quantity, memo));
}

chain::TxResult ChainHarness::run_direct_fake_eos(const Seed& seed) {
  // All four transfer parameters are attacker-controlled here.
  const abi::ActionDef def = abi::transfer_action_def();
  std::vector<ParamValue> params = seed.params;
  if (params.size() != def.params.size()) {
    params = {names_.attacker, names_.victim, eos(1'0000),
              std::string("direct")};
  }
  last_params_ = params;
  Action act;
  act.account = names_.victim;
  act.name = abi::name("transfer");
  act.authorization = {active(names_.attacker)};
  act.data = abi::pack(def, params);
  return execute(std::move(act));
}

chain::TxResult ChainHarness::run_fake_token_transfer(const Seed& seed) {
  const auto [quantity, memo] = sanitize(seed);
  last_params_ = {names_.attacker, names_.victim, quantity, memo};
  return execute(token_transfer(names_.fake_token, names_.attacker,
                                names_.victim, quantity, memo));
}

chain::TxResult ChainHarness::run_fake_notif_forward(const Seed& seed) {
  const auto [quantity, memo] = sanitize(seed);
  const abi::Name sender = sender_for(seed);
  // The victim sees the original transfer parameters: to == fake.notif.
  last_params_ = {sender, names_.fake_notif, quantity, memo};
  return execute(token_transfer(names_.token, sender, names_.fake_notif,
                                quantity, memo));
}

chain::TxResult ChainHarness::run_normal(const Seed& seed) {
  const abi::ActionDef* def = abi_.find(seed.action);
  if (def == nullptr) {
    throw util::UsageError("unknown action " + seed.action.to_string());
  }
  last_params_ = seed.params;
  Action act;
  act.account = names_.victim;
  act.name = seed.action;
  act.authorization = {active(names_.attacker)};
  if (dynamic_senders_) {
    // Also authorize the seed's name parameters (pool accounts the fuzzer
    // controls), so require_auth(<param>) guards can be satisfied.
    for (const auto& p : seed.params) {
      if (const auto* n = std::get_if<abi::Name>(&p)) {
        if (!n->empty() && *n != names_.victim) {
          ensure_funded(*n);
          act.authorization.push_back(active(*n));
        }
      }
    }
  }
  act.data = abi::pack(*def, seed.params);
  return execute(std::move(act));
}

void ChainHarness::accumulate_branches(
    std::unordered_set<std::uint64_t>& out) const {
  for (const auto* trace : victim_traces()) {
    for (const auto& ev : trace->events) {
      if (ev.kind != instrument::EventKind::Instr || ev.nvals != 1) continue;
      if (site_index_.site(ev.site).is_branch) {
        out.insert((static_cast<std::uint64_t>(ev.site) << 1) |
                   (ev.val(0).truthy() ? 1 : 0));
      }
    }
  }
}

void ChainHarness::fresh_branch_keys(std::unordered_set<std::uint64_t>& seen,
                                     std::vector<std::uint64_t>& out) const {
  for (const auto* trace : victim_traces()) {
    for (const auto& ev : trace->events) {
      if (ev.kind != instrument::EventKind::Instr || ev.nvals != 1) continue;
      if (site_index_.site(ev.site).is_branch) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(ev.site) << 1) |
            (ev.val(0).truthy() ? 1 : 0);
        if (seen.insert(key).second) out.push_back(key);
      }
    }
  }
}

ChainHarness::ChainHarness(const ChainHarness& base, obs::Obs* obs)
    : names_(base.names_),
      chain_(base.chain_),  // deep-copies databases; shares immutable code
      original_(base.original_),
      sites_(base.sites_),
      // Rebuilt (not copied) so the index aliases THIS clone's module, not
      // the base's — the clone is self-contained whatever outlives what.
      site_index_(sites_, original_),
      abi_(base.abi_),
      last_params_(base.last_params_),
      dynamic_senders_(base.dynamic_senders_),
      funded_(base.funded_) {
  chain_.set_observer(&sink_);
  chain_.set_obs(obs);
}

std::unique_ptr<ChainHarness> ChainHarness::clone_for_shard(
    obs::Obs* obs) const {
  return std::unique_ptr<ChainHarness>(new ChainHarness(*this, obs));
}

}  // namespace wasai::engine
