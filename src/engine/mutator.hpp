// Random seed generation and structure-aware mutation. Adaptive seeds come
// from the solver (§3.4.4); this provides the initial random pool and the
// exploration mutations between solver rounds.
#pragma once

#include "abi/abi_def.hpp"
#include "engine/seed.hpp"
#include "util/rng.hpp"

namespace wasai::engine {

class Mutator {
 public:
  Mutator(util::Rng rng, std::vector<abi::Name> account_pool)
      : rng_(rng), accounts_(std::move(account_pool)) {}

  /// Fresh random parameters for an action signature.
  Seed random_seed(const abi::ActionDef& def);

  /// Mutate one randomly chosen parameter in place.
  void mutate(Seed& seed, const abi::ActionDef& def);

 private:
  abi::ParamValue random_value(abi::ParamType type);

  util::Rng rng_;
  std::vector<abi::Name> accounts_;
};

}  // namespace wasai::engine
