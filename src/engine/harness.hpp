// The Engine's blockchain harness (§3.1 "Initiation"): a local chain with
// eosio.token, the instrumented fuzzing target, and the adversary agent
// contracts the oracles need (fake.token, fake.notif).
#pragma once

#include <memory>
#include <set>
#include <unordered_set>

#include "chain/controller.hpp"
#include "engine/seed.hpp"
#include "instrument/instrumenter.hpp"
#include "instrument/trace_sink.hpp"
#include "scanner/facts.hpp"

namespace wasai::engine {

struct HarnessNames {
  abi::Name victim = abi::name("fuzztarget");
  abi::Name attacker = abi::name("attacker");
  abi::Name token = abi::name("eosio.token");
  abi::Name fake_token = abi::name("fake.token");
  abi::Name fake_notif = abi::name("fake.notif");
};

class ChainHarness {
 public:
  /// Instruments `contract_wasm` and deploys it along with eosio.token, a
  /// counterfeit token and the notification-forwarding agent. Funds the
  /// attacker with real and fake EOS and the victim with a bankroll.
  /// A non-null `obs` is handed to the decoder, instrumenter and chain so
  /// their phases land on the owning thread's track (null = off).
  /// `vm_fastpath` selects the VM execution path (see FuzzOptions).
  ChainHarness(const util::Bytes& contract_wasm, abi::Abi abi,
               HarnessNames names = {}, obs::Obs* obs = nullptr,
               bool vm_fastpath = true);

  [[nodiscard]] const HarnessNames& names() const { return names_; }
  [[nodiscard]] chain::Controller& chain() { return chain_; }
  [[nodiscard]] instrument::TraceSink& sink() { return sink_; }
  [[nodiscard]] const wasm::Module& original() const { return original_; }
  [[nodiscard]] const instrument::SiteTable& sites() const { return sites_; }
  /// Per-site metadata precomputed once at construction; the per-iteration
  /// consumers (branch accumulation, fact extraction) index it instead of
  /// re-deriving opcode info per event.
  [[nodiscard]] const scanner::SiteIndex& site_index() const {
    return site_index_;
  }
  [[nodiscard]] const abi::Abi& contract_abi() const { return abi_; }

  /// Effective transfer parameters used by the last payload run (the ρ⃗ the
  /// victim actually saw — needed to seed the replayer).
  [[nodiscard]] const std::vector<abi::ParamValue>& last_params() const {
    return last_params_;
  }

  // ---- payload runners (each clears the sink, pushes one transaction and
  // then drains deferred actions) --------------------------------------

  /// ① of Figure 1: a real EOS payment from the attacker to the victim.
  chain::TxResult run_valid_transfer(const Seed& seed);
  /// §2.3.1 exploit (a): invoke transfer@victim directly.
  chain::TxResult run_direct_fake_eos(const Seed& seed);
  /// §2.3.1 exploit (b): counterfeit EOS issued by fake.token.
  chain::TxResult run_fake_token_transfer(const Seed& seed);
  /// §2.3.2 exploit: real transfer to fake.notif, forwarded to the victim.
  chain::TxResult run_fake_notif_forward(const Seed& seed);
  /// Plain fuzzing seed: invoke seed.action on the victim directly.
  chain::TxResult run_normal(const Seed& seed);

  /// Victim traces captured by the last run.
  [[nodiscard]] std::vector<const instrument::ActionTrace*> victim_traces()
      const {
    return sink_.actions_of(names_.victim);
  }

  /// Fold the last run's distinct (branch site, direction) keys into `out`.
  void accumulate_branches(std::unordered_set<std::uint64_t>& out) const;

  /// Shard-friendly variant: append the last run's branch keys that are not
  /// yet in `seen` to `out` (and record them in `seen`). Letting each shard
  /// keep a private cumulative `seen` set makes the coordinator's merge a
  /// walk over first occurrences only — the merged global set is identical
  /// to what accumulate_branches would build, because `seen` only ever
  /// filters keys this harness already emitted.
  void fresh_branch_keys(std::unordered_set<std::uint64_t>& seen,
                         std::vector<std::uint64_t>& out) const;

  /// Deep-copy this harness for a fuzz shard: the chain state (databases,
  /// deferred queue, block clock) is snapshotted, immutable code (modules,
  /// flattened streams, native contract objects — all stateless) is shared,
  /// and the clone gets its own TraceSink and the given observability track
  /// (may be null). Payload runs on the clone and on the source are fully
  /// independent afterwards.
  [[nodiscard]] std::unique_ptr<ChainHarness> clone_for_shard(
      obs::Obs* obs) const;

  /// Enable the dynamic address pool: payload senders follow the seed's
  /// `from` parameter, creating and funding local accounts on demand.
  void set_dynamic_senders(bool enabled) { dynamic_senders_ = enabled; }

 private:
  /// Shard-clone constructor: everything but the sink and observability
  /// track is copied from `base`; see clone_for_shard.
  ChainHarness(const ChainHarness& base, obs::Obs* obs);

  /// Sender account for a payload: the attacker, or (with the address pool
  /// enabled) the seed's `from` name, created and funded on first use.
  abi::Name sender_for(const Seed& seed);
  void ensure_funded(abi::Name account);
  chain::TxResult execute(chain::Action act);
  /// Sanitize a seed into a real-token transfer quantity/memo.
  std::pair<abi::Asset, std::string> sanitize(const Seed& seed) const;

  HarnessNames names_;
  chain::Controller chain_;
  instrument::TraceSink sink_;
  wasm::Module original_;
  instrument::SiteTable sites_;
  scanner::SiteIndex site_index_;
  abi::Abi abi_;
  std::vector<abi::ParamValue> last_params_;
  bool dynamic_senders_ = false;
  std::set<std::uint64_t> funded_;
};

}  // namespace wasai::engine
