#include "engine/mutator.hpp"

namespace wasai::engine {

using abi::ParamType;
using abi::ParamValue;

Seed Mutator::random_seed(const abi::ActionDef& def) {
  Seed seed;
  seed.action = def.name;
  seed.params.reserve(def.params.size());
  for (const auto type : def.params) seed.params.push_back(random_value(type));
  return seed;
}

void Mutator::mutate(Seed& seed, const abi::ActionDef& def) {
  if (seed.params.empty()) return;
  const auto i = rng_.below(seed.params.size());
  seed.params[i] = random_value(def.params[i]);
}

ParamValue Mutator::random_value(ParamType type) {
  switch (type) {
    case ParamType::Name:
      if (!accounts_.empty() && rng_.chance(0.7)) {
        return rng_.pick(accounts_);
      }
      return abi::Name(rng_.next());
    case ParamType::Asset: {
      // Mostly well-formed EOS amounts; occasionally weird symbols.
      const std::int64_t amount =
          rng_.chance(0.8) ? rng_.range(0, 1'000'0000) : rng_.range(-100, 100);
      const abi::Symbol sym =
          rng_.chance(0.9)
              ? abi::eos_symbol()
              : abi::Symbol::from_code(
                    static_cast<std::uint8_t>(rng_.below(10)), "FAKE");
      return abi::Asset{amount, sym};
    }
    case ParamType::String:
      // Memos stay >= 4 chars so memo-byte verification conditions always
      // have bound symbolic content to solve over.
      return rng_.name_chars(4 + rng_.below(9));
    case ParamType::U64:
      return rng_.chance(0.5) ? static_cast<std::uint64_t>(rng_.below(1000))
                              : rng_.next();
    case ParamType::I64:
      return rng_.range(-1'000'000, 1'000'000);
    case ParamType::U32:
      return static_cast<std::uint32_t>(rng_.next());
    case ParamType::F64:
      return rng_.uniform() * 1000.0;
  }
  return std::uint64_t{0};
}

}  // namespace wasai::engine
