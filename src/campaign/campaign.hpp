// Multi-contract campaign runner: fans wasai::analyze() out over a worker
// pool with per-contract fault isolation. One malformed binary, missing
// apply export or runaway solver query produces an error record for that
// contract — never a crashed or hung campaign. This is the batch layer the
// paper's evaluation implies (§4 runs the pipeline over thousands of EOSIO
// contracts) and the substrate for the ROADMAP's "as fast as the hardware
// allows" scaling work.
//
// Determinism: every contract is analyzed with the same FuzzOptions (same
// RNG seed), records are collected indexed by input order, and workers
// never share mutable analysis state — so the findings of a campaign are
// byte-identical for any `jobs` value.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "wasai/wasai.hpp"

namespace wasai::campaign {

/// One unit of campaign work. Either on-disk paths (loaded lazily inside
/// the worker, so I/O failures are contained per contract) or in-memory
/// bytes (tests, embedding).
struct ContractInput {
  std::string id;         // report key; usually the .wasm stem
  std::string wasm_path;  // if non-empty, read in the worker
  std::string abi_path;   // if non-empty, read in the worker
  util::Bytes wasm;       // used when wasm_path is empty
  std::string abi_json;   // used when abi_path is empty
};

enum class ContractStatus : std::uint8_t {
  Ok,        // analysis completed (findings may be empty)
  Deadline,  // per-contract deadline preempted the fuzz loop; partial report
  IoError,   // input file missing/unreadable
  BadInput,  // malformed Wasm/ABI or missing apply export — not retried
  Failed,    // analysis kept throwing after every retry attempt
};

const char* to_string(ContractStatus s);

struct PhaseTimings {
  double load_ms = 0;    // file read + ABI parse
  double init_ms = 0;    // instrumentation + chain initiation
  double fuzz_ms = 0;    // the fuzz loop
  double solver_ms = 0;  // Z3 wall time inside the fuzz loop
  double total_ms = 0;   // whole attempt, queue wait excluded
};

/// Per-contract observability record — one JSONL line per contract.
struct ContractRecord {
  std::string id;
  ContractStatus status = ContractStatus::Ok;
  std::string error;  // what() of the last failure, empty on Ok
  int attempts = 0;   // 1 on first-try success
  PhaseTimings timings;
  // Analysis payload (meaningful for Ok and Deadline):
  scanner::Report scan;
  std::vector<scanner::CustomFinding> custom;
  std::vector<engine::CoveragePoint> curve;
  std::size_t transactions = 0;
  std::size_t distinct_branches = 0;
  std::size_t adaptive_seeds = 0;
  std::size_t replays = 0;
  std::size_t replay_failures = 0;
  std::size_t solver_queries = 0;
  std::size_t solver_sat = 0;
  std::size_t solver_sat_late = 0;
  std::size_t solver_unsat = 0;
  std::size_t solver_unknown = 0;
  std::size_t solver_cache_hits = 0;
  std::size_t solver_cache_misses = 0;
  std::size_t solver_cache_evictions = 0;
  /// Fuzz throughput: transactions per second of fuzz-loop wall time.
  double transactions_per_sec = 0;
  int iterations_run = 0;
  /// Per-phase wall/self time of this contract's span slice (empty with
  /// observability off). Serialized as the record's `obs` JSONL block.
  obs::PhaseTotals phases;

  [[nodiscard]] bool completed() const {
    return status == ContractStatus::Ok ||
           status == ContractStatus::Deadline;
  }
};

struct CampaignSummary {
  std::size_t contracts = 0;
  std::size_t ok = 0;
  std::size_t deadline = 0;
  std::size_t io_error = 0;
  std::size_t bad_input = 0;
  std::size_t failed = 0;
  std::size_t vulnerable = 0;  // completed contracts with ≥1 finding
  std::size_t total_transactions = 0;
  std::size_t total_solver_queries = 0;
  std::size_t total_solver_cache_hits = 0;
  std::size_t total_solver_cache_misses = 0;
  double total_solver_ms = 0;
  double wall_ms = 0;  // whole-campaign wall time
  /// Finding counts keyed by vulnerability name ("FakeEos", ...).
  std::vector<std::pair<std::string, std::size_t>> findings_by_type;
  /// Campaign-wide per-phase rollup over every worker track (empty with
  /// observability off).
  obs::PhaseTotals phases;
};

struct CampaignReport {
  std::vector<ContractRecord> records;  // input order, one per input
  CampaignSummary summary;
};

struct CampaignOptions {
  /// Worker threads analyzing contracts concurrently. 0 = hardware
  /// concurrency. Findings are identical for any value (see header note).
  unsigned jobs = 1;
  /// Wall-clock budget per contract in ms; 0 = none. Enforced through the
  /// cooperative cancel token threaded into the fuzz loop and solver.
  double deadline_ms = 0;
  /// Total analysis attempts per contract (≥1). Transient failures —
  /// anything other than malformed input — are retried up to this count.
  int max_attempts = 2;
  /// Fuzzing configuration shared by every contract (same RNG seed each,
  /// keeping records independent of campaign composition and job count).
  engine::FuzzOptions fuzz{};
  /// Observability registry for this campaign; not owned, may be null
  /// (= off, the --no-obs kill switch). Each worker thread creates its own
  /// track ("worker-0", ...), so the Chrome trace export shows one row per
  /// worker with the nested per-contract phase spans. Findings, records
  /// and seed streams are byte-identical with or without it.
  obs::Registry* obs = nullptr;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Analyze every input; never throws for per-contract faults. Records
  /// come back in input order regardless of worker interleaving.
  CampaignReport run(const std::vector<ContractInput>& inputs);

 private:
  ContractRecord run_one(const ContractInput& input, obs::Obs* obs) const;

  CampaignOptions options_;
};

/// Collect `<stem>.wasm` + `<stem>.abi` pairs under `dir` (non-recursive),
/// sorted by path for deterministic campaign order. A .wasm without a
/// sibling .abi is skipped. Throws util::UsageError when `dir` is not a
/// directory.
std::vector<ContractInput> scan_directory(const std::string& dir);

}  // namespace wasai::campaign
