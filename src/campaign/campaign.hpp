// Multi-contract campaign runner: fans wasai::analyze() out over a worker
// pool with per-contract fault isolation. One malformed binary, missing
// apply export or runaway solver query produces an error record for that
// contract — never a crashed or hung campaign. This is the batch layer the
// paper's evaluation implies (§4 runs the pipeline over thousands of EOSIO
// contracts) and the substrate for the ROADMAP's "as fast as the hardware
// allows" scaling work.
//
// Determinism: every contract is analyzed with the same FuzzOptions (same
// RNG seed), records are collected indexed by input order, and workers
// never share mutable analysis state — so the findings of a campaign are
// byte-identical for any `jobs` value.
//
// Robustness (crash-safe campaigns):
//  * Graceful shutdown — a campaign-wide CancelToken (tripped by the CLI's
//    SIGINT/SIGTERM handler) stops workers from claiming new contracts;
//    in-flight contracts drain through their cooperative deadline and are
//    recorded with status `interrupted`. Contracts never claimed produce
//    no record, so a later --resume picks them up.
//  * Watchdog escalation — a monitor thread detects contracts that ignore
//    the cooperative deadline by more than `hung_grace` (a wedged Z3 query
//    deep inside a worker), records them as `hung`, abandons the wedged
//    worker thread and spawns a replacement so the pool keeps draining.
//  * Checkpoint/resume — every record carries a content digest of the
//    wasm+abi bytes; `skip_digests` makes the runner skip contracts whose
//    digest is already in a previous run's record stream (see resume.hpp).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"
#include "wasai/wasai.hpp"

namespace wasai::campaign {

/// One unit of campaign work. Either on-disk paths (loaded lazily inside
/// the worker, so I/O failures are contained per contract) or in-memory
/// bytes (tests, embedding).
struct ContractInput {
  std::string id;         // report key; usually the .wasm stem
  std::string wasm_path;  // if non-empty, read in the worker
  std::string abi_path;   // if non-empty, read in the worker
  util::Bytes wasm;       // used when wasm_path is empty
  std::string abi_json;   // used when abi_path is empty
};

enum class ContractStatus : std::uint8_t {
  Ok,        // analysis completed (findings may be empty)
  Deadline,  // per-contract deadline preempted the fuzz loop; partial report
  IoError,   // input file missing/unreadable
  BadInput,  // malformed Wasm/ABI or missing apply export — not retried
  Failed,    // analysis kept throwing after every retry attempt
  Interrupted,  // campaign-wide shutdown drained this in-flight contract
  Hung,      // ignored the cooperative deadline; abandoned by the watchdog
  Skipped,   // digest found in skip_digests (resume); dropped from records
};

const char* to_string(ContractStatus s);

/// Content digest of one contract: util::fnv1a over the wasm bytes, a 0x00
/// separator, and the ABI JSON bytes, rendered as 16 hex digits. The key a
/// resume uses to recognize contracts that were already analyzed — stable
/// across renames, paths and campaign composition.
std::string content_digest(const util::Bytes& wasm,
                           const std::string& abi_json);

/// Compact static pre-analysis summary for one contract — the JSONL
/// `static` block. Engaged only when the fuzz loop ran with
/// static_analysis on (absent under --no-static, keeping that record
/// stream byte-identical to the pre-static schema).
struct StaticRecord {
  bool converged = false;      // dataflow fixpoint reached (facts kept)
  std::size_t passes = 0;      // dataflow passes to fixpoint
  /// Per-oracle static verdicts in scanner::VulnType order; false =
  /// statically impossible (the scanner gate counts any contradiction).
  std::array<bool, analysis::kNumOracles> oracle_possible{};
  // Branch classification table counts (see analysis::BranchClass).
  std::size_t constant_branches = 0;
  std::size_t untainted_branches = 0;
  std::size_t taint_reachable_branches = 0;
  std::size_t unreachable_branches = 0;
  // Dynamic effect of the gates over the whole run:
  std::size_t flips_pruned = 0;     // flip queries skipped by the gate
  std::size_t replays_skipped = 0;  // feedback replays skipped wholesale
  std::size_t gate_violations = 0;  // findings contradicting a verdict (0!)
  double analyze_ms = 0;            // static pass wall time
};

struct PhaseTimings {
  double load_ms = 0;    // file read + ABI parse
  double init_ms = 0;    // instrumentation + chain initiation
  double fuzz_ms = 0;    // the fuzz loop
  double solver_ms = 0;  // Z3 wall time inside the fuzz loop
  double total_ms = 0;   // whole attempt, queue wait excluded
};

/// Per-contract observability record — one JSONL line per contract.
struct ContractRecord {
  std::string id;
  /// content_digest() of the analyzed bytes; empty when loading failed
  /// before both inputs were in memory (io-error).
  std::string digest;
  ContractStatus status = ContractStatus::Ok;
  std::string error;  // what() of the last failure, empty on Ok
  int attempts = 0;   // 1 on first-try success
  PhaseTimings timings;
  // Analysis payload (meaningful for Ok, Deadline and Interrupted):
  scanner::Report scan;
  std::vector<scanner::CustomFinding> custom;
  std::vector<engine::CoveragePoint> curve;
  std::size_t transactions = 0;
  std::size_t distinct_branches = 0;
  std::size_t adaptive_seeds = 0;
  std::size_t replays = 0;
  std::size_t replay_failures = 0;
  std::size_t solver_queries = 0;
  std::size_t solver_sat = 0;
  std::size_t solver_sat_late = 0;
  std::size_t solver_unsat = 0;
  std::size_t solver_unknown = 0;
  std::size_t solver_cache_hits = 0;
  std::size_t solver_cache_misses = 0;
  std::size_t solver_cache_evictions = 0;
  /// Fuzz throughput: transactions per second of fuzz-loop wall time.
  double transactions_per_sec = 0;
  /// Shard lanes the fuzz loop ran (1 = serial loop) and the per-lane
  /// transaction counts (sum to `transactions`).
  std::size_t fuzz_shards = 1;
  std::vector<std::size_t> shard_transactions;
  /// Static pre-analysis block; disengaged under --no-static (and for
  /// records parsed from pre-static JSONL streams).
  std::optional<StaticRecord> static_record;
  int iterations_run = 0;
  /// Per-phase wall/self time of this contract's span slice (empty with
  /// observability off). Serialized as the record's `obs` JSONL block.
  obs::PhaseTotals phases;

  /// Terminal analysis outcomes whose findings are final. Interrupted and
  /// hung records carry partial payloads but will be re-analyzed by a
  /// resume, so they are excluded (their findings would double-count).
  [[nodiscard]] bool completed() const {
    return status == ContractStatus::Ok ||
           status == ContractStatus::Deadline;
  }
  /// Statuses a resume does not re-analyze: completed analyses plus
  /// deterministic input faults (retrying malformed bytes cannot help).
  [[nodiscard]] bool resumable_skip() const {
    return completed() || status == ContractStatus::BadInput;
  }
};

struct CampaignSummary {
  std::size_t contracts = 0;
  std::size_t ok = 0;
  std::size_t deadline = 0;
  std::size_t io_error = 0;
  std::size_t bad_input = 0;
  std::size_t failed = 0;
  std::size_t interrupted = 0;  // drained by a campaign-wide shutdown
  std::size_t hung = 0;         // abandoned by the watchdog
  std::size_t skipped = 0;      // resume: digest already recorded
  std::size_t vulnerable = 0;   // completed contracts with ≥1 finding
  std::size_t total_transactions = 0;
  std::size_t total_solver_queries = 0;
  std::size_t total_solver_cache_hits = 0;
  std::size_t total_solver_cache_misses = 0;
  /// Static-gate rollups over completed records (zero under --no-static).
  std::size_t total_flips_pruned = 0;
  std::size_t total_replays_skipped = 0;
  /// Soundness tripwire: any finding that contradicted a statically
  /// impossible verdict, summed campaign-wide. Non-zero means the static
  /// pass broke its conservatism contract — CI gates on this being 0.
  std::size_t total_gate_violations = 0;
  double total_solver_ms = 0;
  double wall_ms = 0;  // whole-campaign wall time
  /// Finding counts keyed by vulnerability name ("FakeEos", ...).
  std::vector<std::pair<std::string, std::size_t>> findings_by_type;
  /// Campaign-wide per-phase rollup over every worker track (empty with
  /// observability off).
  obs::PhaseTotals phases;
};

struct CampaignReport {
  /// Input order, one per analyzed input. Contracts skipped via
  /// skip_digests and contracts never claimed before a shutdown are absent.
  std::vector<ContractRecord> records;
  CampaignSummary summary;
};

/// Pluggable analysis entry point — wasai::analyze by default. Tests
/// substitute stubs (a contract that ignores its cancel token, a shutdown
/// trigger) to drive the watchdog and signal-drain paths deterministically.
using AnalyzeFn = std::function<AnalysisResult(
    const util::Bytes& wasm, const abi::Abi& abi, const AnalysisOptions&)>;

struct CampaignOptions {
  /// Worker threads analyzing contracts concurrently. 0 = hardware
  /// concurrency. Findings are identical for any value (see header note).
  unsigned jobs = 1;
  /// Wall-clock budget per contract in ms; 0 = none. Enforced through the
  /// cooperative cancel token threaded into the fuzz loop and solver.
  double deadline_ms = 0;
  /// Total analysis attempts per contract (≥1). Transient failures —
  /// anything other than malformed input and resource exhaustion — are
  /// retried up to this count.
  int max_attempts = 2;
  /// Fuzzing configuration shared by every contract (same RNG seed each,
  /// keeping records independent of campaign composition and job count).
  engine::FuzzOptions fuzz{};
  /// Observability registry for this campaign; not owned, may be null
  /// (= off, the --no-obs kill switch). Each worker thread creates its own
  /// track ("worker-0", ...), so the Chrome trace export shows one row per
  /// worker with the nested per-contract phase spans. Findings, records
  /// and seed streams are byte-identical with or without it.
  obs::Registry* obs = nullptr;
  /// Campaign-wide cancellation (graceful shutdown). Not owned via raw
  /// use; shared so per-contract deadline tokens can link to it as their
  /// parent. Null = no external shutdown path.
  std::shared_ptr<const util::CancelToken> cancel;
  /// Content digests of contracts already analyzed by a previous run
  /// (checkpoint/resume). A matching contract is skipped after its bytes
  /// load: no record, `summary.skipped` incremented.
  std::unordered_set<std::string> skip_digests;
  /// Watchdog escalation factor: a contract whose attempt exceeds
  /// deadline_ms * hung_grace is presumed wedged inside non-cooperative
  /// code (e.g. one Z3 query ignoring its soft timeout), recorded as
  /// `hung`, and its worker thread abandoned. Only active when
  /// deadline_ms > 0. Must be > 1 so the cooperative deadline always gets
  /// the first chance.
  double hung_grace = 4.0;
  /// Watchdog poll interval.
  double watchdog_poll_ms = 250;
  /// Analysis entry point; null = wasai::analyze.
  AnalyzeFn analyze_fn;
};

/// Summary over an arbitrary record set (no wall_ms/phases — those describe
/// one run, not a record set). Used both by CampaignRunner::run and by the
/// resume path, which recomputes the summary over merged old + new records.
CampaignSummary summarize_records(const std::vector<ContractRecord>& records);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Analyze every input; never throws for per-contract faults. Records
  /// come back in input order regardless of worker interleaving.
  CampaignReport run(const std::vector<ContractInput>& inputs);

 private:
  CampaignOptions options_;
};

/// Collect `<stem>.wasm` + `<stem>.abi` pairs under `dir` (non-recursive),
/// sorted by path for deterministic campaign order. A .wasm without a
/// sibling .abi is skipped. Throws util::UsageError when `dir` is not a
/// directory.
std::vector<ContractInput> scan_directory(const std::string& dir);

}  // namespace wasai::campaign
