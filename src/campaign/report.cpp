#include "campaign/report.hpp"

#include "obs/trace_export.hpp"
#include "util/jsonl.hpp"

namespace wasai::campaign {

namespace {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json num(double v) { return Json(v); }
Json num(std::size_t v) { return Json(static_cast<double>(v)); }
Json num(int v) { return Json(static_cast<double>(v)); }

Json findings_array(const scanner::Report& scan) {
  JsonArray findings;
  findings.reserve(scan.findings.size());
  for (const auto& finding : scan.findings) {
    JsonObject entry;
    entry.emplace("type", Json(std::string(scanner::to_string(finding.type))));
    entry.emplace("detail", Json(finding.detail));
    findings.emplace_back(std::move(entry));
  }
  return Json(std::move(findings));
}

Json custom_array(const std::vector<scanner::CustomFinding>& custom) {
  JsonArray out;
  out.reserve(custom.size());
  for (const auto& finding : custom) {
    JsonObject entry;
    entry.emplace("id", Json(finding.id));
    entry.emplace("detail", Json(finding.detail));
    out.emplace_back(std::move(entry));
  }
  return Json(std::move(out));
}

ContractStatus status_from_string(const std::string& name) {
  for (const ContractStatus s :
       {ContractStatus::Ok, ContractStatus::Deadline, ContractStatus::IoError,
        ContractStatus::BadInput, ContractStatus::Failed,
        ContractStatus::Interrupted, ContractStatus::Hung,
        ContractStatus::Skipped}) {
    if (name == to_string(s)) return s;
  }
  throw util::DecodeError("unknown contract status: " + name);
}

double get_num(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_number() : 0.0;
}

std::size_t get_size(const Json& obj, const char* key) {
  return static_cast<std::size_t>(get_num(obj, key));
}

std::string get_str(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

}  // namespace

Json record_to_json(const ContractRecord& record) {
  JsonObject timings;
  timings.emplace("load_ms", num(record.timings.load_ms));
  timings.emplace("init_ms", num(record.timings.init_ms));
  timings.emplace("fuzz_ms", num(record.timings.fuzz_ms));
  timings.emplace("solver_ms", num(record.timings.solver_ms));
  timings.emplace("total_ms", num(record.timings.total_ms));

  JsonArray curve;
  curve.reserve(record.curve.size());
  for (const auto& point : record.curve) {
    JsonArray triple;
    triple.emplace_back(num(point.iteration));
    triple.emplace_back(num(point.elapsed_ms));
    triple.emplace_back(num(point.branches));
    curve.emplace_back(std::move(triple));
  }

  JsonObject solver;
  solver.emplace("queries", num(record.solver_queries));
  solver.emplace("sat", num(record.solver_sat));
  solver.emplace("sat_late", num(record.solver_sat_late));
  solver.emplace("unsat", num(record.solver_unsat));
  solver.emplace("unknown", num(record.solver_unknown));
  solver.emplace("cache_hits", num(record.solver_cache_hits));
  solver.emplace("cache_misses", num(record.solver_cache_misses));
  solver.emplace("cache_evictions", num(record.solver_cache_evictions));

  JsonObject out;
  out.emplace("id", Json(record.id));
  // Content digest keys --resume dedup; absent when loading failed before
  // both inputs were in memory (the digest covers wasm AND abi bytes).
  if (!record.digest.empty()) out.emplace("digest", Json(record.digest));
  out.emplace("status", Json(std::string(to_string(record.status))));
  out.emplace("attempts", num(record.attempts));
  out.emplace("timings", Json(std::move(timings)));
  out.emplace("iterations", num(record.iterations_run));
  out.emplace("transactions", num(record.transactions));
  out.emplace("transactions_per_sec", num(record.transactions_per_sec));
  out.emplace("fuzz_shards", num(record.fuzz_shards));
  JsonArray shard_tx;
  shard_tx.reserve(record.shard_transactions.size());
  for (const auto n : record.shard_transactions) shard_tx.emplace_back(num(n));
  out.emplace("shard_transactions", Json(std::move(shard_tx)));
  out.emplace("branches", num(record.distinct_branches));
  out.emplace("adaptive_seeds", num(record.adaptive_seeds));
  out.emplace("replays", num(record.replays));
  out.emplace("replay_failures", num(record.replay_failures));
  out.emplace("solver", Json(std::move(solver)));
  // Static pre-analysis block; absent entirely under --no-static, so that
  // record stream keeps the pre-static schema byte-for-byte.
  if (record.static_record.has_value()) {
    const StaticRecord& st = *record.static_record;
    JsonObject oracles;
    for (std::size_t i = 0; i < analysis::kNumOracles; ++i) {
      oracles.emplace(
          analysis::to_string(static_cast<analysis::Oracle>(i)),
          Json(st.oracle_possible[i]));
    }
    JsonObject branches;
    branches.emplace("constant", num(st.constant_branches));
    branches.emplace("untainted", num(st.untainted_branches));
    branches.emplace("taint_reachable", num(st.taint_reachable_branches));
    branches.emplace("unreachable", num(st.unreachable_branches));
    JsonObject st_json;
    st_json.emplace("converged", Json(st.converged));
    st_json.emplace("passes", num(st.passes));
    st_json.emplace("oracles", Json(std::move(oracles)));
    st_json.emplace("branch_classes", Json(std::move(branches)));
    st_json.emplace("flips_pruned", num(st.flips_pruned));
    st_json.emplace("replays_skipped", num(st.replays_skipped));
    st_json.emplace("gate_violations", num(st.gate_violations));
    st_json.emplace("analyze_ms", num(st.analyze_ms));
    out.emplace("static", Json(std::move(st_json)));
  }
  out.emplace("coverage_curve", Json(std::move(curve)));
  out.emplace("findings", findings_array(record.scan));
  out.emplace("custom_findings", custom_array(record.custom));
  if (!record.error.empty()) out.emplace("error", Json(record.error));
  // Per-phase observability block; absent entirely when obs is off, so the
  // --no-obs record is the byte-identical pre-obs schema.
  if (!record.phases.empty()) {
    out.emplace("obs", obs::phase_totals_json(record.phases));
  }
  return Json(std::move(out));
}

ContractRecord record_from_json(const Json& json) {
  ContractRecord record;
  record.id = json.at("id").as_string();
  record.digest = get_str(json, "digest");
  record.status = status_from_string(json.at("status").as_string());
  record.error = get_str(json, "error");
  record.attempts = static_cast<int>(get_num(json, "attempts"));
  if (const Json* timings = json.find("timings")) {
    record.timings.load_ms = get_num(*timings, "load_ms");
    record.timings.init_ms = get_num(*timings, "init_ms");
    record.timings.fuzz_ms = get_num(*timings, "fuzz_ms");
    record.timings.solver_ms = get_num(*timings, "solver_ms");
    record.timings.total_ms = get_num(*timings, "total_ms");
  }
  record.iterations_run = static_cast<int>(get_num(json, "iterations"));
  record.transactions = get_size(json, "transactions");
  record.transactions_per_sec = get_num(json, "transactions_per_sec");
  // Pre-shard streams carry neither key; they were single-lane serial runs.
  record.fuzz_shards =
      json.find("fuzz_shards") != nullptr ? get_size(json, "fuzz_shards") : 1;
  if (const Json* shard_tx = json.find("shard_transactions")) {
    for (const Json& n : shard_tx->as_array()) {
      record.shard_transactions.push_back(
          static_cast<std::size_t>(n.as_number()));
    }
  }
  record.distinct_branches = get_size(json, "branches");
  record.adaptive_seeds = get_size(json, "adaptive_seeds");
  record.replays = get_size(json, "replays");
  record.replay_failures = get_size(json, "replay_failures");
  if (const Json* solver = json.find("solver")) {
    record.solver_queries = get_size(*solver, "queries");
    record.solver_sat = get_size(*solver, "sat");
    record.solver_sat_late = get_size(*solver, "sat_late");
    record.solver_unsat = get_size(*solver, "unsat");
    record.solver_unknown = get_size(*solver, "unknown");
    record.solver_cache_hits = get_size(*solver, "cache_hits");
    record.solver_cache_misses = get_size(*solver, "cache_misses");
    record.solver_cache_evictions = get_size(*solver, "cache_evictions");
  }
  // Pre-static streams carry no `static` block; the record stays
  // disengaged (exactly like a --no-static run).
  if (const Json* st_json = json.find("static")) {
    StaticRecord st;
    const Json* converged = st_json->find("converged");
    st.converged = converged != nullptr && converged->as_bool();
    st.passes = get_size(*st_json, "passes");
    if (const Json* oracles = st_json->find("oracles")) {
      for (std::size_t i = 0; i < analysis::kNumOracles; ++i) {
        const Json* possible =
            oracles->find(analysis::to_string(static_cast<analysis::Oracle>(i)));
        st.oracle_possible[i] = possible == nullptr || possible->as_bool();
      }
    }
    if (const Json* branches = st_json->find("branch_classes")) {
      st.constant_branches = get_size(*branches, "constant");
      st.untainted_branches = get_size(*branches, "untainted");
      st.taint_reachable_branches = get_size(*branches, "taint_reachable");
      st.unreachable_branches = get_size(*branches, "unreachable");
    }
    st.flips_pruned = get_size(*st_json, "flips_pruned");
    st.replays_skipped = get_size(*st_json, "replays_skipped");
    st.gate_violations = get_size(*st_json, "gate_violations");
    st.analyze_ms = get_num(*st_json, "analyze_ms");
    record.static_record = st;
  }
  if (const Json* curve = json.find("coverage_curve")) {
    for (const Json& point : curve->as_array()) {
      const JsonArray& triple = point.as_array();
      if (triple.size() != 3) {
        throw util::DecodeError("coverage_curve point is not a triple");
      }
      engine::CoveragePoint cp;
      cp.iteration = static_cast<int>(triple[0].as_number());
      cp.elapsed_ms = triple[1].as_number();
      cp.branches = static_cast<std::size_t>(triple[2].as_number());
      record.curve.push_back(cp);
    }
  }
  if (const Json* findings = json.find("findings")) {
    for (const Json& entry : findings->as_array()) {
      const std::string& type_name = entry.at("type").as_string();
      const auto type = scanner::vuln_from_string(type_name);
      if (!type.has_value()) {
        throw util::DecodeError("unknown vulnerability type: " + type_name);
      }
      record.scan.found.insert(*type);
      record.scan.findings.push_back(
          scanner::Finding{*type, entry.at("detail").as_string()});
    }
  }
  if (const Json* custom = json.find("custom_findings")) {
    for (const Json& entry : custom->as_array()) {
      scanner::CustomFinding finding;
      finding.id = entry.at("id").as_string();
      finding.detail = entry.at("detail").as_string();
      record.custom.push_back(std::move(finding));
    }
  }
  // The `obs` block is intentionally not parsed back: phase totals feed the
  // campaign rollup of the run that produced them, not a merged summary.
  return record;
}

Json findings_to_json(const ContractRecord& record) {
  JsonObject out;
  out.emplace("id", Json(record.id));
  out.emplace("status", Json(std::string(to_string(record.status))));
  out.emplace("findings", findings_array(record.scan));
  out.emplace("custom_findings", custom_array(record.custom));
  return Json(std::move(out));
}

Json summary_to_json(const CampaignSummary& summary) {
  JsonObject by_type;
  for (const auto& [type, count] : summary.findings_by_type) {
    by_type.emplace(type, num(count));
  }
  JsonObject out;
  out.emplace("contracts", num(summary.contracts));
  out.emplace("ok", num(summary.ok));
  out.emplace("deadline", num(summary.deadline));
  out.emplace("io_error", num(summary.io_error));
  out.emplace("bad_input", num(summary.bad_input));
  out.emplace("failed", num(summary.failed));
  out.emplace("interrupted", num(summary.interrupted));
  out.emplace("hung", num(summary.hung));
  out.emplace("skipped", num(summary.skipped));
  out.emplace("vulnerable", num(summary.vulnerable));
  out.emplace("transactions", num(summary.total_transactions));
  out.emplace("solver_queries", num(summary.total_solver_queries));
  out.emplace("solver_cache_hits", num(summary.total_solver_cache_hits));
  out.emplace("solver_cache_misses", num(summary.total_solver_cache_misses));
  out.emplace("flips_pruned", num(summary.total_flips_pruned));
  out.emplace("replays_skipped", num(summary.total_replays_skipped));
  out.emplace("gate_violations", num(summary.total_gate_violations));
  out.emplace("solver_ms", num(summary.total_solver_ms));
  out.emplace("wall_ms", num(summary.wall_ms));
  out.emplace("findings_by_type", Json(std::move(by_type)));
  if (!summary.phases.empty()) {
    out.emplace("obs", obs::phase_totals_json(summary.phases));
  }
  return Json(std::move(out));
}

std::size_t write_records_jsonl(std::ostream& out,
                                const CampaignReport& report) {
  util::JsonlWriter writer(out);
  for (const auto& record : report.records) {
    writer.write(record_to_json(record));
  }
  return writer.lines();
}

}  // namespace wasai::campaign
