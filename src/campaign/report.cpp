#include "campaign/report.hpp"

#include "obs/trace_export.hpp"
#include "util/jsonl.hpp"

namespace wasai::campaign {

namespace {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json num(double v) { return Json(v); }
Json num(std::size_t v) { return Json(static_cast<double>(v)); }
Json num(int v) { return Json(static_cast<double>(v)); }

Json findings_array(const scanner::Report& scan) {
  JsonArray findings;
  findings.reserve(scan.findings.size());
  for (const auto& finding : scan.findings) {
    JsonObject entry;
    entry.emplace("type", Json(std::string(scanner::to_string(finding.type))));
    entry.emplace("detail", Json(finding.detail));
    findings.emplace_back(std::move(entry));
  }
  return Json(std::move(findings));
}

Json custom_array(const std::vector<scanner::CustomFinding>& custom) {
  JsonArray out;
  out.reserve(custom.size());
  for (const auto& finding : custom) {
    JsonObject entry;
    entry.emplace("id", Json(finding.id));
    entry.emplace("detail", Json(finding.detail));
    out.emplace_back(std::move(entry));
  }
  return Json(std::move(out));
}

}  // namespace

Json record_to_json(const ContractRecord& record) {
  JsonObject timings;
  timings.emplace("load_ms", num(record.timings.load_ms));
  timings.emplace("init_ms", num(record.timings.init_ms));
  timings.emplace("fuzz_ms", num(record.timings.fuzz_ms));
  timings.emplace("solver_ms", num(record.timings.solver_ms));
  timings.emplace("total_ms", num(record.timings.total_ms));

  JsonArray curve;
  curve.reserve(record.curve.size());
  for (const auto& point : record.curve) {
    JsonArray triple;
    triple.emplace_back(num(point.iteration));
    triple.emplace_back(num(point.elapsed_ms));
    triple.emplace_back(num(point.branches));
    curve.emplace_back(std::move(triple));
  }

  JsonObject solver;
  solver.emplace("queries", num(record.solver_queries));
  solver.emplace("sat", num(record.solver_sat));
  solver.emplace("sat_late", num(record.solver_sat_late));
  solver.emplace("unsat", num(record.solver_unsat));
  solver.emplace("unknown", num(record.solver_unknown));
  solver.emplace("cache_hits", num(record.solver_cache_hits));
  solver.emplace("cache_misses", num(record.solver_cache_misses));
  solver.emplace("cache_evictions", num(record.solver_cache_evictions));

  JsonObject out;
  out.emplace("id", Json(record.id));
  out.emplace("status", Json(std::string(to_string(record.status))));
  out.emplace("attempts", num(record.attempts));
  out.emplace("timings", Json(std::move(timings)));
  out.emplace("iterations", num(record.iterations_run));
  out.emplace("transactions", num(record.transactions));
  out.emplace("transactions_per_sec", num(record.transactions_per_sec));
  out.emplace("branches", num(record.distinct_branches));
  out.emplace("adaptive_seeds", num(record.adaptive_seeds));
  out.emplace("replays", num(record.replays));
  out.emplace("replay_failures", num(record.replay_failures));
  out.emplace("solver", Json(std::move(solver)));
  out.emplace("coverage_curve", Json(std::move(curve)));
  out.emplace("findings", findings_array(record.scan));
  out.emplace("custom_findings", custom_array(record.custom));
  if (!record.error.empty()) out.emplace("error", Json(record.error));
  // Per-phase observability block; absent entirely when obs is off, so the
  // --no-obs record is the byte-identical pre-obs schema.
  if (!record.phases.empty()) {
    out.emplace("obs", obs::phase_totals_json(record.phases));
  }
  return Json(std::move(out));
}

Json findings_to_json(const ContractRecord& record) {
  JsonObject out;
  out.emplace("id", Json(record.id));
  out.emplace("status", Json(std::string(to_string(record.status))));
  out.emplace("findings", findings_array(record.scan));
  out.emplace("custom_findings", custom_array(record.custom));
  return Json(std::move(out));
}

Json summary_to_json(const CampaignSummary& summary) {
  JsonObject by_type;
  for (const auto& [type, count] : summary.findings_by_type) {
    by_type.emplace(type, num(count));
  }
  JsonObject out;
  out.emplace("contracts", num(summary.contracts));
  out.emplace("ok", num(summary.ok));
  out.emplace("deadline", num(summary.deadline));
  out.emplace("io_error", num(summary.io_error));
  out.emplace("bad_input", num(summary.bad_input));
  out.emplace("failed", num(summary.failed));
  out.emplace("vulnerable", num(summary.vulnerable));
  out.emplace("transactions", num(summary.total_transactions));
  out.emplace("solver_queries", num(summary.total_solver_queries));
  out.emplace("solver_cache_hits", num(summary.total_solver_cache_hits));
  out.emplace("solver_cache_misses", num(summary.total_solver_cache_misses));
  out.emplace("solver_ms", num(summary.total_solver_ms));
  out.emplace("wall_ms", num(summary.wall_ms));
  out.emplace("findings_by_type", Json(std::move(by_type)));
  if (!summary.phases.empty()) {
    out.emplace("obs", obs::phase_totals_json(summary.phases));
  }
  return Json(std::move(out));
}

std::size_t write_records_jsonl(std::ostream& out,
                                const CampaignReport& report) {
  util::JsonlWriter writer(out);
  for (const auto& record : report.records) {
    writer.write(record_to_json(record));
  }
  return writer.lines();
}

}  // namespace wasai::campaign
