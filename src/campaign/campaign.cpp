#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <new>
#include <sstream>
#include <thread>

#include "abi/abi_json.hpp"

namespace wasai::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return util::Bytes(s.begin(), s.end());
}

/// Malformed input is deterministic — retrying cannot help. Everything
/// else (a z3 hiccup, a transient resource failure) gets another attempt.
bool is_permanent_input_fault(const util::Error& e) {
  return dynamic_cast<const util::DecodeError*>(&e) != nullptr ||
         dynamic_cast<const util::ValidationError*>(&e) != nullptr;
}

void fill_analysis(ContractRecord& record, const AnalysisResult& result) {
  record.scan = result.report;
  record.custom = result.details.custom;
  record.curve = result.details.curve;
  record.transactions = result.details.transactions;
  record.distinct_branches = result.details.distinct_branches;
  record.adaptive_seeds = result.details.adaptive_seeds;
  record.replays = result.details.replays;
  record.replay_failures = result.details.replay_failures;
  record.solver_queries = result.details.solver_queries;
  record.solver_sat = result.details.solver_sat;
  record.solver_sat_late = result.details.solver_sat_late;
  record.solver_unsat = result.details.solver_unsat;
  record.solver_unknown = result.details.solver_unknown;
  record.solver_cache_hits = result.details.solver_cache_hits;
  record.solver_cache_misses = result.details.solver_cache_misses;
  record.solver_cache_evictions = result.details.solver_cache_evictions;
  if (result.details.fuzz_ms > 0) {
    record.transactions_per_sec =
        static_cast<double>(result.details.transactions) /
        (result.details.fuzz_ms / 1000.0);
  }
  record.fuzz_shards = result.details.fuzz_shards;
  record.shard_transactions = result.details.shard_transactions;
  if (result.details.static_report.has_value()) {
    const analysis::StaticReport& sr = *result.details.static_report;
    StaticRecord st;
    st.converged = sr.converged;
    st.passes = sr.dataflow_passes;
    for (std::size_t i = 0; i < analysis::kNumOracles; ++i) {
      st.oracle_possible[i] = sr.oracles[i].possible;
    }
    st.constant_branches = sr.constant_branches;
    st.untainted_branches = sr.untainted_branches;
    st.taint_reachable_branches = sr.taint_reachable_branches;
    st.unreachable_branches = sr.unreachable_branches;
    st.flips_pruned = result.details.flips_pruned;
    st.replays_skipped = result.details.replays_skipped;
    st.gate_violations = result.details.oracle_gate_violations;
    st.analyze_ms = sr.analyze_ms;
    record.static_record = st;
  }
  record.iterations_run = result.details.iterations_run;
  record.timings.init_ms = result.init_ms;
  record.timings.fuzz_ms = result.details.fuzz_ms;
  record.timings.solver_ms = result.details.solver_wall_ms;
  record.status = result.details.deadline_hit ? ContractStatus::Deadline
                                              : ContractStatus::Ok;
}

// -------------------------------------------------------- shared run state

/// Lifecycle of one input slot. Exactly one writer ever touches the record:
/// the worker that CASes Running -> Done, or the watchdog that CASes
/// Running -> Abandoned (and then writes the `hung` record itself).
enum SlotState : int {
  kSlotOpen = 0,      // not claimed (stays Open if shutdown preempts it)
  kSlotRunning = 1,   // claimed by a worker
  kSlotDone = 2,      // worker stored its record
  kSlotAbandoned = 3  // watchdog stored a `hung` record
};

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// One worker thread's seat at the pool. Seats are never removed — a
/// watchdog-abandoned (zombie) thread keeps a pointer to its seat, which
/// the owning CampaignState keeps alive for as long as any thread runs.
struct Seat {
  std::thread thread;
  obs::Obs* obs = nullptr;
  std::atomic<std::size_t> slot{kNoSlot};    // input index being analyzed
  std::atomic<std::int64_t> claimed_at_ns{0};
  std::atomic<bool> abandoned{false};
  /// Exactly-once retirement latch: whoever wins (worker on clean exit,
  /// watchdog on escalation) decrements the live-worker count.
  std::atomic<bool> retired{false};
};

/// Everything workers, the watchdog and run() share. Held by shared_ptr so
/// an abandoned zombie thread keeps the state (its inputs, its seat, the
/// record slots it may still CAS-lose on) alive even after run() returned —
/// the state leaks only if a zombie never wakes up, which is the safe
/// direction.
struct CampaignState {
  CampaignState(CampaignOptions opts, const std::vector<ContractInput>& in)
      : options(std::move(opts)),
        inputs(in),
        records(in.size()),
        slots(in.size()),
        digests(in.size()) {}

  const CampaignOptions options;
  const std::vector<ContractInput> inputs;  // owned copy: zombies outlive
                                            // the caller's vector
  std::vector<ContractRecord> records;
  std::vector<std::atomic<int>> slots;
  std::atomic<std::size_t> next{0};

  /// Content digest per slot, published by the worker during the load phase
  /// (before analysis can wedge) so the watchdog can stamp it into a `hung`
  /// record without re-reading files from a monitoring thread.
  std::mutex digest_mu;
  std::vector<std::string> digests;

  std::mutex seats_mu;
  std::vector<std::unique_ptr<Seat>> seats;
  unsigned next_track = 0;

  /// Drain accounting: live = seats spawned minus seats retired. When it
  /// hits zero no further record can appear and run() may collect.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int live_workers = 0;

  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;

  [[nodiscard]] bool cancelled() const {
    return options.cancel != nullptr && options.cancel->expired();
  }

  void retire(Seat* seat) {
    bool expected = false;
    if (!seat->retired.compare_exchange_strong(expected, true)) return;
    {
      std::lock_guard<std::mutex> lock(done_mu);
      --live_workers;
    }
    done_cv.notify_all();
  }
};

// ------------------------------------------------------------ one contract

ContractRecord run_one(CampaignState& state, std::size_t index,
                       obs::Obs* obs) {
  const CampaignOptions& options = state.options;
  const ContractInput& input = state.inputs[index];
  ContractRecord record;
  record.id = input.id;
  const auto start = Clock::now();
  const std::size_t obs_mark = obs != nullptr ? obs->mark() : 0;
  const auto campaign_cancelled = [&] {
    return options.cancel != nullptr && options.cancel->expired();
  };

  const auto body = [&] {
    // ---- load phase: file reads and ABI parse, contained per contract --
    util::Bytes wasm_bytes;
    abi::Abi contract_abi;
    try {
      const obs::Span load_span(obs, obs::span_name::kLoad);
      wasm_bytes = input.wasm_path.empty() ? input.wasm
                                           : read_file(input.wasm_path);
      std::string abi_json = input.abi_json;
      if (!input.abi_path.empty()) {
        const auto bytes = read_file(input.abi_path);
        abi_json.assign(bytes.begin(), bytes.end());
      }
      record.digest = content_digest(wasm_bytes, abi_json);
      {
        // Published before analysis starts: if this contract wedges, the
        // watchdog stamps the digest into the `hung` record from here.
        std::lock_guard<std::mutex> lock(state.digest_mu);
        state.digests[index] = record.digest;
      }
      contract_abi = abi::abi_from_json(abi_json);
    } catch (const util::UsageError& e) {
      record.status = ContractStatus::IoError;
      record.error = e.what();
      return;
    } catch (const util::Error& e) {
      record.status = ContractStatus::BadInput;
      record.error = e.what();
      return;
    }
    record.timings.load_ms = ms_since(start);

    // ---- resume skip: this content was already analyzed ----------------
    if (options.skip_digests.contains(record.digest)) {
      record.status = ContractStatus::Skipped;
      return;
    }

    // ---- analysis phase: bounded retry around the whole pipeline ------
    for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
      record.attempts = attempt;
      AnalysisOptions analysis;
      analysis.fuzz = options.fuzz;
      analysis.fuzz.obs = obs;
      if (options.deadline_ms > 0 || options.cancel != nullptr) {
        // Per-contract deadline token, parented to the campaign-wide
        // shutdown token: a SIGINT trips every in-flight contract at once.
        analysis.fuzz.cancel = util::CancelToken::with_deadline(
            options.deadline_ms, options.cancel);
      }
      try {
        const AnalysisResult result =
            options.analyze_fn != nullptr
                ? options.analyze_fn(wasm_bytes, contract_abi, analysis)
                : analyze(wasm_bytes, contract_abi, analysis);
        fill_analysis(record, result);
        record.error.clear();
        if (record.status == ContractStatus::Deadline &&
            campaign_cancelled()) {
          // The loop unwound because the campaign is shutting down, not
          // because this contract exhausted its own budget: the partial
          // payload stands, but a resume must re-analyze it.
          record.status = ContractStatus::Interrupted;
        }
        break;
      } catch (const util::Error& e) {
        record.error = e.what();
        if (is_permanent_input_fault(e)) {
          record.status = ContractStatus::BadInput;
          break;
        }
        record.status = ContractStatus::Failed;
      } catch (const std::bad_alloc&) {
        // Resource exhaustion is not a transient solver hiccup: retrying
        // on a memory-starved worker just thrashes (and usually throws the
        // same bad_alloc slower). Fail fast, keep the pool healthy.
        record.error = "out of memory (std::bad_alloc)";
        record.status = ContractStatus::Failed;
        break;
      } catch (const std::exception& e) {
        // z3::exception and friends do not derive util::Error; treat them
        // as transient solver failures and retry.
        record.error = e.what();
        record.status = ContractStatus::Failed;
      } catch (...) {
        record.error = "unknown exception";
        record.status = ContractStatus::Failed;
      }
      if (campaign_cancelled()) {
        // Shutdown arrived between attempts; drain instead of retrying.
        record.status = ContractStatus::Interrupted;
        break;
      }
    }
  };

  {
    // Root span for this contract, closed (RAII, even on the fault paths)
    // BEFORE the slice is aggregated: the record's phase block therefore
    // includes `contract` itself, whose self time is exactly the wall time
    // no child phase accounts for (retry bookkeeping, analyzer teardown).
    // Summed self times telescope to the contract's inclusive time by
    // construction — the invariant the obs tests pin. Interrupted records
    // drain through this same unwind, so their spans close too.
    const obs::Span contract_span(obs, obs::span_name::kContract, input.id);
    body();
  }
  record.timings.total_ms = ms_since(start);
  if (obs != nullptr) {
    obs->count("campaign.contracts");
    record.phases = obs->aggregate_since(obs_mark);
  }
  return record;
}

// ------------------------------------------------------------ worker loop

void worker_loop(const std::shared_ptr<CampaignState>& state, Seat* seat) {
  for (;;) {
    if (seat->abandoned.load()) break;  // zombie woke up: stand down
    if (state->cancelled()) break;      // graceful shutdown: stop claiming
    const std::size_t index = state->next.fetch_add(1);
    if (index >= state->inputs.size()) break;

    state->slots[index].store(kSlotRunning);
    seat->claimed_at_ns.store(
        Clock::now().time_since_epoch().count());
    seat->slot.store(index);

    ContractRecord record = run_one(*state, index, seat->obs);
    seat->slot.store(kNoSlot);

    int expected = kSlotRunning;
    if (state->slots[index].compare_exchange_strong(expected, kSlotDone)) {
      state->records[index] = std::move(record);
    } else {
      // The watchdog abandoned this slot (and this seat) while we were
      // wedged; the hung record stands, ours is dropped. Exit without
      // touching any more shared state.
      break;
    }
  }
  state->retire(seat);
}

void spawn_seat(const std::shared_ptr<CampaignState>& state) {
  // seats_mu must be held by the caller.
  auto seat = std::make_unique<Seat>();
  if (state->options.obs != nullptr) {
    seat->obs = &state->options.obs->track(
        "worker-" + std::to_string(state->next_track));
  }
  ++state->next_track;
  {
    std::lock_guard<std::mutex> lock(state->done_mu);
    ++state->live_workers;
  }
  Seat* raw = seat.get();
  raw->thread = std::thread(worker_loop, state, raw);
  state->seats.push_back(std::move(seat));
}

// --------------------------------------------------------------- watchdog

void watchdog_loop(const std::shared_ptr<CampaignState>& state) {
  const CampaignOptions& options = state->options;
  const double limit_ms = options.deadline_ms * options.hung_grace;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->wd_mu);
      state->wd_cv.wait_for(
          lock,
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options.watchdog_poll_ms)),
          [&] { return state->wd_stop; });
      if (state->wd_stop) return;
    }
    std::lock_guard<std::mutex> seats_lock(state->seats_mu);
    // Escalate every wedged seat: the cooperative deadline had its chance
    // (and then `hung_grace` times more). The contract is recorded as hung,
    // the worker thread is abandoned in place — std::thread offers no safe
    // kill, and the wedge is usually inside a Z3 query that ignores its
    // soft timeout — and a replacement seat keeps the pool at strength.
    const std::size_t seats_now = state->seats.size();
    for (std::size_t s = 0; s < seats_now; ++s) {
      Seat* seat = state->seats[s].get();
      if (seat->abandoned.load()) continue;
      const std::size_t index = seat->slot.load();
      if (index == kNoSlot) continue;
      const auto claimed_at =
          Clock::time_point(Clock::duration(seat->claimed_at_ns.load()));
      const double elapsed = ms_since(claimed_at);
      if (elapsed <= limit_ms) continue;
      int expected = kSlotRunning;
      if (!state->slots[index].compare_exchange_strong(expected,
                                                       kSlotAbandoned)) {
        continue;  // the worker finished in the meantime — not wedged
      }
      ContractRecord hung;
      hung.id = state->inputs[index].id;
      {
        std::lock_guard<std::mutex> digest_lock(state->digest_mu);
        hung.digest = state->digests[index];
      }
      hung.status = ContractStatus::Hung;
      hung.attempts = 1;
      hung.timings.total_ms = elapsed;
      {
        std::ostringstream msg;
        msg << "watchdog: contract ignored its cooperative deadline ("
            << elapsed << " ms > " << options.deadline_ms << " ms x "
            << options.hung_grace << " grace); worker thread abandoned";
        hung.error = msg.str();
      }
      state->records[index] = std::move(hung);
      seat->abandoned.store(true);
      if (seat->obs != nullptr) seat->obs->abandon();
      state->retire(seat);
      spawn_seat(state);
    }
  }
}

}  // namespace

const char* to_string(ContractStatus s) {
  switch (s) {
    case ContractStatus::Ok:
      return "ok";
    case ContractStatus::Deadline:
      return "deadline";
    case ContractStatus::IoError:
      return "io-error";
    case ContractStatus::BadInput:
      return "bad-input";
    case ContractStatus::Failed:
      return "failed";
    case ContractStatus::Interrupted:
      return "interrupted";
    case ContractStatus::Hung:
      return "hung";
    case ContractStatus::Skipped:
      return "skipped";
  }
  return "?";
}

std::string content_digest(const util::Bytes& wasm,
                           const std::string& abi_json) {
  util::Digest d;
  d.bytes(wasm);
  d.u8(0);  // separator: (wasm, abi) pairs must not collide on shifts
  for (const char c : abi_json) d.u8(static_cast<std::uint8_t>(c));
  return d.hex();
}

CampaignSummary summarize_records(
    const std::vector<ContractRecord>& records) {
  CampaignSummary s;
  s.contracts = records.size();
  std::map<std::string, std::size_t> by_type;
  for (const auto& record : records) {
    switch (record.status) {
      case ContractStatus::Ok:
        ++s.ok;
        break;
      case ContractStatus::Deadline:
        ++s.deadline;
        break;
      case ContractStatus::IoError:
        ++s.io_error;
        break;
      case ContractStatus::BadInput:
        ++s.bad_input;
        break;
      case ContractStatus::Failed:
        ++s.failed;
        break;
      case ContractStatus::Interrupted:
        ++s.interrupted;
        break;
      case ContractStatus::Hung:
        ++s.hung;
        break;
      case ContractStatus::Skipped:
        ++s.skipped;  // defensive: run() drops these before summarizing
        break;
    }
    if (!record.completed()) continue;
    if (!record.scan.findings.empty() || !record.custom.empty()) {
      ++s.vulnerable;
    }
    for (const auto& finding : record.scan.findings) {
      ++by_type[scanner::to_string(finding.type)];
    }
    for (const auto& finding : record.custom) {
      ++by_type[finding.id];
    }
    s.total_transactions += record.transactions;
    s.total_solver_queries += record.solver_queries;
    s.total_solver_cache_hits += record.solver_cache_hits;
    s.total_solver_cache_misses += record.solver_cache_misses;
    if (record.static_record.has_value()) {
      s.total_flips_pruned += record.static_record->flips_pruned;
      s.total_replays_skipped += record.static_record->replays_skipped;
      s.total_gate_violations += record.static_record->gate_violations;
    }
    s.total_solver_ms += record.timings.solver_ms;
  }
  s.findings_by_type.assign(by_type.begin(), by_type.end());
  return s;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) {
    options_.jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.hung_grace < 1.0) options_.hung_grace = 1.0;
  if (options_.watchdog_poll_ms <= 0) options_.watchdog_poll_ms = 250;
}

CampaignReport CampaignRunner::run(const std::vector<ContractInput>& inputs) {
  const auto start = Clock::now();
  const auto state = std::make_shared<CampaignState>(options_, inputs);

  const unsigned n = std::min<unsigned>(
      options_.jobs,
      static_cast<unsigned>(std::max<std::size_t>(inputs.size(), 1)));
  {
    std::lock_guard<std::mutex> lock(state->seats_mu);
    for (unsigned t = 0; t < n; ++t) spawn_seat(state);
  }

  // The watchdog only makes sense with a per-contract deadline to escalate
  // from; without one there is no baseline to call "exceeded".
  std::thread watchdog;
  if (options_.deadline_ms > 0) {
    watchdog = std::thread(watchdog_loop, state);
  }

  // Drain: wait until every live (non-abandoned) worker retired. Abandoned
  // zombies are retired by the watchdog the moment it gives up on them, so
  // a wedged contract never stalls this wait — the exact failure the
  // watchdog exists for.
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] { return state->live_workers == 0; });
  }
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(state->wd_mu);
      state->wd_stop = true;
    }
    state->wd_cv.notify_all();
    watchdog.join();
  }
  {
    // Retired workers have exited (join returns immediately); abandoned
    // zombies are detached — they hold the shared state alive and stand
    // down on wake-up without touching the report.
    std::lock_guard<std::mutex> lock(state->seats_mu);
    for (auto& seat : state->seats) {
      if (!seat->thread.joinable()) continue;
      if (seat->abandoned.load()) {
        seat->thread.detach();
      } else {
        seat->thread.join();
      }
    }
  }

  // ---- collect + aggregate ---------------------------------------------
  CampaignReport report;
  report.records.reserve(inputs.size());
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const int slot = state->slots[i].load();
    if (slot != kSlotDone && slot != kSlotAbandoned) continue;  // never ran
    if (state->records[i].status == ContractStatus::Skipped) {
      ++skipped;
      continue;
    }
    report.records.push_back(std::move(state->records[i]));
  }
  report.summary = summarize_records(report.records);
  report.summary.skipped = skipped;
  // Campaign rollup: merge the per-record slices (workers are joined, so
  // the record totals are final). Using the record slices rather than
  // Registry::aggregate_all keeps the rollup scoped to THIS run even when
  // the registry is shared across campaigns.
  for (const auto& record : report.records) {
    obs::merge_totals(report.summary.phases, record.phases);
  }
  report.summary.wall_ms = ms_since(start);
  return report;
}

std::vector<ContractInput> scan_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw util::UsageError(dir + " is not a directory");
  }
  std::vector<ContractInput> inputs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".wasm") continue;
    fs::path abi_path = path;
    abi_path.replace_extension(".abi");
    if (!fs::exists(abi_path)) continue;  // unpaired binary: not a contract
    ContractInput input;
    input.id = path.stem().string();
    input.wasm_path = path.string();
    input.abi_path = abi_path.string();
    inputs.push_back(std::move(input));
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const ContractInput& a, const ContractInput& b) {
              return a.wasm_path < b.wasm_path;
            });
  return inputs;
}

}  // namespace wasai::campaign
