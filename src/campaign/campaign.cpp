#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "abi/abi_json.hpp"

namespace wasai::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return util::Bytes(s.begin(), s.end());
}

/// Malformed input is deterministic — retrying cannot help. Everything
/// else (a z3 hiccup, a transient resource failure) gets another attempt.
bool is_permanent_input_fault(const util::Error& e) {
  return dynamic_cast<const util::DecodeError*>(&e) != nullptr ||
         dynamic_cast<const util::ValidationError*>(&e) != nullptr;
}

void fill_analysis(ContractRecord& record, const AnalysisResult& result) {
  record.scan = result.report;
  record.custom = result.details.custom;
  record.curve = result.details.curve;
  record.transactions = result.details.transactions;
  record.distinct_branches = result.details.distinct_branches;
  record.adaptive_seeds = result.details.adaptive_seeds;
  record.replays = result.details.replays;
  record.replay_failures = result.details.replay_failures;
  record.solver_queries = result.details.solver_queries;
  record.solver_sat = result.details.solver_sat;
  record.solver_sat_late = result.details.solver_sat_late;
  record.solver_unsat = result.details.solver_unsat;
  record.solver_unknown = result.details.solver_unknown;
  record.solver_cache_hits = result.details.solver_cache_hits;
  record.solver_cache_misses = result.details.solver_cache_misses;
  record.solver_cache_evictions = result.details.solver_cache_evictions;
  if (result.details.fuzz_ms > 0) {
    record.transactions_per_sec =
        static_cast<double>(result.details.transactions) /
        (result.details.fuzz_ms / 1000.0);
  }
  record.iterations_run = result.details.iterations_run;
  record.timings.init_ms = result.init_ms;
  record.timings.fuzz_ms = result.details.fuzz_ms;
  record.timings.solver_ms = result.details.solver_wall_ms;
  record.status = result.details.deadline_hit ? ContractStatus::Deadline
                                              : ContractStatus::Ok;
}

}  // namespace

const char* to_string(ContractStatus s) {
  switch (s) {
    case ContractStatus::Ok:
      return "ok";
    case ContractStatus::Deadline:
      return "deadline";
    case ContractStatus::IoError:
      return "io-error";
    case ContractStatus::BadInput:
      return "bad-input";
    case ContractStatus::Failed:
      return "failed";
  }
  return "?";
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) {
    options_.jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

ContractRecord CampaignRunner::run_one(const ContractInput& input,
                                       obs::Obs* obs) const {
  ContractRecord record;
  record.id = input.id;
  const auto start = Clock::now();
  const std::size_t obs_mark = obs != nullptr ? obs->mark() : 0;

  const auto body = [&] {
    // ---- load phase: file reads and ABI parse, contained per contract --
    util::Bytes wasm_bytes;
    abi::Abi contract_abi;
    try {
      const obs::Span load_span(obs, obs::span_name::kLoad);
      wasm_bytes = input.wasm_path.empty() ? input.wasm
                                           : read_file(input.wasm_path);
      std::string abi_json = input.abi_json;
      if (!input.abi_path.empty()) {
        const auto bytes = read_file(input.abi_path);
        abi_json.assign(bytes.begin(), bytes.end());
      }
      contract_abi = abi::abi_from_json(abi_json);
    } catch (const util::UsageError& e) {
      record.status = ContractStatus::IoError;
      record.error = e.what();
      return;
    } catch (const util::Error& e) {
      record.status = ContractStatus::BadInput;
      record.error = e.what();
      return;
    }
    record.timings.load_ms = ms_since(start);

    // ---- analysis phase: bounded retry around the whole pipeline ------
    for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
      record.attempts = attempt;
      AnalysisOptions analysis;
      analysis.fuzz = options_.fuzz;
      analysis.fuzz.obs = obs;
      if (options_.deadline_ms > 0) {
        analysis.fuzz.cancel =
            util::CancelToken::with_deadline(options_.deadline_ms);
      }
      try {
        const AnalysisResult result =
            analyze(wasm_bytes, contract_abi, analysis);
        fill_analysis(record, result);
        record.error.clear();
        break;
      } catch (const util::Error& e) {
        record.error = e.what();
        if (is_permanent_input_fault(e)) {
          record.status = ContractStatus::BadInput;
          break;
        }
        record.status = ContractStatus::Failed;
      } catch (const std::exception& e) {
        // z3::exception and friends do not derive util::Error; treat them
        // as transient solver failures and retry.
        record.error = e.what();
        record.status = ContractStatus::Failed;
      } catch (...) {
        record.error = "unknown exception";
        record.status = ContractStatus::Failed;
      }
    }
  };

  {
    // Root span for this contract, closed (RAII, even on the fault paths)
    // BEFORE the slice is aggregated: the record's phase block therefore
    // includes `contract` itself, whose self time is exactly the wall time
    // no child phase accounts for (retry bookkeeping, analyzer teardown).
    // Summed self times telescope to the contract's inclusive time by
    // construction — the invariant the obs tests pin.
    const obs::Span contract_span(obs, obs::span_name::kContract, input.id);
    body();
  }
  record.timings.total_ms = ms_since(start);
  if (obs != nullptr) {
    obs->count("campaign.contracts");
    record.phases = obs->aggregate_since(obs_mark);
  }
  return record;
}

CampaignReport CampaignRunner::run(const std::vector<ContractInput>& inputs) {
  const auto start = Clock::now();
  CampaignReport report;
  report.records.resize(inputs.size());

  // Worker pool over an atomic work index; records land in their input
  // slot, so the output order never depends on scheduling. Each worker
  // owns one observability track, so the Chrome trace export gets one row
  // per worker thread.
  std::atomic<std::size_t> next{0};
  const auto worker = [&](obs::Obs* obs) {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= inputs.size()) return;
      report.records[index] = run_one(inputs[index], obs);
    }
  };
  const unsigned n = std::min<unsigned>(
      options_.jobs,
      static_cast<unsigned>(std::max<std::size_t>(inputs.size(), 1)));
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    obs::Obs* obs =
        options_.obs != nullptr
            ? &options_.obs->track("worker-" + std::to_string(t))
            : nullptr;
    pool.emplace_back(worker, obs);
  }
  for (auto& t : pool) t.join();

  // ---- aggregate summary ----------------------------------------------
  CampaignSummary& s = report.summary;
  s.contracts = report.records.size();
  std::map<std::string, std::size_t> by_type;
  for (const auto& record : report.records) {
    switch (record.status) {
      case ContractStatus::Ok:
        ++s.ok;
        break;
      case ContractStatus::Deadline:
        ++s.deadline;
        break;
      case ContractStatus::IoError:
        ++s.io_error;
        break;
      case ContractStatus::BadInput:
        ++s.bad_input;
        break;
      case ContractStatus::Failed:
        ++s.failed;
        break;
    }
    if (!record.completed()) continue;
    if (!record.scan.findings.empty() || !record.custom.empty()) {
      ++s.vulnerable;
    }
    for (const auto& finding : record.scan.findings) {
      ++by_type[scanner::to_string(finding.type)];
    }
    for (const auto& finding : record.custom) {
      ++by_type[finding.id];
    }
    s.total_transactions += record.transactions;
    s.total_solver_queries += record.solver_queries;
    s.total_solver_cache_hits += record.solver_cache_hits;
    s.total_solver_cache_misses += record.solver_cache_misses;
    s.total_solver_ms += record.timings.solver_ms;
  }
  s.findings_by_type.assign(by_type.begin(), by_type.end());
  // Campaign rollup: merge the per-record slices (workers are joined, so
  // the record totals are final). Using the record slices rather than
  // Registry::aggregate_all keeps the rollup scoped to THIS run even when
  // the registry is shared across campaigns.
  for (const auto& record : report.records) {
    obs::merge_totals(s.phases, record.phases);
  }
  s.wall_ms = ms_since(start);
  return report;
}

std::vector<ContractInput> scan_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw util::UsageError(dir + " is not a directory");
  }
  std::vector<ContractInput> inputs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".wasm") continue;
    fs::path abi_path = path;
    abi_path.replace_extension(".abi");
    if (!fs::exists(abi_path)) continue;  // unpaired binary: not a contract
    ContractInput input;
    input.id = path.stem().string();
    input.wasm_path = path.string();
    input.abi_path = abi_path.string();
    inputs.push_back(std::move(input));
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const ContractInput& a, const ContractInput& b) {
              return a.wasm_path < b.wasm_path;
            });
  return inputs;
}

}  // namespace wasai::campaign
