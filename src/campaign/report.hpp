// JSON projection of campaign results: one JSONL line per contract plus an
// aggregate summary document. The schema is documented in README.md; tests
// and downstream tooling parse these with util::parse_json.
#pragma once

#include <ostream>

#include "campaign/campaign.hpp"
#include "util/json.hpp"

namespace wasai::campaign {

/// Full per-contract record (status, timings, counters, curve, findings).
util::Json record_to_json(const ContractRecord& record);

/// Inverse of record_to_json, used by --resume to fold a previous run's
/// record stream into the merged summary. Unknown statuses/vuln names throw
/// util::DecodeError; fields absent from older streams default to zero.
ContractRecord record_from_json(const util::Json& json);

/// Only the findings of a record ({"id", "findings", "custom"}) — the
/// stable projection used for determinism comparisons across job counts.
util::Json findings_to_json(const ContractRecord& record);

util::Json summary_to_json(const CampaignSummary& summary);

/// Write one JSONL line per record (input order). Returns lines written.
std::size_t write_records_jsonl(std::ostream& out,
                                const CampaignReport& report);

}  // namespace wasai::campaign
