// Checkpoint/resume for interrupted campaigns. A campaign's JSONL record
// stream doubles as its checkpoint: every line is flushed as it is written,
// each record carries the content digest of the analyzed bytes, and the
// stream needs no footer to be readable. Resuming therefore means: parse
// the previous stream (tolerating a torn final line from a crash or kill),
// keep the records whose outcomes are final, and hand their digests to the
// runner as skip_digests so only the unfinished remainder is re-analyzed.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "campaign/campaign.hpp"

namespace wasai::campaign {

struct ResumeState {
  /// Raw JSONL lines of the kept records, byte-identical to the previous
  /// stream (newline excluded). Rewriting the file from these lines — not
  /// from a re-serialization — is what makes resumed streams byte-stable.
  std::vector<std::string> kept_lines;
  /// The same records, parsed — input to the merged-summary computation.
  std::vector<ContractRecord> kept_records;
  /// Digests of kept records; becomes CampaignOptions::skip_digests.
  std::unordered_set<std::string> skip_digests;
  /// Records present in the stream but re-analyzed on resume (interrupted,
  /// hung, failed, io-error — non-final outcomes) — their lines are dropped.
  std::size_t dropped = 0;
  /// True when the previous stream ended mid-line (the writer was killed
  /// between write and newline) and the torn tail was discarded.
  bool torn_tail = false;
};

/// Parse a previous run's record stream. Only the FINAL line may be torn
/// (unterminated or unparseable — the crash artifact); a malformed interior
/// line means the file is not a record stream and throws util::DecodeError.
/// Throws util::UsageError when the file cannot be opened.
ResumeState load_resume_state(const std::string& path);

}  // namespace wasai::campaign
