#include "campaign/resume.hpp"

#include "campaign/report.hpp"
#include "util/jsonl.hpp"

namespace wasai::campaign {

ResumeState load_resume_state(const std::string& path) {
  const util::JsonlReadResult stream = util::read_jsonl_file(path);
  ResumeState state;
  state.torn_tail = stream.torn_tail;
  for (std::size_t i = 0; i < stream.records.size(); ++i) {
    ContractRecord record = record_from_json(stream.records[i]);
    if (!record.resumable_skip()) {
      // Non-final outcome (interrupted/hung/failed/io-error): drop the line
      // so the re-analysis on resume is the only record of this contract.
      ++state.dropped;
      continue;
    }
    if (!record.digest.empty()) {
      state.skip_digests.insert(record.digest);
    }
    state.kept_lines.push_back(stream.lines[i]);
    state.kept_records.push_back(std::move(record));
  }
  return state;
}

}  // namespace wasai::campaign
