#include "abi/asset.hpp"

#include <charconv>
#include <cmath>

#include "util/error.hpp"

namespace wasai::abi {

using util::DecodeError;

Symbol Symbol::from_code(std::uint8_t precision, std::string_view code) {
  if (code.empty() || code.size() > 7) {
    throw DecodeError("symbol code must be 1-7 characters");
  }
  std::uint64_t value = precision;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c < 'A' || c > 'Z') {
      throw DecodeError("symbol code must be uppercase A-Z: " +
                        std::string(code));
    }
    value |= static_cast<std::uint64_t>(c) << (8 * (i + 1));
  }
  return Symbol(value);
}

std::string Symbol::code() const {
  std::string out;
  std::uint64_t v = value_ >> 8;
  while (v != 0) {
    out.push_back(static_cast<char>(v & 0xff));
    v >>= 8;
  }
  return out;
}

Asset Asset::from_string(std::string_view s) {
  const auto space = s.find(' ');
  if (space == std::string_view::npos) {
    throw DecodeError("asset missing symbol: " + std::string(s));
  }
  const std::string_view amount_str = s.substr(0, space);
  const std::string_view code = s.substr(space + 1);

  const auto dot = amount_str.find('.');
  std::uint8_t precision = 0;
  std::string digits;
  if (dot == std::string_view::npos) {
    digits = std::string(amount_str);
  } else {
    const auto frac = amount_str.substr(dot + 1);
    precision = static_cast<std::uint8_t>(frac.size());
    digits = std::string(amount_str.substr(0, dot)) + std::string(frac);
  }
  std::int64_t amount = 0;
  const char* begin = digits.data();
  const char* end = digits.data() + digits.size();
  const auto [ptr, ec] = std::from_chars(begin, end, amount);
  if (ec != std::errc() || ptr != end) {
    throw DecodeError("bad asset amount: " + std::string(s));
  }
  return Asset{amount, Symbol::from_code(precision, code)};
}

std::string Asset::to_string() const {
  const std::uint8_t prec = symbol.precision();
  std::int64_t whole = amount;
  std::int64_t frac = 0;
  std::int64_t scale = 1;
  for (std::uint8_t i = 0; i < prec; ++i) scale *= 10;
  whole = amount / scale;
  frac = amount % scale;
  std::string out = std::to_string(whole);
  if (prec > 0) {
    std::string frac_str = std::to_string(frac < 0 ? -frac : frac);
    frac_str.insert(0, prec - frac_str.size(), '0');
    out += "." + frac_str;
  }
  return out + " " + symbol.code();
}

Symbol eos_symbol() { return Symbol::from_code(4, "EOS"); }

Asset eos(std::int64_t milli_amount) { return Asset{milli_amount, eos_symbol()}; }

}  // namespace wasai::abi
