// EOSIO account/action names: 12-character base-32 strings packed into a
// 64-bit integer, exactly as the `N(...)` macro / name type of the EOSIO SDK.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace wasai::abi {

class Name {
 public:
  constexpr Name() = default;
  constexpr explicit Name(std::uint64_t value) : value_(value) {}

  /// Parse a name string ([.1-5a-z], up to 12 chars + restricted 13th).
  /// Throws util::DecodeError on invalid characters or length.
  static Name from_string(std::string_view s);

  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool empty() const { return value_ == 0; }

  auto operator<=>(const Name&) const = default;

 private:
  std::uint64_t value_ = 0;
};

/// Convenience literal-style helper mirroring the SDK's N(...) macro.
inline Name name(std::string_view s) { return Name::from_string(s); }

}  // namespace wasai::abi
