#include "abi/abi_json.hpp"

#include <map>
#include <sstream>

#include "util/json.hpp"

namespace wasai::abi {

using util::DecodeError;
using util::Json;

const char* param_type_name(ParamType type) {
  switch (type) {
    case ParamType::Name:
      return "name";
    case ParamType::Asset:
      return "asset";
    case ParamType::String:
      return "string";
    case ParamType::U64:
      return "uint64";
    case ParamType::I64:
      return "int64";
    case ParamType::U32:
      return "uint32";
    case ParamType::F64:
      return "float64";
  }
  return "?";
}

ParamType param_type_from_name(const std::string& name) {
  static const std::map<std::string, ParamType> kTypes = {
      {"name", ParamType::Name},     {"account_name", ParamType::Name},
      {"asset", ParamType::Asset},   {"string", ParamType::String},
      {"uint64", ParamType::U64},    {"int64", ParamType::I64},
      {"uint32", ParamType::U32},    {"float64", ParamType::F64},
  };
  const auto it = kTypes.find(name);
  if (it == kTypes.end()) {
    throw DecodeError("abi: unsupported field type '" + name + "'");
  }
  return it->second;
}

Abi abi_from_json(std::string_view json_text) {
  const Json doc = util::parse_json(json_text);

  // struct name -> ordered field types
  std::map<std::string, std::vector<ParamType>> structs;
  if (const Json* struct_list = doc.find("structs")) {
    for (const auto& s : struct_list->as_array()) {
      std::vector<ParamType> fields;
      for (const auto& field : s.at("fields").as_array()) {
        fields.push_back(
            param_type_from_name(field.at("type").as_string()));
      }
      structs.emplace(s.at("name").as_string(), std::move(fields));
    }
  }

  Abi abi;
  if (const Json* actions = doc.find("actions")) {
    for (const auto& action : actions->as_array()) {
      ActionDef def;
      def.name = Name::from_string(action.at("name").as_string());
      const std::string& type = action.at("type").as_string();
      const auto it = structs.find(type);
      if (it == structs.end()) {
        throw DecodeError("abi: action '" + action.at("name").as_string() +
                          "' references unknown struct '" + type + "'");
      }
      def.params = it->second;
      abi.actions.push_back(std::move(def));
    }
  }
  return abi;
}

std::string abi_to_json(const Abi& abi) {
  std::ostringstream os;
  os << "{\n  \"version\": \"eosio::abi/1.1\",\n  \"structs\": [";
  bool first = true;
  for (const auto& action : abi.actions) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << action.name.to_string()
       << "\", \"base\": \"\", \"fields\": [";
    for (std::size_t i = 0; i < action.params.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"name\": \"p" << i << "\", \"type\": \""
         << param_type_name(action.params[i]) << "\"}";
    }
    os << "]}";
  }
  os << "\n  ],\n  \"actions\": [";
  first = true;
  for (const auto& action : abi.actions) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << action.name.to_string()
       << "\", \"type\": \"" << action.name.to_string()
       << "\", \"ricardian_contract\": \"\"}";
  }
  os << "\n  ],\n  \"tables\": []\n}\n";
  return os.str();
}

}  // namespace wasai::abi
