#include "abi/name.hpp"

#include "util/error.hpp"

namespace wasai::abi {

namespace {

constexpr char kCharmap[] = ".12345abcdefghijklmnopqrstuvwxyz";

std::uint64_t char_to_symbol(char c) {
  if (c >= 'a' && c <= 'z') return static_cast<std::uint64_t>(c - 'a') + 6;
  if (c >= '1' && c <= '5') return static_cast<std::uint64_t>(c - '1') + 1;
  if (c == '.') return 0;
  throw util::DecodeError(std::string("invalid name character '") + c + "'");
}

}  // namespace

Name Name::from_string(std::string_view s) {
  if (s.size() > 13) {
    throw util::DecodeError("name longer than 13 characters: " +
                            std::string(s));
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    const std::uint64_t c = i < s.size() ? char_to_symbol(s[i]) : 0;
    value |= (c & 0x1f) << (64 - 5 * (i + 1));
  }
  if (s.size() == 13) {
    const std::uint64_t c = char_to_symbol(s[12]);
    if (c > 0x0f) {
      throw util::DecodeError("13th name character out of range in " +
                              std::string(s));
    }
    value |= c;
  }
  return Name(value);
}

std::string Name::to_string() const {
  std::string out(13, '.');
  std::uint64_t tmp = value_;
  for (int i = 12; i >= 0; --i) {
    const auto c = static_cast<std::size_t>(tmp & (i == 12 ? 0x0f : 0x1f));
    out[static_cast<std::size_t>(i)] = kCharmap[c];
    tmp >>= (i == 12 ? 4 : 5);
  }
  // Trim trailing dots.
  const auto last = out.find_last_not_of('.');
  return last == std::string::npos ? "" : out.substr(0, last + 1);
}

}  // namespace wasai::abi
