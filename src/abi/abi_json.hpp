// EOSIO ABI JSON ingestion/emission: the `.abi` files the CDT compiler
// ships next to `.wasm` binaries ("eosio::abi/1.1" format, the subset with
// scalar/asset/string fields that action parameters use).
#pragma once

#include <string>

#include "abi/abi_def.hpp"

namespace wasai::abi {

/// Parse an EOSIO ABI JSON document into the library's Abi model. Throws
/// util::DecodeError for malformed JSON or unsupported field types.
Abi abi_from_json(std::string_view json_text);

/// Emit an Abi as EOSIO ABI JSON (round-trips through abi_from_json).
std::string abi_to_json(const Abi& abi);

/// ABI param type <-> EOSIO type-name strings ("name", "asset", ...).
const char* param_type_name(ParamType type);
ParamType param_type_from_name(const std::string& name);

}  // namespace wasai::abi
