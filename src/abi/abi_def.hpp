// ABI definitions: the per-contract description of action signatures that
// the EOSIO compiler emits next to the Wasm binary, and that WASAI takes as
// its second input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "abi/asset.hpp"
#include "abi/name.hpp"

namespace wasai::abi {

/// Parameter types supported by the serializer (the subset EOSIO contracts
/// use for action parameters; the paper's seeds cover exactly these).
enum class ParamType : std::uint8_t {
  Name,    // 8-byte account/action name
  Asset,   // 16-byte amount+symbol struct (passed by pointer in Wasm)
  String,  // length-prefixed bytes (passed by pointer in Wasm)
  U64,
  I64,
  U32,
  F64,
};

const char* to_string(ParamType t);

/// A runtime parameter value matching a ParamType.
using ParamValue =
    std::variant<Name, Asset, std::string, std::uint64_t, std::int64_t,
                 std::uint32_t, double>;

/// True if `value`'s alternative matches `type`.
bool matches(ParamType type, const ParamValue& value);

/// Debug rendering of a value.
std::string to_string(const ParamValue& v);

struct ActionDef {
  Name name;
  std::vector<ParamType> params;
};

/// The contract ABI: list of action signatures.
struct Abi {
  std::vector<ActionDef> actions;

  [[nodiscard]] const ActionDef* find(Name action) const {
    for (const auto& a : actions) {
      if (a.name == action) return &a;
    }
    return nullptr;
  }
};

/// The signature every eosponser must share with transfer@eosio.token:
/// transfer(name from, name to, asset quantity, string memo) — §2.1.
ActionDef transfer_action_def();

}  // namespace wasai::abi
