// EOSIO asset and symbol types. An asset is a 128-bit struct: a 64-bit
// signed amount plus a 64-bit symbol (precision byte + up to 7 uppercase
// code characters) — the layout the paper's Table 2 describes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace wasai::abi {

class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint64_t value) : value_(value) {}

  /// Construct from precision + code, e.g. (4, "EOS") -> 0x...534F4504.
  static Symbol from_code(std::uint8_t precision, std::string_view code);

  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] std::uint8_t precision() const {
    return static_cast<std::uint8_t>(value_ & 0xff);
  }
  [[nodiscard]] std::string code() const;

  auto operator<=>(const Symbol&) const = default;

 private:
  std::uint64_t value_ = 0;
};

struct Asset {
  std::int64_t amount = 0;
  Symbol symbol;

  /// Parse "100.0000 EOS" (precision = number of decimals). Throws
  /// util::DecodeError on malformed input.
  static Asset from_string(std::string_view s);

  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Asset&) const = default;
};

/// The official EOS symbol: precision 4, code "EOS".
Symbol eos_symbol();

/// Convenience: amount in 1/10^4 EOS units.
Asset eos(std::int64_t milli_amount);

}  // namespace wasai::abi
