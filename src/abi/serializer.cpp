#include "abi/serializer.hpp"

#include <bit>

#include "util/leb128.hpp"

namespace wasai::abi {

namespace {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

void pack_one(ByteWriter& w, ParamType type, const ParamValue& value) {
  switch (type) {
    case ParamType::Name:
      w.u64_le(std::get<Name>(value).value());
      break;
    case ParamType::Asset: {
      const Asset& a = std::get<Asset>(value);
      w.u64_le(static_cast<std::uint64_t>(a.amount));
      w.u64_le(a.symbol.value());
      break;
    }
    case ParamType::String: {
      const std::string& s = std::get<std::string>(value);
      util::write_uleb(w, s.size());
      w.str(s);
      break;
    }
    case ParamType::U64:
      w.u64_le(std::get<std::uint64_t>(value));
      break;
    case ParamType::I64:
      w.u64_le(static_cast<std::uint64_t>(std::get<std::int64_t>(value)));
      break;
    case ParamType::U32:
      w.u32_le(std::get<std::uint32_t>(value));
      break;
    case ParamType::F64:
      w.u64_le(std::bit_cast<std::uint64_t>(std::get<double>(value)));
      break;
  }
}

ParamValue unpack_one(ByteReader& r, ParamType type) {
  switch (type) {
    case ParamType::Name:
      return Name(r.u64_le());
    case ParamType::Asset: {
      const auto amount = static_cast<std::int64_t>(r.u64_le());
      return Asset{amount, Symbol(r.u64_le())};
    }
    case ParamType::String: {
      const auto len = util::read_uleb32(r);
      return r.str(len);
    }
    case ParamType::U64:
      return r.u64_le();
    case ParamType::I64:
      return static_cast<std::int64_t>(r.u64_le());
    case ParamType::U32:
      return r.u32_le();
    case ParamType::F64:
      return std::bit_cast<double>(r.u64_le());
  }
  throw util::DecodeError("unknown param type");
}

}  // namespace

bool matches(ParamType type, const ParamValue& value) {
  switch (type) {
    case ParamType::Name:
      return std::holds_alternative<Name>(value);
    case ParamType::Asset:
      return std::holds_alternative<Asset>(value);
    case ParamType::String:
      return std::holds_alternative<std::string>(value);
    case ParamType::U64:
      return std::holds_alternative<std::uint64_t>(value);
    case ParamType::I64:
      return std::holds_alternative<std::int64_t>(value);
    case ParamType::U32:
      return std::holds_alternative<std::uint32_t>(value);
    case ParamType::F64:
      return std::holds_alternative<double>(value);
  }
  return false;
}

Bytes pack(const ActionDef& def, const std::vector<ParamValue>& values) {
  if (values.size() != def.params.size()) {
    throw util::UsageError("pack: arity mismatch for action " +
                           def.name.to_string());
  }
  ByteWriter w;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!matches(def.params[i], values[i])) {
      throw util::UsageError("pack: parameter " + std::to_string(i) +
                             " kind mismatch for action " +
                             def.name.to_string());
    }
    pack_one(w, def.params[i], values[i]);
  }
  return std::move(w).take();
}

std::vector<ParamValue> unpack(const ActionDef& def,
                               std::span<const std::uint8_t> data) {
  ByteReader r(data);
  std::vector<ParamValue> out;
  out.reserve(def.params.size());
  for (const auto type : def.params) out.push_back(unpack_one(r, type));
  if (!r.eof()) {
    throw util::DecodeError("trailing bytes in action data for " +
                            def.name.to_string());
  }
  return out;
}

const char* to_string(ParamType t) {
  switch (t) {
    case ParamType::Name:
      return "name";
    case ParamType::Asset:
      return "asset";
    case ParamType::String:
      return "string";
    case ParamType::U64:
      return "uint64";
    case ParamType::I64:
      return "int64";
    case ParamType::U32:
      return "uint32";
    case ParamType::F64:
      return "float64";
  }
  return "?";
}

std::string to_string(const ParamValue& v) {
  struct Visitor {
    std::string operator()(const Name& n) const { return n.to_string(); }
    std::string operator()(const Asset& a) const { return a.to_string(); }
    std::string operator()(const std::string& s) const {
      return '"' + s + '"';
    }
    std::string operator()(std::uint64_t x) const { return std::to_string(x); }
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(std::uint32_t x) const { return std::to_string(x); }
    std::string operator()(double x) const { return std::to_string(x); }
  };
  return std::visit(Visitor{}, v);
}

ActionDef transfer_action_def() {
  return ActionDef{name("transfer"),
                   {ParamType::Name, ParamType::Name, ParamType::Asset,
                    ParamType::String}};
}

}  // namespace wasai::abi
