// Action-data serializer: packs parameter values into the byte stream a
// contract deserializes via read_action_data, and unpacks it again.
#pragma once

#include <span>
#include <vector>

#include "abi/abi_def.hpp"
#include "util/bytes.hpp"

namespace wasai::abi {

/// Serialize values per the action signature. Throws util::UsageError when
/// arity or variant kinds do not match the definition.
util::Bytes pack(const ActionDef& def, const std::vector<ParamValue>& values);

/// Deserialize action data per the signature; throws util::DecodeError on
/// short or trailing input.
std::vector<ParamValue> unpack(const ActionDef& def,
                               std::span<const std::uint8_t> data);

}  // namespace wasai::abi
