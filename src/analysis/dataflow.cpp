#include "analysis/dataflow.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace wasai::analysis {

namespace {

using wasm::Opcode;

constexpr std::uint8_t kTaintAll = kTaintAction | kTaintEnv;
constexpr int kMaxPasses = 64;
/// Largest read_action_data window tracked per byte; longer (or unknown)
/// lengths fall back to the blanket taint.
constexpr std::uint64_t kMaxWindowBytes = 64 * 1024;

AbsVal top_value() { return AbsVal::varying(kTaintAll); }

/// Join `v` into `into`, reporting whether `into` grew.
bool join_into(AbsVal& into, const AbsVal& v) {
  const AbsVal joined = join(into, v);
  if (joined == into) return false;
  into = joined;
  return true;
}

bool join_into(std::optional<AbsVal>& into, const AbsVal& v) {
  if (!into) {
    into = v;
    return true;
  }
  return join_into(*into, v);
}

/// True when a statically-zero operand forces the op's result to zero no
/// matter what the other (possibly tainted) operand holds. This is what
/// lets `0 << len`-style length-guard idioms classify as Constant: the
/// replayer builds the same subterm over a literal numeral, so the whole
/// condition is semantically fixed and its flip queries are unconditionally
/// unsat. Division and remainder are deliberately excluded — SMT-LIB gives
/// x/0 a total (all-ones) semantics, so `0 / tainted` is NOT a constant
/// term from the solver's point of view.
bool absorbs_to_zero(Opcode op, const AbsVal& a, const AbsVal& b) {
  const bool a_zero = a.kind == AbsVal::Kind::Const && a.konst == 0;
  const bool b_zero = b.kind == AbsVal::Kind::Const && b.konst == 0;
  switch (op) {
    case Opcode::I32Mul:
    case Opcode::I64Mul:
    case Opcode::I32And:
    case Opcode::I64And:
      return a_zero || b_zero;
    case Opcode::I32Shl:
    case Opcode::I64Shl:
    case Opcode::I32ShrS:
    case Opcode::I64ShrS:
    case Opcode::I32ShrU:
    case Opcode::I64ShrU:
    case Opcode::I32Rotl:
    case Opcode::I64Rotl:
    case Opcode::I32Rotr:
    case Opcode::I64Rotr:
      return a_zero;  // zero shifted or rotated by anything stays zero
    default:
      return false;
  }
}

/// Abstract linear memory: byte-granular taint cells at known addresses
/// plus a blanket mask covering stores through unknown addresses. Loads
/// union the blanket with the touched cells; the value itself is always
/// Varying (the replayer materializes unwritten cells as fresh variables).
class MemState {
 public:
  [[nodiscard]] std::uint8_t load(const AbsVal& addr, std::uint32_t offset,
                                  std::uint32_t width) const {
    std::uint8_t t = blanket_;
    if (addr.kind == AbsVal::Kind::Const) {
      const std::uint64_t base = addr.konst + offset;
      for (std::uint32_t b = 0; b < width; ++b) {
        const auto it = cells_.find(base + b);
        if (it != cells_.end()) t |= it->second;
      }
    } else {
      // Unknown address: any written cell could be read, and an
      // attacker-chosen address makes the read value depend on the input.
      t |= all_cells_ | addr.taint_bits();
    }
    return t;
  }

  bool store(const AbsVal& addr, std::uint32_t offset, std::uint32_t width,
             std::uint8_t value_taint, std::uint8_t addr_taint) {
    if (addr.kind == AbsVal::Kind::Const) {
      return taint_window(addr.konst + offset, width, value_taint);
    }
    // Unknown target: the value may land anywhere, and the *placement*
    // itself leaks the address taint into whatever a later load observes.
    return raise_blanket(value_taint | addr_taint);
  }

  bool taint_window(std::uint64_t base, std::uint64_t length,
                    std::uint8_t taint) {
    if (taint == 0) return false;
    if (length > kMaxWindowBytes) return raise_blanket(taint);
    bool changed = false;
    for (std::uint64_t b = 0; b < length; ++b) {
      std::uint8_t& cell = cells_[base + b];
      if ((cell | taint) != cell) {
        cell |= taint;
        changed = true;
      }
    }
    if ((all_cells_ | taint) != all_cells_) {
      all_cells_ |= taint;
      changed = true;
    }
    return changed;
  }

  bool raise_blanket(std::uint8_t taint) {
    if ((blanket_ | taint) == blanket_) return false;
    blanket_ |= taint;
    return true;
  }

  [[nodiscard]] bool action_tainted() const {
    return ((blanket_ | all_cells_) & kTaintAction) != 0;
  }

 private:
  std::map<std::uint64_t, std::uint8_t> cells_;
  std::uint8_t all_cells_ = 0;  // union of every cell taint
  std::uint8_t blanket_ = 0;    // covers stores through unknown addresses
};

/// Memory side effect of a host import.
enum class MemEffect : std::uint8_t {
  None,
  ActionWindow,  // read_action_data: taints [ptr, ptr+len) with ACTION
  EnvBlanket,    // db reads: out-buffer at unknown extent, ENV taint
  FullBlanket,   // unknown import: assume it can write anything
};

struct ImportEffect {
  std::uint8_t result_taint = 0;
  MemEffect mem = MemEffect::None;
};

ImportEffect classify_import(std::string_view field) {
  if (field == "read_action_data") {
    return {kTaintAction, MemEffect::ActionWindow};
  }
  if (field == "action_data_size") return {kTaintAction, MemEffect::None};
  // The receiver varies with the notification context the attacker sets up.
  if (field == "current_receiver") return {kTaintAll, MemEffect::None};
  if (field == "current_time" || field == "tapos_block_num" ||
      field == "tapos_block_prefix" || field == "has_auth" ||
      field == "db_find_i64" || field == "db_lowerbound_i64" ||
      field == "db_store_i64") {
    return {kTaintEnv, MemEffect::None};
  }
  if (field == "db_get_i64" || field == "db_next_i64") {
    return {kTaintEnv, MemEffect::EnvBlanket};
  }
  if (field == "db_remove_i64" || field == "db_update_i64" ||
      field == "eosio_assert" || field == "printi" ||
      field == "require_auth" || field == "require_auth2" ||
      field == "require_recipient" || field == "send_inline" ||
      field == "send_deferred") {
    return {0, MemEffect::None};
  }
  return {kTaintAll, MemEffect::FullBlanket};
}

/// One open Block/Loop/If during the abstract walk.
struct AFrame {
  Opcode op;
  std::size_t height;  // operand-stack height at entry
  std::uint8_t arity;  // 0 or 1 result values
  std::optional<AbsVal> result;
  bool live_at_entry;
};

class Interp {
 public:
  Interp(const wasm::Module& module, const CallGraph& graph,
         DataflowResult& out)
      : module_(module), graph_(graph), out_(out) {
    const std::uint32_t num_imports = module.num_imported_functions();
    for (std::uint32_t d = 0; d < module.functions.size(); ++d) {
      const std::uint32_t index = num_imports + d;
      if (!graph.reachable(index)) continue;
      const wasm::Function& fn = module.functions[d];
      const wasm::FuncType& type = module.function_type(index);
      FunctionSummary summary;
      summary.returns_value = !type.results.empty();
      // Every reachable defined function may receive action-derived
      // arguments through the dispatcher — parameters start ACTION.
      summary.locals.assign(type.params.size(),
                            AbsVal::varying(kTaintAction));
      // Declared locals are zero-initialized by the Wasm semantics.
      summary.locals.resize(type.params.size() + fn.locals.size(),
                            AbsVal::constant(0));
      out_.functions.emplace(index, std::move(summary));
    }
    // Global index space: imported globals first (opaque), then defined
    // globals seeded from their constant initializers.
    for (const auto& imp : module.imports) {
      if (imp.kind == wasm::ExternalKind::Global) {
        globals_.push_back(AbsVal::varying(kTaintEnv));
      }
    }
    for (const auto& global : module.globals) {
      globals_.push_back(AbsVal::constant(global.init_bits));
    }
  }

  /// Walk every reachable function once; returns whether any summary,
  /// global or memory fact grew.
  bool pass() {
    changed_ = false;
    const std::uint32_t num_imports = module_.num_imported_functions();
    for (std::uint32_t d = 0; d < module_.functions.size(); ++d) {
      const std::uint32_t index = num_imports + d;
      if (out_.functions.contains(index)) walk(index);
    }
    return changed_;
  }

  void finish() {
    out_.memory_action_tainted = mem_.action_tainted();
    std::vector<std::uint64_t> keys;
    keys.reserve(facts_.size());
    for (const auto& [key, fact] : facts_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t key : keys) {
      out_.branch_index.emplace(key, out_.branches.size());
      out_.branches.push_back(facts_.at(key));
    }
  }

  void discard_facts() { facts_.clear(); }

 private:
  void walk(std::uint32_t func_index) {
    func_ = func_index;
    const wasm::Function& fn = module_.defined(func_index);
    stack_.clear();
    frames_.clear();
    live_ = true;
    for (std::uint32_t i = 0; i < fn.body.size(); ++i) {
      step(fn.body[i], i);
    }
  }

  FunctionSummary& summary() { return out_.functions.at(func_); }

  AbsVal pop() {
    if (stack_.empty()) return top_value();  // malformed body: stay sound
    AbsVal v = stack_.back();
    stack_.pop_back();
    return v;
  }

  void push(const AbsVal& v) { stack_.push_back(v); }

  void note(bool grew) { changed_ = changed_ || grew; }

  void record(std::uint32_t instr, Opcode op, const AbsVal& cond) {
    BranchFact fact;
    fact.func_index = func_;
    fact.instr_index = instr;
    fact.op = op;
    fact.taint = cond.taint_bits();
    if (cond.is_constant()) {
      fact.cls = BranchClass::Constant;
    } else if (!cond.action_tainted()) {
      fact.cls = BranchClass::UntaintedInput;
    } else {
      fact.cls = BranchClass::TaintReachable;
    }
    facts_[(static_cast<std::uint64_t>(func_) << 32) | instr] = fact;
  }

  /// Join a br-carried value into the frame at label depth `d` (loops carry
  /// nothing; depth past the frame stack targets the function result).
  void branch_to(std::uint32_t depth) {
    if (depth >= frames_.size()) {
      FunctionSummary& s = summary();
      if (s.returns_value && !stack_.empty()) {
        note(join_into(s.result, stack_.back()));
      }
      return;
    }
    AFrame& frame = frames_[frames_.size() - 1 - depth];
    if (frame.op != Opcode::Loop && frame.arity == 1 && !stack_.empty()) {
      note(join_into(frame.result, stack_.back()));
    }
  }

  void call_defined(std::uint32_t callee,
                    const std::vector<AbsVal>& args) {
    auto it = out_.functions.find(callee);
    const wasm::FuncType& type = module_.function_type(callee);
    if (it != out_.functions.end()) {
      FunctionSummary& s = it->second;
      for (std::size_t p = 0; p < args.size() && p < s.locals.size(); ++p) {
        note(join_into(s.locals[p], args[p]));
      }
      if (!type.results.empty()) {
        push(s.result);
      }
    } else if (!type.results.empty()) {
      push(top_value());
    }
  }

  void call_import(std::uint32_t callee, const std::vector<AbsVal>& args,
                   std::uint32_t instr) {
    const std::string& field = module_.function_import(callee).field;
    const ImportEffect effect = classify_import(field);
    switch (effect.mem) {
      case MemEffect::None:
        break;
      case MemEffect::ActionWindow: {
        // read_action_data(ptr, len): precise window when both are known.
        const AbsVal& ptr = args.size() > 0 ? args[0] : top_value();
        const AbsVal& len = args.size() > 1 ? args[1] : top_value();
        if (ptr.kind == AbsVal::Kind::Const &&
            len.kind == AbsVal::Kind::Const) {
          note(mem_.taint_window(ptr.konst, len.konst, kTaintAction));
        } else {
          note(mem_.raise_blanket(kTaintAction));
        }
        break;
      }
      case MemEffect::EnvBlanket:
        note(mem_.raise_blanket(kTaintEnv));
        break;
      case MemEffect::FullBlanket:
        note(mem_.raise_blanket(kTaintAll));
        break;
    }
    if (field == "eosio_assert" && !args.empty()) {
      // The asserted condition is a prunable flip site, same as a branch.
      record(instr, Opcode::Call, args[0]);
    }
    if (!module_.function_type(callee).results.empty()) {
      push(AbsVal::varying(effect.result_taint));
    }
  }

  void step(const wasm::Instr& ins, std::uint32_t i) {
    const wasm::OpInfo& info = wasm::op_info(ins.op);
    if (!live_) {
      // Dead code: track nesting only; stacks are restored at else/end.
      switch (ins.op) {
        case Opcode::Block:
        case Opcode::Loop:
        case Opcode::If:
          frames_.push_back(AFrame{ins.op, stack_.size(),
                                   block_arity(ins.a), std::nullopt, false});
          break;
        case Opcode::Else:
          if (!frames_.empty() && frames_.back().live_at_entry) {
            restore_to(frames_.back());
            live_ = true;
          }
          break;
        case Opcode::End:
          end_frame();
          break;
        default:
          break;
      }
      return;
    }

    switch (info.cls) {
      case wasm::OpClass::Const:
        push(AbsVal::constant(ins.imm));
        return;
      case wasm::OpClass::Variable:
        variable_op(ins);
        return;
      case wasm::OpClass::Load: {
        const AbsVal addr = pop();
        push(AbsVal::varying(mem_.load(addr, ins.b, info.access_bytes)));
        return;
      }
      case wasm::OpClass::Store: {
        const AbsVal val = pop();
        const AbsVal addr = pop();
        note(mem_.store(addr, ins.b, info.access_bytes, val.taint_bits(),
                        addr.taint_bits()));
        return;
      }
      case wasm::OpClass::Memory:
        if (ins.op == Opcode::MemoryGrow) pop();
        push(AbsVal::varying(kTaintEnv));
        return;
      case wasm::OpClass::Unary: {
        const AbsVal a = pop();
        push(a.is_constant() ? AbsVal::const_derived()
                             : AbsVal::varying(a.taint_bits()));
        return;
      }
      case wasm::OpClass::Binary: {
        const AbsVal b = pop();
        const AbsVal a = pop();
        if (absorbs_to_zero(ins.op, a, b)) {
          push(AbsVal::constant(0));
        } else {
          push(a.is_constant() && b.is_constant()
                   ? AbsVal::const_derived()
                   : AbsVal::varying(a.taint_bits() | b.taint_bits()));
        }
        return;
      }
      case wasm::OpClass::Parametric:
        if (ins.op == Opcode::Drop) {
          pop();
        } else {  // select
          const AbsVal cond = pop();
          const AbsVal v2 = pop();
          const AbsVal v1 = pop();
          AbsVal merged = join(v1, v2);
          if (!cond.is_constant()) {
            merged = AbsVal::varying(merged.taint_bits() | cond.taint_bits());
          }
          push(merged);
        }
        return;
      case wasm::OpClass::Control:
        control_op(ins, i);
        return;
    }
  }

  void variable_op(const wasm::Instr& ins) {
    FunctionSummary& s = summary();
    switch (ins.op) {
      case Opcode::LocalGet:
        push(ins.a < s.locals.size() ? s.locals[ins.a] : top_value());
        break;
      case Opcode::LocalSet: {
        const AbsVal v = pop();
        if (ins.a < s.locals.size()) note(join_into(s.locals[ins.a], v));
        break;
      }
      case Opcode::LocalTee:
        if (!stack_.empty() && ins.a < s.locals.size()) {
          note(join_into(s.locals[ins.a], stack_.back()));
        }
        break;
      case Opcode::GlobalGet:
        push(ins.a < globals_.size() ? globals_[ins.a] : top_value());
        break;
      case Opcode::GlobalSet: {
        const AbsVal v = pop();
        if (ins.a < globals_.size()) note(join_into(globals_[ins.a], v));
        break;
      }
      default:
        break;
    }
  }

  static std::uint8_t block_arity(std::uint32_t block_type) {
    return block_type == wasm::kBlockVoid ? 0 : 1;
  }

  void restore_to(const AFrame& frame) {
    if (stack_.size() > frame.height) stack_.resize(frame.height);
  }

  void end_frame() {
    if (frames_.empty()) {
      // Function-terminating `end`: a live fall-off returns the top value.
      FunctionSummary& s = summary();
      if (live_ && s.returns_value && !stack_.empty()) {
        note(join_into(s.result, stack_.back()));
      }
      return;
    }
    AFrame frame = frames_.back();
    frames_.pop_back();
    if (live_ && frame.arity == 1 && !stack_.empty()) {
      join_into(frame.result, stack_.back());
    }
    restore_to(frame);
    if (frame.live_at_entry) {
      // Conservatively resume: the construct's exit is reachable via a br
      // or the fall-through of some arm.
      live_ = true;
      if (frame.arity == 1) {
        push(frame.result.value_or(AbsVal::constant(0)));
      }
    }
  }

  void control_op(const wasm::Instr& ins, std::uint32_t i) {
    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Block:
      case Opcode::Loop:
        frames_.push_back(AFrame{ins.op, stack_.size(), block_arity(ins.a),
                                 std::nullopt, true});
        break;
      case Opcode::If: {
        const AbsVal cond = pop();
        record(i, Opcode::If, cond);
        frames_.push_back(AFrame{ins.op, stack_.size(), block_arity(ins.a),
                                 std::nullopt, true});
        break;
      }
      case Opcode::Else:
        if (!frames_.empty()) {
          AFrame& frame = frames_.back();
          if (frame.arity == 1 && !stack_.empty()) {
            join_into(frame.result, stack_.back());
          }
          restore_to(frame);
          live_ = frame.live_at_entry;
        }
        break;
      case Opcode::End:
        end_frame();
        break;
      case Opcode::Br:
        branch_to(ins.a);
        live_ = false;
        break;
      case Opcode::BrIf: {
        const AbsVal cond = pop();
        record(i, Opcode::BrIf, cond);
        branch_to(ins.a);
        break;
      }
      case Opcode::BrTable: {
        const AbsVal idx = pop();
        record(i, Opcode::BrTable, idx);
        for (const std::uint32_t depth : ins.table) branch_to(depth);
        branch_to(ins.a);
        live_ = false;
        break;
      }
      case Opcode::Return: {
        FunctionSummary& s = summary();
        if (s.returns_value && !stack_.empty()) {
          note(join_into(s.result, stack_.back()));
        }
        live_ = false;
        break;
      }
      case Opcode::Unreachable:
        live_ = false;
        break;
      case Opcode::Call: {
        if (ins.a >= module_.num_functions()) break;
        const wasm::FuncType& type = module_.function_type(ins.a);
        std::vector<AbsVal> args(type.params.size());
        for (std::size_t p = type.params.size(); p-- > 0;) args[p] = pop();
        if (module_.is_imported_function(ins.a)) {
          call_import(ins.a, args, i);
        } else {
          call_defined(ins.a, args);
        }
        break;
      }
      case Opcode::CallIndirect: {
        if (ins.a >= module_.types.size()) break;
        const wasm::FuncType& type = module_.types[ins.a];
        pop();  // table index
        std::vector<AbsVal> args(type.params.size());
        for (std::size_t p = type.params.size(); p-- > 0;) args[p] = pop();
        indirect_call(type, args, i);
        break;
      }
      default:
        break;
    }
  }

  void indirect_call(const wasm::FuncType& type,
                     const std::vector<AbsVal>& args, std::uint32_t i) {
    // Conservative targets: every type-matched call site the graph found
    // at this (caller, instr) position.
    std::optional<AbsVal> result;
    bool any = false;
    for (const CallSite& site : graph_.sites()) {
      if (site.caller != func_ || site.instr_index != i || !site.indirect) {
        continue;
      }
      any = true;
      if (module_.is_imported_function(site.callee)) {
        const std::size_t before = stack_.size();
        call_import(site.callee, args, i);
        if (stack_.size() > before) join_into(result, pop());
      } else {
        const std::size_t before = stack_.size();
        call_defined(site.callee, args);
        if (stack_.size() > before) join_into(result, pop());
      }
    }
    if (!type.results.empty()) {
      // An empty candidate set means the call can only trap; the pushed
      // value is never observed, but keep the stack shape balanced.
      push(any ? result.value_or(top_value()) : top_value());
    }
  }

  const wasm::Module& module_;
  const CallGraph& graph_;
  DataflowResult& out_;
  std::vector<AbsVal> globals_;
  MemState mem_;
  std::unordered_map<std::uint64_t, BranchFact> facts_;

  // Per-walk state.
  std::uint32_t func_ = 0;
  std::vector<AbsVal> stack_;
  std::vector<AFrame> frames_;
  bool live_ = true;
  bool changed_ = false;
};

}  // namespace

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::Const && b.kind == AbsVal::Kind::Const) {
    return a.konst == b.konst ? a : AbsVal::const_derived();
  }
  if (a.is_constant() && b.is_constant()) return AbsVal::const_derived();
  return AbsVal::varying(a.taint_bits() | b.taint_bits());
}

const char* to_string(BranchClass cls) {
  switch (cls) {
    case BranchClass::Constant:
      return "constant";
    case BranchClass::UntaintedInput:
      return "untainted";
    case BranchClass::TaintReachable:
      return "taint_reachable";
    case BranchClass::Unreachable:
      return "unreachable";
  }
  return "unknown";
}

DataflowResult run_dataflow(const wasm::Module& module,
                            const CallGraph& graph) {
  DataflowResult result;
  Interp interp(module, graph, result);
  for (result.passes = 0; result.passes < kMaxPasses; ++result.passes) {
    if (!interp.pass()) break;
  }
  if (result.passes == kMaxPasses) {
    // Fixpoint cap hit: discard all facts so nothing downstream prunes.
    result.converged = false;
    interp.discard_facts();
  }
  interp.finish();
  return result;
}

}  // namespace wasai::analysis
