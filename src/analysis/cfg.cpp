#include "analysis/cfg.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasai::analysis {

namespace {

using wasm::Opcode;

/// One open construct during the linear scan: enough to resolve a label
/// depth to its branch-target instruction (loop header, or the matching
/// `end` for blocks/ifs, whose fall-out continues the outer flow).
struct OpenCtrl {
  Opcode op;
  std::uint32_t opener;
  std::uint32_t end;
};

struct Scan {
  const std::vector<wasm::Instr>& body;
  const wasm::ControlMap& control;
  std::vector<OpenCtrl> open;

  /// Branch-target instruction index for label depth `d` at the current
  /// scan position. Depth 0 is the innermost open construct; the function
  /// frame acts as one implicit outermost block targeting the final `end`.
  [[nodiscard]] std::uint32_t target(std::uint32_t depth) const {
    if (depth >= open.size()) {
      // Branch out of the function frame: lands on the terminating `end`.
      return static_cast<std::uint32_t>(body.size()) - 1;
    }
    const OpenCtrl& c = open[open.size() - 1 - depth];
    return c.op == Opcode::Loop ? c.opener : c.end;
  }
};

}  // namespace

bool Cfg::dominates(std::uint32_t a, std::uint32_t b) const {
  if (!block_reachable(a) || !block_reachable(b)) return false;
  while (rpo_index[b] > rpo_index[a]) b = idom[b];
  return a == b;
}

Cfg build_cfg(const wasm::Function& function) {
  const std::vector<wasm::Instr>& body = function.body;
  if (body.empty()) throw util::ValidationError("cfg: empty function body");
  const wasm::ControlMap control = wasm::analyze_control(body);
  const auto n = static_cast<std::uint32_t>(body.size());

  // ---- pass 1: leaders -------------------------------------------------
  std::vector<bool> leader(n, false);
  leader[0] = true;
  Scan scan{body, control, {}};
  const auto mark = [&](std::uint32_t i) {
    if (i < n) leader[i] = true;
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    const wasm::Instr& ins = body[i];
    switch (ins.op) {
      case Opcode::Block:
      case Opcode::Loop:
      case Opcode::If:
        scan.open.push_back(OpenCtrl{ins.op, i, control.end_idx[i]});
        if (ins.op == Opcode::Loop) mark(i);  // back-edge target
        if (ins.op == Opcode::If) {
          mark(i + 1);  // then arm
          const std::uint32_t e = control.else_idx[i];
          // False edge: into the else arm, or onto the matching `end`.
          mark(e != wasm::kNoMatch ? e + 1 : control.end_idx[i]);
        }
        break;
      case Opcode::Else:
        mark(i + 1);                 // else arm (reached via the If edge)
        mark(control.end_idx[i]);    // then arm jumps over the else arm
        break;
      case Opcode::End:
        if (!scan.open.empty()) scan.open.pop_back();
        break;
      case Opcode::Br:
      case Opcode::BrIf:
        mark(scan.target(ins.a));
        mark(i + 1);
        break;
      case Opcode::BrTable:
        for (const std::uint32_t depth : ins.table) mark(scan.target(depth));
        mark(scan.target(ins.a));
        mark(i + 1);
        break;
      case Opcode::Return:
      case Opcode::Unreachable:
        mark(i + 1);
        break;
      default:
        break;
    }
  }

  // ---- pass 2: blocks + edges -----------------------------------------
  Cfg cfg;
  cfg.block_of.assign(n, kNoBlock);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (leader[i]) {
      cfg.blocks.push_back(BasicBlock{i, i, {}, {}});
    }
    cfg.block_of[i] = static_cast<std::uint32_t>(cfg.blocks.size()) - 1;
    cfg.blocks.back().end = i + 1;
  }

  scan.open.clear();
  const auto block_at = [&](std::uint32_t i) { return cfg.block_of[i]; };
  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    // Replay the control stack across this block so branch depths resolve
    // exactly as they did during the leader scan.
    std::vector<std::uint32_t>& succs = block.succs;
    for (std::uint32_t i = block.begin; i < block.end; ++i) {
      const wasm::Instr& ins = body[i];
      const bool last = i + 1 == block.end;
      switch (ins.op) {
        case Opcode::Block:
        case Opcode::Loop:
        case Opcode::If:
          scan.open.push_back(OpenCtrl{ins.op, i, control.end_idx[i]});
          if (ins.op == Opcode::If && last) {
            succs.push_back(block_at(i + 1));
            const std::uint32_t e = control.else_idx[i];
            succs.push_back(
                block_at(e != wasm::kNoMatch ? e + 1 : control.end_idx[i]));
          }
          break;
        case Opcode::Else:
          if (last) succs.push_back(block_at(control.end_idx[i]));
          break;
        case Opcode::End:
          if (!scan.open.empty()) scan.open.pop_back();
          if (last && i + 1 < n) succs.push_back(block_at(i + 1));
          break;
        case Opcode::Br:
          if (last) succs.push_back(block_at(scan.target(ins.a)));
          break;
        case Opcode::BrIf:
          if (last) {
            succs.push_back(block_at(scan.target(ins.a)));
            if (i + 1 < n) succs.push_back(block_at(i + 1));
          }
          break;
        case Opcode::BrTable:
          if (last) {
            for (const std::uint32_t depth : ins.table) {
              succs.push_back(block_at(scan.target(depth)));
            }
            succs.push_back(block_at(scan.target(ins.a)));
          }
          break;
        case Opcode::Return:
        case Opcode::Unreachable:
          break;  // no successors
        default:
          if (last && i + 1 < n) succs.push_back(block_at(i + 1));
          break;
      }
    }
    // A block ending in a non-terminator (fall-through into the next
    // leader) that was not handled above.
    if (succs.empty()) {
      const wasm::Instr& term = body[block.end - 1];
      const bool terminator =
          term.op == Opcode::Return || term.op == Opcode::Unreachable ||
          term.op == Opcode::Br || term.op == Opcode::BrTable ||
          (term.op == Opcode::End && block.end == n);
      if (!terminator && block.end < n) {
        succs.push_back(block_at(block.end));
      }
    }
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const std::uint32_t s : cfg.blocks[b].succs) {
      cfg.blocks[s].preds.push_back(b);
    }
  }

  // ---- pass 3: reverse postorder --------------------------------------
  const auto nblocks = static_cast<std::uint32_t>(cfg.blocks.size());
  std::vector<std::uint8_t> state(nblocks, 0);  // 0=new 1=open 2=done
  std::vector<std::uint32_t> post;
  post.reserve(nblocks);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < cfg.blocks[b].succs.size()) {
      const std::uint32_t s = cfg.blocks[b].succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  cfg.rpo.assign(post.rbegin(), post.rend());
  cfg.rpo_index.assign(nblocks, kNoBlock);
  for (std::uint32_t i = 0; i < cfg.rpo.size(); ++i) {
    cfg.rpo_index[cfg.rpo[i]] = i;
  }

  // ---- pass 4: dominators (Cooper–Harvey–Kennedy over RPO) -------------
  cfg.idom.assign(nblocks, kNoBlock);
  cfg.idom[0] = 0;
  const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (cfg.rpo_index[a] > cfg.rpo_index[b]) a = cfg.idom[a];
      while (cfg.rpo_index[b] > cfg.rpo_index[a]) b = cfg.idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t b : cfg.rpo) {
      if (b == 0) continue;
      std::uint32_t new_idom = kNoBlock;
      for (const std::uint32_t p : cfg.blocks[b].preds) {
        if (!cfg.block_reachable(p) || cfg.idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && cfg.idom[b] != new_idom) {
        cfg.idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return cfg;
}

}  // namespace wasai::analysis
