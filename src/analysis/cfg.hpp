// Per-function control-flow graphs (static pre-analysis layer, stage 2),
// recovered from Wasm's structured control flow: basic blocks over body
// instruction ranges, successor/predecessor edges, reverse postorder and
// immediate dominators. Block/loop/if nesting is resolved with the same
// ControlMap the interpreter and flatcode builder use, so the CFG agrees
// with runtime branching by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/control.hpp"
#include "wasm/module.hpp"

namespace wasai::analysis {

inline constexpr std::uint32_t kNoBlock = 0xffffffff;

/// One basic block: the half-open instruction range [begin, end) of the
/// function body. The entry block starts at 0; `end` of the exit-most block
/// is body.size().
struct BasicBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::vector<std::uint32_t> succs;
  std::vector<std::uint32_t> preds;
};

struct Cfg {
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry
  /// Blocks in reverse postorder of a DFS from the entry. Unreachable
  /// blocks (dead code after return/unreachable/br) are absent.
  std::vector<std::uint32_t> rpo;
  /// rpo position of each block; kNoBlock for unreachable blocks.
  std::vector<std::uint32_t> rpo_index;
  /// Immediate dominator of each block; entry's idom is itself, and
  /// unreachable blocks carry kNoBlock.
  std::vector<std::uint32_t> idom;
  /// Block containing each instruction index (kNoBlock only for
  /// out-of-range queries).
  std::vector<std::uint32_t> block_of;

  [[nodiscard]] bool block_reachable(std::uint32_t block) const {
    return block < rpo_index.size() && rpo_index[block] != kNoBlock;
  }
  /// True when instruction `i` lies in a reachable block.
  [[nodiscard]] bool instr_reachable(std::uint32_t i) const {
    return i < block_of.size() && block_reachable(block_of[i]);
  }
  /// True when block `a` dominates block `b` (reflexive). False when
  /// either block is unreachable.
  [[nodiscard]] bool dominates(std::uint32_t a, std::uint32_t b) const;
};

/// Build the CFG of one defined function. Throws util::ValidationError on
/// unbalanced control (the validator rejects such bodies anyway).
Cfg build_cfg(const wasm::Function& function);

}  // namespace wasai::analysis
