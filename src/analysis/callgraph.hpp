// Whole-module call graph (static pre-analysis layer, stage 1): direct
// `call` edges plus a conservative resolution of every `call_indirect` to
// the type-matched element-segment entries of the module's table. The
// graph is the reachability backbone the oracle gates and the dataflow
// pass stand on: an import that is not reachable from `apply` can never
// appear in a trace, so any oracle keyed on that import is statically
// impossible.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "wasm/module.hpp"

namespace wasai::analysis {

/// One call instruction, in function-space indices of the analyzed module.
struct CallSite {
  std::uint32_t caller = 0;       // function-space index (always defined)
  std::uint32_t instr_index = 0;  // position in the caller's body
  std::uint32_t callee = 0;       // function-space index
  bool indirect = false;          // resolved via the table, not `call`
};

class CallGraph {
 public:
  /// Build the graph. `call_indirect` resolves to every element-segment
  /// entry whose declared type matches the instruction's expected type —
  /// the standard conservative approximation. An absent or empty table
  /// (every runtime call_indirect traps) simply contributes no edges;
  /// `has_unresolved_indirect()` records that such a site exists.
  explicit CallGraph(const wasm::Module& module);

  [[nodiscard]] const wasm::Module& module() const { return *module_; }

  /// All call sites, in (caller, instr_index) order.
  [[nodiscard]] const std::vector<CallSite>& sites() const { return sites_; }

  /// Outgoing callee set of a function (deduplicated, sorted).
  [[nodiscard]] const std::vector<std::uint32_t>& callees(
      std::uint32_t func_index) const {
    return callees_.at(func_index);
  }

  /// Function-space index of the exported `apply`, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> apply_index() const {
    return apply_;
  }

  /// True when the module contains a call_indirect but the table has no
  /// type-matching entry for it (the call can only trap at runtime).
  [[nodiscard]] bool has_unresolved_indirect() const {
    return unresolved_indirect_;
  }

  /// Functions reachable from `root` (inclusive), as a dense bitmap over
  /// the function index space.
  [[nodiscard]] std::vector<bool> reachable_from(std::uint32_t root) const;

  /// Reachability from apply; all-false when there is no apply export.
  [[nodiscard]] const std::vector<bool>& reachable_from_apply() const {
    return reachable_;
  }

  /// True when `func_index` is reachable from apply.
  [[nodiscard]] bool reachable(std::uint32_t func_index) const {
    return func_index < reachable_.size() && reachable_[func_index];
  }

  /// Call sites reachable from apply whose callee is the named import.
  /// The workhorse of the oracle gates ("is any tapos_block_num call
  /// reachable?").
  [[nodiscard]] std::vector<CallSite> reachable_import_calls(
      std::string_view field) const;

  /// True when any reachable call site targets the named import.
  [[nodiscard]] bool import_reachable(std::string_view field) const;

  /// Defined functions reachable from apply, excluding apply itself.
  [[nodiscard]] std::size_t reachable_defined_callees() const;

 private:
  const wasm::Module* module_;
  std::vector<CallSite> sites_;
  std::vector<std::vector<std::uint32_t>> callees_;  // by function index
  std::optional<std::uint32_t> apply_;
  std::vector<bool> reachable_;
  bool unresolved_indirect_ = false;
};

}  // namespace wasai::analysis
