#include "analysis/callgraph.hpp"

#include <algorithm>

namespace wasai::analysis {

namespace {

/// Element-segment entries whose function type equals `expected`, over all
/// segments of the module's (single MVP) table. Missing or empty tables
/// yield an empty candidate set — the call_indirect can only trap.
std::vector<std::uint32_t> indirect_candidates(const wasm::Module& module,
                                               const wasm::FuncType& expected) {
  std::vector<std::uint32_t> out;
  if (module.tables.empty() && module.elements.empty()) return out;
  for (const auto& segment : module.elements) {
    for (const std::uint32_t func : segment.func_indices) {
      if (func >= module.num_functions()) continue;  // malformed entry
      if (module.function_type(func) == expected) out.push_back(func);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

CallGraph::CallGraph(const wasm::Module& module) : module_(&module) {
  const std::uint32_t num_imports = module.num_imported_functions();
  callees_.resize(module.num_functions());

  for (std::uint32_t d = 0; d < module.functions.size(); ++d) {
    const std::uint32_t caller = num_imports + d;
    const wasm::Function& fn = module.functions[d];
    for (std::uint32_t i = 0; i < fn.body.size(); ++i) {
      const wasm::Instr& ins = fn.body[i];
      if (ins.op == wasm::Opcode::Call) {
        if (ins.a >= module.num_functions()) continue;  // validator rejects
        sites_.push_back(CallSite{caller, i, ins.a, false});
        callees_[caller].push_back(ins.a);
      } else if (ins.op == wasm::Opcode::CallIndirect) {
        if (ins.a >= module.types.size()) continue;
        const auto candidates =
            indirect_candidates(module, module.types[ins.a]);
        if (candidates.empty()) unresolved_indirect_ = true;
        for (const std::uint32_t callee : candidates) {
          sites_.push_back(CallSite{caller, i, callee, true});
          callees_[caller].push_back(callee);
        }
      }
    }
  }
  for (auto& edges : callees_) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  apply_ = module.find_export("apply");
  reachable_.assign(module.num_functions(), false);
  if (apply_) reachable_ = reachable_from(*apply_);
}

std::vector<bool> CallGraph::reachable_from(std::uint32_t root) const {
  std::vector<bool> seen(module_->num_functions(), false);
  if (root >= seen.size()) return seen;
  std::vector<std::uint32_t> stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    const std::uint32_t f = stack.back();
    stack.pop_back();
    for (const std::uint32_t callee : callees_[f]) {
      if (!seen[callee]) {
        seen[callee] = true;
        stack.push_back(callee);
      }
    }
  }
  return seen;
}

std::vector<CallSite> CallGraph::reachable_import_calls(
    std::string_view field) const {
  std::vector<CallSite> out;
  for (const CallSite& site : sites_) {
    if (!reachable(site.caller)) continue;
    if (!module_->is_imported_function(site.callee)) continue;
    if (module_->function_import(site.callee).field == field) {
      out.push_back(site);
    }
  }
  return out;
}

bool CallGraph::import_reachable(std::string_view field) const {
  for (const CallSite& site : sites_) {
    if (!reachable(site.caller)) continue;
    if (!module_->is_imported_function(site.callee)) continue;
    if (module_->function_import(site.callee).field == field) return true;
  }
  return false;
}

std::size_t CallGraph::reachable_defined_callees() const {
  std::size_t n = 0;
  for (std::uint32_t f = module_->num_imported_functions();
       f < module_->num_functions(); ++f) {
    if (reachable(f) && (!apply_ || f != *apply_)) ++n;
  }
  return n;
}

}  // namespace wasai::analysis
