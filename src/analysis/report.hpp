// Static pre-analysis entry point: runs the call graph, per-function CFGs
// and the dataflow/taint pass over one decoded module and distills them
// into the per-contract StaticReport the rest of the pipeline consumes —
// five per-oracle verdicts with witness sites, and a classification of
// every conditional site (branch or eosio_assert) the concolic fuzzer
// could ever try to flip.
//
// Conservatism contract (see DESIGN.md): `impossible` and every prunable
// branch class are PROOFS under the module's semantics; `possible` /
// TaintReachable only mean "not disproven". Anything the analysis cannot
// resolve (unconverged fixpoint, malformed bodies, missing apply) degrades
// to the permissive answer, so enabling the pass can only remove work the
// dynamic stages would have wasted, never findings.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow.hpp"
#include "instrument/trace.hpp"
#include "util/json.hpp"

namespace wasai::obs {
class Obs;
}

namespace wasai::analysis {

/// The five §2.3 oracle classes, in scanner::VulnType order. Kept as a
/// separate enum so the analysis layer stays independent of the scanner.
enum class Oracle : std::uint8_t {
  FakeEos = 0,
  FakeNotif,
  MissAuth,
  BlockinfoDep,
  Rollback,
};

inline constexpr std::size_t kNumOracles = 5;

/// Display name, identical to scanner::to_string(VulnType) spelling.
const char* to_string(Oracle oracle);

/// One call site justifying a `possible` verdict.
struct Witness {
  std::uint32_t func_index = 0;
  std::uint32_t instr_index = 0;
  std::string api;  // the imported host function called there
};

struct OracleVerdict {
  Oracle oracle{};
  /// False = statically impossible: the dynamic scanner can never fire
  /// this oracle on this module, so its payload schedule can be skipped.
  bool possible = true;
  std::string reason;
  std::vector<Witness> witnesses;
};

/// Classification of one conditional site (If / BrIf / BrTable condition,
/// or a direct eosio_assert call's asserted condition).
struct SiteClass {
  std::uint32_t func_index = 0;
  std::uint32_t instr_index = 0;
  wasm::Opcode op = wasm::Opcode::Nop;
  BranchClass cls = BranchClass::TaintReachable;
  std::uint8_t taint = 0;
};

struct StaticReport {
  bool has_apply = false;
  bool unresolved_indirect = false;  // a call_indirect with no table match
  bool converged = true;             // dataflow fixpoint completed
  int dataflow_passes = 0;
  std::size_t functions_total = 0;      // defined functions
  std::size_t functions_reachable = 0;  // ... reachable from apply
  std::size_t call_sites = 0;           // resolved call edges
  std::array<OracleVerdict, kNumOracles> oracles{};
  /// Every conditional site of every defined function, in (func, instr)
  /// order — the branch classification table.
  std::vector<SiteClass> branches;
  std::size_t constant_branches = 0;
  std::size_t untainted_branches = 0;
  std::size_t taint_reachable_branches = 0;
  std::size_t unreachable_branches = 0;
  /// True when no site is TaintReachable: symbolic feedback cannot derive
  /// any new seed, so replay+solve can be skipped wholesale (provided the
  /// DBG has no database APIs to observe — see `uses_db`).
  bool flip_feedback_futile = false;
  /// Any db_* import reachable from apply (DBG seed selection feeds on
  /// database traffic, so replay-skip is only safe when this is false).
  bool uses_db = false;
  double analyze_ms = 0;

  [[nodiscard]] const OracleVerdict& verdict(Oracle oracle) const {
    return oracles[static_cast<std::size_t>(oracle)];
  }
  [[nodiscard]] bool oracle_possible(Oracle oracle) const {
    return verdict(oracle).possible;
  }
  [[nodiscard]] const SiteClass* find(std::uint32_t func,
                                      std::uint32_t instr) const {
    const auto it =
        site_index.find((static_cast<std::uint64_t>(func) << 32) | instr);
    return it == site_index.end() ? nullptr : &branches[it->second];
  }

  /// (func << 32 | instr) -> index into `branches`.
  std::unordered_map<std::uint64_t, std::size_t> site_index;
};

/// Run the full static pass (call graph → CFGs → dataflow → verdicts)
/// under a `static_analyze` obs span. Never throws on analyzable modules;
/// malformed function bodies degrade that function to the permissive
/// classification.
StaticReport analyze_module(const wasm::Module& module,
                            obs::Obs* obs = nullptr);

/// Lower the branch table onto instrumentation site ids: out[site] != 0
/// means the flip query at that site is provably futile (condition is
/// constant, untainted or unreachable) and may be skipped. Sites without a
/// classification stay 0 (never pruned).
std::vector<std::uint8_t> make_flip_gate(const StaticReport& report,
                                         const instrument::SiteTable& sites);

/// JSON form of the report (the campaign `static` block). When
/// `include_table` is set the full per-site branch table is embedded —
/// used by the wasai-static dump tool, too verbose for campaign JSONL.
util::Json report_to_json(const StaticReport& report,
                          bool include_table = false);

}  // namespace wasai::analysis
