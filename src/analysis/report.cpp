#include "analysis/report.hpp"

#include <chrono>

#include "analysis/cfg.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasai::analysis {

namespace {

using wasm::Opcode;

constexpr const char* kBlockinfoApis[] = {"tapos_block_num",
                                          "tapos_block_prefix"};
constexpr const char* kEffectApis[] = {"send_inline", "db_store_i64",
                                       "db_update_i64", "db_remove_i64"};
constexpr const char* kDbApis[] = {
    "db_find_i64",  "db_get_i64",   "db_lowerbound_i64", "db_next_i64",
    "db_remove_i64", "db_store_i64", "db_update_i64"};

OracleVerdict impossible(Oracle oracle, std::string reason) {
  OracleVerdict v;
  v.oracle = oracle;
  v.possible = false;
  v.reason = std::move(reason);
  return v;
}

OracleVerdict possible(Oracle oracle, std::string reason,
                       std::vector<Witness> witnesses = {}) {
  OracleVerdict v;
  v.oracle = oracle;
  v.possible = true;
  v.reason = std::move(reason);
  v.witnesses = std::move(witnesses);
  return v;
}

std::vector<Witness> witnesses_for(const CallGraph& graph,
                                   std::string_view api) {
  std::vector<Witness> out;
  for (const CallSite& site : graph.reachable_import_calls(api)) {
    out.push_back(Witness{site.caller, site.instr_index, std::string(api)});
  }
  return out;
}

template <typename Apis>
std::vector<Witness> witnesses_for_any(const CallGraph& graph,
                                       const Apis& apis) {
  std::vector<Witness> out;
  for (const char* api : apis) {
    auto w = witnesses_for(graph, api);
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}

/// Verdicts against the exact firing conditions of scanner.cpp: each
/// `impossible` names the trace fact the dynamic oracle needs and proves
/// no reachable code can produce it.
void judge_oracles(StaticReport& report, const CallGraph& graph) {
  if (!report.has_apply) {
    for (std::size_t i = 0; i < kNumOracles; ++i) {
      report.oracles[i] =
          impossible(static_cast<Oracle>(i), "no apply export");
    }
    return;
  }

  // Fake EOS / Fake Notif both require the eosponser — a defined function
  // other than apply — to run on a forged payload.
  const std::size_t callees = graph.reachable_defined_callees();
  for (const Oracle oracle : {Oracle::FakeEos, Oracle::FakeNotif}) {
    report.oracles[static_cast<std::size_t>(oracle)] =
        callees == 0
            ? impossible(oracle,
                         "apply reaches no other defined function, so no "
                         "eosponser can execute")
            : possible(oracle, "apply reaches " + std::to_string(callees) +
                                   " defined function(s)");
  }

  auto miss_auth = witnesses_for_any(graph, kEffectApis);
  report.oracles[static_cast<std::size_t>(Oracle::MissAuth)] =
      miss_auth.empty()
          ? impossible(Oracle::MissAuth,
                       "no side-effect API (send_inline/db write) reachable "
                       "from apply")
          : possible(Oracle::MissAuth, "reachable side-effect call sites",
                     std::move(miss_auth));

  auto blockinfo = witnesses_for_any(graph, kBlockinfoApis);
  report.oracles[static_cast<std::size_t>(Oracle::BlockinfoDep)] =
      blockinfo.empty()
          ? impossible(Oracle::BlockinfoDep,
                       "no tapos_block_num/tapos_block_prefix call "
                       "reachable from apply")
          : possible(Oracle::BlockinfoDep,
                     "reachable blockchain-state call sites",
                     std::move(blockinfo));

  auto rollback = witnesses_for(graph, "send_inline");
  report.oracles[static_cast<std::size_t>(Oracle::Rollback)] =
      rollback.empty()
          ? impossible(Oracle::Rollback,
                       "no send_inline call reachable from apply")
          : possible(Oracle::Rollback, "reachable inline-action call sites",
                     std::move(rollback));
}

bool is_assert_call(const wasm::Module& module, const wasm::Instr& ins) {
  return ins.op == Opcode::Call && ins.a < module.num_imported_functions() &&
         module.function_import(ins.a).field == "eosio_assert";
}

bool is_conditional(const wasm::Module& module, const wasm::Instr& ins) {
  return ins.op == Opcode::If || ins.op == Opcode::BrIf ||
         ins.op == Opcode::BrTable || is_assert_call(module, ins);
}

}  // namespace

const char* to_string(Oracle oracle) {
  switch (oracle) {
    case Oracle::FakeEos:
      return "Fake EOS";
    case Oracle::FakeNotif:
      return "Fake Notif";
    case Oracle::MissAuth:
      return "MissAuth";
    case Oracle::BlockinfoDep:
      return "BlockinfoDep";
    case Oracle::Rollback:
      return "Rollback";
  }
  return "?";
}

StaticReport analyze_module(const wasm::Module& module, obs::Obs* obs) {
  obs::Span span(obs, obs::span_name::kStaticAnalyze);
  const auto start = std::chrono::steady_clock::now();

  StaticReport report;
  const CallGraph graph(module);
  report.has_apply = graph.apply_index().has_value();
  report.unresolved_indirect = graph.has_unresolved_indirect();
  report.functions_total = module.functions.size();
  report.call_sites = graph.sites().size();
  const std::uint32_t num_imports = module.num_imported_functions();
  for (std::uint32_t d = 0; d < module.functions.size(); ++d) {
    if (graph.reachable(num_imports + d)) ++report.functions_reachable;
  }

  judge_oracles(report, graph);
  for (const char* api : kDbApis) {
    if (graph.import_reachable(api)) {
      report.uses_db = true;
      break;
    }
  }

  const DataflowResult flow = run_dataflow(module, graph);
  report.converged = flow.converged;
  report.dataflow_passes = flow.passes;

  // Classify every conditional site of every defined function. Sites the
  // dataflow walked carry its verdict; sites it never reached (dead code,
  // unreachable functions) are provably never executed.
  for (std::uint32_t d = 0; d < module.functions.size(); ++d) {
    const std::uint32_t func = num_imports + d;
    const wasm::Function& fn = module.functions[d];
    const bool func_reachable = graph.reachable(func);

    // CFG reachability within the function; degrade to "all reachable"
    // when the body defeats the builder (the validator will reject it
    // downstream anyway).
    const Cfg* cfg = nullptr;
    Cfg cfg_storage;
    if (func_reachable && !fn.body.empty()) {
      try {
        cfg_storage = build_cfg(fn);
        cfg = &cfg_storage;
      } catch (const util::Error&) {
        cfg = nullptr;
      }
    }

    for (std::uint32_t i = 0; i < fn.body.size(); ++i) {
      const wasm::Instr& ins = fn.body[i];
      if (!is_conditional(module, ins)) continue;
      SiteClass site;
      site.func_index = func;
      site.instr_index = i;
      site.op = ins.op;
      if (!func_reachable || (cfg != nullptr && !cfg->instr_reachable(i))) {
        site.cls = BranchClass::Unreachable;
      } else if (const BranchFact* fact = flow.find(func, i)) {
        site.cls = fact->cls;
        site.taint = fact->taint;
      } else {
        // Reachable but never walked live (e.g. CFG build failed, or the
        // walk's liveness was stricter than the CFG): stay permissive.
        site.cls = BranchClass::TaintReachable;
      }
      report.site_index.emplace(
          (static_cast<std::uint64_t>(func) << 32) | i,
          report.branches.size());
      report.branches.push_back(site);
    }
  }

  for (const SiteClass& site : report.branches) {
    switch (site.cls) {
      case BranchClass::Constant:
        ++report.constant_branches;
        break;
      case BranchClass::UntaintedInput:
        ++report.untainted_branches;
        break;
      case BranchClass::TaintReachable:
        ++report.taint_reachable_branches;
        break;
      case BranchClass::Unreachable:
        ++report.unreachable_branches;
        break;
    }
  }
  report.flip_feedback_futile = report.taint_reachable_branches == 0;

  report.analyze_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

std::vector<std::uint8_t> make_flip_gate(const StaticReport& report,
                                         const instrument::SiteTable& sites) {
  std::vector<std::uint8_t> gate(sites.size(), 0);
  for (std::uint32_t s = 0; s < sites.size(); ++s) {
    const instrument::SiteInfo& info = sites.at(s);
    const SiteClass* site = report.find(info.func_index, info.instr_index);
    if (site != nullptr && site->cls != BranchClass::TaintReachable) {
      gate[s] = 1;
    }
  }
  return gate;
}

util::Json report_to_json(const StaticReport& report, bool include_table) {
  util::JsonObject out;
  out["apply"] = util::Json(report.has_apply);
  out["converged"] = util::Json(report.converged);
  out["passes"] = util::Json(static_cast<double>(report.dataflow_passes));
  out["unresolved_indirect"] = util::Json(report.unresolved_indirect);
  util::JsonObject functions;
  functions["total"] =
      util::Json(static_cast<double>(report.functions_total));
  functions["reachable"] =
      util::Json(static_cast<double>(report.functions_reachable));
  out["functions"] = util::Json(std::move(functions));
  out["call_sites"] = util::Json(static_cast<double>(report.call_sites));

  util::JsonObject oracles;
  for (const OracleVerdict& v : report.oracles) {
    util::JsonObject entry;
    entry["possible"] = util::Json(v.possible);
    entry["reason"] = util::Json(v.reason);
    entry["witnesses"] = util::Json(static_cast<double>(v.witnesses.size()));
    oracles[to_string(v.oracle)] = util::Json(std::move(entry));
  }
  out["oracles"] = util::Json(std::move(oracles));

  util::JsonObject branches;
  branches["constant"] =
      util::Json(static_cast<double>(report.constant_branches));
  branches["untainted"] =
      util::Json(static_cast<double>(report.untainted_branches));
  branches["taint_reachable"] =
      util::Json(static_cast<double>(report.taint_reachable_branches));
  branches["unreachable"] =
      util::Json(static_cast<double>(report.unreachable_branches));
  out["branches"] = util::Json(std::move(branches));
  out["futile"] = util::Json(report.flip_feedback_futile);
  out["uses_db"] = util::Json(report.uses_db);
  out["ms"] = util::Json(report.analyze_ms);

  if (include_table) {
    util::JsonArray table;
    for (const SiteClass& site : report.branches) {
      util::JsonObject row;
      row["func"] = util::Json(static_cast<double>(site.func_index));
      row["instr"] = util::Json(static_cast<double>(site.instr_index));
      row["op"] = util::Json(std::string(wasm::op_info(site.op).name));
      row["class"] = util::Json(std::string(to_string(site.cls)));
      row["taint"] = util::Json(static_cast<double>(site.taint));
      table.push_back(util::Json(std::move(row)));
    }
    out["table"] = util::Json(std::move(table));
  }
  return util::Json(std::move(out));
}

}  // namespace wasai::analysis
