// Forward dataflow / taint pass (static pre-analysis layer, stage 3): a
// whole-module abstract interpretation over a three-point value lattice
// (known constant / constant-derived / varying-with-taint) that decides,
// per conditional site, whether the condition can ever depend on this
// transaction's action input.
//
// Taint model (aligned with the replayer's input model — see DESIGN.md
// "Static pre-analysis"):
//  * kTaintAction marks values an attacker can steer through the current
//    transaction: action-handler parameters (every defined function's
//    parameters, conservatively, since the dispatcher forwards action data),
//    read_action_data / action_data_size results, and anything computed
//    from them. Only these values can be changed by mutating a seed, so a
//    branch condition without kTaintAction can never be flipped by the
//    concolic loop — its flip queries are provably futile.
//  * kTaintEnv marks chain-environment values (current_time, tapos_*,
//    database contents, memory growth): they vary across blocks but are
//    fixed for any single transaction.
//  * Memory is a byte-granular cell map for constant addresses plus a
//    blanket taint for stores through unknown addresses; loads always
//    produce varying values (the replayer materializes unwritten cells as
//    fresh unconstrained variables) whose taint joins the touched cells.
//
// The pass is a module-level fixpoint: per-function local/result summaries,
// global summaries and the memory state are joined across repeated
// structured walks of every apply-reachable function until stable. All
// rules err toward MORE taint, so `UntaintedInput` is a proof, while
// `TaintReachable` is merely "not disproven".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/callgraph.hpp"
#include "wasm/module.hpp"

namespace wasai::analysis {

inline constexpr std::uint8_t kTaintAction = 1;
inline constexpr std::uint8_t kTaintEnv = 2;

/// Abstract value: a known constant, a value derived purely from constants
/// (folded value not tracked), or a varying value with a taint mask.
struct AbsVal {
  enum class Kind : std::uint8_t { Const, ConstDerived, Varying };
  Kind kind = Kind::Varying;
  std::uint64_t konst = 0;  // meaningful for Kind::Const only
  std::uint8_t taint = 0;   // meaningful for Kind::Varying only

  static AbsVal constant(std::uint64_t c) {
    return AbsVal{Kind::Const, c, 0};
  }
  static AbsVal const_derived() { return AbsVal{Kind::ConstDerived, 0, 0}; }
  static AbsVal varying(std::uint8_t t) { return AbsVal{Kind::Varying, 0, t}; }

  [[nodiscard]] bool is_constant() const { return kind != Kind::Varying; }
  [[nodiscard]] std::uint8_t taint_bits() const {
    return kind == Kind::Varying ? taint : 0;
  }
  [[nodiscard]] bool action_tainted() const {
    return (taint_bits() & kTaintAction) != 0;
  }

  bool operator==(const AbsVal&) const = default;
};

/// Lattice join (Const(c) ⊔ Const(c) = Const(c); constants of different
/// values stay constant-derived; anything varying absorbs taints).
AbsVal join(const AbsVal& a, const AbsVal& b);

/// How the pass classified one conditional site. The flip gate prunes
/// Constant and UntaintedInput sites; everything else is kept.
enum class BranchClass : std::uint8_t {
  Constant,        // condition is a compile-time constant
  UntaintedInput,  // varies, but provably never with action input
  TaintReachable,  // may depend on action input — keep flipping
  /// Assigned by the report layer, never by the dataflow pass: the site
  /// lives in a function (or CFG region) unreachable from apply.
  Unreachable,
};

const char* to_string(BranchClass cls);

/// One classified conditional: an If / BrIf / BrTable condition or the
/// asserted condition of a direct eosio_assert call.
struct BranchFact {
  std::uint32_t func_index = 0;   // function-space index
  std::uint32_t instr_index = 0;  // body position
  wasm::Opcode op = wasm::Opcode::Nop;
  BranchClass cls = BranchClass::TaintReachable;
  std::uint8_t taint = 0;  // taint mask of the condition (Varying only)
};

/// Post-fixpoint summaries of one defined function.
struct FunctionSummary {
  std::vector<AbsVal> locals;  // parameters first, declared locals after
  AbsVal result = AbsVal::varying(0);
  bool returns_value = false;
};

struct DataflowResult {
  /// Classified conditionals of apply-reachable functions, in
  /// (func, instr) order.
  std::vector<BranchFact> branches;
  /// (func_index << 32 | instr_index) -> index into `branches`.
  std::unordered_map<std::uint64_t, std::size_t> branch_index;
  /// Defined-function summaries keyed by function-space index.
  std::unordered_map<std::uint32_t, FunctionSummary> functions;
  bool memory_action_tainted = false;  // any cell may hold action data
  int passes = 0;         // fixpoint iterations used
  bool converged = true;  // false = cap hit; facts discarded (no pruning)

  [[nodiscard]] const BranchFact* find(std::uint32_t func,
                                       std::uint32_t instr) const {
    const auto it =
        branch_index.find((static_cast<std::uint64_t>(func) << 32) | instr);
    return it == branch_index.end() ? nullptr : &branches[it->second];
  }
};

/// Run the fixpoint over every function reachable from apply. Functions
/// outside the reachable set contribute no branch facts (their sites are
/// classified via the call graph as unreachable by the report layer).
DataflowResult run_dataflow(const wasm::Module& module,
                            const CallGraph& graph);

}  // namespace wasai::analysis
