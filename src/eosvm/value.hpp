// Runtime values of the EOSVM: one of the four Wasm numeric types, stored
// uniformly as 64 bit patterns.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "wasm/types.hpp"

namespace wasai::vm {

struct Value {
  wasm::ValType type = wasm::ValType::I32;
  std::uint64_t bits = 0;

  static Value i32(std::uint32_t v) {
    return {wasm::ValType::I32, static_cast<std::uint64_t>(v)};
  }
  static Value i32s(std::int32_t v) {
    return i32(static_cast<std::uint32_t>(v));
  }
  static Value i64(std::uint64_t v) { return {wasm::ValType::I64, v}; }
  static Value i64s(std::int64_t v) {
    return i64(static_cast<std::uint64_t>(v));
  }
  static Value f32(float v) {
    return {wasm::ValType::F32, std::bit_cast<std::uint32_t>(v)};
  }
  static Value f64(double v) {
    return {wasm::ValType::F64, std::bit_cast<std::uint64_t>(v)};
  }
  /// Zero value of the given type (initial locals per the Wasm spec).
  static Value zero(wasm::ValType t) { return {t, 0}; }

  [[nodiscard]] std::uint32_t u32() const {
    return static_cast<std::uint32_t>(bits);
  }
  [[nodiscard]] std::int32_t s32() const {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
  }
  [[nodiscard]] std::uint64_t u64() const { return bits; }
  [[nodiscard]] std::int64_t s64() const {
    return static_cast<std::int64_t>(bits);
  }
  [[nodiscard]] float as_f32() const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
  }
  [[nodiscard]] double as_f64() const { return std::bit_cast<double>(bits); }

  /// Truthiness of an i32 condition.
  [[nodiscard]] bool truthy() const { return u32() != 0; }

  bool operator==(const Value&) const = default;
};

/// Debug rendering, e.g. "i64:42".
std::string to_string(const Value& v);

}  // namespace wasai::vm
