#include "eosvm/vm.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "wasm/control.hpp"

namespace wasai::vm {

using util::Trap;
using wasm::Opcode;
using wasm::ValType;

namespace {

using wasm::ControlMap;
using wasm::Function;
using wasm::FuncType;
using wasm::Instr;
using wasm::kNoMatch;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

/// Runtime control-stack entry (one per entered block/loop/if).
struct Ctrl {
  std::uint32_t opener;   // index of the block/loop/if instruction
  std::uint32_t end_idx;  // matching `end`
  bool is_loop;
  std::size_t height;  // absolute value-stack height at entry
  std::uint8_t arity;  // branch arity (block/if: result count; loop: 0)
};

/// One call-stack frame of a defined function.
struct Frame {
  std::uint32_t func_index = 0;
  const Function* fn = nullptr;
  const ControlMap* cmap = nullptr;
  std::vector<Value> locals;
  std::uint32_t pc = 0;
  std::size_t stack_base = 0;
  std::size_t ctrl_base = 0;
  std::uint8_t result_arity = 0;
};

class Executor {
 public:
  Executor(Instance& inst, const ExecLimits& limits, std::uint64_t& steps,
           ExecProbe* probe)
      : inst_(inst), limits_(limits), steps_(steps), probe_(probe) {}

  std::vector<Value> run(std::uint32_t func_index,
                         std::span<const Value> args) {
    const Module& m = inst_.module();
    if (m.is_imported_function(func_index)) {
      // Direct host invocation without a Wasm frame.
      auto result = inst_.host().call_host(inst_.host_binding(func_index),
                                           args, inst_);
      std::vector<Value> out;
      if (result) out.push_back(*result);
      return out;
    }
    push_frame(func_index, args);
    const std::uint8_t arity = frames_.back().result_arity;
    while (!frames_.empty()) step();
    std::vector<Value> out(stack_.end() - arity, stack_.end());
    return out;
  }

 private:
  void step() {
    if (++steps_ > limits_.max_steps) {
      throw Trap("step limit exceeded (" + std::to_string(limits_.max_steps) +
                 ")");
    }
    Frame& f = frames_.back();
    const Instr& ins = f.fn->body[f.pc];
    if (probe_ != nullptr) {
      ExecProbeView view;
      view.func_index = f.func_index;
      view.pc = f.pc;
      view.stack = stack_;
      view.frame_stack_base = f.stack_base;
      view.locals = f.locals;
      probe_->on_instr(view, inst_);
    }
    switch (ins.op) {
      // ---- control ----
      case Opcode::Unreachable:
        throw Trap("unreachable executed");
      case Opcode::Nop:
        ++f.pc;
        break;
      case Opcode::Block:
      case Opcode::Loop: {
        ctrls_.push_back(Ctrl{f.pc, f.cmap->end_idx[f.pc],
                              ins.op == Opcode::Loop, stack_.size(),
                              block_arity(ins)});
        ++f.pc;
        break;
      }
      case Opcode::If: {
        const bool cond = pop().truthy();
        const auto end = f.cmap->end_idx[f.pc];
        const auto els = f.cmap->else_idx[f.pc];
        if (cond) {
          ctrls_.push_back(
              Ctrl{f.pc, end, false, stack_.size(), block_arity(ins)});
          ++f.pc;
        } else if (els != kNoMatch) {
          ctrls_.push_back(
              Ctrl{f.pc, end, false, stack_.size(), block_arity(ins)});
          f.pc = els + 1;
        } else {
          f.pc = end + 1;  // empty else: skip block entirely
        }
        break;
      }
      case Opcode::Else: {
        // Reached by falling out of the then-branch: jump past the end.
        const Ctrl c = ctrls_.back();
        ctrls_.pop_back();
        f.pc = c.end_idx + 1;
        break;
      }
      case Opcode::End: {
        if (ctrls_.size() == f.ctrl_base) {
          pop_frame();
        } else {
          ctrls_.pop_back();
          ++f.pc;
        }
        break;
      }
      case Opcode::Br:
        branch(f, ins.a);
        break;
      case Opcode::BrIf: {
        if (pop().truthy()) {
          branch(f, ins.a);
        } else {
          ++f.pc;
        }
        break;
      }
      case Opcode::BrTable: {
        const std::uint32_t idx = pop().u32();
        const std::uint32_t depth =
            idx < ins.table.size() ? ins.table[idx] : ins.a;
        branch(f, depth);
        break;
      }
      case Opcode::Return:
        pop_frame();
        break;
      case Opcode::Call:
        do_call(ins.a, f);
        break;
      case Opcode::CallIndirect: {
        const std::uint32_t elem = pop().u32();
        const std::uint32_t target = inst_.table_at(elem);
        if (target == kNullFuncRef) {
          throw Trap("call_indirect to null table entry " +
                     std::to_string(elem));
        }
        const FuncType& expected = inst_.module().types.at(ins.a);
        if (inst_.module().function_type(target) != expected) {
          throw Trap("call_indirect signature mismatch");
        }
        do_call(target, f);
        break;
      }

      // ---- parametric ----
      case Opcode::Drop:
        pop();
        ++f.pc;
        break;
      case Opcode::Select: {
        const Value cond = pop();
        const Value v2 = pop();
        const Value v1 = pop();
        push(cond.truthy() ? v1 : v2);
        ++f.pc;
        break;
      }

      // ---- variable ----
      case Opcode::LocalGet:
        push(f.locals.at(ins.a));
        ++f.pc;
        break;
      case Opcode::LocalSet:
        f.locals.at(ins.a) = pop();
        ++f.pc;
        break;
      case Opcode::LocalTee:
        f.locals.at(ins.a) = stack_.back();
        ++f.pc;
        break;
      case Opcode::GlobalGet:
        push(inst_.global(ins.a));
        ++f.pc;
        break;
      case Opcode::GlobalSet:
        inst_.set_global(ins.a, pop());
        ++f.pc;
        break;

      // ---- memory ----
      case Opcode::MemorySize:
        push(Value::i32(inst_.memory_pages()));
        ++f.pc;
        break;
      case Opcode::MemoryGrow: {
        const std::uint32_t delta = pop().u32();
        push(Value::i32s(inst_.memory_grow(delta)));
        ++f.pc;
        break;
      }

      default: {
        const auto& info = wasm::op_info(ins.op);
        switch (info.cls) {
          case wasm::OpClass::Load:
            do_load(ins, info);
            break;
          case wasm::OpClass::Store:
            do_store(ins, info);
            break;
          case wasm::OpClass::Const:
            push(Value{info.result, const_bits(ins, info)});
            break;
          case wasm::OpClass::Unary:
            push(eval_unary_op(ins.op, pop()));
            break;
          case wasm::OpClass::Binary: {
            const Value rhs = pop();
            const Value lhs = pop();
            push(eval_binary_op(ins.op, lhs, rhs));
            break;
          }
          default:
            throw Trap(std::string("unhandled opcode ") + info.name);
        }
        ++f.pc;
        break;
      }
    }
  }

  static std::uint8_t block_arity(const Instr& ins) {
    return ins.a == wasm::kBlockVoid ? 0 : 1;
  }

  static std::uint64_t const_bits(const Instr& ins, const wasm::OpInfo& info) {
    // i32 constants must be stored truncated to 32 bits on the stack.
    if (info.result == ValType::I32 || info.result == ValType::F32) {
      return static_cast<std::uint32_t>(ins.imm);
    }
    return ins.imm;
  }

  void push(Value v) {
    if (stack_.size() >= limits_.max_value_stack) {
      throw Trap("value stack overflow");
    }
    stack_.push_back(v);
  }

  Value pop() {
    if (stack_.empty()) throw Trap("value stack underflow (vm bug)");
    const Value v = stack_.back();
    stack_.pop_back();
    return v;
  }

  void push_frame(std::uint32_t func_index, std::span<const Value> args) {
    if (frames_.size() >= limits_.max_call_depth) {
      throw Trap("call depth limit exceeded");
    }
    const Module& m = inst_.module();
    const std::uint32_t defined_index =
        func_index - m.num_imported_functions();
    const Function& fn = m.functions.at(defined_index);
    const FuncType& ft = m.types.at(fn.type_index);
    if (args.size() != ft.params.size()) {
      throw Trap("argument count mismatch calling function " +
                 std::to_string(func_index));
    }
    Frame frame;
    frame.func_index = func_index;
    frame.fn = &fn;
    frame.cmap = &inst_.control_map(defined_index);
    frame.locals.assign(args.begin(), args.end());
    for (const auto t : fn.locals) frame.locals.push_back(Value::zero(t));
    frame.stack_base = stack_.size();
    frame.ctrl_base = ctrls_.size();
    frame.result_arity = static_cast<std::uint8_t>(ft.results.size());
    frames_.push_back(std::move(frame));
  }

  void pop_frame() {
    Frame& f = frames_.back();
    const std::uint8_t arity = f.result_arity;
    // Move the results down to the frame's base.
    for (std::uint8_t i = 0; i < arity; ++i) {
      stack_[f.stack_base + i] = stack_[stack_.size() - arity + i];
    }
    stack_.resize(f.stack_base + arity);
    ctrls_.resize(f.ctrl_base);
    frames_.pop_back();
    if (!frames_.empty()) ++frames_.back().pc;
  }

  void branch(Frame& f, std::uint32_t depth) {
    const auto target = static_cast<std::int64_t>(ctrls_.size()) - 1 - depth;
    if (target < static_cast<std::int64_t>(f.ctrl_base)) {
      pop_frame();  // branch to the implicit function label == return
      return;
    }
    const Ctrl c = ctrls_[static_cast<std::size_t>(target)];
    if (c.is_loop) {
      ctrls_.resize(static_cast<std::size_t>(target) + 1);
      stack_.resize(c.height);
      f.pc = c.opener + 1;
    } else {
      for (std::uint8_t i = 0; i < c.arity; ++i) {
        stack_[c.height + i] = stack_[stack_.size() - c.arity + i];
      }
      stack_.resize(c.height + c.arity);
      ctrls_.resize(static_cast<std::size_t>(target));
      f.pc = c.end_idx + 1;
    }
  }

  void do_call(std::uint32_t func_index, Frame& f) {
    const Module& m = inst_.module();
    const FuncType& ft = m.function_type(func_index);
    if (m.is_imported_function(func_index)) {
      const std::size_t nargs = ft.params.size();
      if (stack_.size() < nargs) throw Trap("host call underflow (vm bug)");
      std::span<const Value> args(stack_.data() + stack_.size() - nargs,
                                  nargs);
      auto result = inst_.host().call_host(inst_.host_binding(func_index),
                                           args, inst_);
      stack_.resize(stack_.size() - nargs);
      if (!ft.results.empty()) {
        if (!result) throw Trap("host function returned no value");
        push(Value{ft.results.front(), result->bits});
      }
      ++f.pc;
    } else {
      const std::size_t nargs = ft.params.size();
      if (stack_.size() < nargs) throw Trap("call underflow (vm bug)");
      std::span<const Value> args(stack_.data() + stack_.size() - nargs,
                                  nargs);
      // Copy args before shrinking the stack; push_frame copies them.
      std::vector<Value> arg_copy(args.begin(), args.end());
      stack_.resize(stack_.size() - nargs);
      push_frame(func_index, arg_copy);
      // pc of the caller is advanced when the callee's frame pops.
    }
  }

  void do_load(const Instr& ins, const wasm::OpInfo& info) {
    const std::uint64_t addr =
        static_cast<std::uint64_t>(pop().u32()) + ins.b;
    const auto bytes = inst_.memory_at(addr, info.access_bytes);
    std::uint64_t raw = 0;
    std::memcpy(&raw, bytes.data(), info.access_bytes);
    if (info.sign_extend) {
      const int shift = 64 - info.access_bytes * 8;
      raw = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(raw << shift) >> shift);
    }
    if (info.result == ValType::I32 || info.result == ValType::F32) {
      raw = static_cast<std::uint32_t>(raw);
    }
    push(Value{info.result, raw});
  }

  void do_store(const Instr& ins, const wasm::OpInfo& info) {
    const Value value = pop();
    const std::uint64_t addr =
        static_cast<std::uint64_t>(pop().u32()) + ins.b;
    const auto bytes = inst_.memory_at(addr, info.access_bytes);
    const std::uint64_t raw = value.bits;
    std::memcpy(bytes.data(), &raw, info.access_bytes);
  }

  Instance& inst_;
  const ExecLimits& limits_;
  std::uint64_t& steps_;
  ExecProbe* probe_;
  std::vector<Value> stack_;
  std::vector<Ctrl> ctrls_;
  std::vector<Frame> frames_;
};

/// Fast-path executor over pre-flattened code (FlatModule). Mirrors
/// Executor instruction for instruction — identical step counting, limit
/// checks, trap messages and probe views — but fetches fully decoded
/// FlatInstrs, takes branches through precomputed side tables, keeps frame
/// locals in a shared arena and dispatches trace hooks directly into their
/// HookSink. Parity with Executor is pinned by tests/fastpath_test.cpp and
/// the testgen differential oracle.
class FastExecutor {
 public:
  FastExecutor(Instance& inst, const ExecLimits& limits, std::uint64_t& steps,
               ExecProbe* probe, FastBuffers& buf)
      : inst_(inst),
        flat_(*inst.flat()),
        limits_(limits),
        steps_(steps),
        probe_(probe),
        stack_(buf.stack),
        ctrls_(buf.ctrls),
        frames_(buf.frames),
        locals_(buf.locals),
        num_imports_(inst.module().num_imported_functions()) {
    stack_.clear();
    ctrls_.clear();
    frames_.clear();
    locals_.clear();
  }

  std::vector<Value> run(std::uint32_t func_index,
                         std::span<const Value> args) {
    if (inst_.module().is_imported_function(func_index)) {
      // Direct host invocation without a Wasm frame.
      auto result = inst_.host().call_host(inst_.host_binding(func_index),
                                           args, inst_);
      std::vector<Value> out;
      if (result) out.push_back(*result);
      return out;
    }
    push_frame(func_index, args, stack_.size());
    const std::uint8_t arity = frames_.back().result_arity;
    while (!frames_.empty()) step();
    return {stack_.end() - arity, stack_.end()};
  }

 private:
  void step() {
    if (++steps_ > limits_.max_steps) {
      throw Trap("step limit exceeded (" + std::to_string(limits_.max_steps) +
                 ")");
    }
    FastFrame& f = frames_.back();
    const FlatInstr& fi = f.ff->code[f.pc];
    if (probe_ != nullptr) {
      ExecProbeView view;
      view.func_index = f.func_index;
      view.pc = f.pc;
      view.stack = stack_;
      view.frame_stack_base = f.stack_base;
      view.locals = {locals_.data() + f.locals_off, f.locals_len};
      probe_->on_instr(view, inst_);
    }
    switch (fi.op) {
      // ---- control ----
      case FlatOp::Unreachable:
        throw Trap("unreachable executed");
      case FlatOp::Nop:
        ++f.pc;
        break;
      case FlatOp::Enter:
        ctrls_.push_back(FastCtrl{stack_.size()});
        ++f.pc;
        break;
      case FlatOp::If: {
        if (pop().truthy()) {
          ctrls_.push_back(FastCtrl{stack_.size()});
          ++f.pc;
        } else {
          if (fi.flags & kFlatIfPushOnFalse) {
            ctrls_.push_back(FastCtrl{stack_.size()});
          }
          f.pc = fi.a;
        }
        break;
      }
      case FlatOp::ElseSkip:
        ctrls_.pop_back();
        f.pc = fi.a;
        break;
      case FlatOp::End:
        ctrls_.pop_back();
        ++f.pc;
        break;
      case FlatOp::Br:
        take_branch(f, f.ff->branches[fi.aux]);
        break;
      case FlatOp::BrIf:
        if (pop().truthy()) {
          take_branch(f, f.ff->branches[fi.aux]);
        } else {
          ++f.pc;
        }
        break;
      case FlatOp::BrTable: {
        const std::uint32_t idx = pop().u32();
        const FlatBrTable& table = f.ff->brtables[fi.aux];
        take_branch(f, idx < table.targets.size() ? table.targets[idx]
                                                  : table.fallback);
        break;
      }
      case FlatOp::Return:
        pop_frame();
        break;
      case FlatOp::CallDefined:
        call_defined(fi.a, fi.nargs);
        break;
      case FlatOp::CallImport:
        call_import(f, fi.a, fi.nargs, fi.arity,
                    static_cast<ValType>(fi.b));
        break;
      case FlatOp::CallIndirect: {
        const std::uint32_t elem = pop().u32();
        const std::uint32_t target = inst_.table_at(elem);
        if (target == kNullFuncRef) {
          throw Trap("call_indirect to null table entry " +
                     std::to_string(elem));
        }
        const FuncType& expected = flat_.signature(fi.aux);
        const FuncType& actual = inst_.module().function_type(target);
        if (actual != expected) {
          throw Trap("call_indirect signature mismatch");
        }
        if (target < num_imports_) {
          call_import(f, target,
                      static_cast<std::uint16_t>(actual.params.size()),
                      static_cast<std::uint8_t>(actual.results.size()),
                      actual.results.empty() ? ValType::I32
                                             : actual.results.front());
        } else {
          call_defined(target,
                       static_cast<std::uint16_t>(actual.params.size()));
        }
        break;
      }

      // ---- parametric ----
      case FlatOp::Drop:
        pop();
        ++f.pc;
        break;
      case FlatOp::Select: {
        const Value cond = pop();
        const Value v2 = pop();
        const Value v1 = pop();
        push(cond.truthy() ? v1 : v2);
        ++f.pc;
        break;
      }

      // ---- variable (indices validated at flatten time) ----
      case FlatOp::LocalGet:
        push(locals_[f.locals_off + fi.a]);
        ++f.pc;
        break;
      case FlatOp::LocalSet:
        locals_[f.locals_off + fi.a] = pop();
        ++f.pc;
        break;
      case FlatOp::LocalTee:
        locals_[f.locals_off + fi.a] = stack_.back();
        ++f.pc;
        break;
      case FlatOp::GlobalGet:
        push(inst_.global(fi.a));
        ++f.pc;
        break;
      case FlatOp::GlobalSet:
        inst_.set_global(fi.a, pop());
        ++f.pc;
        break;

      // ---- memory ----
      case FlatOp::MemorySize:
        push(Value::i32(inst_.memory_pages()));
        ++f.pc;
        break;
      case FlatOp::MemoryGrow: {
        const std::uint32_t delta = pop().u32();
        push(Value::i32s(inst_.memory_grow(delta)));
        ++f.pc;
        break;
      }
      case FlatOp::Load: {
        const wasm::OpInfo& info = *fi.info;
        const std::uint64_t addr =
            static_cast<std::uint64_t>(pop().u32()) + fi.b;
        const auto bytes = inst_.memory_at(addr, info.access_bytes);
        std::uint64_t raw = 0;
        std::memcpy(&raw, bytes.data(), info.access_bytes);
        if (info.sign_extend) {
          const int shift = 64 - info.access_bytes * 8;
          raw = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(raw << shift) >> shift);
        }
        if (info.result == ValType::I32 || info.result == ValType::F32) {
          raw = static_cast<std::uint32_t>(raw);
        }
        push(Value{info.result, raw});
        ++f.pc;
        break;
      }
      case FlatOp::Store: {
        const Value value = pop();
        const std::uint64_t addr =
            static_cast<std::uint64_t>(pop().u32()) + fi.b;
        const auto bytes = inst_.memory_at(addr, fi.info->access_bytes);
        const std::uint64_t raw = value.bits;
        std::memcpy(bytes.data(), &raw, fi.info->access_bytes);
        ++f.pc;
        break;
      }

      // ---- value ops ----
      case FlatOp::Const:
        push(Value{fi.info->result, fi.imm});
        ++f.pc;
        break;
      case FlatOp::Unary:
        push(eval_unary_op(fi.opcode, pop()));
        ++f.pc;
        break;
      case FlatOp::Binary: {
        const Value rhs = pop();
        const Value lhs = pop();
        push(eval_binary_op(fi.opcode, lhs, rhs));
        ++f.pc;
        break;
      }
    }
  }

  void push(Value v) {
    if (stack_.size() >= limits_.max_value_stack) {
      throw Trap("value stack overflow");
    }
    stack_.push_back(v);
  }

  Value pop() {
    if (stack_.empty()) throw Trap("value stack underflow (vm bug)");
    const Value v = stack_.back();
    stack_.pop_back();
    return v;
  }

  /// Open a frame whose base is `stack_base` (the stack size after the
  /// caller's arguments are consumed). Arguments are copied into the locals
  /// arena BEFORE the caller shrinks its stack, so `args` may alias it.
  void push_frame(std::uint32_t func_index, std::span<const Value> args,
                  std::size_t stack_base) {
    if (frames_.size() >= limits_.max_call_depth) {
      throw Trap("call depth limit exceeded");
    }
    const FlatFunction& ff = flat_.function(func_index - num_imports_);
    if (args.size() != ff.num_params) {
      throw Trap("argument count mismatch calling function " +
                 std::to_string(func_index));
    }
    FastFrame frame;
    frame.ff = &ff;
    frame.func_index = func_index;
    frame.pc = 0;
    frame.locals_off = static_cast<std::uint32_t>(locals_.size());
    frame.locals_len = ff.num_locals();
    frame.stack_base = stack_base;
    frame.ctrl_base = ctrls_.size();
    frame.result_arity = ff.result_arity;
    locals_.insert(locals_.end(), args.begin(), args.end());
    locals_.insert(locals_.end(), ff.local_zeros.begin(),
                   ff.local_zeros.end());
    frames_.push_back(frame);
  }

  void pop_frame() {
    FastFrame& f = frames_.back();
    const std::uint8_t arity = f.result_arity;
    // Move the results down to the frame's base.
    for (std::uint8_t i = 0; i < arity; ++i) {
      stack_[f.stack_base + i] = stack_[stack_.size() - arity + i];
    }
    stack_.resize(f.stack_base + arity);
    ctrls_.resize(f.ctrl_base);
    locals_.resize(f.locals_off);
    frames_.pop_back();
    if (!frames_.empty()) ++frames_.back().pc;
  }

  void take_branch(FastFrame& f, const BranchTarget& bt) {
    if (bt.to_function) {
      pop_frame();  // branch to the implicit function label == return
      return;
    }
    const std::size_t target = f.ctrl_base + bt.depth;
    const std::size_t height = ctrls_[target].height;
    if (bt.is_loop) {
      ctrls_.resize(target + 1);
      stack_.resize(height);
    } else {
      for (std::uint8_t i = 0; i < bt.arity; ++i) {
        stack_[height + i] = stack_[stack_.size() - bt.arity + i];
      }
      stack_.resize(height + bt.arity);
      ctrls_.resize(target);
    }
    f.pc = bt.target_pc;
  }

  void call_defined(std::uint32_t func_index, std::uint16_t nargs) {
    if (stack_.size() < nargs) throw Trap("call underflow (vm bug)");
    const std::size_t base = stack_.size() - nargs;
    push_frame(func_index, {stack_.data() + base, nargs}, base);
    stack_.resize(base);
    // pc of the caller is advanced when the callee's frame pops.
  }

  void call_import(FastFrame& f, std::uint32_t func_index,
                   std::uint16_t nargs, std::uint8_t result_arity,
                   ValType result_type) {
    if (stack_.size() < nargs) throw Trap("host call underflow (vm bug)");
    const Value* argp = stack_.data() + stack_.size() - nargs;
    const FastHook& hk = inst_.fast_hook(func_index);
    if (hk.sink != nullptr) {
      // Direct hook dispatch: no binding indirection, no argument packing.
      hk.sink->on_hook(hk.binding, argp, nargs);
      stack_.resize(stack_.size() - nargs);
    } else {
      auto result = inst_.host().call_host(
          inst_.host_binding(func_index),
          std::span<const Value>(argp, nargs), inst_);
      stack_.resize(stack_.size() - nargs);
      if (result_arity != 0) {
        if (!result) throw Trap("host function returned no value");
        push(Value{result_type, result->bits});
      }
    }
    ++f.pc;
  }

  Instance& inst_;
  const FlatModule& flat_;
  const ExecLimits& limits_;
  std::uint64_t& steps_;
  ExecProbe* probe_;
  std::vector<Value>& stack_;
  std::vector<FastCtrl>& ctrls_;
  std::vector<FastFrame>& frames_;
  std::vector<Value>& locals_;
  std::uint32_t num_imports_;
};

template <typename T>
T trunc_checked(double operand, const char* what) {
  if (std::isnan(operand)) throw Trap(std::string("trunc of NaN in ") + what);
  const double t = std::trunc(operand);
  // Exact-range check: the representable window for the target type.
  if constexpr (std::is_same_v<T, std::int32_t>) {
    if (t < -2147483648.0 || t > 2147483647.0) {
      throw Trap(std::string("integer overflow in ") + what);
    }
  } else if constexpr (std::is_same_v<T, std::uint32_t>) {
    if (t < 0.0 || t > 4294967295.0) {
      throw Trap(std::string("integer overflow in ") + what);
    }
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    if (t < -9223372036854775808.0 || t >= 9223372036854775808.0) {
      throw Trap(std::string("integer overflow in ") + what);
    }
  } else {
    if (t <= -1.0 || t >= 18446744073709551616.0) {
      throw Trap(std::string("integer overflow in ") + what);
    }
  }
  return static_cast<T>(t);
}

float fnearest(float x) { return std::nearbyintf(x); }
double fnearest(double x) { return std::nearbyint(x); }

template <typename F>
F fmin_wasm(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == 0 && b == 0) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

template <typename F>
F fmax_wasm(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == 0 && b == 0) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

}  // namespace

Value eval_unary_op(Opcode op, Value x) {
  switch (op) {
    case Opcode::I32Eqz:
      return Value::i32(x.u32() == 0);
    case Opcode::I64Eqz:
      return Value::i32(x.u64() == 0);
    case Opcode::I32Clz:
      return Value::i32(std::countl_zero(x.u32()));
    case Opcode::I32Ctz:
      return Value::i32(std::countr_zero(x.u32()));
    case Opcode::I32Popcnt:
      return Value::i32(std::popcount(x.u32()));
    case Opcode::I64Clz:
      return Value::i64(std::countl_zero(x.u64()));
    case Opcode::I64Ctz:
      return Value::i64(std::countr_zero(x.u64()));
    case Opcode::I64Popcnt:
      return Value::i64(std::popcount(x.u64()));
    case Opcode::F32Abs:
      return Value::f32(std::fabs(x.as_f32()));
    case Opcode::F32Neg:
      return Value::f32(-x.as_f32());
    case Opcode::F32Ceil:
      return Value::f32(std::ceil(x.as_f32()));
    case Opcode::F32Floor:
      return Value::f32(std::floor(x.as_f32()));
    case Opcode::F32Trunc:
      return Value::f32(std::trunc(x.as_f32()));
    case Opcode::F32Nearest:
      return Value::f32(fnearest(x.as_f32()));
    case Opcode::F32Sqrt:
      return Value::f32(std::sqrt(x.as_f32()));
    case Opcode::F64Abs:
      return Value::f64(std::fabs(x.as_f64()));
    case Opcode::F64Neg:
      return Value::f64(-x.as_f64());
    case Opcode::F64Ceil:
      return Value::f64(std::ceil(x.as_f64()));
    case Opcode::F64Floor:
      return Value::f64(std::floor(x.as_f64()));
    case Opcode::F64Trunc:
      return Value::f64(std::trunc(x.as_f64()));
    case Opcode::F64Nearest:
      return Value::f64(fnearest(x.as_f64()));
    case Opcode::F64Sqrt:
      return Value::f64(std::sqrt(x.as_f64()));
    // Conversions
    case Opcode::I32WrapI64:
      return Value::i32(static_cast<std::uint32_t>(x.u64()));
    case Opcode::I32TruncF32S:
      return Value::i32s(trunc_checked<std::int32_t>(x.as_f32(), "i32.trunc_f32_s"));
    case Opcode::I32TruncF32U:
      return Value::i32(trunc_checked<std::uint32_t>(x.as_f32(), "i32.trunc_f32_u"));
    case Opcode::I32TruncF64S:
      return Value::i32s(trunc_checked<std::int32_t>(x.as_f64(), "i32.trunc_f64_s"));
    case Opcode::I32TruncF64U:
      return Value::i32(trunc_checked<std::uint32_t>(x.as_f64(), "i32.trunc_f64_u"));
    case Opcode::I64ExtendI32S:
      return Value::i64s(x.s32());
    case Opcode::I64ExtendI32U:
      return Value::i64(x.u32());
    case Opcode::I64TruncF32S:
      return Value::i64s(trunc_checked<std::int64_t>(x.as_f32(), "i64.trunc_f32_s"));
    case Opcode::I64TruncF32U:
      return Value::i64(trunc_checked<std::uint64_t>(x.as_f32(), "i64.trunc_f32_u"));
    case Opcode::I64TruncF64S:
      return Value::i64s(trunc_checked<std::int64_t>(x.as_f64(), "i64.trunc_f64_s"));
    case Opcode::I64TruncF64U:
      return Value::i64(trunc_checked<std::uint64_t>(x.as_f64(), "i64.trunc_f64_u"));
    case Opcode::F32ConvertI32S:
      return Value::f32(static_cast<float>(x.s32()));
    case Opcode::F32ConvertI32U:
      return Value::f32(static_cast<float>(x.u32()));
    case Opcode::F32ConvertI64S:
      return Value::f32(static_cast<float>(x.s64()));
    case Opcode::F32ConvertI64U:
      return Value::f32(static_cast<float>(x.u64()));
    case Opcode::F32DemoteF64:
      return Value::f32(static_cast<float>(x.as_f64()));
    case Opcode::F64ConvertI32S:
      return Value::f64(static_cast<double>(x.s32()));
    case Opcode::F64ConvertI32U:
      return Value::f64(static_cast<double>(x.u32()));
    case Opcode::F64ConvertI64S:
      return Value::f64(static_cast<double>(x.s64()));
    case Opcode::F64ConvertI64U:
      return Value::f64(static_cast<double>(x.u64()));
    case Opcode::F64PromoteF32:
      return Value::f64(static_cast<double>(x.as_f32()));
    case Opcode::I32ReinterpretF32:
      return Value::i32(static_cast<std::uint32_t>(x.bits));
    case Opcode::I64ReinterpretF64:
      return Value::i64(x.bits);
    case Opcode::F32ReinterpretI32:
      return Value{ValType::F32, static_cast<std::uint32_t>(x.bits)};
    case Opcode::F64ReinterpretI64:
      return Value{ValType::F64, x.bits};
    default:
      throw Trap(std::string("unhandled unary op ") + wasm::op_info(op).name);
  }
}

Value eval_binary_op(Opcode op, Value lhs, Value rhs) {
  switch (op) {
    // i32 relational
    case Opcode::I32Eq:
      return Value::i32(lhs.u32() == rhs.u32());
    case Opcode::I32Ne:
      return Value::i32(lhs.u32() != rhs.u32());
    case Opcode::I32LtS:
      return Value::i32(lhs.s32() < rhs.s32());
    case Opcode::I32LtU:
      return Value::i32(lhs.u32() < rhs.u32());
    case Opcode::I32GtS:
      return Value::i32(lhs.s32() > rhs.s32());
    case Opcode::I32GtU:
      return Value::i32(lhs.u32() > rhs.u32());
    case Opcode::I32LeS:
      return Value::i32(lhs.s32() <= rhs.s32());
    case Opcode::I32LeU:
      return Value::i32(lhs.u32() <= rhs.u32());
    case Opcode::I32GeS:
      return Value::i32(lhs.s32() >= rhs.s32());
    case Opcode::I32GeU:
      return Value::i32(lhs.u32() >= rhs.u32());
    // i64 relational
    case Opcode::I64Eq:
      return Value::i32(lhs.u64() == rhs.u64());
    case Opcode::I64Ne:
      return Value::i32(lhs.u64() != rhs.u64());
    case Opcode::I64LtS:
      return Value::i32(lhs.s64() < rhs.s64());
    case Opcode::I64LtU:
      return Value::i32(lhs.u64() < rhs.u64());
    case Opcode::I64GtS:
      return Value::i32(lhs.s64() > rhs.s64());
    case Opcode::I64GtU:
      return Value::i32(lhs.u64() > rhs.u64());
    case Opcode::I64LeS:
      return Value::i32(lhs.s64() <= rhs.s64());
    case Opcode::I64LeU:
      return Value::i32(lhs.u64() <= rhs.u64());
    case Opcode::I64GeS:
      return Value::i32(lhs.s64() >= rhs.s64());
    case Opcode::I64GeU:
      return Value::i32(lhs.u64() >= rhs.u64());
    // f32/f64 relational
    case Opcode::F32Eq:
      return Value::i32(lhs.as_f32() == rhs.as_f32());
    case Opcode::F32Ne:
      return Value::i32(lhs.as_f32() != rhs.as_f32());
    case Opcode::F32Lt:
      return Value::i32(lhs.as_f32() < rhs.as_f32());
    case Opcode::F32Gt:
      return Value::i32(lhs.as_f32() > rhs.as_f32());
    case Opcode::F32Le:
      return Value::i32(lhs.as_f32() <= rhs.as_f32());
    case Opcode::F32Ge:
      return Value::i32(lhs.as_f32() >= rhs.as_f32());
    case Opcode::F64Eq:
      return Value::i32(lhs.as_f64() == rhs.as_f64());
    case Opcode::F64Ne:
      return Value::i32(lhs.as_f64() != rhs.as_f64());
    case Opcode::F64Lt:
      return Value::i32(lhs.as_f64() < rhs.as_f64());
    case Opcode::F64Gt:
      return Value::i32(lhs.as_f64() > rhs.as_f64());
    case Opcode::F64Le:
      return Value::i32(lhs.as_f64() <= rhs.as_f64());
    case Opcode::F64Ge:
      return Value::i32(lhs.as_f64() >= rhs.as_f64());
    // i32 arithmetic
    case Opcode::I32Add:
      return Value::i32(lhs.u32() + rhs.u32());
    case Opcode::I32Sub:
      return Value::i32(lhs.u32() - rhs.u32());
    case Opcode::I32Mul:
      return Value::i32(lhs.u32() * rhs.u32());
    case Opcode::I32DivS: {
      if (rhs.s32() == 0) throw Trap("i32.div_s by zero");
      if (lhs.s32() == INT32_MIN && rhs.s32() == -1) {
        throw Trap("i32.div_s overflow");
      }
      return Value::i32s(lhs.s32() / rhs.s32());
    }
    case Opcode::I32DivU:
      if (rhs.u32() == 0) throw Trap("i32.div_u by zero");
      return Value::i32(lhs.u32() / rhs.u32());
    case Opcode::I32RemS: {
      if (rhs.s32() == 0) throw Trap("i32.rem_s by zero");
      if (lhs.s32() == INT32_MIN && rhs.s32() == -1) return Value::i32(0);
      return Value::i32s(lhs.s32() % rhs.s32());
    }
    case Opcode::I32RemU:
      if (rhs.u32() == 0) throw Trap("i32.rem_u by zero");
      return Value::i32(lhs.u32() % rhs.u32());
    case Opcode::I32And:
      return Value::i32(lhs.u32() & rhs.u32());
    case Opcode::I32Or:
      return Value::i32(lhs.u32() | rhs.u32());
    case Opcode::I32Xor:
      return Value::i32(lhs.u32() ^ rhs.u32());
    case Opcode::I32Shl:
      return Value::i32(lhs.u32() << (rhs.u32() & 31));
    case Opcode::I32ShrS:
      return Value::i32s(lhs.s32() >> (rhs.u32() & 31));
    case Opcode::I32ShrU:
      return Value::i32(lhs.u32() >> (rhs.u32() & 31));
    case Opcode::I32Rotl:
      return Value::i32(std::rotl(lhs.u32(), static_cast<int>(rhs.u32() & 31)));
    case Opcode::I32Rotr:
      return Value::i32(std::rotr(lhs.u32(), static_cast<int>(rhs.u32() & 31)));
    // i64 arithmetic
    case Opcode::I64Add:
      return Value::i64(lhs.u64() + rhs.u64());
    case Opcode::I64Sub:
      return Value::i64(lhs.u64() - rhs.u64());
    case Opcode::I64Mul:
      return Value::i64(lhs.u64() * rhs.u64());
    case Opcode::I64DivS: {
      if (rhs.s64() == 0) throw Trap("i64.div_s by zero");
      if (lhs.s64() == INT64_MIN && rhs.s64() == -1) {
        throw Trap("i64.div_s overflow");
      }
      return Value::i64s(lhs.s64() / rhs.s64());
    }
    case Opcode::I64DivU:
      if (rhs.u64() == 0) throw Trap("i64.div_u by zero");
      return Value::i64(lhs.u64() / rhs.u64());
    case Opcode::I64RemS: {
      if (rhs.s64() == 0) throw Trap("i64.rem_s by zero");
      if (lhs.s64() == INT64_MIN && rhs.s64() == -1) return Value::i64(0);
      return Value::i64s(lhs.s64() % rhs.s64());
    }
    case Opcode::I64RemU:
      if (rhs.u64() == 0) throw Trap("i64.rem_u by zero");
      return Value::i64(lhs.u64() % rhs.u64());
    case Opcode::I64And:
      return Value::i64(lhs.u64() & rhs.u64());
    case Opcode::I64Or:
      return Value::i64(lhs.u64() | rhs.u64());
    case Opcode::I64Xor:
      return Value::i64(lhs.u64() ^ rhs.u64());
    case Opcode::I64Shl:
      return Value::i64(lhs.u64() << (rhs.u64() & 63));
    case Opcode::I64ShrS:
      return Value::i64s(lhs.s64() >> (rhs.u64() & 63));
    case Opcode::I64ShrU:
      return Value::i64(lhs.u64() >> (rhs.u64() & 63));
    case Opcode::I64Rotl:
      return Value::i64(std::rotl(lhs.u64(), static_cast<int>(rhs.u64() & 63)));
    case Opcode::I64Rotr:
      return Value::i64(std::rotr(lhs.u64(), static_cast<int>(rhs.u64() & 63)));
    // f32 arithmetic
    case Opcode::F32Add:
      return Value::f32(lhs.as_f32() + rhs.as_f32());
    case Opcode::F32Sub:
      return Value::f32(lhs.as_f32() - rhs.as_f32());
    case Opcode::F32Mul:
      return Value::f32(lhs.as_f32() * rhs.as_f32());
    case Opcode::F32Div:
      return Value::f32(lhs.as_f32() / rhs.as_f32());
    case Opcode::F32Min:
      return Value::f32(fmin_wasm(lhs.as_f32(), rhs.as_f32()));
    case Opcode::F32Max:
      return Value::f32(fmax_wasm(lhs.as_f32(), rhs.as_f32()));
    case Opcode::F32Copysign:
      return Value::f32(std::copysign(lhs.as_f32(), rhs.as_f32()));
    // f64 arithmetic
    case Opcode::F64Add:
      return Value::f64(lhs.as_f64() + rhs.as_f64());
    case Opcode::F64Sub:
      return Value::f64(lhs.as_f64() - rhs.as_f64());
    case Opcode::F64Mul:
      return Value::f64(lhs.as_f64() * rhs.as_f64());
    case Opcode::F64Div:
      return Value::f64(lhs.as_f64() / rhs.as_f64());
    case Opcode::F64Min:
      return Value::f64(fmin_wasm(lhs.as_f64(), rhs.as_f64()));
    case Opcode::F64Max:
      return Value::f64(fmax_wasm(lhs.as_f64(), rhs.as_f64()));
    case Opcode::F64Copysign:
      return Value::f64(std::copysign(lhs.as_f64(), rhs.as_f64()));
    default:
      throw Trap(std::string("unhandled binary op ") + wasm::op_info(op).name);
  }
}

std::vector<Value> Vm::invoke(Instance& instance, std::uint32_t func_index,
                              std::span<const Value> args) {
  if (instance.flat() != nullptr) {
    FastExecutor exec(instance, limits_, steps_, probe_, fast_buf_);
    return exec.run(func_index, args);
  }
  Executor exec(instance, limits_, steps_, probe_);
  return exec.run(func_index, args);
}

std::string to_string(const Value& v) {
  switch (v.type) {
    case ValType::I32:
      return "i32:" + std::to_string(v.s32());
    case ValType::I64:
      return "i64:" + std::to_string(v.s64());
    case ValType::F32:
      return "f32:" + std::to_string(v.as_f32());
    case ValType::F64:
      return "f64:" + std::to_string(v.as_f64());
  }
  return "?";
}

}  // namespace wasai::vm
