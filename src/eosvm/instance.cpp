#include "eosvm/instance.hpp"

#include <cstring>

namespace wasai::vm {

using util::Trap;
using util::ValidationError;

Instance::Instance(std::shared_ptr<const wasm::Module> module,
                   HostInterface& host,
                   std::shared_ptr<const FlatModule> flat)
    : module_(std::move(module)), host_(&host), flat_(std::move(flat)) {
  const wasm::Module& m = *module_;
  if (flat_ != nullptr && &flat_->module() != &m) {
    throw ValidationError("flat code built for a different module");
  }

  if (!m.memories.empty()) {
    const auto& lim = m.memories.front().limits;
    memory_.assign(static_cast<std::size_t>(lim.min) * wasm::kWasmPageSize, 0);
    if (lim.max) max_pages = *lim.max;
  }
  for (const auto& seg : m.data) {
    if (static_cast<std::uint64_t>(seg.offset) + seg.bytes.size() >
        memory_.size()) {
      throw ValidationError("data segment out of memory bounds");
    }
    std::memcpy(memory_.data() + seg.offset, seg.bytes.data(),
                seg.bytes.size());
  }

  globals_.reserve(m.globals.size());
  for (const auto& g : m.globals) {
    globals_.push_back(Value{g.type.type, g.init_bits});
  }

  if (!m.tables.empty()) {
    table_.assign(m.tables.front().limits.min, kNullFuncRef);
  }
  for (const auto& seg : m.elements) {
    if (static_cast<std::uint64_t>(seg.offset) + seg.func_indices.size() >
        table_.size()) {
      throw ValidationError("element segment out of table bounds");
    }
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
      table_[seg.offset + i] = seg.func_indices[i];
    }
  }

  const auto imported = m.num_imported_functions();
  bindings_.reserve(imported);
  for (std::uint32_t f = 0; f < imported; ++f) {
    const auto& imp = m.function_import(f);
    bindings_.push_back(
        host_->bind(imp.module, imp.field, m.types.at(imp.type_index)));
  }

  if (flat_ != nullptr) {
    // Resolve trace-hook imports for direct dispatch. Only void-result
    // imports qualify: hooks never produce a value, and a null result from
    // on_hook would otherwise be indistinguishable from a missing one.
    fast_hooks_.resize(imported);
    for (std::uint32_t f = 0; f < imported; ++f) {
      const auto& imp = m.function_import(f);
      if (!m.types.at(imp.type_index).results.empty()) continue;
      FastHook& hk = fast_hooks_[f];
      hk.sink = host_->hook_sink(bindings_[f], hk.binding);
    }
  }

  control_maps_.resize(m.functions.size());
}

std::span<std::uint8_t> Instance::memory_at(std::uint64_t addr,
                                            std::uint64_t len) {
  if (addr + len > memory_.size() || addr + len < addr) {
    throw Trap("memory access out of bounds: addr=" + std::to_string(addr) +
               " len=" + std::to_string(len) +
               " size=" + std::to_string(memory_.size()));
  }
  return {memory_.data() + addr, static_cast<std::size_t>(len)};
}

std::span<const std::uint8_t> Instance::memory_at(std::uint64_t addr,
                                                  std::uint64_t len) const {
  return const_cast<Instance*>(this)->memory_at(addr, len);
}

std::int32_t Instance::memory_grow(std::uint32_t delta) {
  const auto current = memory_pages();
  const std::uint64_t target = static_cast<std::uint64_t>(current) + delta;
  if (target > max_pages) return -1;
  memory_.resize(static_cast<std::size_t>(target) * wasm::kWasmPageSize, 0);
  return static_cast<std::int32_t>(current);
}

Value Instance::global(std::uint32_t idx) const {
  if (idx >= globals_.size()) throw Trap("global index out of range");
  return globals_[idx];
}

void Instance::set_global(std::uint32_t idx, Value v) {
  if (idx >= globals_.size()) throw Trap("global index out of range");
  globals_[idx] = v;
}

std::uint32_t Instance::table_at(std::uint32_t idx) const {
  if (idx >= table_.size()) {
    throw Trap("call_indirect index " + std::to_string(idx) +
               " out of table bounds");
  }
  return table_[idx];
}

std::uint32_t Instance::host_binding(std::uint32_t func_index) const {
  if (func_index >= bindings_.size()) {
    throw Trap("host binding for non-imported function");
  }
  return bindings_[func_index];
}

const wasm::ControlMap& Instance::control_map(std::uint32_t defined_index) {
  auto& slot = control_maps_.at(defined_index);
  if (!slot) {
    slot = std::make_unique<wasm::ControlMap>(
        wasm::analyze_control(module_->functions[defined_index].body));
  }
  return *slot;
}

}  // namespace wasai::vm
