// Pre-flattened instruction streams for the fast-path executor: every
// operand decoded and every structured-control edge (branch target, else
// skip, arity, loop-ness) resolved once per module, so the interpreter's
// hot loop is a dense-array fetch plus a small switch instead of lazy
// ControlMap lookups, op_info() calls and block_arity() recomputation.
//
// Invariants (relied on by probes and the differential oracle):
//   * FlatFunction::code is 1:1 with wasm::Function::body — flat pc i
//     describes exactly body[i], so ExecProbeView pcs, step counts and
//     trap points are identical between the fast and legacy executors.
//   * Flattening never changes observable semantics: the fast executor
//     must produce byte-identical traces and results versus the legacy
//     path (pinned by tests/fastpath_test.cpp and the testgen oracle).
//   * A FlatModule is immutable and keyed to one wasm::Module; it is
//     shared across Instances (the chain creates one Instance per action,
//     so per-module caching is what makes flattening pay off).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eosvm/value.hpp"
#include "wasm/control.hpp"
#include "wasm/module.hpp"
#include "wasm/opcode.hpp"

namespace wasai::vm {

/// Dispatch tag of one flattened instruction. Control flow is specialized
/// (branch targets resolved at build time); value classes collapse onto
/// their OpInfo-driven handlers.
enum class FlatOp : std::uint8_t {
  Unreachable,
  Nop,
  Enter,         // block/loop entry: push a control entry (height only)
  If,            // pop condition; false target + push-on-false preresolved
  ElseSkip,      // `else` reached by falling out of the then-arm
  End,           // block end or function end (runtime ctrl_base check)
  Br,            // unconditional branch, side-table target
  BrIf,          // conditional branch, side-table target
  BrTable,       // indexed branch, per-entry side-table targets
  Return,
  CallDefined,   // direct call to a defined function
  CallImport,    // direct call to an imported function (host or hook)
  CallIndirect,  // table call; expected signature preresolved
  Drop,
  Select,
  LocalGet,
  LocalSet,
  LocalTee,
  GlobalGet,
  GlobalSet,
  MemorySize,
  MemoryGrow,
  Load,
  Store,
  Const,
  Unary,
  Binary,
};

/// A fully resolved branch edge: everything the legacy executor recomputes
/// from ControlMap + the runtime control stack on every taken branch.
struct BranchTarget {
  std::uint32_t target_pc = 0;  // pc after the branch is taken
  std::uint32_t depth = 0;      // label depth (runtime ctrl index)
  std::uint8_t arity = 0;       // values carried to the target
  bool is_loop = false;         // loop: jump to opener, keep its ctrl entry
  bool to_function = false;     // branch exits the frame (acts as return)
};

/// br_table side entry: the jump table with every target preresolved.
struct FlatBrTable {
  std::vector<BranchTarget> targets;
  BranchTarget fallback;
};

/// One flattened instruction (same index as the original body instruction).
struct FlatInstr {
  FlatOp op = FlatOp::Nop;
  wasm::Opcode opcode = wasm::Opcode::Nop;  // original opcode (eval dispatch)
  std::uint8_t flags = 0;   // If: push ctrl when the condition is false
  std::uint8_t arity = 0;   // Enter/If: block arity; CallImport: result count
  std::uint16_t nargs = 0;  // CallImport/CallIndirect: argument count
  std::uint32_t a = 0;      // operand: index / depth / false-target pc
  std::uint32_t b = 0;      // operand: memarg offset / defined index
  std::uint32_t aux = 0;    // side-table slot (branches_/brtables_/sig)
  std::uint64_t imm = 0;    // Const: value bits, already truncated
  const wasm::OpInfo* info = nullptr;  // Load/Store metadata
};

constexpr std::uint8_t kFlatIfPushOnFalse = 1;  // FlatInstr::flags bit

/// Flattened body of one defined function plus its frame layout.
struct FlatFunction {
  std::vector<FlatInstr> code;  // 1:1 with Function::body
  std::vector<BranchTarget> branches;
  std::vector<FlatBrTable> brtables;
  /// Typed zero values for the declared (non-parameter) locals, ready to be
  /// bulk-copied into a fresh frame.
  std::vector<Value> local_zeros;
  std::uint32_t num_params = 0;
  std::uint8_t result_arity = 0;

  [[nodiscard]] std::uint32_t num_locals() const {
    return num_params + static_cast<std::uint32_t>(local_zeros.size());
  }
};

/// Runtime control-stack entry of the fast executor: branch arity, loop-ness
/// and targets come from the side tables, so only the height remains.
struct FastCtrl {
  std::size_t height;
};

/// Call-stack frame of the fast executor. Locals live in a shared arena
/// (FastBuffers::locals) so frames allocate nothing in steady state.
struct FastFrame {
  const FlatFunction* ff = nullptr;
  std::uint32_t func_index = 0;  // function-space index
  std::uint32_t pc = 0;
  std::uint32_t locals_off = 0;  // slice of FastBuffers::locals
  std::uint32_t locals_len = 0;
  std::size_t stack_base = 0;
  std::size_t ctrl_base = 0;
  std::uint8_t result_arity = 0;
};

/// Reusable execution buffers, owned by the Vm so capacity persists across
/// the many invoke() calls of one transaction (and across transactions when
/// the caller reuses the Vm).
struct FastBuffers {
  std::vector<Value> stack;
  std::vector<FastCtrl> ctrls;
  std::vector<FastFrame> frames;
  std::vector<Value> locals;
};

/// Immutable flattened image of a module's defined functions. Built once
/// (typically at deploy) and shared by every Instance of the module.
class FlatModule {
 public:
  /// Flatten every defined function. Throws util::ValidationError on
  /// malformed bodies (unbalanced control, out-of-range local/global
  /// indices) — conditions the validator rejects anyway.
  static std::shared_ptr<const FlatModule> build(
      std::shared_ptr<const wasm::Module> module);

  [[nodiscard]] const wasm::Module& module() const { return *module_; }
  [[nodiscard]] const std::shared_ptr<const wasm::Module>& module_ptr() const {
    return module_;
  }
  [[nodiscard]] const FlatFunction& function(std::uint32_t defined_index) const {
    return functions_[defined_index];
  }
  /// Expected signature of a call_indirect site (side table slot).
  [[nodiscard]] const wasm::FuncType& signature(std::uint32_t slot) const {
    return *signatures_[slot];
  }

 private:
  std::shared_ptr<const wasm::Module> module_;
  std::vector<FlatFunction> functions_;
  std::vector<const wasm::FuncType*> signatures_;

  friend class FlatBuilder;
};

}  // namespace wasai::vm
