#include "eosvm/flatcode.hpp"

#include <string>
#include <utility>

#include "util/error.hpp"

namespace wasai::vm {

using util::ValidationError;
using wasm::Instr;
using wasm::kNoMatch;
using wasm::Opcode;
using wasm::ValType;

namespace {

/// Static control-nesting entry mirrored while flattening. Because Wasm
/// control flow is structured, the runtime control stack at body[pc] always
/// has exactly these entries above the frame's ctrl_base — which is what
/// lets branch targets be resolved here instead of per taken branch.
struct StaticCtrl {
  std::uint32_t opener;
  std::uint32_t end_idx;
  bool is_loop;
  std::uint8_t arity;
};

std::uint8_t block_arity(const Instr& ins) {
  return ins.a == wasm::kBlockVoid ? 0 : 1;
}

std::uint64_t const_bits(const Instr& ins, const wasm::OpInfo& info) {
  // i32/f32 constants are stored truncated to 32 bits, matching the stack
  // representation the legacy interpreter produces.
  if (info.result == ValType::I32 || info.result == ValType::F32) {
    return static_cast<std::uint32_t>(ins.imm);
  }
  return ins.imm;
}

}  // namespace

class FlatBuilder {
 public:
  explicit FlatBuilder(const wasm::Module& m) : m_(m) {}

  FlatFunction flatten(const wasm::Function& fn) {
    const wasm::FuncType& ft = m_.types.at(fn.type_index);
    const wasm::ControlMap cmap = wasm::analyze_control(fn.body);

    FlatFunction out;
    out.num_params = static_cast<std::uint32_t>(ft.params.size());
    out.result_arity = static_cast<std::uint8_t>(ft.results.size());
    out.local_zeros.reserve(fn.locals.size());
    for (const auto t : fn.locals) out.local_zeros.push_back(Value::zero(t));
    out.code.resize(fn.body.size());

    const std::uint32_t nlocals = out.num_locals();
    std::vector<StaticCtrl> sctrl;

    for (std::uint32_t pc = 0; pc < fn.body.size(); ++pc) {
      const Instr& ins = fn.body[pc];
      FlatInstr& fi = out.code[pc];
      fi.opcode = ins.op;
      switch (ins.op) {
        case Opcode::Unreachable:
          fi.op = FlatOp::Unreachable;
          break;
        case Opcode::Nop:
          fi.op = FlatOp::Nop;
          break;
        case Opcode::Block:
        case Opcode::Loop:
          fi.op = FlatOp::Enter;
          sctrl.push_back(StaticCtrl{pc, cmap.end_idx[pc],
                                     ins.op == Opcode::Loop,
                                     block_arity(ins)});
          break;
        case Opcode::If: {
          fi.op = FlatOp::If;
          const auto end = cmap.end_idx[pc];
          const auto els = cmap.else_idx[pc];
          if (els != kNoMatch) {
            fi.a = els + 1;  // false: run the else arm, keep the ctrl entry
            fi.flags = kFlatIfPushOnFalse;
          } else {
            fi.a = end + 1;  // empty else: skip the block entirely
          }
          sctrl.push_back(StaticCtrl{pc, end, false, block_arity(ins)});
          break;
        }
        case Opcode::Else:
          // Reached only by falling out of the then-arm: pop and skip to
          // just past the matching end. Static nesting is unchanged (the
          // if's entry stays in scope for the else arm).
          fi.op = FlatOp::ElseSkip;
          fi.a = cmap.end_idx[pc] + 1;
          break;
        case Opcode::End:
          if (sctrl.empty()) {
            // The implicit function block's end: identical to return.
            fi.op = FlatOp::Return;
          } else {
            fi.op = FlatOp::End;
            sctrl.pop_back();
          }
          break;
        case Opcode::Br:
          fi.op = FlatOp::Br;
          fi.aux = add_branch(out, resolve_branch(sctrl, ins.a));
          break;
        case Opcode::BrIf:
          fi.op = FlatOp::BrIf;
          fi.aux = add_branch(out, resolve_branch(sctrl, ins.a));
          break;
        case Opcode::BrTable: {
          fi.op = FlatOp::BrTable;
          FlatBrTable table;
          table.targets.reserve(ins.table.size());
          for (const auto depth : ins.table) {
            table.targets.push_back(resolve_branch(sctrl, depth));
          }
          table.fallback = resolve_branch(sctrl, ins.a);
          fi.aux = static_cast<std::uint32_t>(out.brtables.size());
          out.brtables.push_back(std::move(table));
          break;
        }
        case Opcode::Return:
          fi.op = FlatOp::Return;
          break;
        case Opcode::Call: {
          if (ins.a >= m_.num_functions()) {
            throw ValidationError("call to out-of-range function index " +
                                  std::to_string(ins.a));
          }
          const wasm::FuncType& callee = m_.function_type(ins.a);
          fi.a = ins.a;
          fi.nargs = static_cast<std::uint16_t>(callee.params.size());
          if (m_.is_imported_function(ins.a)) {
            fi.op = FlatOp::CallImport;
            fi.arity = static_cast<std::uint8_t>(callee.results.size());
            if (!callee.results.empty()) {
              fi.b = static_cast<std::uint32_t>(callee.results.front());
            }
          } else {
            fi.op = FlatOp::CallDefined;
            fi.b = ins.a - m_.num_imported_functions();
          }
          break;
        }
        case Opcode::CallIndirect: {
          fi.op = FlatOp::CallIndirect;
          if (ins.a >= m_.types.size()) {
            throw ValidationError("call_indirect to out-of-range type index " +
                                  std::to_string(ins.a));
          }
          fi.a = ins.a;
          fi.aux = static_cast<std::uint32_t>(signatures_.size());
          signatures_.push_back(&m_.types[ins.a]);
          break;
        }
        case Opcode::Drop:
          fi.op = FlatOp::Drop;
          break;
        case Opcode::Select:
          fi.op = FlatOp::Select;
          break;
        case Opcode::LocalGet:
        case Opcode::LocalSet:
        case Opcode::LocalTee:
          if (ins.a >= nlocals) {
            throw ValidationError("local index out of range: " +
                                  std::to_string(ins.a));
          }
          fi.op = ins.op == Opcode::LocalGet   ? FlatOp::LocalGet
                  : ins.op == Opcode::LocalSet ? FlatOp::LocalSet
                                               : FlatOp::LocalTee;
          fi.a = ins.a;
          break;
        case Opcode::GlobalGet:
        case Opcode::GlobalSet:
          if (ins.a >= m_.globals.size()) {
            throw ValidationError("global index out of range: " +
                                  std::to_string(ins.a));
          }
          fi.op = ins.op == Opcode::GlobalGet ? FlatOp::GlobalGet
                                              : FlatOp::GlobalSet;
          fi.a = ins.a;
          break;
        case Opcode::MemorySize:
          fi.op = FlatOp::MemorySize;
          break;
        case Opcode::MemoryGrow:
          fi.op = FlatOp::MemoryGrow;
          break;
        default: {
          const wasm::OpInfo& info = wasm::op_info(ins.op);
          fi.info = &info;
          switch (info.cls) {
            case wasm::OpClass::Load:
              fi.op = FlatOp::Load;
              fi.b = ins.b;  // memarg offset
              break;
            case wasm::OpClass::Store:
              fi.op = FlatOp::Store;
              fi.b = ins.b;
              break;
            case wasm::OpClass::Const:
              fi.op = FlatOp::Const;
              fi.imm = const_bits(ins, info);
              break;
            case wasm::OpClass::Unary:
              fi.op = FlatOp::Unary;
              break;
            case wasm::OpClass::Binary:
              fi.op = FlatOp::Binary;
              break;
            default:
              throw ValidationError(std::string("cannot flatten opcode ") +
                                    info.name);
          }
          break;
        }
      }
    }
    return out;
  }

  std::vector<const wasm::FuncType*> take_signatures() {
    return std::move(signatures_);
  }

 private:
  static std::uint32_t add_branch(FlatFunction& out, BranchTarget bt) {
    const auto slot = static_cast<std::uint32_t>(out.branches.size());
    out.branches.push_back(bt);
    return slot;
  }

  /// Resolve a label depth at the current static nesting into a runtime
  /// branch edge. Mirrors Executor::branch(): depth counts outward from the
  /// innermost entry; depths beyond the function's own nesting exit the
  /// frame (the implicit function label).
  static BranchTarget resolve_branch(const std::vector<StaticCtrl>& sctrl,
                                     std::uint32_t depth) {
    BranchTarget bt;
    if (depth >= sctrl.size()) {
      bt.to_function = true;
      return bt;
    }
    const std::size_t rel = sctrl.size() - 1 - depth;
    const StaticCtrl& c = sctrl[rel];
    bt.depth = static_cast<std::uint32_t>(rel);  // offset from frame ctrl_base
    bt.is_loop = c.is_loop;
    bt.arity = c.is_loop ? std::uint8_t{0} : c.arity;
    bt.target_pc = c.is_loop ? c.opener + 1 : c.end_idx + 1;
    return bt;
  }

  const wasm::Module& m_;
  std::vector<const wasm::FuncType*> signatures_;
};

std::shared_ptr<const FlatModule> FlatModule::build(
    std::shared_ptr<const wasm::Module> module) {
  auto flat = std::make_shared<FlatModule>();
  flat->module_ = std::move(module);
  FlatBuilder builder(*flat->module_);
  flat->functions_.reserve(flat->module_->functions.size());
  for (const auto& fn : flat->module_->functions) {
    flat->functions_.push_back(builder.flatten(fn));
  }
  flat->signatures_ = builder.take_signatures();
  return flat;
}

}  // namespace wasai::vm
