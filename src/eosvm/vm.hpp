// The EOSVM interpreter: a stack-based Wasm executor with a call stack,
// Local/Global sections and a byte-addressable linear memory, as described
// in §2.2 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eosvm/instance.hpp"
#include "eosvm/value.hpp"

namespace wasai::vm {

/// Resource bounds for one execution (the chain layer uses one Vm per
/// transaction, so the step budget covers all actions in it).
struct ExecLimits {
  std::uint64_t max_steps = 20'000'000;
  std::uint32_t max_call_depth = 192;
  std::size_t max_value_stack = 1 << 16;
};

/// Concrete evaluation of a unary/conversion instruction (shared with the
/// symbolic replayer's concrete-fallback paths). Throws util::Trap on
/// trapping inputs (e.g. trunc of NaN).
Value eval_unary_op(wasm::Opcode op, Value x);

/// Concrete evaluation of a binary/relational instruction.
Value eval_binary_op(wasm::Opcode op, Value lhs, Value rhs);

/// Machine state visible to an ExecProbe, snapshotted immediately BEFORE
/// the instruction at (func_index, pc) executes. Spans alias the live
/// executor state and are only valid during the callback.
struct ExecProbeView {
  std::uint32_t func_index = 0;  // function-space index (defined function)
  std::uint32_t pc = 0;          // instruction index within its body
  std::span<const Value> stack;  // the full value stack
  std::size_t frame_stack_base = 0;  // current frame's stack base
  std::span<const Value> locals;     // current frame's Local section
};

/// Per-instruction observation hook. The differential testing oracle uses
/// this to record the concrete machine state the symbolic replayer must
/// reproduce; it is a null pointer (zero cost) in production fuzzing.
class ExecProbe {
 public:
  virtual ~ExecProbe() = default;
  virtual void on_instr(const ExecProbeView& view, Instance& instance) = 0;
};

class Vm {
 public:
  explicit Vm(ExecLimits limits = {}) : limits_(limits) {}

  /// Execute a function (by function-space index) with the given arguments.
  /// Returns the result values (empty or one element in the MVP). Throws
  /// util::Trap on any runtime fault, including limit exhaustion.
  ///
  /// Instances carrying pre-flattened code (Instance::flat()) run on the
  /// fast execution path; both paths are observably identical (same traces,
  /// same step counts, same trap messages).
  std::vector<Value> invoke(Instance& instance, std::uint32_t func_index,
                            std::span<const Value> args);

  /// Instructions executed since construction (or the last reset).
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  void reset_steps() { steps_ = 0; }

  /// Install (or clear, with nullptr) a per-instruction probe.
  void set_probe(ExecProbe* probe) { probe_ = probe; }

 private:
  ExecLimits limits_;
  std::uint64_t steps_ = 0;
  ExecProbe* probe_ = nullptr;
  /// Fast-path stack/frame/locals buffers, reused across invokes so the
  /// steady state of a transaction allocates nothing per action.
  FastBuffers fast_buf_;
};

}  // namespace wasai::vm
