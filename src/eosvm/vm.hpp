// The EOSVM interpreter: a stack-based Wasm executor with a call stack,
// Local/Global sections and a byte-addressable linear memory, as described
// in §2.2 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eosvm/instance.hpp"
#include "eosvm/value.hpp"

namespace wasai::vm {

/// Resource bounds for one execution (the chain layer uses one Vm per
/// transaction, so the step budget covers all actions in it).
struct ExecLimits {
  std::uint64_t max_steps = 20'000'000;
  std::uint32_t max_call_depth = 192;
  std::size_t max_value_stack = 1 << 16;
};

/// Concrete evaluation of a unary/conversion instruction (shared with the
/// symbolic replayer's concrete-fallback paths). Throws util::Trap on
/// trapping inputs (e.g. trunc of NaN).
Value eval_unary_op(wasm::Opcode op, Value x);

/// Concrete evaluation of a binary/relational instruction.
Value eval_binary_op(wasm::Opcode op, Value lhs, Value rhs);

class Vm {
 public:
  explicit Vm(ExecLimits limits = {}) : limits_(limits) {}

  /// Execute a function (by function-space index) with the given arguments.
  /// Returns the result values (empty or one element in the MVP). Throws
  /// util::Trap on any runtime fault, including limit exhaustion.
  std::vector<Value> invoke(Instance& instance, std::uint32_t func_index,
                            std::span<const Value> args);

  /// Instructions executed since construction (or the last reset).
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  void reset_steps() { steps_ = 0; }

 private:
  ExecLimits limits_;
  std::uint64_t steps_ = 0;
};

}  // namespace wasai::vm
