// A module instance: code plus mutable runtime state (linear memory, Global
// section, function table) and resolved host bindings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "eosvm/flatcode.hpp"
#include "eosvm/host.hpp"
#include "eosvm/value.hpp"
#include "wasm/control.hpp"
#include "wasm/module.hpp"

namespace wasai::vm {

constexpr std::uint32_t kNullFuncRef = 0xffffffff;

/// Resolved fast dispatch for one imported function: when `sink` is set,
/// the fast executor calls it directly instead of going through
/// HostInterface::call_host.
struct FastHook {
  HookSink* sink = nullptr;
  std::uint32_t binding = 0;  // the sink's own binding id
};

class Instance {
 public:
  /// Instantiate: allocates memory, initialises globals/table from the
  /// module's segments and resolves every function import against `host`.
  /// When `flat` (the module's pre-flattened code, see FlatModule::build)
  /// is provided, Vm::invoke takes the fast execution path and hook imports
  /// are resolved for direct dispatch.
  Instance(std::shared_ptr<const wasm::Module> module, HostInterface& host,
           std::shared_ptr<const FlatModule> flat = nullptr);

  [[nodiscard]] const wasm::Module& module() const { return *module_; }
  [[nodiscard]] HostInterface& host() { return *host_; }

  // --- linear memory -------------------------------------------------
  [[nodiscard]] std::size_t memory_size() const { return memory_.size(); }
  [[nodiscard]] std::uint32_t memory_pages() const {
    return static_cast<std::uint32_t>(memory_.size() / wasm::kWasmPageSize);
  }
  /// Bounds-checked view; throws util::Trap on out-of-bounds.
  std::span<std::uint8_t> memory_at(std::uint64_t addr, std::uint64_t len);
  std::span<const std::uint8_t> memory_at(std::uint64_t addr,
                                          std::uint64_t len) const;
  /// Grow by `delta` pages; returns previous page count or -1 on failure.
  std::int32_t memory_grow(std::uint32_t delta);

  // --- globals / table ------------------------------------------------
  [[nodiscard]] Value global(std::uint32_t idx) const;
  void set_global(std::uint32_t idx, Value v);
  /// Resolve a table element to a function index; kNullFuncRef if empty.
  [[nodiscard]] std::uint32_t table_at(std::uint32_t idx) const;

  /// Host binding id for an imported function (function-space index).
  [[nodiscard]] std::uint32_t host_binding(std::uint32_t func_index) const;

  /// Control maps are computed lazily per function and cached.
  const wasm::ControlMap& control_map(std::uint32_t defined_index);

  /// Pre-flattened code, if this instance runs on the fast path.
  [[nodiscard]] const FlatModule* flat() const { return flat_.get(); }

  /// Fast hook dispatch for an imported function (unchecked: the fast
  /// executor only indexes imports, and only when flat() is set).
  [[nodiscard]] const FastHook& fast_hook(std::uint32_t func_index) const {
    return fast_hooks_[func_index];
  }

  /// Maximum pages the memory may grow to (EOSIO caps contract memory).
  std::uint32_t max_pages = 528;  // 33 MiB, the nodeos default

 private:
  std::shared_ptr<const wasm::Module> module_;
  HostInterface* host_;
  std::shared_ptr<const FlatModule> flat_;
  std::vector<std::uint8_t> memory_;
  std::vector<Value> globals_;
  std::vector<std::uint32_t> table_;
  std::vector<std::uint32_t> bindings_;
  std::vector<FastHook> fast_hooks_;
  std::vector<std::unique_ptr<wasm::ControlMap>> control_maps_;
};

}  // namespace wasai::vm
