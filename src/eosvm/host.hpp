// Host-function interface: how the EOSVM reaches the blockchain's library
// APIs (require_auth, db_*, eosio_assert, ...) and the instrumentation trace
// hooks (trace_*).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "eosvm/value.hpp"
#include "wasm/types.hpp"

namespace wasai::vm {

class Vm;
class Instance;

/// Implemented by the chain layer (library APIs) and wrapped by the
/// instrumentation layer (trace hooks). Bindings are resolved once at
/// instantiation; calls then dispatch on the integer binding id.
class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Resolve an import to a binding id. Throws util::ValidationError when
  /// the import is unknown or its signature does not match.
  virtual std::uint32_t bind(std::string_view module, std::string_view field,
                             const wasm::FuncType& type) = 0;

  /// Invoke the bound host function. `instance` gives access to the calling
  /// contract's linear memory. Returns the result value, if the signature
  /// has one. May throw util::Trap to abort the transaction.
  virtual std::optional<Value> call_host(std::uint32_t binding,
                                         std::span<const Value> args,
                                         Instance& instance) = 0;
};

}  // namespace wasai::vm
