// Host-function interface: how the EOSVM reaches the blockchain's library
// APIs (require_auth, db_*, eosio_assert, ...) and the instrumentation trace
// hooks (trace_*).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "eosvm/value.hpp"
#include "wasm/types.hpp"

namespace wasai::vm {

class Vm;
class Instance;

/// Direct receiver for instrumentation hook calls on the fast execution
/// path. Hooks are void-result and touch neither linear memory nor the
/// chain context, so the VM may call the sink with a raw slice of its value
/// stack — skipping binding indirection and argument packing — without any
/// observable difference from routing through call_host.
class HookSink {
 public:
  virtual ~HookSink() = default;

  /// Handle one hook event. `binding` is the id the sink itself returned
  /// from bind(); `args` aliases the caller's value stack for the duration
  /// of the call only.
  virtual void on_hook(std::uint32_t binding, const Value* args,
                       std::size_t nargs) = 0;
};

/// Implemented by the chain layer (library APIs) and wrapped by the
/// instrumentation layer (trace hooks). Bindings are resolved once at
/// instantiation; calls then dispatch on the integer binding id.
class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Resolve an import to a binding id. Throws util::ValidationError when
  /// the import is unknown or its signature does not match.
  virtual std::uint32_t bind(std::string_view module, std::string_view field,
                             const wasm::FuncType& type) = 0;

  /// Invoke the bound host function. `instance` gives access to the calling
  /// contract's linear memory. Returns the result value, if the signature
  /// has one. May throw util::Trap to abort the transaction.
  virtual std::optional<Value> call_host(std::uint32_t binding,
                                         std::span<const Value> args,
                                         Instance& instance) = 0;

  /// Fast-dispatch resolution, queried once per imported function at
  /// instantiation: if `binding` ultimately lands in a trace-hook sink,
  /// return that sink and store its own binding id in `sink_binding`
  /// (layered hosts forward the query, unwrapping their offset scheme the
  /// same way call_host forwards the call). Default: no fast path.
  virtual HookSink* hook_sink(std::uint32_t binding,
                              std::uint32_t& sink_binding) {
    (void)binding;
    (void)sink_binding;
    return nullptr;
  }
};

}  // namespace wasai::vm
