#include "corpus/obfuscator.hpp"

#include "wasm/decoder.hpp"
#include "wasm/encoder.hpp"
#include "wasm/validator.hpp"

namespace wasai::corpus {

namespace {

using wasm::FuncType;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;

/// The popcount-style decoder: reconstructs its argument bit by bit while
/// accumulating the population count (HAKMEM-flavoured, §4.3). Locals:
/// 0 = x (param), 1 = i, 2 = acc, 3 = popcnt.
wasm::Function make_decoder(std::uint32_t type_index) {
  wasm::Function fn;
  fn.type_index = type_index;
  fn.locals = {ValType::I64, ValType::I64, ValType::I64};
  fn.name = "wasai.obf.decode";
  fn.body = {
      wasm::loop(),
      // bit = (x >> i) & 1
      wasm::local_get(0),
      wasm::local_get(1),
      Instr(Opcode::I64ShrU),
      wasm::i64_const(1),
      Instr(Opcode::I64And),
      // acc |= bit << i
      wasm::local_tee(3),  // reuse 3 as bit temp before counting
      wasm::local_get(1),
      Instr(Opcode::I64Shl),
      wasm::local_get(2),
      Instr(Opcode::I64Or),
      wasm::local_set(2),
      // popcnt += bit
      wasm::local_get(3),
      wasm::local_get(3),
      Instr(Opcode::I64Add),
      Instr(Opcode::Drop),
      // i += 1; continue while i < 64
      wasm::local_get(1),
      wasm::i64_const(1),
      Instr(Opcode::I64Add),
      wasm::local_tee(1),
      wasm::i64_const(64),
      Instr(Opcode::I64LtU),
      wasm::br_if(0),
      Instr(Opcode::End),
      wasm::local_get(2),
      Instr(Opcode::End),
  };
  return fn;
}

/// Opaque recursion: rec(x) recurses only under `x > 0 && x < 0` (never),
/// then returns x. Needs its own function index for the self-call.
wasm::Function make_recursor(std::uint32_t type_index,
                             std::uint32_t self_index) {
  wasm::Function fn;
  fn.type_index = type_index;
  fn.name = "wasai.obf.rec";
  fn.body = {
      wasm::local_get(0),
      wasm::i64_const(0),
      Instr(Opcode::I64GtS),
      wasm::if_(),
      wasm::local_get(0),
      wasm::i64_const(0),
      Instr(Opcode::I64LtS),
      wasm::if_(),
      wasm::local_get(0),
      wasm::i64_const(1),
      Instr(Opcode::I64Sub),
      wasm::call(self_index),
      Instr(Opcode::Drop),
      Instr(Opcode::End),
      Instr(Opcode::End),
      wasm::local_get(0),
      Instr(Opcode::End),
  };
  return fn;
}

}  // namespace

wasm::Module obfuscate(const wasm::Module& original) {
  wasm::Module m = original;

  const FuncType i64_to_i64{{ValType::I64}, {ValType::I64}};
  const std::uint32_t type_index = m.type_index_for(i64_to_i64);
  const std::uint32_t imports = m.num_imported_functions();
  const std::uint32_t decoder_index =
      imports + static_cast<std::uint32_t>(m.functions.size());
  const std::uint32_t recursor_index = decoder_index + 1;
  const std::size_t original_count = m.functions.size();

  m.functions.push_back(make_decoder(type_index));
  m.functions.push_back(make_recursor(type_index, recursor_index));

  // Prepend the argument-encoding prologue to every original function.
  for (std::size_t d = 0; d < original_count; ++d) {
    wasm::Function& fn = m.functions[d];
    const FuncType& ft = m.types.at(fn.type_index);
    std::vector<Instr> prologue;
    bool first_i64 = true;
    for (std::uint32_t p = 0; p < ft.params.size(); ++p) {
      if (ft.params[p] != ValType::I64) continue;
      prologue.push_back(wasm::local_get(p));
      prologue.push_back(wasm::call(decoder_index));
      if (first_i64) {
        // Route the first argument through the opaque recursion too.
        prologue.push_back(wasm::call(recursor_index));
        first_i64 = false;
      }
      prologue.push_back(wasm::local_set(p));
    }
    fn.body.insert(fn.body.begin(), prologue.begin(), prologue.end());
  }

  wasm::validate(m);
  return m;
}

util::Bytes obfuscate(const util::Bytes& wasm_binary) {
  return wasm::encode(obfuscate(wasm::decode(wasm_binary)));
}

}  // namespace wasai::corpus
