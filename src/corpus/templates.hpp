// The five vulnerability template families of the evaluation benchmark
// (§4.2): each generator emits a labeled contract sample, vulnerable or
// patched, in one of several dispatcher styles, optionally wrapped in the
// complicated-verification checks of §4.3.
#pragma once

#include <string>

#include "corpus/contract_builder.hpp"
#include "scanner/scanner.hpp"
#include "util/rng.hpp"

namespace wasai::corpus {

struct Sample {
  util::Bytes wasm;
  abi::Abi abi;
  scanner::VulnType category;
  bool vulnerable = false;
  DispatcherStyle style = DispatcherStyle::Standard;
  std::string tag;
};

struct TemplateOptions {
  DispatcherStyle style = DispatcherStyle::Standard;
  /// §4.3: prepend `if (i64.ne <param> <const>) unreachable` input checks
  /// to the eosponser — only adaptive seeds get past them.
  bool complicated_verification = false;
  /// Extra solvable verification branches wrapped around the payload.
  int verification_depth = 0;
  /// Number of hard entry gates: eosio_assert(amount == random constant).
  /// Random fuzzing cannot pass them; the assert-flip rule can.
  int assert_gates = 0;
  /// Prepend a memo checksum loop whose bound is the (symbolic, for static
  /// tools) memo length — cheap concretely, path-explosive statically.
  bool memo_scan = false;
};

/// §2.3.1 — eosponser without (vulnerable) / with (safe) the
/// code == eosio.token dispatcher guard. `honeypot_when_safe` builds the
/// safe variant as a honeypot: counterfeit transfers succeed but land in a
/// logger function instead of the eosponser.
Sample make_fake_eos_sample(util::Rng& rng, bool vulnerable,
                            TemplateOptions options = {},
                            bool honeypot_when_safe = false);

/// §2.3.2 — eosponser without (vulnerable) / with (safe) the to == _self
/// payee check. Always carries the Fake-EOS dispatcher patch.
Sample make_fake_notif_sample(util::Rng& rng, bool vulnerable,
                              TemplateOptions options = {});

/// §2.3.3 — a `withdraw` action with a database side effect, with a
/// `prepare` action it depends on through the database (exercises the DBG).
/// `circular_dependency` makes the dependency unresolvable at table level —
/// the documented WASAI false-negative source.
Sample make_missauth_sample(util::Rng& rng, bool vulnerable,
                            TemplateOptions options = {},
                            bool circular_dependency = false);

/// §2.3.4 — Listing-4-style lottery whose leaf uses tapos_* randomness
/// (vulnerable) or a safe source / an unreachable branch (safe).
Sample make_blockinfo_sample(util::Rng& rng, bool vulnerable,
                             TemplateOptions options = {});

/// How a safe Rollback sample is patched.
enum class RollbackSafeVariant : std::uint8_t {
  Deferred,           // the paper's suggested defer-scheme fix
  UnreachableInline,  // §4.2: inline payout behind an unsatisfiable branch
                      // (ground-truth negative; satisfiability-blind static
                      // tools flag it anyway)
};

/// §2.3.5 — Listing-4-style lottery paying out via send_inline
/// (vulnerable) or a safe variant. `admin_gated` reproduces the
/// address-pool false-negative of §4.2.
Sample make_rollback_sample(
    util::Rng& rng, bool vulnerable, TemplateOptions options = {},
    bool admin_gated = false,
    RollbackSafeVariant safe_variant = RollbackSafeVariant::Deferred);

/// Profile of a "wild" contract (RQ1/RQ4): a profitable lottery-style
/// service combining an eosponser, a lottery leaf and account-management
/// actions, with independently toggleable vulnerabilities.
struct WildFlags {
  bool fake_eos = false;    // no code == eosio.token dispatcher guard
  bool fake_notif = false;  // no to == _self payee check
  bool miss_auth = false;   // withdraw lacks require_auth
  bool blockinfo = false;   // lottery leaf draws randomness from tapos_*
  bool rollback = false;    // lottery pays out via send_inline
  int verification_depth = 1;
};

Sample make_wild_sample(util::Rng& rng, const WildFlags& flags);

}  // namespace wasai::corpus
