// The Wasm bytecode obfuscator of §4.3 (RQ3): since no off-the-shelf
// obfuscator exists for Wasm, the paper built one with two methods —
//   1. data-flow obfuscation: function arguments are passed through a
//      popcount-style bit-reconstruction loop (semantically the identity,
//      but opaque to static pattern matching and expensive to unroll), and
//   2. control-flow obfuscation: recursive calls whose entry condition is
//      unsatisfiable are inserted, bloating the static CFG.
#pragma once

#include "util/bytes.hpp"
#include "wasm/module.hpp"

namespace wasai::corpus {

/// Obfuscate a module. Behaviour-preserving by construction; the returned
/// module re-validates.
wasm::Module obfuscate(const wasm::Module& original);

/// Convenience: decode → obfuscate → encode.
util::Bytes obfuscate(const util::Bytes& wasm_binary);

}  // namespace wasai::corpus
