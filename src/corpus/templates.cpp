#include "corpus/templates.hpp"

#include "chain/token.hpp"
#include "util/error.hpp"

namespace wasai::corpus {

namespace {

using abi::ActionDef;
using abi::name;
using abi::ParamType;
using util::Rng;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;
using Code = std::vector<Instr>;

constexpr ValType I32 = ValType::I32;
constexpr ValType I64 = ValType::I64;

// Locals of a transfer-shaped action function (Table 2):
constexpr std::uint32_t kSelf = 0;
constexpr std::uint32_t kFrom = 1;
constexpr std::uint32_t kTo = 2;
constexpr std::uint32_t kQty = 3;   // i32 pointer
constexpr std::uint32_t kMemo = 4;  // i32 pointer

Code cat(std::initializer_list<Code> parts) { return wasm::concat(parts); }

Code amount_at(std::uint32_t qty_local) {
  return {wasm::local_get(qty_local), wasm::mem_load(Opcode::I64Load)};
}
Code amount() { return amount_at(kQty); }
Code symbol_at(std::uint32_t qty_local) {
  return {wasm::local_get(qty_local), wasm::mem_load(Opcode::I64Load, 8)};
}
Code symbol() { return symbol_at(kQty); }
Code memo_byte(std::uint32_t index) {
  return {wasm::local_get(kMemo),
          wasm::mem_load(Opcode::I32Load8U, 1 + index)};
}

Code if_then(Code cond, Code then) {
  Code out = std::move(cond);
  out.push_back(wasm::if_());
  out.insert(out.end(), then.begin(), then.end());
  out.emplace_back(Opcode::End);
  return out;
}

Code assert_cond(const EnvImports& env, Code cond) {
  Code out = std::move(cond);
  out.push_back(wasm::i32_const(kMsgRegion));
  out.push_back(wasm::call(env.eosio_assert));
  return out;
}

Code unreachable_unless_eq64(Code value, std::uint64_t expected) {
  Code out = std::move(value);
  out.push_back(wasm::i64_const_u(expected));
  out.emplace_back(Opcode::I64Ne);
  out.push_back(wasm::if_());
  out.emplace_back(Opcode::Unreachable);
  out.emplace_back(Opcode::End);
  return out;
}

/// §4.3's injected verification: the transfer must carry exactly
/// 100.0000 EOS (amount 1000000, symbol 1397703940).
Code complicated_verification(std::uint32_t qty_local = kQty) {
  return cat(
      {unreachable_unless_eq64(amount_at(qty_local), 1'000'000),
       unreachable_unless_eq64(symbol_at(qty_local),
                               abi::eos_symbol().value())});
}

/// Hard entry gate: eosio_assert(<input> == random constant) — impassable
/// for random seeds, one assert-flip for the solver. Memo-based when the
/// §4.3 verification already pins the amount (the conditions must stay
/// jointly satisfiable).
Code assert_gate(const EnvImports& env, Rng& rng, bool memo_based) {
  Code cond;
  if (memo_based) {
    cond = memo_byte(3);
    cond.push_back(
        wasm::i32_const('a' + static_cast<std::int32_t>(rng.below(26))));
    cond.emplace_back(Opcode::I32Eq);
  } else {
    cond = amount();
    cond.push_back(wasm::i64_const(rng.range(2, 9'0000'0000ll)));
    cond.emplace_back(Opcode::I64Eq);
  }
  return assert_cond(env, std::move(cond));
}

// Extra-local layout for transfer-shaped eosponser bodies.
constexpr std::uint32_t kItr = 5;   // i32: db iterator scratch
constexpr std::uint32_t kIdx = 6;   // i32: memo-scan index
constexpr std::uint32_t kSum = 7;   // i32: memo-scan checksum
constexpr std::uint32_t kLen = 8;   // i32: memo length

std::vector<ValType> eosponser_locals() { return {I32, I32, I32, I32}; }

/// Checksum loop over the memo bytes. Concretely bounded by the seed's
/// memo length; statically, the bound is symbolic — a path-explosion trap
/// for whole-program symbolic executors.
Code memo_scan() {
  return {
      wasm::local_get(kMemo),
      wasm::mem_load(Opcode::I32Load8U),
      wasm::local_set(kLen),
      wasm::block(),
      wasm::loop(),
      wasm::local_get(kIdx),
      wasm::local_get(kLen),
      Instr(Opcode::I32GeU),
      wasm::br_if(1),
      wasm::local_get(kMemo),
      wasm::local_get(kIdx),
      Instr(Opcode::I32Add),
      wasm::mem_load(Opcode::I32Load8U, 1),
      wasm::local_get(kSum),
      Instr(Opcode::I32Add),
      wasm::local_set(kSum),
      wasm::local_get(kIdx),
      wasm::i32_const(1),
      Instr(Opcode::I32Add),
      wasm::local_set(kIdx),
      wasm::br(0),
      Instr(Opcode::End),
      Instr(Opcode::End),
  };
}

/// tapos_block_prefix() * tapos_block_num() — the BlockinfoDep pattern.
Code tapos_randomness(const EnvImports& env) {
  return {wasm::call(env.tapos_block_prefix), wasm::call(env.tapos_block_num),
          Instr(Opcode::I32Mul), Instr(Opcode::Drop)};
}

/// Find-or-store a row keyed by the amount, storing the amount as payload —
/// a generic profitable-service side effect. `itr_local` must be an i32
/// scratch local.
Code upsert_row(const EnvImports& env, std::uint64_t table,
                std::uint32_t itr_local) {
  Code out;
  // Stage the value: scratch <- amount.
  out = cat({{wasm::i32_const(kScratchRegion)}, amount(),
             {wasm::mem_store(Opcode::I64Store)}});
  // itr = db_find(self, from, table, amount)
  out.push_back(wasm::local_get(kSelf));
  out.push_back(wasm::local_get(kFrom));
  out.push_back(wasm::i64_const_u(table));
  out = cat({out, amount()});
  out.push_back(wasm::call(env.db_find));
  out.push_back(wasm::local_set(itr_local));
  // if (itr < 0) db_store else db_update
  out.push_back(wasm::local_get(itr_local));
  out.push_back(wasm::i32_const(0));
  out.emplace_back(Opcode::I32LtS);
  out.push_back(wasm::if_());
  {
    out.push_back(wasm::local_get(kFrom));       // scope
    out.push_back(wasm::i64_const_u(table));
    out.push_back(wasm::local_get(kSelf));       // payer
    out = cat({out, amount()});                  // id
    out.push_back(wasm::i32_const(kScratchRegion));
    out.push_back(wasm::i32_const(8));
    out.push_back(wasm::call(env.db_store));
    out.emplace_back(Opcode::Drop);
  }
  out.emplace_back(Opcode::Else);
  {
    out.push_back(wasm::local_get(itr_local));
    out.push_back(wasm::local_get(kSelf));  // payer
    out.push_back(wasm::i32_const(kScratchRegion));
    out.push_back(wasm::i32_const(8));
    out.push_back(wasm::call(env.db_update));
  }
  out.emplace_back(Opcode::End);
  return out;
}

/// Packed inline/deferred payout action template. Placeholders are patched
/// at runtime with _self (authorizer + token sender) and the `from`
/// parameter (payee).
struct PayoutTemplate {
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint32_t> self_offsets;  // write local 0 here
  std::vector<std::uint32_t> from_offsets;  // write local 1 here
};

PayoutTemplate make_payout_template() {
  const abi::Name placeholder_self(0xd1d2d3d4d5d6d7d8ull);
  const abi::Name placeholder_from(0xe1e2e3e4e5e6e7e8ull);
  const chain::Action act = chain::token_transfer(
      name("eosio.token"), placeholder_self, placeholder_from,
      abi::eos(5'0000), "w");
  PayoutTemplate out;
  out.bytes = chain::pack_action(act);
  auto find_all = [&](std::uint64_t pattern,
                      std::vector<std::uint32_t>& offsets) {
    for (std::size_t i = 0; i + 8 <= out.bytes.size(); ++i) {
      std::uint64_t v = 0;
      std::memcpy(&v, out.bytes.data() + i, 8);
      if (v == pattern) offsets.push_back(static_cast<std::uint32_t>(i));
    }
  };
  find_all(placeholder_self.value(), out.self_offsets);
  find_all(placeholder_from.value(), out.from_offsets);
  if (out.self_offsets.size() != 2 || out.from_offsets.size() != 1) {
    throw util::UsageError("payout template layout changed");
  }
  return out;
}

constexpr std::uint32_t kPayoutRegion = kScratchRegion + 256;

/// Emit the payout: patch the embedded packed action, then send it inline
/// (Rollback-vulnerable) or deferred (the paper's suggested fix).
Code payout(const EnvImports& env, const PayoutTemplate& tmpl,
            bool use_inline) {
  Code out;
  for (const auto off : tmpl.self_offsets) {
    out.push_back(wasm::i32_const(kPayoutRegion + off));
    out.push_back(wasm::local_get(kSelf));
    out.push_back(wasm::mem_store(Opcode::I64Store));
  }
  for (const auto off : tmpl.from_offsets) {
    out.push_back(wasm::i32_const(kPayoutRegion + off));
    out.push_back(wasm::local_get(kFrom));
    out.push_back(wasm::mem_store(Opcode::I64Store));
  }
  if (use_inline) {
    out.push_back(wasm::i32_const(kPayoutRegion));
    out.push_back(
        wasm::i32_const(static_cast<std::int32_t>(tmpl.bytes.size())));
    out.push_back(wasm::call(env.send_inline));
  } else {
    out.push_back(wasm::i32_const(0));            // sender id ptr (unused)
    out.push_back(wasm::local_get(kSelf));        // payer
    out.push_back(wasm::i32_const(kPayoutRegion));
    out.push_back(
        wasm::i32_const(static_cast<std::int32_t>(tmpl.bytes.size())));
    out.push_back(wasm::call(env.send_deferred));
  }
  return out;
}

/// Wrap `leaf` in `depth` solvable verification branches over the transfer
/// parameters (amount / from / memo byte) — random constants per §4.2's
/// BlockinfoDep & Rollback construction.
Code nested_verification(Rng& rng, int depth, Code leaf,
                         bool amount_conditions = true) {
  // Conditions verify only attacker-controllable inputs (quantity, memo):
  // the payer name is fixed by the transfer's authorization. Each nesting
  // level constrains a DIFFERENT input so the leaf stays satisfiable:
  // one amount condition at most, then one memo byte per further level.
  Code inner = std::move(leaf);
  for (int d = 0; d < depth; ++d) {
    Code cond;
    if (d == 0 && amount_conditions) {
      if (rng.chance(0.5)) {
        // Equality above every template's minimum-payment assert (10 EOS).
        cond = cat({amount(),
                    {wasm::i64_const(rng.range(10'0000, 100'0000)),
                     Instr(Opcode::I64Eq)}});
      } else {
        // Thresholds far above any random amount (mutator max 10^7) yet
        // within the harness's affordable-transfer clamp (10^10).
        cond = cat({amount(),
                    {wasm::i64_const(rng.range(1'0000'0000ll,
                                               49'0000'0000ll)),
                     Instr(Opcode::I64GtS)}});
      }
    } else {
      const auto byte_index =
          static_cast<std::uint32_t>(amount_conditions ? d - 1 : d);
      cond = cat({memo_byte(byte_index),
                  {wasm::i32_const('a' + static_cast<std::int32_t>(
                                             rng.below(26))),
                   Instr(Opcode::I32Eq)}});
    }
    inner = if_then(std::move(cond), std::move(inner));
  }
  return inner;
}

/// An unsatisfiable wrapper: amount == c1 && amount == c2 with c1 != c2.
Code unreachable_branch(Rng& rng, Code leaf) {
  const std::int64_t c1 = rng.range(10, 1000);
  const std::int64_t c2 = c1 + 1 + rng.range(0, 1000);
  Code inner = if_then(
      cat({amount(), {wasm::i64_const(c2), Instr(Opcode::I64Eq)}}),
      std::move(leaf));
  return if_then(cat({amount(), {wasm::i64_const(c1), Instr(Opcode::I64Eq)}}),
                 std::move(inner));
}

Code end_body(Code body) {
  body.emplace_back(Opcode::End);
  return body;
}

Sample finish(ContractBuilder&& builder, scanner::VulnType category,
              bool vulnerable, const TemplateOptions& options,
              std::string tag) {
  Sample sample;
  sample.abi = builder.abi();
  sample.wasm = std::move(builder).build_binary(options.style);
  sample.category = category;
  sample.vulnerable = vulnerable;
  sample.style = options.style;
  sample.tag = std::move(tag);
  return sample;
}

Code eosponser_prelude(const TemplateOptions& options, const EnvImports& env,
                       Rng& rng) {
  Code out;
  if (options.complicated_verification) {
    out = cat({out, complicated_verification()});
  }
  for (int g = 0; g < options.assert_gates; ++g) {
    out = cat({out, assert_gate(env, rng, options.complicated_verification)});
  }
  if (options.memo_scan) out = cat({out, memo_scan()});
  return out;
}

}  // namespace

Sample make_fake_eos_sample(Rng& rng, bool vulnerable,
                            TemplateOptions options,
                            bool honeypot_when_safe) {
  ContractBuilder b;
  const EnvImports env = b.env();
  ActionOptions act_opts;
  act_opts.require_code_match = false;
  if (!vulnerable && honeypot_when_safe) {
    act_opts.honeypot_fallback = true;  // accepts fake EOS, runs a logger
  } else {
    act_opts.guard_code_is_token = !vulnerable;  // Listing 1's patch
  }

  // Service: credit the payer's balance row when the payment is positive.
  Code service = if_then(
      cat({amount(), {wasm::i64_const(0), Instr(Opcode::I64GtS)}}),
      upsert_row(env, name("credits").value(), kItr));
  Code body = cat({eosponser_prelude(options, env, rng),
                   nested_verification(rng, options.verification_depth,
                                       std::move(service),
                                       !options.complicated_verification)});
  b.add_action(abi::transfer_action_def(), eosponser_locals(),
               end_body(std::move(body)), act_opts);

  // A harmless status action (real contracts always have one). Under the
  // complicated-verification benchmark it gets its own injected check, so
  // that *no* transaction can succeed randomly — the precondition of
  // EOSFuzzer's all-failed oracle flaw (§4.3).
  {
    ActionDef ping_def{name("ping"), {ParamType::Name}};
    Code ping;
    if (options.complicated_verification) {
      ping = unreachable_unless_eq64({wasm::local_get(1)},
                                     name("statuscheck").value());
    }
    ping = cat({ping,
                {wasm::local_get(kSelf), wasm::i64_const(0),
                 wasm::i64_const_u(name("status").value()), wasm::i64_const(1),
                 wasm::call(env.db_find), Instr(Opcode::Drop)}});
    b.add_action(ping_def, {}, end_body(std::move(ping)));
  }
  return finish(std::move(b), scanner::VulnType::FakeEos, vulnerable, options,
                vulnerable ? "fake-eos/no-code-check"
                : honeypot_when_safe ? "fake-eos/honeypot"
                                     : "fake-eos/patched");
}

Sample make_fake_notif_sample(Rng& rng, bool vulnerable,
                              TemplateOptions options) {
  ContractBuilder b;
  const EnvImports env = b.env();
  ActionOptions act_opts;
  act_opts.require_code_match = false;
  act_opts.guard_code_is_token = true;  // Fake-EOS-safe; Fake Notif bypasses

  Code guard;
  if (!vulnerable) {
    // Listing 2's patch: if (to != _self) return — ignore forwarded
    // notifications whose payee is someone else.
    guard = {wasm::local_get(kTo), wasm::local_get(kSelf),
             Instr(Opcode::I64Ne), wasm::if_(), Instr(Opcode::Return),
             Instr(Opcode::End)};
  }
  Code service = if_then(
      cat({amount(), {wasm::i64_const(0), Instr(Opcode::I64GtS)}}),
      upsert_row(env, name("credits").value(), kItr));
  Code body = cat({eosponser_prelude(options, env, rng), std::move(guard),
                   nested_verification(rng, options.verification_depth,
                                       std::move(service),
                                       !options.complicated_verification)});
  b.add_action(abi::transfer_action_def(), eosponser_locals(),
               end_body(std::move(body)), act_opts);
  return finish(std::move(b), scanner::VulnType::FakeNotif, vulnerable,
                options,
                vulnerable ? "fake-notif/no-payee-check"
                           : "fake-notif/patched");
}

Sample make_missauth_sample(Rng& rng, bool vulnerable,
                            TemplateOptions options,
                            bool circular_dependency) {
  ContractBuilder b;
  const EnvImports env = b.env();
  const std::uint64_t t1 = name("inittab").value();
  const std::uint64_t t2 = name("inittab2").value();
  const std::uint64_t balances = name("balances").value();

  auto find_row = [&](std::uint64_t table) {
    return Code{wasm::local_get(kSelf), wasm::i64_const(0),
                wasm::i64_const_u(table), wasm::i64_const(1),
                wasm::call(env.db_find), wasm::i32_const(0),
                Instr(Opcode::I32GeS)};
  };
  auto store_row = [&](std::uint64_t table) {
    // Blind store: only valid while the row is absent, so writer actions
    // guard with a find first.
    return Code{wasm::i64_const(0),      wasm::i64_const_u(table),
                wasm::local_get(kSelf),  wasm::i64_const(1),
                wasm::i32_const(kScratchRegion), wasm::i32_const(8),
                wasm::call(env.db_store), Instr(Opcode::Drop)};
  };
  auto store_if_absent = [&](std::uint64_t table) {
    Code cond = find_row(table);
    cond.emplace_back(Opcode::I32Eqz);
    return if_then(std::move(cond), store_row(table));
  };

  // withdraw(owner, amount): [db dependency asserts]; [auth]; side effect.
  // Locals: 0 = self, 1 = owner (name), 2 = amount (asset pointer).
  ActionDef withdraw_def{name("withdraw"), {ParamType::Name, ParamType::Asset}};
  Code body;
  if (options.complicated_verification) {
    // withdraw's asset pointer lives in local 2.
    body = cat({body, complicated_verification(/*qty_local=*/2)});
  }
  body = cat({body, assert_cond(env, find_row(t1))});
  if (circular_dependency) body = cat({body, assert_cond(env, find_row(t2))});
  if (!vulnerable) {
    // The patch (Listing 3): check the owner's authority first.
    body.push_back(wasm::local_get(1));
    body.push_back(wasm::call(env.require_auth));
  }
  // Stage the amount as the row payload.
  body = cat({body,
              {wasm::i32_const(kScratchRegion), wasm::local_get(2),
               wasm::mem_load(Opcode::I64Load),
               wasm::mem_store(Opcode::I64Store)}});
  // Side effect: db_store into balances keyed by the amount (guarded by a
  // find so repeated seeds stay re-runnable).
  {
    Code cond = Code{wasm::local_get(kSelf), wasm::local_get(1),
                     wasm::i64_const_u(balances), wasm::local_get(2),
                     wasm::mem_load(Opcode::I64Load), wasm::call(env.db_find),
                     wasm::i32_const(0), Instr(Opcode::I32LtS)};
    Code store = Code{wasm::local_get(1), wasm::i64_const_u(balances),
                      wasm::local_get(kSelf), wasm::local_get(2),
                      wasm::mem_load(Opcode::I64Load),
                      wasm::i32_const(kScratchRegion), wasm::i32_const(8),
                      wasm::call(env.db_store), Instr(Opcode::Drop)};
    body = cat({body, if_then(std::move(cond), std::move(store))});
  }
  b.add_action(withdraw_def, {}, end_body(std::move(body)));

  // prepare / prepare2: the writer actions the DBG discovers.
  {
    ActionDef prepare_def{name("prepare"), {ParamType::Name}};
    Code prep;
    if (circular_dependency) prep = cat({prep, assert_cond(env, find_row(t2))});
    if (!vulnerable) {
      prep.push_back(wasm::local_get(1));
      prep.push_back(wasm::call(env.require_auth));
    }
    prep = cat({prep, store_if_absent(t1)});
    b.add_action(prepare_def, {}, end_body(std::move(prep)));
  }
  if (circular_dependency) {
    ActionDef prepare2_def{name("preparetwo"), {ParamType::Name}};
    Code prep = assert_cond(env, find_row(t1));
    prep = cat({prep, store_if_absent(t2)});
    b.add_action(prepare2_def, {}, end_body(std::move(prep)));
  }
  (void)rng;
  return finish(std::move(b), scanner::VulnType::MissAuth, vulnerable, options,
                circular_dependency ? "missauth/circular-dep"
                : vulnerable       ? "missauth/no-check"
                                   : "missauth/guarded");
}

Sample make_blockinfo_sample(Rng& rng, bool vulnerable,
                             TemplateOptions options) {
  ContractBuilder b;
  const EnvImports env = b.env();
  ActionOptions act_opts;
  act_opts.require_code_match = false;
  act_opts.guard_code_is_token = true;

  Code leaf;
  std::string tag;
  if (vulnerable) {
    leaf = tapos_randomness(env);
    tag = "blockinfo/tapos";
  } else if (rng.chance(0.5)) {
    // Vulnerable-looking code behind an unsatisfiable branch: ground-truth
    // negative that satisfiability-blind tools flag anyway.
    leaf = unreachable_branch(rng, tapos_randomness(env));
    tag = "blockinfo/unreachable-tapos";
  } else {
    // Verified PRNG service stand-in: a database-backed random beacon.
    leaf = {wasm::local_get(kSelf), wasm::i64_const(0),
            wasm::i64_const_u(name("beacon").value()), wasm::i64_const(1),
            wasm::call(env.db_find), Instr(Opcode::Drop)};
    tag = "blockinfo/safe-prng";
  }
  const int depth = options.verification_depth > 0
                        ? options.verification_depth
                        : 1 + static_cast<int>(rng.below(2));
  Code body = cat({eosponser_prelude(options, env, rng),
                   assert_cond(env, cat({amount(),
                                         {wasm::i64_const(10'0000),
                                          Instr(Opcode::I64GeS)}})),
                   nested_verification(rng, depth, std::move(leaf),
                                       !options.complicated_verification)});
  b.add_action(abi::transfer_action_def(), eosponser_locals(),
               end_body(std::move(body)), act_opts);
  return finish(std::move(b), scanner::VulnType::BlockinfoDep, vulnerable,
                options, tag);
}

Sample make_rollback_sample(Rng& rng, bool vulnerable,
                            TemplateOptions options, bool admin_gated,
                            RollbackSafeVariant safe_variant) {
  ContractBuilder b;
  const EnvImports env = b.env();
  const PayoutTemplate tmpl = make_payout_template();
  b.raw().add_data(kPayoutRegion,
                   std::vector<std::uint8_t>(tmpl.bytes.begin(),
                                             tmpl.bytes.end()));
  ActionOptions act_opts;
  act_opts.require_code_match = false;
  act_opts.guard_code_is_token = true;

  Code leaf;
  std::string tag;
  if (vulnerable) {
    leaf = payout(env, tmpl, /*use_inline=*/true);
    tag = "rollback/inline-payout";
  } else if (safe_variant == RollbackSafeVariant::Deferred) {
    leaf = payout(env, tmpl, /*use_inline=*/false);
    tag = "rollback/deferred-payout";
  } else {
    // Inline payout exists in the binary but only behind an unsatisfiable
    // branch — a ground-truth negative with vulnerable-looking code.
    leaf = unreachable_branch(rng, payout(env, tmpl, /*use_inline=*/true));
    tag = "rollback/unreachable-inline";
  }
  if (admin_gated) {
    // Only the (unknown) administrator can reach the payout: WASAI has no
    // address pool, so its seeds never pass require_auth(from) — §4.2 FN.
    Code gated = if_then(
        {wasm::local_get(kFrom),
         wasm::i64_const_u(name("superadmin").value()), Instr(Opcode::I64Eq)},
        std::move(leaf));
    leaf = cat({{wasm::local_get(kFrom), wasm::call(env.require_auth)},
                std::move(gated)});
    tag += "/admin-gated";
  }
  const int depth = options.verification_depth > 0
                        ? options.verification_depth
                        : 1 + static_cast<int>(rng.below(2));
  Code body = cat({eosponser_prelude(options, env, rng),
                   assert_cond(env, cat({amount(),
                                         {wasm::i64_const(10'0000),
                                          Instr(Opcode::I64GeS)}})),
                   nested_verification(rng, depth, std::move(leaf),
                                       !options.complicated_verification)});
  b.add_action(abi::transfer_action_def(), eosponser_locals(),
               end_body(std::move(body)), act_opts);
  return finish(std::move(b), scanner::VulnType::Rollback, vulnerable,
                options, tag);
}

Sample make_wild_sample(Rng& rng, const WildFlags& flags) {
  ContractBuilder b;
  const EnvImports env = b.env();
  const PayoutTemplate tmpl = make_payout_template();
  b.raw().add_data(kPayoutRegion,
                   std::vector<std::uint8_t>(tmpl.bytes.begin(),
                                             tmpl.bytes.end()));

  // ---- eosponser: verification → lottery leaf -------------------------
  ActionOptions act_opts;
  act_opts.require_code_match = false;
  act_opts.guard_code_is_token = !flags.fake_eos;

  Code guard;
  if (!flags.fake_notif) {
    guard = {wasm::local_get(kTo), wasm::local_get(kSelf),
             Instr(Opcode::I64Ne), wasm::if_(), Instr(Opcode::Return),
             Instr(Opcode::End)};
  }
  Code leaf;
  if (flags.blockinfo) leaf = cat({leaf, tapos_randomness(env)});
  leaf = cat({leaf, payout(env, tmpl, /*use_inline=*/flags.rollback)});
  leaf = cat({leaf, upsert_row(env, name("credits").value(), kItr)});

  Code body = cat(
      {std::move(guard),
       assert_cond(env, cat({amount(), {wasm::i64_const(1'0000),
                                        Instr(Opcode::I64GeS)}})),
       nested_verification(rng, flags.verification_depth, std::move(leaf))});
  b.add_action(abi::transfer_action_def(), eosponser_locals(),
               end_body(std::move(body)), act_opts);

  // ---- withdraw / prepare (account management) -------------------------
  const std::uint64_t t1 = name("inittab").value();
  const std::uint64_t balances = name("balances").value();
  auto find_row = [&](std::uint64_t table) {
    return Code{wasm::local_get(kSelf), wasm::i64_const(0),
                wasm::i64_const_u(table), wasm::i64_const(1),
                wasm::call(env.db_find), wasm::i32_const(0),
                Instr(Opcode::I32GeS)};
  };
  {
    ActionDef withdraw_def{name("withdraw"),
                           {ParamType::Name, ParamType::Asset}};
    Code w = assert_cond(env, find_row(t1));
    if (!flags.miss_auth) {
      w.push_back(wasm::local_get(1));
      w.push_back(wasm::call(env.require_auth));
    }
    Code cond = Code{wasm::local_get(kSelf), wasm::local_get(1),
                     wasm::i64_const_u(balances), wasm::local_get(2),
                     wasm::mem_load(Opcode::I64Load), wasm::call(env.db_find),
                     wasm::i32_const(0), Instr(Opcode::I32LtS)};
    Code store = Code{wasm::local_get(1), wasm::i64_const_u(balances),
                      wasm::local_get(kSelf), wasm::local_get(2),
                      wasm::mem_load(Opcode::I64Load),
                      wasm::i32_const(kScratchRegion), wasm::i32_const(8),
                      wasm::call(env.db_store), Instr(Opcode::Drop)};
    w = cat({w, if_then(std::move(cond), std::move(store))});
    b.add_action(withdraw_def, {}, end_body(std::move(w)));
  }
  {
    ActionDef prepare_def{name("prepare"), {ParamType::Name}};
    Code prep;
    if (!flags.miss_auth) {
      // Safe contracts check authority on every state-changing action.
      prep.push_back(wasm::local_get(1));
      prep.push_back(wasm::call(env.require_auth));
    }
    Code cond = find_row(t1);
    cond.emplace_back(Opcode::I32Eqz);
    Code store = Code{wasm::i64_const(0), wasm::i64_const_u(t1),
                      wasm::local_get(kSelf), wasm::i64_const(1),
                      wasm::i32_const(kScratchRegion), wasm::i32_const(8),
                      wasm::call(env.db_store), Instr(Opcode::Drop)};
    prep = cat({prep, if_then(std::move(cond), std::move(store))});
    b.add_action(prepare_def, {}, end_body(std::move(prep)));
  }

  Sample sample;
  sample.abi = b.abi();
  sample.wasm = std::move(b).build_binary(DispatcherStyle::Standard);
  sample.category = scanner::VulnType::FakeEos;  // nominal; see `injected`
  sample.vulnerable = flags.fake_eos || flags.fake_notif || flags.miss_auth ||
                      flags.blockinfo || flags.rollback;
  sample.tag = "wild";
  return sample;
}

}  // namespace wasai::corpus
