#include "corpus/dataset.hpp"

#include <cmath>

#include "corpus/obfuscator.hpp"

namespace wasai::corpus {

namespace {

using scanner::VulnType;
using util::Rng;

std::size_t scaled(std::size_t full, double scale) {
  const auto n = static_cast<std::size_t>(std::llround(full * scale));
  return n == 0 ? 1 : n;
}

// Mixture rates use deterministic index quotas rather than Bernoulli draws
// so scaled-down benchmarks keep the intended proportions exactly.
bool quota(std::size_t i, std::size_t num, std::size_t den) {
  return (i * num) % den < num;
}

DispatcherStyle style_quota(std::size_t i, std::size_t standard_pct,
                            std::size_t obscured_pct) {
  const std::size_t r = (i * 37 + 11) % 100;  // deterministic shuffle
  if (r < standard_pct) return DispatcherStyle::Standard;
  if (r < standard_pct + obscured_pct) return DispatcherStyle::Obscured;
  return DispatcherStyle::DirectCall;
}

}  // namespace

CategoryCounts rq2_counts() { return {127, 689, 445, 200, 209}; }
CategoryCounts verification_counts() { return {95, 589, 378, 200, 200}; }

std::vector<Sample> make_benchmark(const BenchmarkSpec& spec) {
  const CategoryCounts counts =
      spec.complicated_verification ? verification_counts() : rq2_counts();
  Rng root(spec.seed);
  std::vector<Sample> out;

  const auto common = [&](Rng& rng) {
    TemplateOptions o;
    o.complicated_verification = spec.complicated_verification;
    (void)rng;
    return o;
  };

  // ---- Fake EOS --------------------------------------------------------
  // Vulnerable: dispatcher-style diversity defeats EOSAFE's heuristic on
  // ~55% of samples; ~20% carry hard entry gates random fuzzing cannot
  // pass. Safe: ~9% are honeypots (EOSFuzzer's oracle FPs on them).
  for (std::size_t i = 0; i < scaled(counts.fake_eos, spec.scale); ++i) {
    for (const bool vulnerable : {true, false}) {
      Rng rng = root.fork(0x1000 + i * 2 + vulnerable);
      TemplateOptions o = common(rng);
      o.style = style_quota(i, 45, 30);
      if (vulnerable && quota(i, 1, 5)) o.assert_gates = 1;  // 20%
      const bool honeypot = !vulnerable && quota(i, 1, 11);  // ~9%
      out.push_back(make_fake_eos_sample(rng, vulnerable, o, honeypot));
    }
  }

  // ---- Fake Notif ------------------------------------------------------
  // Vulnerable: ~25% gated (EOSFuzzer FNs). Safe: ~47% carry a memo-scan
  // loop that path-explodes whole-program symbolic execution (EOSAFE's
  // timeout-means-vulnerable rule FPs on them).
  for (std::size_t i = 0; i < scaled(counts.fake_notif, spec.scale); ++i) {
    for (const bool vulnerable : {true, false}) {
      Rng rng = root.fork(0x2000 + i * 2 + vulnerable);
      TemplateOptions o = common(rng);
      if (vulnerable && quota(i, 1, 4)) o.assert_gates = 1;   // 25%
      if (!vulnerable && quota(i, 8, 17)) o.memo_scan = true;  // ~47%
      out.push_back(make_fake_notif_sample(rng, vulnerable, o));
    }
  }

  // ---- MissAuth --------------------------------------------------------
  // Vulnerable: only ~39% use the standard dispatcher EOSAFE can locate;
  // ~4% have a circular database dependency (WASAI's table-level DBG FN).
  for (std::size_t i = 0; i < scaled(counts.miss_auth, spec.scale); ++i) {
    for (const bool vulnerable : {true, false}) {
      Rng rng = root.fork(0x3000 + i * 2 + vulnerable);
      TemplateOptions o = common(rng);
      o.style = style_quota(i, 39, 35);
      const bool circular = vulnerable && quota(i, 1, 25);  // 4%
      out.push_back(make_missauth_sample(rng, vulnerable, o, circular));
    }
  }

  // ---- BlockinfoDep ----------------------------------------------------
  for (std::size_t i = 0; i < scaled(counts.blockinfo, spec.scale); ++i) {
    for (const bool vulnerable : {true, false}) {
      Rng rng = root.fork(0x4000 + i * 2 + vulnerable);
      out.push_back(make_blockinfo_sample(rng, vulnerable, common(rng)));
    }
  }

  // ---- Rollback --------------------------------------------------------
  // Vulnerable: ~4% admin-gated (WASAI has no address pool — §4.2 FNs).
  // Safe: ~85% keep the inline payout behind an unsatisfiable branch
  // (EOSAFE's satisfiability-blind rule FPs), the rest use defer.
  for (std::size_t i = 0; i < scaled(counts.rollback, spec.scale); ++i) {
    for (const bool vulnerable : {true, false}) {
      Rng rng = root.fork(0x5000 + i * 2 + vulnerable);
      const bool admin = vulnerable && quota(i, 1, 23);  // ~4.3%
      const auto safe_variant = quota(i, 17, 20)          // 85%
                                    ? RollbackSafeVariant::UnreachableInline
                                    : RollbackSafeVariant::Deferred;
      out.push_back(make_rollback_sample(rng, vulnerable, common(rng), admin,
                                         safe_variant));
    }
  }

  if (spec.obfuscated) {
    for (auto& sample : out) sample.wasm = obfuscate(sample.wasm);
  }
  return out;
}

std::vector<Sample> make_coverage_set(std::size_t n, std::uint64_t seed) {
  Rng root(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = root.fork(0x6000 + i);
    WildFlags flags;
    flags.fake_eos = rng.chance(0.4);
    flags.fake_notif = rng.chance(0.4);
    flags.miss_auth = rng.chance(0.5);
    flags.blockinfo = rng.chance(0.2);
    flags.rollback = rng.chance(0.3);
    // Deep verification: the branch population only adaptive seeds reach.
    flags.verification_depth = 3 + static_cast<int>(rng.below(3));
    out.push_back(make_wild_sample(rng, flags));
  }
  return out;
}

std::vector<WildContract> make_wild_population(std::size_t n,
                                               std::uint64_t seed) {
  Rng root(seed);
  std::vector<WildContract> out;
  out.reserve(n);
  // The paper's per-type rates among the 707 vulnerable contracts.
  const double p_vulnerable = 707.0 / 991.0;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = root.fork(0x7000 + i);
    WildFlags flags;
    flags.verification_depth = 1 + static_cast<int>(rng.below(2));
    WildContract wc;
    if (rng.chance(p_vulnerable)) {
      flags.fake_eos = rng.chance(241.0 / 707.0);
      flags.fake_notif = rng.chance(264.0 / 707.0);
      flags.miss_auth = rng.chance(470.0 / 707.0);
      flags.blockinfo = rng.chance(22.0 / 707.0);
      flags.rollback = rng.chance(122.0 / 707.0);
      if (!flags.fake_eos && !flags.fake_notif && !flags.miss_auth &&
          !flags.blockinfo && !flags.rollback) {
        flags.miss_auth = true;
      }
    }
    if (flags.fake_eos) wc.injected.insert(VulnType::FakeEos);
    if (flags.fake_notif) wc.injected.insert(VulnType::FakeNotif);
    if (flags.miss_auth) wc.injected.insert(VulnType::MissAuth);
    if (flags.blockinfo) wc.injected.insert(VulnType::BlockinfoDep);
    if (flags.rollback) wc.injected.insert(VulnType::Rollback);
    wc.sample = make_wild_sample(rng, flags);
    out.push_back(std::move(wc));
  }
  return out;
}

}  // namespace wasai::corpus
