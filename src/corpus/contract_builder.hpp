// Emits EOSIO-SDK-shaped Wasm contracts: an `apply` dispatcher that matches
// the action name, deserializes the packed action data into memory, and
// hands control to the action function via call_indirect — the exact idiom
// WASAI's calling-convention analysis targets (§3.4.2). The corpus templates
// compose their payload logic as action-function bodies on top of this.
#pragma once

#include <vector>

#include "abi/abi_def.hpp"
#include "util/bytes.hpp"
#include "wasm/builder.hpp"

namespace wasai::corpus {

/// Function-space indices of the imported library APIs, shared by all
/// generated contracts (imported in a fixed order).
struct EnvImports {
  std::uint32_t require_auth;
  std::uint32_t has_auth;
  std::uint32_t require_auth2;
  std::uint32_t eosio_assert;
  std::uint32_t read_action_data;
  std::uint32_t action_data_size;
  std::uint32_t current_receiver;
  std::uint32_t require_recipient;
  std::uint32_t send_inline;
  std::uint32_t send_deferred;
  std::uint32_t tapos_block_num;
  std::uint32_t tapos_block_prefix;
  std::uint32_t current_time;
  std::uint32_t db_store;
  std::uint32_t db_find;
  std::uint32_t db_get;
  std::uint32_t db_update;
  std::uint32_t db_remove;
  std::uint32_t db_next;
  std::uint32_t db_lowerbound;
  std::uint32_t printi;
};

/// How the apply() dispatcher is written. Real-world contracts differ here,
/// which is exactly what breaks EOSAFE's dispatcher pattern heuristic
/// (§4.2): it only recognises the Standard idiom.
enum class DispatcherStyle : std::uint8_t {
  Standard,   // if (action == N(a)) { ...; call_indirect a; }
  Obscured,   // the comparison is computed through an xor mask
  DirectCall, // plain `call` instead of the SDK's call_indirect
};

/// Per-action dispatch options.
struct ActionOptions {
  /// Insert the Listing-1 patch: eosio_assert(code == N(eosio.token)) before
  /// running the action. Used by Fake-EOS-safe eosponsers.
  bool guard_code_is_token = false;
  /// Require code == receiver (the normal non-notification dispatch rule).
  /// Off for eosponsers, which must accept notifications.
  bool require_code_match = true;
  /// Honeypot shape: when code != eosio.token, route to a synthesized
  /// logger function instead of the real action (the transaction still
  /// succeeds — the flaw EOSFuzzer's "any action ran" oracle falls for).
  bool honeypot_fallback = false;
};

/// Memory layout constants shared with the deserializer.
constexpr std::uint32_t kMsgRegion = 256;    // assert message strings
constexpr std::uint32_t kActionBuf = 1024;   // deserialized action data
constexpr std::uint32_t kActionBufCap = 512;
constexpr std::uint32_t kScratchRegion = 2048;  // free for action bodies

class ContractBuilder {
 public:
  ContractBuilder();

  [[nodiscard]] const EnvImports& env() const { return env_; }

  /// Declare an action. `body` is the body of the action *function*, whose
  /// locals follow Table 2: local 0 = self (i64), locals 1..n = parameters
  /// (scalars by value, asset/string as i32 pointers into kActionBuf);
  /// `extra_locals` append after. The terminating `end` is added if absent.
  /// Returns the action function's index (useful for direct calls).
  std::uint32_t add_action(const abi::ActionDef& def,
                           std::vector<wasm::ValType> extra_locals,
                           std::vector<wasm::Instr> body,
                           ActionOptions options = {});

  /// Number of actions added so far.
  [[nodiscard]] std::size_t action_count() const { return actions_.size(); }

  /// Escape hatch for templates that need extra data segments etc.
  [[nodiscard]] wasm::ModuleBuilder& raw() { return b_; }

  /// Finalize: generates apply() in the requested style. Consumes the
  /// builder.
  wasm::Module build_module(DispatcherStyle style) &&;
  util::Bytes build_binary(DispatcherStyle style) &&;

  [[nodiscard]] abi::Abi abi() const;

  /// The value type an ABI parameter occupies in the action function's
  /// Local section (pointers for asset/string).
  static wasm::ValType local_type(abi::ParamType t);

  /// Static offset of parameter `i` inside kActionBuf. Only valid when no
  /// string parameter precedes it (the builder enforces strings-last).
  static std::uint32_t param_offset(const abi::ActionDef& def,
                                    std::size_t index);

 private:
  struct PendingAction {
    abi::ActionDef def;
    std::uint32_t func_index;
    ActionOptions options;
  };

  wasm::ModuleBuilder b_;
  EnvImports env_{};
  std::vector<PendingAction> actions_;
};

}  // namespace wasai::corpus
