// Benchmark assembly (§4.2-§4.4): the RQ2 ground-truth dataset (Table 4
// counts), its obfuscated (Table 5) and complicated-verification (Table 6)
// variants, the RQ1 coverage set, and the RQ4 wild population.
//
// Mixture rates inside each category encode the *structural diversity* of
// the paper's harvested corpus (dispatcher styles, honeypots, guard depth,
// admin gating). They are calibrated so each tool fails for the reasons the
// paper documents; see DESIGN.md "Substitutions".
#pragma once

#include <set>

#include "corpus/templates.hpp"

namespace wasai::corpus {

struct BenchmarkSpec {
  std::uint64_t seed = 42;
  /// Fraction of the paper's sample counts to generate (1.0 = the full
  /// 3,340-sample benchmark; benches default lower for CI speed).
  double scale = 1.0;
  /// Apply the §4.3 bytecode obfuscator to every sample (Table 5).
  bool obfuscated = false;
  /// Build the complicated-verification benchmark (Table 6 counts and the
  /// injected input checks).
  bool complicated_verification = false;
};

/// Per-category vulnerable/safe pair counts.
struct CategoryCounts {
  std::size_t fake_eos, fake_notif, miss_auth, blockinfo, rollback;
};

/// Table 4 counts (half vulnerable / half safe within each category).
CategoryCounts rq2_counts();
/// Table 6 counts.
CategoryCounts verification_counts();

std::vector<Sample> make_benchmark(const BenchmarkSpec& spec);

/// RQ1: branch-heavy contracts for the coverage comparison.
std::vector<Sample> make_coverage_set(std::size_t n, std::uint64_t seed);

/// RQ4: one "profitable Mainnet contract" with a set of injected
/// vulnerabilities (possibly several, possibly none).
struct WildContract {
  Sample sample;
  std::set<scanner::VulnType> injected;
};

/// RQ4 population: vulnerability mixture approximating the paper's counts
/// (241 FakeEos / 264 FakeNotif / 470 MissAuth / 22 BlockinfoDep /
/// 122 Rollback over 991 contracts, 707 vulnerable).
std::vector<WildContract> make_wild_population(std::size_t n,
                                               std::uint64_t seed);

}  // namespace wasai::corpus
