#include "corpus/contract_builder.hpp"

#include "util/error.hpp"
#include "wasm/encoder.hpp"

namespace wasai::corpus {

namespace {

using abi::ParamType;
using wasm::FuncType;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;

constexpr ValType I32 = ValType::I32;
constexpr ValType I64 = ValType::I64;
constexpr ValType F64 = ValType::F64;

/// Bytes each parameter occupies in the packed action data.
std::uint32_t packed_size(ParamType t) {
  switch (t) {
    case ParamType::Name:
    case ParamType::U64:
    case ParamType::I64:
    case ParamType::F64:
      return 8;
    case ParamType::U32:
      return 4;
    case ParamType::Asset:
      return 16;
    case ParamType::String:
      return 0;  // variable; must be last
  }
  return 0;
}

}  // namespace

ContractBuilder::ContractBuilder() {
  // Fixed import order: every generated contract shares this layout.
  env_.require_auth = b_.import_func("env", "require_auth", {{I64}, {}});
  env_.has_auth = b_.import_func("env", "has_auth", {{I64}, {I32}});
  env_.require_auth2 =
      b_.import_func("env", "require_auth2", {{I64, I64}, {}});
  env_.eosio_assert = b_.import_func("env", "eosio_assert", {{I32, I32}, {}});
  env_.read_action_data =
      b_.import_func("env", "read_action_data", {{I32, I32}, {I32}});
  env_.action_data_size =
      b_.import_func("env", "action_data_size", {{}, {I32}});
  env_.current_receiver =
      b_.import_func("env", "current_receiver", {{}, {I64}});
  env_.require_recipient =
      b_.import_func("env", "require_recipient", {{I64}, {}});
  env_.send_inline = b_.import_func("env", "send_inline", {{I32, I32}, {}});
  env_.send_deferred =
      b_.import_func("env", "send_deferred", {{I32, I64, I32, I32}, {}});
  env_.tapos_block_num =
      b_.import_func("env", "tapos_block_num", {{}, {I32}});
  env_.tapos_block_prefix =
      b_.import_func("env", "tapos_block_prefix", {{}, {I32}});
  env_.current_time = b_.import_func("env", "current_time", {{}, {I64}});
  env_.db_store = b_.import_func(
      "env", "db_store_i64", {{I64, I64, I64, I64, I32, I32}, {I32}});
  env_.db_find =
      b_.import_func("env", "db_find_i64", {{I64, I64, I64, I64}, {I32}});
  env_.db_get = b_.import_func("env", "db_get_i64", {{I32, I32, I32}, {I32}});
  env_.db_update =
      b_.import_func("env", "db_update_i64", {{I32, I64, I32, I32}, {}});
  env_.db_remove = b_.import_func("env", "db_remove_i64", {{I32}, {}});
  env_.db_next = b_.import_func("env", "db_next_i64", {{I32, I32}, {I32}});
  env_.db_lowerbound = b_.import_func("env", "db_lowerbound_i64",
                                      {{I64, I64, I64, I64}, {I32}});
  env_.printi = b_.import_func("env", "printi", {{I64}, {}});

  b_.add_memory(4);
  // Default assert message at kMsgRegion: "revert\0".
  b_.add_data(kMsgRegion, {'r', 'e', 'v', 'e', 'r', 't', 0});
}

wasm::ValType ContractBuilder::local_type(ParamType t) {
  switch (t) {
    case ParamType::Name:
    case ParamType::U64:
    case ParamType::I64:
      return I64;
    case ParamType::U32:
      return I32;
    case ParamType::F64:
      return F64;
    case ParamType::Asset:
    case ParamType::String:
      return I32;  // pointer into kActionBuf
  }
  return I64;
}

std::uint32_t ContractBuilder::param_offset(const abi::ActionDef& def,
                                            std::size_t index) {
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < index; ++i) {
    const std::uint32_t sz = packed_size(def.params[i]);
    if (sz == 0) {
      throw util::UsageError(
          "string parameters must come last in generated actions");
    }
    offset += sz;
  }
  return offset;
}

std::uint32_t ContractBuilder::add_action(const abi::ActionDef& def,
                                          std::vector<ValType> extra_locals,
                                          std::vector<Instr> body,
                                          ActionOptions options) {
  for (std::size_t i = 0; i + 1 < def.params.size(); ++i) {
    if (def.params[i] == ParamType::String) {
      throw util::UsageError(
          "string parameters must be the last action parameter");
    }
  }
  FuncType type;
  type.params.push_back(I64);  // self
  for (const auto p : def.params) type.params.push_back(local_type(p));

  const auto fn =
      b_.add_func(type, std::move(extra_locals), std::move(body),
                  def.name.to_string());
  actions_.push_back(PendingAction{def, fn, options});
  return fn;
}

wasm::Module ContractBuilder::build_module(DispatcherStyle style) && {
  if (actions_.empty()) {
    throw util::UsageError("contract has no actions");
  }
  // Function table: element i -> action i's function.
  std::vector<std::uint32_t> table_entries;
  table_entries.reserve(actions_.size());
  for (const auto& a : actions_) table_entries.push_back(a.func_index);
  b_.add_table(static_cast<std::uint32_t>(actions_.size()));
  b_.add_elem(0, table_entries);

  // void apply(i64 receiver, i64 code, i64 action)
  std::vector<Instr> body;
  const std::uint64_t mask = 0x5a5a5a5a5a5a5a5aull;  // Obscured style

  // Deserialize + push self/params + invoke `target` (by table element j
  // or, for DirectCall style and honeypot loggers, a direct call).
  const auto emit_invoke = [&](std::vector<Instr>& out,
                               const PendingAction& a, std::size_t j,
                               std::optional<std::uint32_t> direct_target) {
    out.push_back(wasm::i32_const(kActionBuf));
    out.push_back(wasm::i32_const(kActionBufCap));
    out.push_back(wasm::call(env_.read_action_data));
    out.push_back(Instr(Opcode::Drop));

    out.push_back(wasm::local_get(0));  // self
    for (std::size_t i = 0; i < a.def.params.size(); ++i) {
      const std::uint32_t off = kActionBuf + param_offset(a.def, i);
      out.push_back(wasm::i32_const(static_cast<std::int32_t>(off)));
      switch (a.def.params[i]) {
        case ParamType::Name:
        case ParamType::U64:
        case ParamType::I64:
          out.push_back(wasm::mem_load(Opcode::I64Load));
          break;
        case ParamType::U32:
          out.push_back(wasm::mem_load(Opcode::I32Load));
          break;
        case ParamType::F64:
          out.push_back(wasm::mem_load(Opcode::F64Load));
          break;
        case ParamType::Asset:
        case ParamType::String:
          // Passed by pointer; data already in place in the buffer. (The
          // string's uleb length byte doubles as the in-memory length
          // prefix — generated memos stay under 128 bytes.)
          break;
      }
    }

    if (direct_target) {
      out.push_back(wasm::call(*direct_target));
    } else if (style == DispatcherStyle::DirectCall) {
      out.push_back(wasm::call(a.func_index));
    } else {
      out.push_back(wasm::i32_const(static_cast<std::int32_t>(j)));
      Instr ci(Opcode::CallIndirect);
      FuncType type;
      type.params.push_back(I64);
      for (const auto p : a.def.params) type.params.push_back(local_type(p));
      ci.a = b_.type_index(type);
      out.push_back(ci);
    }
  };

  // Honeypot loggers are synthesized up front (they share the action's
  // signature; the body just probes a log table).
  std::vector<std::optional<std::uint32_t>> loggers(actions_.size());
  for (std::size_t j = 0; j < actions_.size(); ++j) {
    if (!actions_[j].options.honeypot_fallback) continue;
    FuncType type;
    type.params.push_back(I64);
    for (const auto p : actions_[j].def.params) {
      type.params.push_back(local_type(p));
    }
    std::vector<Instr> logger_body = {
        wasm::local_get(0),
        wasm::i64_const(0),
        wasm::i64_const_u(abi::name("hlog").value()),
        wasm::i64_const(1),
        wasm::call(env_.db_find),
        Instr(Opcode::Drop),
        Instr(Opcode::End),
    };
    loggers[j] = b_.add_func(type, {}, std::move(logger_body), "hlogger");
  }

  for (std::size_t j = 0; j < actions_.size(); ++j) {
    const PendingAction& a = actions_[j];
    const std::uint64_t action_name = a.def.name.value();

    body.push_back(wasm::block());
    // Skip unless action matches.
    if (style == DispatcherStyle::Obscured) {
      body.push_back(wasm::local_get(2));
      body.push_back(wasm::i64_const_u(mask));
      body.push_back(Instr(Opcode::I64Xor));
      body.push_back(wasm::i64_const_u(action_name ^ mask));
      body.push_back(Instr(Opcode::I64Ne));
    } else {
      body.push_back(wasm::local_get(2));
      body.push_back(wasm::i64_const_u(action_name));
      body.push_back(Instr(Opcode::I64Ne));
    }
    body.push_back(wasm::br_if(0));

    if (a.options.honeypot_fallback) {
      // if (code == eosio.token) run the real action else run the logger —
      // the transaction succeeds either way.
      body.push_back(wasm::local_get(1));
      body.push_back(wasm::i64_const_u(abi::name("eosio.token").value()));
      body.push_back(Instr(Opcode::I64Eq));
      body.push_back(wasm::if_());
      emit_invoke(body, a, j, std::nullopt);
      body.push_back(Instr(Opcode::Else));
      emit_invoke(body, a, j, loggers[j]);
      body.push_back(Instr(Opcode::End));
      body.push_back(Instr(Opcode::End));  // close the action block
      continue;
    }

    if (a.options.guard_code_is_token) {
      // Listing 1's patch: assert(code == N(eosio.token), "").
      body.push_back(wasm::local_get(1));
      body.push_back(wasm::i64_const_u(abi::name("eosio.token").value()));
      body.push_back(Instr(Opcode::I64Eq));
      body.push_back(wasm::i32_const(kMsgRegion));
      body.push_back(wasm::call(env_.eosio_assert));
    }
    if (a.options.require_code_match) {
      // Normal dispatch rule: only run when code == receiver.
      body.push_back(wasm::local_get(1));
      body.push_back(wasm::local_get(0));
      body.push_back(Instr(Opcode::I64Ne));
      body.push_back(wasm::br_if(0));
    }

    emit_invoke(body, a, j, std::nullopt);
    body.push_back(Instr(Opcode::End));
  }
  body.push_back(Instr(Opcode::End));

  const auto apply = b_.add_func(FuncType{{I64, I64, I64}, {}}, {},
                                 std::move(body), "apply");
  b_.export_func("apply", apply);
  return std::move(b_).build();
}

util::Bytes ContractBuilder::build_binary(DispatcherStyle style) && {
  return wasm::encode(std::move(*this).build_module(style));
}

abi::Abi ContractBuilder::abi() const {
  abi::Abi out;
  for (const auto& a : actions_) out.actions.push_back(a.def);
  return out;
}

}  // namespace wasai::corpus
