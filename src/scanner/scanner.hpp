// The vulnerability Scanner (§3.5): consumes per-transaction trace facts
// gathered by the fuzzing Engine under the adversary oracles of §2.3 and
// decides, per vulnerability class, whether an exploit event occurred.
#pragma once

#include <array>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abi/name.hpp"
#include "scanner/facts.hpp"

namespace wasai::scanner {

enum class VulnType : std::uint8_t {
  FakeEos,
  FakeNotif,
  MissAuth,
  BlockinfoDep,
  Rollback,
};

const char* to_string(VulnType t);

/// Inverse of to_string; nullopt for unknown names. Used when campaign
/// records are parsed back from JSONL (checkpoint/resume).
std::optional<VulnType> vuln_from_string(std::string_view name);

/// How the transaction that produced a trace was constructed — the oracle
/// payloads of §2.3.
enum class PayloadMode : std::uint8_t {
  Normal,            // fuzzing seed invoked directly (code == receiver)
  ValidTransfer,     // real EOS via eosio.token (locates the eosponser id_e)
  DirectFakeEos,     // attacker invokes transfer@victim directly
  FakeTokenTransfer, // counterfeit EOS issued by fake.token
  FakeNotifForward,  // real transfer relayed through the fake.notif agent
};

struct Finding {
  VulnType type;
  std::string detail;
};

/// Static pre-analysis verdicts lowered onto the scanner: a false entry
/// marks that oracle as statically impossible on the analyzed module.
/// Gating is deliberately non-suppressive — a finding for a gated oracle
/// is still reported (soundness first), but it increments the violation
/// counter, which the soundness tests and the static-analysis CI job gate
/// on being zero. Defaults to all-possible (no gate).
struct OracleGate {
  std::array<bool, 5> possible{true, true, true, true, true};

  [[nodiscard]] bool allows(VulnType t) const {
    return possible[static_cast<std::size_t>(t)];
  }
  void forbid(VulnType t) { possible[static_cast<std::size_t>(t)] = false; }
};

struct Report {
  std::set<VulnType> found;
  std::vector<Finding> findings;

  [[nodiscard]] bool has(VulnType t) const { return found.contains(t); }
};

class Scanner {
 public:
  struct Config {
    abi::Name victim;
    abi::Name token;       // eosio.token
    abi::Name fake_token;  // the counterfeit issuer
    abi::Name fake_notif;  // the notification relay agent
  };

  explicit Scanner(Config config) : config_(config) {}

  /// Install the static pre-analysis gate (see OracleGate).
  void set_gate(OracleGate gate) { gate_ = gate; }

  /// Findings that fired for an oracle the static analysis declared
  /// impossible. Always zero when the analysis is sound (or no gate is
  /// set); a non-zero value is a conservatism-contract violation.
  [[nodiscard]] std::size_t gate_violations() const {
    return gate_violations_;
  }

  /// Feed one trace of the victim contract, produced under `mode`.
  /// `action` is the action name that reached the victim.
  void observe(PayloadMode mode, abi::Name action, const TraceFacts& facts,
               bool transaction_succeeded);

  /// The eosponser's function id, once a valid transfer located it.
  [[nodiscard]] std::optional<std::uint32_t> eosponser_id() const {
    return eosponser_id_;
  }

  [[nodiscard]] Report report() const;

 private:
  void add(VulnType type, std::string detail);

  Config config_;
  OracleGate gate_;
  /// Mutable: report() is const but must account a FakeNotif verdict that
  /// contradicts the gate.
  mutable std::size_t gate_violations_ = 0;
  std::optional<std::uint32_t> eosponser_id_;
  bool eosponser_ran_on_fake_notif_ = false;
  bool fake_notif_guard_seen_ = false;
  Report report_;
};

}  // namespace wasai::scanner
