#include "scanner/scanner.hpp"

namespace wasai::scanner {

namespace {

bool is_auth_api(std::string_view name) {
  return name == "require_auth" || name == "require_auth2" ||
         name == "has_auth";
}

/// Side-effect APIs (the paper's Effects set): inline actions and database
/// writes.
bool is_effect_api(std::string_view name) {
  return name == "send_inline" || name == "db_store_i64" ||
         name == "db_update_i64" || name == "db_remove_i64";
}

}  // namespace

void Scanner::observe(PayloadMode mode, abi::Name action,
                      const TraceFacts& facts, bool transaction_succeeded) {
  // Locate id_e: the action function a *valid* EOS transfer lands in —
  // the first transfer-shaped function the trace enters (robust against
  // helper functions, e.g. obfuscation decoders, running first).
  if (mode == PayloadMode::ValidTransfer && !eosponser_id_) {
    if (!facts.transfer_shaped.empty()) {
      eosponser_id_ = facts.transfer_shaped.front();
    } else if (facts.function_ids.size() >= 2) {
      eosponser_id_ = facts.function_ids[1];
    }
  }

  // Fake EOS (§3.5): the eosponser executed on a counterfeit transfer. The
  // exploit only lands if the victim did not revert — a reverted
  // transaction leaves no effect for the attacker to profit from.
  if (transaction_succeeded &&
      (mode == PayloadMode::DirectFakeEos ||
       mode == PayloadMode::FakeTokenTransfer) &&
      eosponser_id_ && facts.ran_function(*eosponser_id_)) {
    add(VulnType::FakeEos,
        mode == PayloadMode::DirectFakeEos
            ? "eosponser invoked directly without a code check"
            : "eosponser accepted tokens issued by " +
                  config_.fake_token.to_string());
  }

  // Fake Notif: remember whether the eosponser ran on a forwarded
  // notification, and whether the guard comparison (to == _self, i.e.
  // fake.notif vs victim) ever executed. Verdict at report() time — the
  // guard may only be reached by later, deeper seeds.
  if (transaction_succeeded && mode == PayloadMode::FakeNotifForward &&
      eosponser_id_ && facts.ran_function(*eosponser_id_)) {
    eosponser_ran_on_fake_notif_ = true;
  }
  for (const auto& cmp : facts.i64_comparisons) {
    if (cmp.matches(config_.fake_notif.value(), config_.victim.value())) {
      fake_notif_guard_seen_ = true;
    }
  }

  // BlockinfoDep: any executed call to a blockchain-state API.
  if (facts.called_api("tapos_block_num") ||
      facts.called_api("tapos_block_prefix")) {
    add(VulnType::BlockinfoDep,
        "blockchain state used as a randomness source in " +
            action.to_string());
  }

  // Rollback: an inline action was issued (§3.5: #send_inline ∈ id⃗).
  if (facts.called_api("send_inline")) {
    add(VulnType::Rollback,
        "inline action issued by " + action.to_string() +
            " can be reverted by the caller");
  }

  // MissAuth: a side effect before any permission check, on a directly
  // invoked (non-eosponser) action.
  if (mode == PayloadMode::Normal &&
      action != abi::name("transfer")) {
    bool auth_seen = false;
    for (const auto& api : facts.api_calls) {
      if (is_auth_api(api.name)) auth_seen = true;
      if (is_effect_api(api.name) && !auth_seen) {
        add(VulnType::MissAuth,
            "side effect (" + api.name + ") in " + action.to_string() +
                " without prior authorization check");
        break;
      }
    }
  }
}

Report Scanner::report() const {
  Report out = report_;
  // Fake Notif verdict: the eosponser ran on a forged notification and no
  // guard comparison was observed before timeout.
  if (eosponser_ran_on_fake_notif_ && !fake_notif_guard_seen_) {
    if (!gate_.allows(VulnType::FakeNotif)) ++gate_violations_;
    out.found.insert(VulnType::FakeNotif);
    out.findings.push_back(
        Finding{VulnType::FakeNotif,
                "eosponser accepted a notification forwarded by " +
                    config_.fake_notif.to_string() +
                    " without validating the payee"});
  }
  return out;
}

void Scanner::add(VulnType type, std::string detail) {
  // A gated (statically impossible) oracle firing is a conservatism
  // violation: record it, but never suppress the finding.
  if (!gate_.allows(type)) ++gate_violations_;
  if (report_.found.insert(type).second) {
    report_.findings.push_back(Finding{type, std::move(detail)});
  }
}

const char* to_string(VulnType t) {
  switch (t) {
    case VulnType::FakeEos:
      return "Fake EOS";
    case VulnType::FakeNotif:
      return "Fake Notif";
    case VulnType::MissAuth:
      return "MissAuth";
    case VulnType::BlockinfoDep:
      return "BlockinfoDep";
    case VulnType::Rollback:
      return "Rollback";
  }
  return "?";
}

std::optional<VulnType> vuln_from_string(std::string_view name) {
  for (const VulnType t :
       {VulnType::FakeEos, VulnType::FakeNotif, VulnType::MissAuth,
        VulnType::BlockinfoDep, VulnType::Rollback}) {
    if (name == to_string(t)) return t;
  }
  return std::nullopt;
}

}  // namespace wasai::scanner
