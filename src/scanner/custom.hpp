// Detector extension interface (§5): "the bug detectors can be extended in
// two steps: (1) adding oracles and constructing the payload templates ...
// (2) analyzing traces to confirm the exploit events." Custom oracles
// observe the same per-trace facts as the built-in detectors and deliver a
// verdict when the campaign ends.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "scanner/scanner.hpp"

namespace wasai::scanner {

class CustomOracle {
 public:
  virtual ~CustomOracle() = default;

  /// Stable identifier shown in reports (e.g. "uses-current-time").
  [[nodiscard]] virtual std::string id() const = 0;

  /// Called once per victim trace, with the payload mode that produced it.
  virtual void observe(PayloadMode mode, abi::Name action,
                       const TraceFacts& facts, bool transaction_succeeded) = 0;

  /// Final verdict: a finding detail when triggered, nullopt otherwise.
  [[nodiscard]] virtual std::optional<std::string> verdict() const = 0;
};

/// Convenience oracle: triggers when any of the given library APIs is
/// called in a victim trace — the shape of BlockinfoDep-style detectors.
class ApiUseOracle : public CustomOracle {
 public:
  ApiUseOracle(std::string id, std::vector<std::string> apis)
      : id_(std::move(id)), apis_(std::move(apis)) {}

  [[nodiscard]] std::string id() const override { return id_; }

  void observe(PayloadMode, abi::Name action, const TraceFacts& facts,
               bool) override {
    for (const auto& api : apis_) {
      if (facts.called_api(api)) {
        triggered_ = "action " + action.to_string() + " calls " + api;
      }
    }
  }

  [[nodiscard]] std::optional<std::string> verdict() const override {
    return triggered_.empty() ? std::nullopt
                              : std::optional<std::string>(triggered_);
  }

 private:
  std::string id_;
  std::vector<std::string> apis_;
  std::string triggered_;
};

struct CustomFinding {
  std::string id;
  std::string detail;
};

}  // namespace wasai::scanner
