#include "scanner/facts.hpp"

#include "wasm/control.hpp"

namespace wasai::scanner {

using instrument::EventKind;

TraceFacts extract_facts(const instrument::ActionTrace& trace,
                         const instrument::SiteTable& sites,
                         const wasm::Module& module) {
  // Table image for call_indirect resolution.
  std::vector<std::uint32_t> table;
  if (!module.tables.empty()) {
    table.assign(module.tables[0].limits.min, wasm::kNoMatch);
  }
  for (const auto& seg : module.elements) {
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
      if (seg.offset + i < table.size()) {
        table[seg.offset + i] = seg.func_indices[i];
      }
    }
  }

  const wasm::FuncType transfer_sig{
      {wasm::ValType::I64, wasm::ValType::I64, wasm::ValType::I64,
       wasm::ValType::I32, wasm::ValType::I32},
      {}};

  TraceFacts facts;
  for (const auto& ev : trace.events) {
    switch (ev.kind) {
      case EventKind::FunctionBegin:
        facts.function_ids.push_back(ev.site);
        if (module.function_type(ev.site) == transfer_sig) {
          facts.transfer_shaped.push_back(ev.site);
        }
        break;
      case EventKind::CallDirect: {
        const auto& info = sites.at(ev.site);
        const auto& ins =
            module.defined(info.func_index).body[info.instr_index];
        if (module.is_imported_function(ins.a)) {
          facts.api_calls.push_back(
              ApiEvent{module.function_import(ins.a).field, ev.site});
        }
        break;
      }
      case EventKind::CallIndirect: {
        const std::uint32_t elem = ev.val(0).u32();
        if (elem < table.size() && table[elem] != wasm::kNoMatch &&
            module.is_imported_function(table[elem])) {
          facts.api_calls.push_back(
              ApiEvent{module.function_import(table[elem]).field, ev.site});
        }
        break;
      }
      case EventKind::Instr: {
        if (ev.nvals != 2) break;
        const auto& info = sites.at(ev.site);
        const auto& ins =
            module.defined(info.func_index).body[info.instr_index];
        if (ins.op == wasm::Opcode::I64Eq || ins.op == wasm::Opcode::I64Ne) {
          facts.i64_comparisons.push_back(
              CmpEvent{ev.val(0).u64(), ev.val(1).u64()});
        }
        break;
      }
      default:
        break;
    }
  }
  return facts;
}

}  // namespace wasai::scanner
