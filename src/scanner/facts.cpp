#include "scanner/facts.hpp"

#include "wasm/control.hpp"

namespace wasai::scanner {

using instrument::EventKind;

namespace {

const wasm::FuncType& transfer_signature() {
  static const wasm::FuncType sig{
      {wasm::ValType::I64, wasm::ValType::I64, wasm::ValType::I64,
       wasm::ValType::I32, wasm::ValType::I32},
      {}};
  return sig;
}

}  // namespace

SiteIndex::SiteIndex(const instrument::SiteTable& sites,
                     const wasm::Module& module) {
  sites_.reserve(sites.size());
  for (const auto& info : sites.sites) {
    const auto& ins =
        module.defined(info.func_index).body[info.instr_index];
    Site s;
    s.op = ins.op;
    s.is_branch =
        ins.op == wasm::Opcode::If || ins.op == wasm::Opcode::BrIf;
    s.is_i64_cmp =
        ins.op == wasm::Opcode::I64Eq || ins.op == wasm::Opcode::I64Ne;
    if (ins.op == wasm::Opcode::Call &&
        module.is_imported_function(ins.a)) {
      s.api_name = module.function_import(ins.a).field.c_str();
    }
    sites_.push_back(s);
  }

  // Table image for call_indirect resolution, collapsed straight to the
  // import field each live element lands on.
  if (!module.tables.empty()) {
    table_api_.assign(module.tables[0].limits.min, nullptr);
  }
  for (const auto& seg : module.elements) {
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
      if (seg.offset + i >= table_api_.size()) continue;
      const auto target = seg.func_indices[i];
      table_api_[seg.offset + i] =
          module.is_imported_function(target)
              ? module.function_import(target).field.c_str()
              : nullptr;
    }
  }

  transfer_shaped_.assign(module.num_functions(), false);
  for (std::uint32_t f = 0; f < module.num_functions(); ++f) {
    transfer_shaped_[f] = module.function_type(f) == transfer_signature();
  }
}

bool SiteIndex::transfer_shaped(std::uint32_t func_index) const {
  // Mirror Module::function_type's range contract for unknown ids.
  return transfer_shaped_.at(func_index);
}

TraceFacts extract_facts(const instrument::ActionTrace& trace,
                         const SiteIndex& index) {
  TraceFacts facts;
  for (const auto& ev : trace.events) {
    switch (ev.kind) {
      case EventKind::FunctionBegin:
        facts.function_ids.push_back(ev.site);
        if (index.transfer_shaped(ev.site)) {
          facts.transfer_shaped.push_back(ev.site);
        }
        break;
      case EventKind::CallDirect: {
        const char* api = index.site(ev.site).api_name;
        if (api != nullptr) {
          facts.api_calls.push_back(ApiEvent{api, ev.site});
        }
        break;
      }
      case EventKind::CallIndirect: {
        const char* api = index.table_api(ev.val(0).u32());
        if (api != nullptr) {
          facts.api_calls.push_back(ApiEvent{api, ev.site});
        }
        break;
      }
      case EventKind::Instr: {
        if (ev.nvals != 2) break;
        if (index.site(ev.site).is_i64_cmp) {
          facts.i64_comparisons.push_back(
              CmpEvent{ev.val(0).u64(), ev.val(1).u64()});
        }
        break;
      }
      default:
        break;
    }
  }
  return facts;
}

TraceFacts extract_facts(const instrument::ActionTrace& trace,
                         const instrument::SiteTable& sites,
                         const wasm::Module& module) {
  return extract_facts(trace, SiteIndex(sites, module));
}

}  // namespace wasai::scanner
