// Trace-level facts the oracles consume (§3.5): the executed-function id
// chain, the ordered library-API call sequence, and the operand pairs of
// executed i64 equality comparisons.
#pragma once

#include <string>
#include <vector>

#include "instrument/trace.hpp"
#include "wasm/module.hpp"

namespace wasai::scanner {

struct ApiEvent {
  std::string name;        // import field, e.g. "send_inline"
  std::uint32_t site = 0;
};

struct CmpEvent {
  std::uint64_t lhs = 0;
  std::uint64_t rhs = 0;

  [[nodiscard]] bool matches(std::uint64_t a, std::uint64_t b) const {
    return (lhs == a && rhs == b) || (lhs == b && rhs == a);
  }
};

/// Facts extracted from one action trace without symbolic replay.
struct TraceFacts {
  std::vector<std::uint32_t> function_ids;  // the paper's id⃗ (defined fns)
  std::vector<ApiEvent> api_calls;          // ordered library-API calls
  std::vector<CmpEvent> i64_comparisons;    // executed i64.eq/ne operands
  /// Subset of function_ids whose signature matches transfer@eosio.token
  /// (self + name,name,asset*,string*) — eosponser candidates. Keeps the
  /// id_e location robust when helpers run before the action function.
  std::vector<std::uint32_t> transfer_shaped;

  [[nodiscard]] bool ran_function(std::uint32_t func_index) const {
    for (const auto id : function_ids) {
      if (id == func_index) return true;
    }
    return false;
  }

  [[nodiscard]] bool called_api(std::string_view name) const {
    for (const auto& api : api_calls) {
      if (api.name == name) return true;
    }
    return false;
  }
};

/// Precomputed per-site metadata: everything extract_facts and the branch
/// accumulator would otherwise re-derive per event via SiteTable lookups
/// plus Module::defined() body indexing. Built once per fuzzing target
/// (sites and module are fixed after instrumentation) and reused for every
/// trace of the campaign. Referenced data (import field names) aliases the
/// module, which must outlive the index.
class SiteIndex {
 public:
  struct Site {
    wasm::Opcode op = wasm::Opcode::Nop;
    bool is_branch = false;          // If / BrIf (coverage keys)
    bool is_i64_cmp = false;         // I64Eq / I64Ne (comparison facts)
    const char* api_name = nullptr;  // direct call to an import, else null
  };

  SiteIndex() = default;
  SiteIndex(const instrument::SiteTable& sites, const wasm::Module& module);

  /// Per-site metadata; throws std::out_of_range for unknown site ids
  /// (same contract as SiteTable::at).
  [[nodiscard]] const Site& site(std::uint32_t s) const {
    return sites_.at(s);
  }
  /// Import field a table element resolves to, or nullptr.
  [[nodiscard]] const char* table_api(std::uint32_t elem) const {
    return elem < table_api_.size() ? table_api_[elem] : nullptr;
  }
  /// True if the function's signature matches transfer@eosio.token.
  [[nodiscard]] bool transfer_shaped(std::uint32_t func_index) const;

 private:
  std::vector<Site> sites_;
  std::vector<const char*> table_api_;    // by table element index
  std::vector<bool> transfer_shaped_;     // by function-space index
};

/// Walk the raw events; `module` must be the original (uninstrumented)
/// module matching `sites`.
TraceFacts extract_facts(const instrument::ActionTrace& trace,
                         const instrument::SiteTable& sites,
                         const wasm::Module& module);

/// Same extraction driven by a prebuilt SiteIndex — the per-event hash
/// lookups and body indexing collapse into dense-array reads. Produces
/// identical TraceFacts to the three-argument overload.
TraceFacts extract_facts(const instrument::ActionTrace& trace,
                         const SiteIndex& index);

}  // namespace wasai::scanner
