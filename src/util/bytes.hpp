// Bounds-checked byte-stream reader and growable writer used by the Wasm
// decoder/encoder and the ABI serializer.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wasai::util {

using Bytes = std::vector<std::uint8_t>;

/// Sequential reader over a borrowed byte buffer. All reads are
/// bounds-checked and throw DecodeError on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool eof() const { return pos_ >= data_.size(); }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  /// Peek without consuming; throws at EOF.
  [[nodiscard]] std::uint8_t peek() const {
    require(1);
    return data_[pos_];
  }

  std::uint32_t u32_le() {
    require(4);
    std::uint32_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64_le() {
    require(8);
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  /// Consume exactly n bytes and return a view into the underlying buffer.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string str(std::size_t n) {
    auto b = bytes(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  void skip(std::size_t n) { require(n), pos_ += n; }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw DecodeError("unexpected end of stream (need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Growable little-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32_le(std::uint32_t v) {
    const auto n = out_.size();
    out_.resize(n + 4);
    std::memcpy(out_.data() + n, &v, 4);
  }

  void u64_le(std::uint64_t v) {
    const auto n = out_.size();
    out_.resize(n + 8);
    std::memcpy(out_.data() + n, &v, 8);
  }

  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }

  void str(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const Bytes& data() const& { return out_; }
  [[nodiscard]] Bytes take() && { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

}  // namespace wasai::util
