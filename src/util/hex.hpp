// Hex encoding helpers for debugging output and reports.
#pragma once

#include <span>
#include <string>

#include "util/bytes.hpp"

namespace wasai::util {

/// Lowercase hex string of the given bytes (no separators).
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse a hex string (even length, [0-9a-fA-F]); throws DecodeError.
Bytes from_hex(std::string_view hex);

}  // namespace wasai::util
