#include "util/hex.hpp"

namespace wasai::util {

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw DecodeError(std::string("invalid hex character '") + c + "'");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const auto b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw DecodeError("odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) << 4 |
                                            nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace wasai::util
