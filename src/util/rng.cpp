#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wasai::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw UsageError("Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw UsageError("Rng::range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? next() : below(span);
  return lo + static_cast<std::int64_t>(r);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t salt) const {
  Rng child(0);
  std::uint64_t x = s_[0] ^ rotl(salt, 31) ^ (s_[3] + 0x632be59bd9b4e019ULL);
  for (auto& s : child.s_) s = splitmix64(x);
  return child;
}

std::string Rng::name_chars(std::size_t n) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz12345";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(kAlphabet[below(31)]);
  return out;
}

}  // namespace wasai::util
