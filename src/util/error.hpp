// Common exception hierarchy for the WASAI reproduction.
//
// Every subsystem throws a subclass of util::Error so callers can catch one
// base type at tool boundaries (fuzzer loop, bench harnesses) while tests can
// assert on the precise category.
#pragma once

#include <stdexcept>
#include <string>

namespace wasai::util {

/// Root of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed Wasm binary or ABI input.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// Structurally invalid module (validation failure).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validate: " + what) {}
};

/// Runtime trap raised by the EOSVM interpreter (unreachable, OOB access,
/// failed eosio_assert, step-limit exhaustion, ...). Traps abort the current
/// transaction; the chain layer converts them into a reverted transaction.
class Trap : public Error {
 public:
  explicit Trap(const std::string& what) : Error("trap: " + what) {}
};

/// Misuse of a library API by the caller (programming error, not input data).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage: " + what) {}
};

}  // namespace wasai::util
