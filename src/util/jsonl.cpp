#include "util/jsonl.hpp"

#include <fstream>
#include <sstream>

namespace wasai::util {

JsonlReadResult read_jsonl(std::string_view text) {
  JsonlReadResult out;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool terminated = nl != std::string_view::npos;
    const std::string_view line =
        text.substr(pos, terminated ? nl - pos : std::string_view::npos);
    const std::size_t line_end = terminated ? nl + 1 : text.size();
    const bool final_line = line_end >= text.size();
    ++line_no;

    // A line the writer never finished: no terminator. Only possible on the
    // final line, and only after a crash mid-write.
    if (!terminated) {
      out.torn_tail = true;
      break;
    }
    if (line.empty()) {  // stray blank line: tolerated, carries no record
      out.valid_bytes = line_end;
      pos = line_end;
      continue;
    }
    try {
      out.records.push_back(parse_json(line));
    } catch (const DecodeError& e) {
      if (final_line) {
        // Terminated but unparseable final line: a tear that happened to
        // land before the '\n' of the previous buffer — still resumable.
        out.torn_tail = true;
        break;
      }
      throw DecodeError("jsonl: line " + std::to_string(line_no) + ": " +
                        e.what());
    }
    out.lines.emplace_back(line);
    out.valid_bytes = line_end;
    pos = line_end;
  }
  return out;
}

JsonlReadResult read_jsonl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_jsonl(ss.str());
}

}  // namespace wasai::util
