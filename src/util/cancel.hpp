// Cooperative cancellation for long-running analyses. A CancelToken is
// shared between a controller (campaign runner, signal handler, watchdog)
// and a worker (the fuzz loop, the constraint solver); the worker polls
// `expired()` at loop boundaries and unwinds cleanly instead of being
// killed mid-transaction.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace wasai::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Token that auto-expires `budget_ms` from now (0 = no deadline). An
  /// optional `parent` links the token into a cancellation tree: the child
  /// expires as soon as the parent does, so a campaign-wide signal token
  /// trips every per-contract deadline token derived from it.
  static std::shared_ptr<CancelToken> with_deadline(
      double budget_ms,
      std::shared_ptr<const CancelToken> parent = nullptr) {
    auto token = std::make_shared<CancelToken>();
    if (budget_ms > 0) {
      token->deadline_ = Clock::now() + std::chrono::duration_cast<
                                            Clock::duration>(
                                            std::chrono::duration<double,
                                                                  std::milli>(
                                                budget_ms));
      token->has_deadline_ = true;
    }
    token->parent_ = std::move(parent);
    return token;
  }

  /// Request cancellation explicitly (thread-safe; the store is lock-free,
  /// so this is safe to call from a POSIX signal handler).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled, past the deadline, or the parent expired. Workers
  /// poll this at loop boundaries; it never blocks.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if ((has_deadline_ && Clock::now() >= deadline_) ||
        (parent_ != nullptr && parent_->expired())) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Milliseconds until the deadline (0 when expired; +inf when none).
  [[nodiscard]] double remaining_ms() const {
    if (expired()) return 0;
    double left = std::numeric_limits<double>::infinity();
    if (has_deadline_) {
      left = std::chrono::duration<double, std::milli>(deadline_ -
                                                       Clock::now())
                 .count();
    }
    if (parent_ != nullptr) left = std::min(left, parent_->remaining_ms());
    return left > 0 ? left : 0;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::shared_ptr<const CancelToken> parent_;
};

}  // namespace wasai::util
