// Cooperative cancellation for long-running analyses. A CancelToken is
// shared between a controller (campaign runner, signal handler, watchdog)
// and a worker (the fuzz loop, the constraint solver); the worker polls
// `expired()` at loop boundaries and unwinds cleanly instead of being
// killed mid-transaction.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace wasai::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Token that auto-expires `budget_ms` from now (0 = no deadline).
  static std::shared_ptr<CancelToken> with_deadline(double budget_ms) {
    auto token = std::make_shared<CancelToken>();
    if (budget_ms > 0) {
      token->deadline_ = Clock::now() + std::chrono::duration_cast<
                                            Clock::duration>(
                                            std::chrono::duration<double,
                                                                  std::milli>(
                                                budget_ms));
      token->has_deadline_ = true;
    }
    return token;
  }

  /// Request cancellation explicitly (thread-safe).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. Workers poll this at loop
  /// boundaries; it never blocks.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Milliseconds until the deadline (0 when expired; +inf when none).
  [[nodiscard]] double remaining_ms() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0;
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double, std::milli>(
        deadline_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace wasai::util
