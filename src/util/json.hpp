// Minimal JSON parser — enough to read EOSIO ABI files (objects, arrays,
// strings, numbers, booleans, null; UTF-8 passthrough; \uXXXX escapes for
// the BMP).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace wasai::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             JsonArray, JsonObject>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  /// Typed accessors; throw DecodeError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; throws DecodeError when absent or not an object.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Object member lookup returning nullptr when absent.
  [[nodiscard]] const Json* find(const std::string& key) const;

 private:
  Value value_;
};

/// Parse a complete JSON document; throws DecodeError with position info.
Json parse_json(std::string_view text);

/// Serialize a document to compact JSON (no whitespace). Object keys come
/// out in std::map order, so equal documents serialize byte-identically —
/// the campaign layer relies on this for reproducibility diffs. Integral
/// doubles print without a fraction part ("3", not "3.0").
std::string dump_json(const Json& value);

}  // namespace wasai::util
