#include "util/json.hpp"

#include <cctype>
#include <charconv>

namespace wasai::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw DecodeError("json: " + what + " at offset " +
                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view lit) {
    for (const char c : lit) expect(c);
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case 'n':
        expect_literal("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return Json(std::move(out));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return Json(std::move(out));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw DecodeError("json: expected bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw DecodeError("json: expected number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw DecodeError("json: expected string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw DecodeError("json: expected array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw DecodeError("json: expected object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw DecodeError("json: missing key '" + key + "'");
  return *found;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) throw DecodeError("json: expected object");
  const auto& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

namespace {

void escape_byte(std::string& out, unsigned char b) {
  constexpr char hex[] = "0123456789abcdef";
  out += "\\u00";
  out.push_back(hex[(b >> 4) & 0xf]);
  out.push_back(hex[b & 0xf]);
}

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not valid UTF-8 (stray continuation byte, truncated or
/// overlong sequence, surrogate code point, > U+10FFFF).
std::size_t utf8_sequence_len(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t len = 0;
  unsigned char lo = 0x80;  // tightened bound on the first continuation
  unsigned char hi = 0xbf;  // byte, per Unicode Table 3-7
  if (lead < 0x80) return 1;
  if (lead >= 0xc2 && lead <= 0xdf) {
    len = 2;
  } else if (lead >= 0xe0 && lead <= 0xef) {
    len = 3;
    if (lead == 0xe0) lo = 0xa0;  // reject overlong
    if (lead == 0xed) hi = 0x9f;  // reject surrogates U+D800..U+DFFF
  } else if (lead >= 0xf0 && lead <= 0xf4) {
    len = 4;
    if (lead == 0xf0) lo = 0x90;  // reject overlong
    if (lead == 0xf4) hi = 0x8f;  // reject > U+10FFFF
  } else {
    return 0;  // 0x80..0xc1 (continuation/overlong lead) or 0xf5..0xff
  }
  if (i + len > s.size()) return 0;  // truncated at end of string
  if (byte(i + 1) < lo || byte(i + 1) > hi) return 0;
  for (std::size_t k = 2; k < len; ++k) {
    if (byte(i + k) < 0x80 || byte(i + k) > 0xbf) return 0;
  }
  return len;
}

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          escape_byte(out, static_cast<unsigned char>(c));
        } else if (static_cast<unsigned char>(c) < 0x80) {
          out.push_back(c);
        } else {
          // Non-ASCII: pass well-formed UTF-8 through untouched; anything
          // else gets each invalid byte escaped as \u00XX so one raw Z3 or
          // decoder message can never render a whole JSONL file (and hence
          // a --resume) unparseable. The escape reads as the byte's Latin-1
          // codepoint — lossy about encoding, not about value.
          const std::size_t len = utf8_sequence_len(s, i);
          if (len == 0) {
            escape_byte(out, static_cast<unsigned char>(c));
          } else {
            out.append(s, i, len);
            i += len;
            continue;
          }
        }
    }
    ++i;
  }
  out.push_back('"');
}

void dump_number(std::string& out, double v) {
  // Counts dominate the campaign records; render integral values exactly.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, ec == std::errc() ? ptr : buf);
}

void dump_value(std::string& out, const Json& value) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(out, value.as_number());
  } else if (value.is_string()) {
    dump_string(out, value.as_string());
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(out, item);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(out, key);
      out.push_back(':');
      dump_value(out, item);
    }
    out.push_back('}');
  }
}

}  // namespace

std::string dump_json(const Json& value) {
  std::string out;
  dump_value(out, value);
  return out;
}

}  // namespace wasai::util
