#include "util/leb128.hpp"

namespace wasai::util {

void write_uleb(ByteWriter& w, std::uint64_t v) {
  do {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    w.u8(byte);
  } while (v != 0);
}

void write_sleb(ByteWriter& w, std::int64_t v) {
  bool more = true;
  while (more) {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;  // arithmetic shift
    const bool sign_bit = (byte & 0x40) != 0;
    if ((v == 0 && !sign_bit) || (v == -1 && sign_bit)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    w.u8(byte);
  }
}

std::uint64_t read_uleb(ByteReader& r, int max_bits) {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = r.u8();
    if (shift >= max_bits ||
        (shift > max_bits - 7 &&
         (byte & 0x7f) >> (max_bits - shift) != 0)) {
      throw DecodeError("uleb128 value exceeds " + std::to_string(max_bits) +
                        " bits");
    }
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

std::int64_t read_sleb(ByteReader& r, int max_bits) {
  // ceil(max_bits / 7) bytes encode any max_bits-wide value; one more byte
  // is overlong and the spec-mandated error (and on a 64-bit accumulator,
  // shifting an 11th byte by 70 would be UB before any later check fired).
  const int max_bytes = (max_bits + 6) / 7;
  std::uint64_t result = 0;
  int shift = 0;
  int consumed = 0;
  std::uint8_t byte = 0;
  do {
    byte = r.u8();
    if (++consumed > max_bytes) {
      throw DecodeError("sleb128 value exceeds " + std::to_string(max_bits) +
                        " bits");
    }
    const std::uint64_t group = byte & 0x7f;
    if (shift + 7 > max_bits) {
      // Final partial group: the bits beyond max_bits must all equal the
      // sign bit, otherwise the encoded value does not fit.
      const int used = max_bits - shift;
      const std::uint8_t spill =
          static_cast<std::uint8_t>(group >> (used - 1)) & 0x7f >> (used - 1);
      const std::uint8_t all_ones =
          static_cast<std::uint8_t>(0x7f >> (used - 1));
      if (spill != 0 && spill != all_ones) {
        throw DecodeError("sleb128 value exceeds " +
                          std::to_string(max_bits) + " bits");
      }
    }
    result |= group << shift;
    shift += 7;
  } while (byte & 0x80);
  if (shift < 64 && (byte & 0x40)) {
    result |= ~std::uint64_t{0} << shift;  // sign-extend
  }
  return static_cast<std::int64_t>(result);
}

}  // namespace wasai::util
