#include "util/leb128.hpp"

namespace wasai::util {

void write_uleb(ByteWriter& w, std::uint64_t v) {
  do {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    w.u8(byte);
  } while (v != 0);
}

void write_sleb(ByteWriter& w, std::int64_t v) {
  bool more = true;
  while (more) {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;  // arithmetic shift
    const bool sign_bit = (byte & 0x40) != 0;
    if ((v == 0 && !sign_bit) || (v == -1 && sign_bit)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    w.u8(byte);
  }
}

std::uint64_t read_uleb(ByteReader& r, int max_bits) {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = r.u8();
    if (shift >= max_bits ||
        (shift > max_bits - 7 &&
         (byte & 0x7f) >> (max_bits - shift) != 0)) {
      throw DecodeError("uleb128 value exceeds " + std::to_string(max_bits) +
                        " bits");
    }
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

std::int64_t read_sleb(ByteReader& r, int max_bits) {
  std::int64_t result = 0;
  int shift = 0;
  std::uint8_t byte = 0;
  do {
    byte = r.u8();
    if (shift >= max_bits + 7) {
      throw DecodeError("sleb128 value exceeds " + std::to_string(max_bits) +
                        " bits");
    }
    result |= static_cast<std::int64_t>(static_cast<std::uint64_t>(byte & 0x7f)
                                        << shift);
    shift += 7;
  } while (byte & 0x80);
  if (shift < 64 && (byte & 0x40)) {
    result |= -(static_cast<std::int64_t>(1) << shift);  // sign-extend
  }
  return result;
}

}  // namespace wasai::util
