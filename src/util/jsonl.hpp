// JSON Lines input/output (one compact JSON document per line) — the
// campaign runner's on-disk record format. Records are flushed per line so
// a crash mid-campaign loses at most the record being written; the reader
// tolerates exactly that failure mode by truncating a torn final line.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace wasai::util {

class JsonlWriter {
 public:
  /// Writes to a stream owned by the caller (must outlive the writer).
  explicit JsonlWriter(std::ostream& out) : out_(&out) {}

  /// Append one record as a single line and flush.
  void write(const Json& record) {
    *out_ << dump_json(record) << '\n';
    out_->flush();
    ++lines_;
  }

  [[nodiscard]] std::size_t lines() const { return lines_; }

 private:
  std::ostream* out_;
  std::size_t lines_ = 0;
};

/// Result of parsing a JSONL stream that may have died mid-write.
struct JsonlReadResult {
  std::vector<Json> records;  // one per intact line, in file order
  /// Raw text of each intact line (no trailing newline), aligned with
  /// `records`. Kept so a resume can rewrite surviving lines byte-for-byte
  /// instead of re-serializing them.
  std::vector<std::string> lines;
  /// Byte offset where the intact prefix ends (== text size when clean).
  /// Truncating the file here removes the torn tail and leaves valid JSONL.
  std::size_t valid_bytes = 0;
  /// True when the final line was torn: either unterminated (no trailing
  /// '\n' — the writer always emits one) or unparseable.
  bool torn_tail = false;
};

/// Parse a JSONL document, tolerating a torn FINAL line (the only damage a
/// per-line-flushed writer can leave behind): the tail is dropped and
/// reported, never thrown. An unparseable line anywhere else means the file
/// was corrupted some other way, and that throws DecodeError with the line
/// number — silently skipping interior records would corrupt a resume.
JsonlReadResult read_jsonl(std::string_view text);

/// read_jsonl over a file's contents. Throws UsageError when the file
/// cannot be opened.
JsonlReadResult read_jsonl_file(const std::string& path);

}  // namespace wasai::util
