// JSON Lines output (one compact JSON document per line) — the campaign
// runner's on-disk record format. Records are flushed per line so a crash
// mid-campaign loses at most the record being written.
#pragma once

#include <ostream>

#include "util/json.hpp"

namespace wasai::util {

class JsonlWriter {
 public:
  /// Writes to a stream owned by the caller (must outlive the writer).
  explicit JsonlWriter(std::ostream& out) : out_(&out) {}

  /// Append one record as a single line and flush.
  void write(const Json& record) {
    *out_ << dump_json(record) << '\n';
    out_->flush();
    ++lines_;
  }

  [[nodiscard]] std::size_t lines() const { return lines_; }

 private:
  std::ostream* out_;
  std::size_t lines_ = 0;
};

}  // namespace wasai::util
