// FNV-1a digests for machine-state fingerprints. The differential oracle
// hashes stacks/locals/memory snapshots so reports can name a divergent
// state without dumping it, and the testgen CLI prints a batch digest so
// seeded runs can be compared byte-for-byte across hosts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace wasai::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental 64-bit FNV-1a.
class Digest {
 public:
  void u8(std::uint8_t b) {
    h_ = (h_ ^ b) * kFnvPrime;
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void bytes(std::span<const std::uint8_t> data) {
    for (const std::uint8_t b : data) u8(b);
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

  /// 16-hex-digit rendering (stable across platforms).
  [[nodiscard]] std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = digits[(h_ >> (4 * i)) & 0xf];
    }
    return out;
  }

 private:
  std::uint64_t h_ = kFnvOffset;
};

inline std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  Digest d;
  d.bytes(data);
  return d.value();
}

}  // namespace wasai::util
