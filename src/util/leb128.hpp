// LEB128 variable-length integer codec (Wasm binary format §5.2.2).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace wasai::util {

/// Append an unsigned LEB128 encoding of `v` to `w`.
void write_uleb(ByteWriter& w, std::uint64_t v);

/// Append a signed LEB128 encoding of `v` to `w`.
void write_sleb(ByteWriter& w, std::int64_t v);

/// Read an unsigned LEB128 value of at most `max_bits` significant bits.
/// Throws DecodeError on overlong/overflowing encodings.
std::uint64_t read_uleb(ByteReader& r, int max_bits = 64);

/// Read a signed LEB128 value of at most `max_bits` significant bits.
std::int64_t read_sleb(ByteReader& r, int max_bits = 64);

inline std::uint32_t read_uleb32(ByteReader& r) {
  return static_cast<std::uint32_t>(read_uleb(r, 32));
}

}  // namespace wasai::util
