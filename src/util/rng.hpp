// Deterministic random number generation.
//
// All randomness in the fuzzer, the corpus generator and the benches flows
// through this type so that experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wasai::util {

/// xoshiro256** seeded via SplitMix64. Cheap to copy; copies diverge
/// independently, which the corpus generator uses to give every sample its
/// own stream derived from (dataset seed, sample index).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p in [0,1].
  bool chance(double p);

  /// Uniform double in [0,1).
  double uniform();

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

  /// Derive a child RNG whose stream is independent of this one.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  /// Random lowercase EOSIO-name-safe string of length n (a-z, 1-5).
  std::string name_chars(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace wasai::util
