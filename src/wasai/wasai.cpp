#include "wasai/wasai.hpp"

#include <chrono>
#include <optional>

namespace wasai {

AnalysisResult analyze(const util::Bytes& contract_wasm, const abi::Abi& abi,
                       const AnalysisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  const auto start = Clock::now();
  AnalysisResult result;
  std::optional<engine::Fuzzer> fuzzer;
  {
    // Harness construction is the `init` phase: decode, instrument, deploy
    // and fund the local chain.
    const obs::Span init_span(options.fuzz.obs, obs::span_name::kInit);
    fuzzer.emplace(contract_wasm, abi, options.fuzz);
  }
  result.init_ms = ms_since(start);
  result.details = fuzzer->run();
  result.report = result.details.scan;
  result.total_ms = ms_since(start);
  return result;
}

}  // namespace wasai
