#include "wasai/wasai.hpp"

namespace wasai {

AnalysisResult analyze(const util::Bytes& contract_wasm, const abi::Abi& abi,
                       const AnalysisOptions& options) {
  engine::Fuzzer fuzzer(contract_wasm, abi, options.fuzz);
  AnalysisResult result;
  result.details = fuzzer.run();
  result.report = result.details.scan;
  return result;
}

}  // namespace wasai
