#include "wasai/wasai.hpp"

#include <chrono>

namespace wasai {

AnalysisResult analyze(const util::Bytes& contract_wasm, const abi::Abi& abi,
                       const AnalysisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  const auto start = Clock::now();
  engine::Fuzzer fuzzer(contract_wasm, abi, options.fuzz);
  AnalysisResult result;
  result.init_ms = ms_since(start);
  result.details = fuzzer.run();
  result.report = result.details.scan;
  result.total_ms = ms_since(start);
  return result;
}

}  // namespace wasai
