// WASAI public API: one call analyzes a contract binary + ABI and returns
// the vulnerability report (the paper's end-to-end pipeline: instrument →
// initiate chain → concolic fuzz → scan).
#pragma once

#include "engine/fuzzer.hpp"

namespace wasai {

struct AnalysisOptions {
  engine::FuzzOptions fuzz{};
};

struct AnalysisResult {
  scanner::Report report;
  engine::FuzzReport details;
  /// Wall time of instrumentation + chain initiation (Fuzzer construction).
  double init_ms = 0;
  /// Wall time of the whole analyze() call (init + fuzz loop + scan).
  double total_ms = 0;

  [[nodiscard]] bool has(scanner::VulnType type) const {
    return report.has(type);
  }
  [[nodiscard]] bool vulnerable() const { return !report.found.empty(); }
};

/// Analyze one contract. Throws util::Error subtypes on malformed input
/// (bad Wasm, missing apply export).
AnalysisResult analyze(const util::Bytes& contract_wasm, const abi::Abi& abi,
                       const AnalysisOptions& options = {});

}  // namespace wasai
