#include "wasm/builder.hpp"

namespace wasai::wasm {

std::uint32_t ModuleBuilder::import_func(const std::string& module,
                                         const std::string& field,
                                         const FuncType& type) {
  if (sealed_imports_) {
    throw util::UsageError(
        "all function imports must precede the first defined function");
  }
  Import imp;
  imp.module = module;
  imp.field = field;
  imp.kind = ExternalKind::Function;
  imp.type_index = m_.type_index_for(type);
  m_.imports.push_back(std::move(imp));
  return m_.num_imported_functions() - 1;
}

std::uint32_t ModuleBuilder::declare_func(const FuncType& type,
                                          const std::string& name) {
  sealed_imports_ = true;
  Function fn;
  fn.type_index = m_.type_index_for(type);
  fn.name = name;
  m_.functions.push_back(std::move(fn));
  return m_.num_imported_functions() +
         static_cast<std::uint32_t>(m_.functions.size()) - 1;
}

void ModuleBuilder::set_body(std::uint32_t func_index,
                             std::vector<ValType> locals,
                             std::vector<Instr> body) {
  Function& fn = m_.defined(func_index);
  fn.locals = std::move(locals);
  fn.body = std::move(body);
  if (fn.body.empty() || fn.body.back().op != Opcode::End) {
    fn.body.emplace_back(Opcode::End);
  }
}

std::uint32_t ModuleBuilder::add_func(const FuncType& type,
                                      std::vector<ValType> locals,
                                      std::vector<Instr> body,
                                      const std::string& name) {
  const auto idx = declare_func(type, name);
  set_body(idx, std::move(locals), std::move(body));
  return idx;
}

void ModuleBuilder::export_func(const std::string& name,
                                std::uint32_t func_index) {
  m_.exports.push_back(Export{name, ExternalKind::Function, func_index});
}

void ModuleBuilder::add_memory(std::uint32_t min_pages,
                               std::uint32_t max_pages) {
  Memory mem;
  mem.limits.min = min_pages;
  if (max_pages != 0) mem.limits.max = max_pages;
  m_.memories.push_back(mem);
}

void ModuleBuilder::add_table(std::uint32_t size) {
  Table t;
  t.limits.min = size;
  t.limits.max = size;
  m_.tables.push_back(t);
}

void ModuleBuilder::add_elem(std::uint32_t offset,
                             std::vector<std::uint32_t> funcs) {
  m_.elements.push_back(ElemSegment{0, offset, std::move(funcs)});
}

std::uint32_t ModuleBuilder::add_global(ValType type, bool mutable_,
                                        std::uint64_t init) {
  m_.globals.push_back(Global{GlobalType{type, mutable_}, init});
  return static_cast<std::uint32_t>(m_.globals.size()) - 1;
}

void ModuleBuilder::add_data(std::uint32_t offset,
                             std::vector<std::uint8_t> bytes) {
  m_.data.push_back(DataSegment{0, offset, std::move(bytes)});
}

Module ModuleBuilder::build() && {
  for (const auto& fn : m_.functions) {
    if (fn.body.empty()) {
      throw util::UsageError("declared function '" + fn.name +
                             "' has no body");
    }
  }
  return std::move(m_);
}

std::vector<Instr> concat(std::initializer_list<std::vector<Instr>> parts) {
  std::vector<Instr> out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace wasai::wasm
