// The complete WebAssembly MVP opcode set with static metadata used by the
// decoder, encoder, validator, interpreter, instrumenter and the symbolic
// replayer.
#pragma once

#include <cstdint>

#include "wasm/types.hpp"

namespace wasai::wasm {

/// Opcode values equal their single-byte binary encodings.
enum class Opcode : std::uint8_t {
  // Control
  Unreachable = 0x00,
  Nop = 0x01,
  Block = 0x02,
  Loop = 0x03,
  If = 0x04,
  Else = 0x05,
  End = 0x0b,
  Br = 0x0c,
  BrIf = 0x0d,
  BrTable = 0x0e,
  Return = 0x0f,
  Call = 0x10,
  CallIndirect = 0x11,
  // Parametric
  Drop = 0x1a,
  Select = 0x1b,
  // Variable
  LocalGet = 0x20,
  LocalSet = 0x21,
  LocalTee = 0x22,
  GlobalGet = 0x23,
  GlobalSet = 0x24,
  // Memory: 14 loads + 9 stores = the 23 memory instructions of the paper.
  I32Load = 0x28,
  I64Load = 0x29,
  F32Load = 0x2a,
  F64Load = 0x2b,
  I32Load8S = 0x2c,
  I32Load8U = 0x2d,
  I32Load16S = 0x2e,
  I32Load16U = 0x2f,
  I64Load8S = 0x30,
  I64Load8U = 0x31,
  I64Load16S = 0x32,
  I64Load16U = 0x33,
  I64Load32S = 0x34,
  I64Load32U = 0x35,
  I32Store = 0x36,
  I64Store = 0x37,
  F32Store = 0x38,
  F64Store = 0x39,
  I32Store8 = 0x3a,
  I32Store16 = 0x3b,
  I64Store8 = 0x3c,
  I64Store16 = 0x3d,
  I64Store32 = 0x3e,
  MemorySize = 0x3f,
  MemoryGrow = 0x40,
  // Constants
  I32Const = 0x41,
  I64Const = 0x42,
  F32Const = 0x43,
  F64Const = 0x44,
  // i32 test/relational
  I32Eqz = 0x45,
  I32Eq = 0x46,
  I32Ne = 0x47,
  I32LtS = 0x48,
  I32LtU = 0x49,
  I32GtS = 0x4a,
  I32GtU = 0x4b,
  I32LeS = 0x4c,
  I32LeU = 0x4d,
  I32GeS = 0x4e,
  I32GeU = 0x4f,
  // i64 test/relational
  I64Eqz = 0x50,
  I64Eq = 0x51,
  I64Ne = 0x52,
  I64LtS = 0x53,
  I64LtU = 0x54,
  I64GtS = 0x55,
  I64GtU = 0x56,
  I64LeS = 0x57,
  I64LeU = 0x58,
  I64GeS = 0x59,
  I64GeU = 0x5a,
  // f32 relational
  F32Eq = 0x5b,
  F32Ne = 0x5c,
  F32Lt = 0x5d,
  F32Gt = 0x5e,
  F32Le = 0x5f,
  F32Ge = 0x60,
  // f64 relational
  F64Eq = 0x61,
  F64Ne = 0x62,
  F64Lt = 0x63,
  F64Gt = 0x64,
  F64Le = 0x65,
  F64Ge = 0x66,
  // i32 arithmetic
  I32Clz = 0x67,
  I32Ctz = 0x68,
  I32Popcnt = 0x69,
  I32Add = 0x6a,
  I32Sub = 0x6b,
  I32Mul = 0x6c,
  I32DivS = 0x6d,
  I32DivU = 0x6e,
  I32RemS = 0x6f,
  I32RemU = 0x70,
  I32And = 0x71,
  I32Or = 0x72,
  I32Xor = 0x73,
  I32Shl = 0x74,
  I32ShrS = 0x75,
  I32ShrU = 0x76,
  I32Rotl = 0x77,
  I32Rotr = 0x78,
  // i64 arithmetic
  I64Clz = 0x79,
  I64Ctz = 0x7a,
  I64Popcnt = 0x7b,
  I64Add = 0x7c,
  I64Sub = 0x7d,
  I64Mul = 0x7e,
  I64DivS = 0x7f,
  I64DivU = 0x80,
  I64RemS = 0x81,
  I64RemU = 0x82,
  I64And = 0x83,
  I64Or = 0x84,
  I64Xor = 0x85,
  I64Shl = 0x86,
  I64ShrS = 0x87,
  I64ShrU = 0x88,
  I64Rotl = 0x89,
  I64Rotr = 0x8a,
  // f32 arithmetic
  F32Abs = 0x8b,
  F32Neg = 0x8c,
  F32Ceil = 0x8d,
  F32Floor = 0x8e,
  F32Trunc = 0x8f,
  F32Nearest = 0x90,
  F32Sqrt = 0x91,
  F32Add = 0x92,
  F32Sub = 0x93,
  F32Mul = 0x94,
  F32Div = 0x95,
  F32Min = 0x96,
  F32Max = 0x97,
  F32Copysign = 0x98,
  // f64 arithmetic
  F64Abs = 0x99,
  F64Neg = 0x9a,
  F64Ceil = 0x9b,
  F64Floor = 0x9c,
  F64Trunc = 0x9d,
  F64Nearest = 0x9e,
  F64Sqrt = 0x9f,
  F64Add = 0xa0,
  F64Sub = 0xa1,
  F64Mul = 0xa2,
  F64Div = 0xa3,
  F64Min = 0xa4,
  F64Max = 0xa5,
  F64Copysign = 0xa6,
  // Conversions
  I32WrapI64 = 0xa7,
  I32TruncF32S = 0xa8,
  I32TruncF32U = 0xa9,
  I32TruncF64S = 0xaa,
  I32TruncF64U = 0xab,
  I64ExtendI32S = 0xac,
  I64ExtendI32U = 0xad,
  I64TruncF32S = 0xae,
  I64TruncF32U = 0xaf,
  I64TruncF64S = 0xb0,
  I64TruncF64U = 0xb1,
  F32ConvertI32S = 0xb2,
  F32ConvertI32U = 0xb3,
  F32ConvertI64S = 0xb4,
  F32ConvertI64U = 0xb5,
  F32DemoteF64 = 0xb6,
  F64ConvertI32S = 0xb7,
  F64ConvertI32U = 0xb8,
  F64ConvertI64S = 0xb9,
  F64ConvertI64U = 0xba,
  F64PromoteF32 = 0xbb,
  I32ReinterpretF32 = 0xbc,
  I64ReinterpretF64 = 0xbd,
  F32ReinterpretI32 = 0xbe,
  F64ReinterpretI64 = 0xbf,
};

/// How the immediates of an opcode are encoded.
enum class ImmKind : std::uint8_t {
  None,       // no immediates
  BlockType,  // single byte: 0x40 or a valtype
  LabelIdx,   // uleb label depth (br, br_if)
  BrTable,    // vector of labels + default
  FuncIdx,    // uleb (call)
  TypeIdx,    // uleb type + 0x00 table byte (call_indirect)
  LocalIdx,   // uleb (local.get/set/tee)
  GlobalIdx,  // uleb (global.get/set)
  MemArg,     // uleb align + uleb offset
  MemIdx,     // single 0x00 byte (memory.size/grow)
  I32,        // sleb32 constant
  I64,        // sleb64 constant
  F32,        // 4-byte IEEE754
  F64,        // 8-byte IEEE754
};

/// Broad behavioural class, used by the interpreter dispatch, the validator
/// and the symbolic replayer (the paper's Table 3 groups instructions the
/// same way).
enum class OpClass : std::uint8_t {
  Control,
  Parametric,
  Variable,
  Load,
  Store,
  Memory,  // memory.size / memory.grow
  Const,
  Unary,   // testops + unops + conversions (1 operand, 1 result)
  Binary,  // binops + relops (2 operands, 1 result)
};

/// Static opcode metadata.
struct OpInfo {
  const char* name;
  ImmKind imm;
  OpClass cls;
  // For Load/Store: number of bytes accessed (1/2/4/8) and the value type
  // moved to/from the stack. For Unary/Binary: operand/result types.
  std::uint8_t access_bytes;
  ValType operand;  // operand type (loads: address is i32; this is result)
  ValType result;
  bool sign_extend;  // loads: sign-extend narrow reads
};

/// Metadata lookup. Throws DecodeError for bytes that are not MVP opcodes.
const OpInfo& op_info(Opcode op);

/// True if the byte value is a known MVP opcode.
bool is_known_opcode(std::uint8_t byte);

}  // namespace wasai::wasm
