#include "wasm/validator.hpp"

#include <optional>

#include "wasm/control.hpp"

namespace wasai::wasm {

namespace {

using util::ValidationError;

// std::nullopt models the "Unknown" type of the spec's validation algorithm
// (values produced in unreachable code).
using MaybeType = std::optional<ValType>;

struct CtrlFrame {
  Opcode op;  // Block / Loop / If / Else
  std::vector<ValType> start_types;
  std::vector<ValType> end_types;
  std::size_t height = 0;
  bool unreachable = false;
};

class FuncValidator {
 public:
  FuncValidator(const Module& m, const Function& fn) : m_(m), fn_(fn) {
    const FuncType& ft = m.types.at(fn.type_index);
    locals_ = ft.params;
    locals_.insert(locals_.end(), fn.locals.begin(), fn.locals.end());
    results_ = ft.results;
  }

  FunctionTyping run() {
    FunctionTyping typing;
    typing.per_instr.resize(fn_.body.size());
    push_ctrl(Opcode::Block, {}, results_);

    for (std::size_t i = 0; i < fn_.body.size(); ++i) {
      cur_popped_ = &typing.per_instr[i];
      cur_popped_->unreachable =
          !ctrls_.empty() && ctrls_.back().unreachable;
      step(fn_.body[i], i + 1 == fn_.body.size());
    }
    if (!ctrls_.empty()) throw ValidationError("unclosed control frame");
    return typing;
  }

 private:
  void step(const Instr& ins, bool is_last) {
    const OpInfo& info = op_info(ins.op);
    switch (info.cls) {
      case OpClass::Const:
        push_val(info.result);
        break;
      case OpClass::Unary:
        pop_val(info.operand);
        push_val(info.result);
        break;
      case OpClass::Binary:
        pop_val(info.operand);
        pop_val(info.operand);
        push_val(info.result);
        break;
      case OpClass::Load:
        require_memory();
        pop_val(ValType::I32);
        push_val(info.result);
        break;
      case OpClass::Store:
        require_memory();
        pop_val(info.operand);  // value (top)
        pop_val(ValType::I32);  // address
        break;
      case OpClass::Memory:
        require_memory();
        if (ins.op == Opcode::MemoryGrow) pop_val(ValType::I32);
        push_val(ValType::I32);
        break;
      case OpClass::Parametric:
        if (ins.op == Opcode::Drop) {
          pop_val();
        } else {  // select
          pop_val(ValType::I32);
          const MaybeType t1 = pop_val();
          const MaybeType t2 = pop_val(t1);
          push_maybe(t2 ? t2 : t1);
        }
        break;
      case OpClass::Variable:
        step_variable(ins);
        break;
      case OpClass::Control:
        step_control(ins, is_last);
        break;
    }
  }

  void step_variable(const Instr& ins) {
    switch (ins.op) {
      case Opcode::LocalGet:
        push_val(local_type(ins.a));
        break;
      case Opcode::LocalSet:
        pop_val(local_type(ins.a));
        break;
      case Opcode::LocalTee:
        pop_val(local_type(ins.a));
        push_val(local_type(ins.a));
        break;
      case Opcode::GlobalGet:
        push_val(global_type(ins.a).type);
        break;
      case Opcode::GlobalSet: {
        const GlobalType& g = global_type(ins.a);
        if (!g.mutable_) throw ValidationError("global.set of const global");
        pop_val(g.type);
        break;
      }
      default:
        throw ValidationError("bad variable instruction");
    }
  }

  void step_control(const Instr& ins, bool is_last) {
    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Unreachable:
        set_unreachable();
        break;
      case Opcode::Block:
      case Opcode::Loop:
        push_ctrl(ins.op, {}, block_results(ins.a));
        break;
      case Opcode::If:
        pop_val(ValType::I32);
        push_ctrl(Opcode::If, {}, block_results(ins.a));
        break;
      case Opcode::Else: {
        CtrlFrame frame = pop_ctrl();
        if (frame.op != Opcode::If) {
          throw ValidationError("else without if");
        }
        push_ctrl(Opcode::Else, frame.start_types, frame.end_types);
        break;
      }
      case Opcode::End: {
        CtrlFrame frame = pop_ctrl();
        if (frame.op == Opcode::If && !frame.end_types.empty()) {
          throw ValidationError("if with result requires else branch");
        }
        for (const auto t : frame.end_types) push_val(t);
        if (ctrls_.empty() && !is_last) {
          throw ValidationError("code after function end");
        }
        break;
      }
      case Opcode::Br: {
        pop_label_types(ins.a);
        set_unreachable();
        break;
      }
      case Opcode::BrIf: {
        pop_val(ValType::I32);
        const auto types = label_types(ins.a);
        for (auto it = types.rbegin(); it != types.rend(); ++it) pop_val(*it);
        for (const auto t : types) push_val(t);
        break;
      }
      case Opcode::BrTable: {
        pop_val(ValType::I32);
        const auto expected = label_types(ins.a);
        for (const auto target : ins.table) {
          if (label_types(target) != expected) {
            throw ValidationError("br_table label type mismatch");
          }
        }
        for (auto it = expected.rbegin(); it != expected.rend(); ++it) {
          pop_val(*it);
        }
        set_unreachable();
        break;
      }
      case Opcode::Return:
        for (auto it = results_.rbegin(); it != results_.rend(); ++it) {
          pop_val(*it);
        }
        set_unreachable();
        break;
      case Opcode::Call: {
        if (ins.a >= m_.num_functions()) {
          throw ValidationError("call to undefined function");
        }
        const FuncType& ft = m_.function_type(ins.a);
        for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) {
          pop_val(*it);
        }
        for (const auto t : ft.results) push_val(t);
        break;
      }
      case Opcode::CallIndirect: {
        if (m_.tables.empty() && !has_table_import()) {
          throw ValidationError("call_indirect without table");
        }
        if (ins.a >= m_.types.size()) {
          throw ValidationError("call_indirect type out of range");
        }
        pop_val(ValType::I32);  // element index
        const FuncType& ft = m_.types[ins.a];
        for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) {
          pop_val(*it);
        }
        for (const auto t : ft.results) push_val(t);
        break;
      }
      default:
        throw ValidationError("bad control instruction");
    }
  }

  // ---- stack machinery (spec appendix algorithm) ----

  void push_val(ValType t) { vals_.emplace_back(t); }
  void push_maybe(MaybeType t) { vals_.push_back(t); }

  MaybeType pop_val() {
    CtrlFrame& frame = ctrls_.back();
    if (vals_.size() == frame.height) {
      if (frame.unreachable) {
        cur_popped_->popped.push_back(ValType::I32);  // placeholder
        return std::nullopt;
      }
      throw ValidationError("value stack underflow");
    }
    const MaybeType v = vals_.back();
    vals_.pop_back();
    cur_popped_->popped.push_back(v.value_or(ValType::I32));
    return v;
  }

  MaybeType pop_val(MaybeType expect) {
    const MaybeType actual = pop_val();
    if (actual && expect && *actual != *expect) {
      throw ValidationError(std::string("type mismatch: expected ") +
                            to_string(*expect) + ", got " +
                            to_string(*actual));
    }
    // Record the *expected* type when the actual one is unknown, so the
    // instrumenter sees the right capture type.
    if (!actual && expect) cur_popped_->popped.back() = *expect;
    return actual ? actual : expect;
  }

  void push_ctrl(Opcode op, std::vector<ValType> start,
                 std::vector<ValType> end) {
    ctrls_.push_back(CtrlFrame{op, std::move(start), std::move(end),
                               vals_.size(), false});
  }

  CtrlFrame pop_ctrl() {
    if (ctrls_.empty()) throw ValidationError("control stack underflow");
    // Deliberately copy: pop_val below inspects ctrls_.back().
    CtrlFrame frame = ctrls_.back();
    for (auto it = frame.end_types.rbegin(); it != frame.end_types.rend();
         ++it) {
      pop_val(*it);
    }
    if (vals_.size() != frame.height && !frame.unreachable) {
      throw ValidationError("values left on stack at block end");
    }
    vals_.resize(frame.height);
    ctrls_.pop_back();
    return frame;
  }

  void set_unreachable() {
    CtrlFrame& frame = ctrls_.back();
    vals_.resize(frame.height);
    frame.unreachable = true;
  }

  std::vector<ValType> label_types(std::uint32_t depth) const {
    if (depth >= ctrls_.size()) {
      throw ValidationError("branch depth out of range");
    }
    const CtrlFrame& frame = ctrls_[ctrls_.size() - 1 - depth];
    return frame.op == Opcode::Loop ? frame.start_types : frame.end_types;
  }

  void pop_label_types(std::uint32_t depth) {
    const auto types = label_types(depth);
    for (auto it = types.rbegin(); it != types.rend(); ++it) pop_val(*it);
  }

  std::vector<ValType> block_results(std::uint32_t block_type) const {
    if (block_type == kBlockVoid) return {};
    return {valtype_from_byte(static_cast<std::uint8_t>(block_type))};
  }

  ValType local_type(std::uint32_t idx) const {
    if (idx >= locals_.size()) {
      throw ValidationError("local index out of range");
    }
    return locals_[idx];
  }

  const GlobalType& global_type(std::uint32_t idx) const {
    std::uint32_t n = 0;
    for (const auto& imp : m_.imports) {
      if (imp.kind != ExternalKind::Global) continue;
      if (n == idx) return imp.global_type;
      ++n;
    }
    const std::uint32_t local = idx - n;
    if (local >= m_.globals.size()) {
      throw ValidationError("global index out of range");
    }
    return m_.globals[local].type;
  }

  void require_memory() const {
    if (m_.memories.empty() && !has_memory_import()) {
      throw ValidationError("memory instruction without memory");
    }
  }

  bool has_memory_import() const {
    for (const auto& imp : m_.imports) {
      if (imp.kind == ExternalKind::Memory) return true;
    }
    return false;
  }

  bool has_table_import() const {
    for (const auto& imp : m_.imports) {
      if (imp.kind == ExternalKind::Table) return true;
    }
    return false;
  }

  const Module& m_;
  const Function& fn_;
  std::vector<ValType> locals_;
  std::vector<ValType> results_;
  std::vector<MaybeType> vals_;
  std::vector<CtrlFrame> ctrls_;
  InstrOperands* cur_popped_ = nullptr;
};

void validate_module_structure(const Module& m) {
  for (const auto& imp : m.imports) {
    if (imp.kind == ExternalKind::Function &&
        imp.type_index >= m.types.size()) {
      throw ValidationError("import type index out of range");
    }
  }
  for (const auto& f : m.functions) {
    if (f.type_index >= m.types.size()) {
      throw ValidationError("function type index out of range");
    }
  }
  for (const auto& e : m.exports) {
    if (e.kind == ExternalKind::Function && e.index >= m.num_functions()) {
      throw ValidationError("export function index out of range");
    }
  }
  for (const auto& seg : m.elements) {
    for (const auto f : seg.func_indices) {
      if (f >= m.num_functions()) {
        throw ValidationError("element function index out of range");
      }
    }
  }
  if (m.memories.size() > 1) throw ValidationError("multiple memories");
  if (m.tables.size() > 1) throw ValidationError("multiple tables");
  if (m.start && *m.start >= m.num_functions()) {
    throw ValidationError("start function index out of range");
  }
}

}  // namespace

ValidationResult validate(const Module& m) {
  validate_module_structure(m);
  ValidationResult result;
  result.functions.reserve(m.functions.size());
  for (const auto& fn : m.functions) {
    analyze_control(fn.body);  // structural balance check
    result.functions.push_back(FuncValidator(m, fn).run());
  }
  return result;
}

}  // namespace wasai::wasm
