// WAT-flavoured pretty printer for debugging and reports.
#pragma once

#include <string>

#include "wasm/module.hpp"

namespace wasai::wasm {

/// Render one instruction as text, e.g. "i64.ne" or "i32.const 1024".
std::string to_string(const Instr& ins);

/// Render a whole module in a compact WAT-like form.
std::string to_string(const Module& m);

}  // namespace wasai::wasm
