// Wasm binary decoder (MVP). Inverse of encoder.hpp; `decode(encode(m))`
// round-trips every module this library produces.
#pragma once

#include <span>

#include "obs/obs.hpp"
#include "util/bytes.hpp"
#include "wasm/module.hpp"

namespace wasai::wasm {

/// Decode a full binary module. Throws util::DecodeError on malformed input.
/// When `obs` is non-null the decode is wrapped in a `decode` phase span
/// and counted (`decode.modules`, `decode.bytes`); null is a no-op.
Module decode(std::span<const std::uint8_t> binary, obs::Obs* obs = nullptr);

/// Decode a single instruction at the reader's position (used by tests).
Instr decode_instr(util::ByteReader& r);

}  // namespace wasai::wasm
