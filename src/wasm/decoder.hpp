// Wasm binary decoder (MVP). Inverse of encoder.hpp; `decode(encode(m))`
// round-trips every module this library produces.
#pragma once

#include <span>

#include "util/bytes.hpp"
#include "wasm/module.hpp"

namespace wasai::wasm {

/// Decode a full binary module. Throws util::DecodeError on malformed input.
Module decode(std::span<const std::uint8_t> binary);

/// Decode a single instruction at the reader's position (used by tests).
Instr decode_instr(util::ByteReader& r);

}  // namespace wasai::wasm
