#include "wasm/encoder.hpp"

#include "util/leb128.hpp"

namespace wasai::wasm {

namespace {

using util::ByteWriter;
using util::write_sleb;
using util::write_uleb;

void write_name(ByteWriter& w, std::string_view s) {
  write_uleb(w, s.size());
  w.str(s);
}

void write_limits(ByteWriter& w, const Limits& lim) {
  w.u8(lim.max ? 1 : 0);
  write_uleb(w, lim.min);
  if (lim.max) write_uleb(w, *lim.max);
}

void write_functype(ByteWriter& w, const FuncType& ft) {
  w.u8(0x60);
  write_uleb(w, ft.params.size());
  for (const auto p : ft.params) w.u8(static_cast<std::uint8_t>(p));
  write_uleb(w, ft.results.size());
  for (const auto res : ft.results) w.u8(static_cast<std::uint8_t>(res));
}

void write_const_init(ByteWriter& w, ValType type, std::uint64_t bits) {
  switch (type) {
    case ValType::I32:
      w.u8(static_cast<std::uint8_t>(Opcode::I32Const));
      write_sleb(w, static_cast<std::int32_t>(bits));
      break;
    case ValType::I64:
      w.u8(static_cast<std::uint8_t>(Opcode::I64Const));
      write_sleb(w, static_cast<std::int64_t>(bits));
      break;
    case ValType::F32:
      w.u8(static_cast<std::uint8_t>(Opcode::F32Const));
      w.u32_le(static_cast<std::uint32_t>(bits));
      break;
    case ValType::F64:
      w.u8(static_cast<std::uint8_t>(Opcode::F64Const));
      w.u64_le(bits);
      break;
  }
  w.u8(static_cast<std::uint8_t>(Opcode::End));
}

void write_section(ByteWriter& out, std::uint8_t id, const ByteWriter& body) {
  if (body.size() == 0) return;
  out.u8(id);
  write_uleb(out, body.size());
  out.bytes(body.data());
}

}  // namespace

void encode_instr(ByteWriter& w, const Instr& ins) {
  w.u8(static_cast<std::uint8_t>(ins.op));
  const OpInfo& info = op_info(ins.op);
  switch (info.imm) {
    case ImmKind::None:
      break;
    case ImmKind::BlockType:
      w.u8(static_cast<std::uint8_t>(ins.a));
      break;
    case ImmKind::LabelIdx:
    case ImmKind::FuncIdx:
    case ImmKind::LocalIdx:
    case ImmKind::GlobalIdx:
      write_uleb(w, ins.a);
      break;
    case ImmKind::BrTable:
      write_uleb(w, ins.table.size());
      for (const auto t : ins.table) write_uleb(w, t);
      write_uleb(w, ins.a);
      break;
    case ImmKind::TypeIdx:
      write_uleb(w, ins.a);
      w.u8(0x00);
      break;
    case ImmKind::MemArg:
      write_uleb(w, ins.a);
      write_uleb(w, ins.b);
      break;
    case ImmKind::MemIdx:
      w.u8(0x00);
      break;
    case ImmKind::I32:
      write_sleb(w, static_cast<std::int32_t>(ins.imm));
      break;
    case ImmKind::I64:
      write_sleb(w, static_cast<std::int64_t>(ins.imm));
      break;
    case ImmKind::F32:
      w.u32_le(static_cast<std::uint32_t>(ins.imm));
      break;
    case ImmKind::F64:
      w.u64_le(ins.imm);
      break;
  }
}

util::Bytes encode(const Module& m) {
  ByteWriter out;
  out.u32_le(kWasmMagic);
  out.u32_le(kWasmVersion);

  {  // 1: types
    ByteWriter s;
    if (!m.types.empty()) {
      write_uleb(s, m.types.size());
      for (const auto& t : m.types) write_functype(s, t);
    }
    write_section(out, 1, s);
  }
  {  // 2: imports
    ByteWriter s;
    if (!m.imports.empty()) {
      write_uleb(s, m.imports.size());
      for (const auto& imp : m.imports) {
        write_name(s, imp.module);
        write_name(s, imp.field);
        s.u8(static_cast<std::uint8_t>(imp.kind));
        switch (imp.kind) {
          case ExternalKind::Function:
            write_uleb(s, imp.type_index);
            break;
          case ExternalKind::Table:
            s.u8(0x70);
            write_limits(s, imp.limits);
            break;
          case ExternalKind::Memory:
            write_limits(s, imp.limits);
            break;
          case ExternalKind::Global:
            s.u8(static_cast<std::uint8_t>(imp.global_type.type));
            s.u8(imp.global_type.mutable_ ? 1 : 0);
            break;
        }
      }
    }
    write_section(out, 2, s);
  }
  {  // 3: function declarations
    ByteWriter s;
    if (!m.functions.empty()) {
      write_uleb(s, m.functions.size());
      for (const auto& f : m.functions) write_uleb(s, f.type_index);
    }
    write_section(out, 3, s);
  }
  {  // 4: tables
    ByteWriter s;
    if (!m.tables.empty()) {
      write_uleb(s, m.tables.size());
      for (const auto& t : m.tables) {
        s.u8(0x70);
        write_limits(s, t.limits);
      }
    }
    write_section(out, 4, s);
  }
  {  // 5: memories
    ByteWriter s;
    if (!m.memories.empty()) {
      write_uleb(s, m.memories.size());
      for (const auto& mem : m.memories) write_limits(s, mem.limits);
    }
    write_section(out, 5, s);
  }
  {  // 6: globals
    ByteWriter s;
    if (!m.globals.empty()) {
      write_uleb(s, m.globals.size());
      for (const auto& g : m.globals) {
        s.u8(static_cast<std::uint8_t>(g.type.type));
        s.u8(g.type.mutable_ ? 1 : 0);
        write_const_init(s, g.type.type, g.init_bits);
      }
    }
    write_section(out, 6, s);
  }
  {  // 7: exports
    ByteWriter s;
    if (!m.exports.empty()) {
      write_uleb(s, m.exports.size());
      for (const auto& e : m.exports) {
        write_name(s, e.name);
        s.u8(static_cast<std::uint8_t>(e.kind));
        write_uleb(s, e.index);
      }
    }
    write_section(out, 7, s);
  }
  {  // 8: start
    ByteWriter s;
    if (m.start) write_uleb(s, *m.start);
    write_section(out, 8, s);
  }
  {  // 9: element segments
    ByteWriter s;
    if (!m.elements.empty()) {
      write_uleb(s, m.elements.size());
      for (const auto& seg : m.elements) {
        write_uleb(s, seg.table_index);
        s.u8(static_cast<std::uint8_t>(Opcode::I32Const));
        write_sleb(s, static_cast<std::int32_t>(seg.offset));
        s.u8(static_cast<std::uint8_t>(Opcode::End));
        write_uleb(s, seg.func_indices.size());
        for (const auto f : seg.func_indices) write_uleb(s, f);
      }
    }
    write_section(out, 9, s);
  }
  {  // 10: code
    ByteWriter s;
    if (!m.functions.empty()) {
      write_uleb(s, m.functions.size());
      for (const auto& f : m.functions) {
        ByteWriter body;
        // Group consecutive same-typed locals, as the format requires.
        std::vector<std::pair<ValType, std::uint32_t>> groups;
        for (const auto t : f.locals) {
          if (!groups.empty() && groups.back().first == t) {
            ++groups.back().second;
          } else {
            groups.emplace_back(t, 1);
          }
        }
        write_uleb(body, groups.size());
        for (const auto& [type, count] : groups) {
          write_uleb(body, count);
          body.u8(static_cast<std::uint8_t>(type));
        }
        for (const auto& ins : f.body) encode_instr(body, ins);
        write_uleb(s, body.size());
        s.bytes(body.data());
      }
    }
    write_section(out, 10, s);
  }
  {  // 11: data segments
    ByteWriter s;
    if (!m.data.empty()) {
      write_uleb(s, m.data.size());
      for (const auto& seg : m.data) {
        write_uleb(s, seg.memory_index);
        s.u8(static_cast<std::uint8_t>(Opcode::I32Const));
        write_sleb(s, static_cast<std::int32_t>(seg.offset));
        s.u8(static_cast<std::uint8_t>(Opcode::End));
        write_uleb(s, seg.bytes.size());
        s.bytes(seg.bytes);
      }
    }
    write_section(out, 11, s);
  }

  return std::move(out).take();
}

}  // namespace wasai::wasm
