#include "wasm/printer.hpp"

#include <sstream>

namespace wasai::wasm {

std::string to_string(const Instr& ins) {
  const OpInfo& info = op_info(ins.op);
  std::ostringstream os;
  os << info.name;
  switch (info.imm) {
    case ImmKind::None:
    case ImmKind::MemIdx:
      break;
    case ImmKind::BlockType:
      if (ins.a != kBlockVoid) {
        os << " (result "
           << to_string(valtype_from_byte(static_cast<std::uint8_t>(ins.a)))
           << ")";
      }
      break;
    case ImmKind::LabelIdx:
    case ImmKind::FuncIdx:
    case ImmKind::LocalIdx:
    case ImmKind::GlobalIdx:
      os << ' ' << ins.a;
      break;
    case ImmKind::BrTable:
      for (const auto t : ins.table) os << ' ' << t;
      os << ' ' << ins.a;
      break;
    case ImmKind::TypeIdx:
      os << " (type " << ins.a << ")";
      break;
    case ImmKind::MemArg:
      if (ins.b != 0) os << " offset=" << ins.b;
      if (ins.a != 0) os << " align=" << ins.a;
      break;
    case ImmKind::I32:
      os << ' ' << ins.i32_imm();
      break;
    case ImmKind::I64:
      os << ' ' << ins.i64_imm();
      break;
    case ImmKind::F32:
      os << ' ' << ins.f32_imm();
      break;
    case ImmKind::F64:
      os << ' ' << ins.f64_imm();
      break;
  }
  return os.str();
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  os << "(module\n";
  for (std::size_t i = 0; i < m.types.size(); ++i) {
    os << "  (type " << i << " (func";
    if (!m.types[i].params.empty()) {
      os << " (param";
      for (const auto p : m.types[i].params) os << ' ' << to_string(p);
      os << ')';
    }
    if (!m.types[i].results.empty()) {
      os << " (result";
      for (const auto r : m.types[i].results) os << ' ' << to_string(r);
      os << ')';
    }
    os << "))\n";
  }
  for (const auto& imp : m.imports) {
    os << "  (import \"" << imp.module << "\" \"" << imp.field << "\"";
    if (imp.kind == ExternalKind::Function) {
      os << " (func (type " << imp.type_index << "))";
    }
    os << ")\n";
  }
  const auto imported = m.num_imported_functions();
  for (std::size_t i = 0; i < m.functions.size(); ++i) {
    const Function& fn = m.functions[i];
    os << "  (func " << (imported + i);
    if (!fn.name.empty()) os << " $" << fn.name;
    os << " (type " << fn.type_index << ")";
    if (!fn.locals.empty()) {
      os << " (local";
      for (const auto l : fn.locals) os << ' ' << to_string(l);
      os << ')';
    }
    os << '\n';
    int indent = 2;
    for (const auto& ins : fn.body) {
      if (ins.op == Opcode::End || ins.op == Opcode::Else) {
        indent = indent > 2 ? indent - 1 : 2;
      }
      for (int s = 0; s < indent; ++s) os << "  ";
      os << to_string(ins) << '\n';
      if (ins.op == Opcode::Block || ins.op == Opcode::Loop ||
          ins.op == Opcode::If || ins.op == Opcode::Else) {
        ++indent;
      }
    }
    os << "  )\n";
  }
  for (const auto& e : m.exports) {
    os << "  (export \"" << e.name << "\" (func " << e.index << "))\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace wasai::wasm
