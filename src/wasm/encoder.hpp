// Wasm binary encoder (MVP). Used to deploy builder-generated and
// instrumented modules as contract bytecode.
#pragma once

#include "util/bytes.hpp"
#include "wasm/module.hpp"

namespace wasai::wasm {

/// Encode a module into the Wasm binary format.
util::Bytes encode(const Module& m);

/// Encode a single instruction (used by tests and the obfuscator).
void encode_instr(util::ByteWriter& w, const Instr& ins);

}  // namespace wasai::wasm
