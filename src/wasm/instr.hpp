// In-memory instruction representation.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "wasm/opcode.hpp"

namespace wasai::wasm {

/// One decoded instruction. Immediates are stored in `a`/`b`/`imm` according
/// to the opcode's ImmKind:
///   BlockType  -> a = raw byte (0x40 = empty, else a ValType encoding)
///   LabelIdx   -> a = label depth
///   FuncIdx    -> a = function index
///   TypeIdx    -> a = type index (call_indirect)
///   LocalIdx   -> a = local index
///   GlobalIdx  -> a = global index
///   MemArg     -> a = alignment log2, b = offset
///   I32/I64    -> imm = value bit pattern (sign-extended for I32)
///   F32/F64    -> imm = IEEE754 bit pattern
///   BrTable    -> table = targets, a = default target
struct Instr {
  Opcode op = Opcode::Nop;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t imm = 0;
  std::vector<std::uint32_t> table;

  Instr() = default;
  explicit Instr(Opcode o) : op(o) {}
  Instr(Opcode o, std::uint32_t a_) : op(o), a(a_) {}
  Instr(Opcode o, std::uint32_t a_, std::uint32_t b_) : op(o), a(a_), b(b_) {}

  [[nodiscard]] std::int32_t i32_imm() const {
    return static_cast<std::int32_t>(imm);
  }
  [[nodiscard]] std::int64_t i64_imm() const {
    return static_cast<std::int64_t>(imm);
  }
  [[nodiscard]] float f32_imm() const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(imm));
  }
  [[nodiscard]] double f64_imm() const { return std::bit_cast<double>(imm); }

  bool operator==(const Instr&) const = default;
};

/// Convenience constructors used heavily by the corpus builder and tests.
inline Instr i32_const(std::int32_t v) {
  Instr i(Opcode::I32Const);
  i.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  return i;
}

inline Instr i64_const(std::int64_t v) {
  Instr i(Opcode::I64Const);
  i.imm = static_cast<std::uint64_t>(v);
  return i;
}

inline Instr i64_const_u(std::uint64_t v) {
  Instr i(Opcode::I64Const);
  i.imm = v;
  return i;
}

inline Instr f32_const(float v) {
  Instr i(Opcode::F32Const);
  i.imm = std::bit_cast<std::uint32_t>(v);
  return i;
}

inline Instr f64_const(double v) {
  Instr i(Opcode::F64Const);
  i.imm = std::bit_cast<std::uint64_t>(v);
  return i;
}

inline Instr local_get(std::uint32_t idx) { return {Opcode::LocalGet, idx}; }
inline Instr local_set(std::uint32_t idx) { return {Opcode::LocalSet, idx}; }
inline Instr local_tee(std::uint32_t idx) { return {Opcode::LocalTee, idx}; }
inline Instr global_get(std::uint32_t idx) { return {Opcode::GlobalGet, idx}; }
inline Instr global_set(std::uint32_t idx) { return {Opcode::GlobalSet, idx}; }
inline Instr call(std::uint32_t fn) { return {Opcode::Call, fn}; }
inline Instr br(std::uint32_t depth) { return {Opcode::Br, depth}; }
inline Instr br_if(std::uint32_t depth) { return {Opcode::BrIf, depth}; }

/// Block type byte for "no result".
constexpr std::uint32_t kBlockVoid = 0x40;

inline Instr block(std::uint32_t block_type = kBlockVoid) {
  return {Opcode::Block, block_type};
}
inline Instr loop(std::uint32_t block_type = kBlockVoid) {
  return {Opcode::Loop, block_type};
}
inline Instr if_(std::uint32_t block_type = kBlockVoid) {
  return {Opcode::If, block_type};
}
inline Instr mem_load(Opcode op, std::uint32_t offset = 0,
                      std::uint32_t align = 0) {
  return {op, align, offset};
}
inline Instr mem_store(Opcode op, std::uint32_t offset = 0,
                       std::uint32_t align = 0) {
  return {op, align, offset};
}

}  // namespace wasai::wasm
