// Module validator implementing the spec's type-checking algorithm, extended
// to record — for every instruction — the types of the operands it pops.
// The instrumenter uses that annotation to emit operand-capturing hooks for
// polymorphic instructions (select/drop) whose operand types cannot be read
// off the opcode alone.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/module.hpp"

namespace wasai::wasm {

/// Operand types popped by one instruction, in *pop order* (index 0 = the
/// value that was on top of the stack). Instructions in provably dead code
/// may have `unreachable = true`, in which case `popped` may be incomplete.
struct InstrOperands {
  std::vector<ValType> popped;
  bool unreachable = false;
};

struct FunctionTyping {
  std::vector<InstrOperands> per_instr;  // parallel to Function::body
};

struct ValidationResult {
  std::vector<FunctionTyping> functions;  // parallel to Module::functions
};

/// Validate the whole module. Throws util::ValidationError on any failure.
ValidationResult validate(const Module& m);

}  // namespace wasai::wasm
