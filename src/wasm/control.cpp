#include "wasm/control.hpp"

namespace wasai::wasm {

ControlMap analyze_control(const std::vector<Instr>& body) {
  ControlMap map;
  map.end_idx.assign(body.size(), kNoMatch);
  map.else_idx.assign(body.size(), kNoMatch);

  // Stack of indices of unmatched openers. The function body itself is an
  // implicit block whose `end` is the final instruction; we model it by
  // pushing a sentinel.
  std::vector<std::uint32_t> openers;
  bool saw_function_end = false;

  for (std::uint32_t i = 0; i < body.size(); ++i) {
    switch (body[i].op) {
      case Opcode::Block:
      case Opcode::Loop:
      case Opcode::If:
        openers.push_back(i);
        break;
      case Opcode::Else: {
        if (openers.empty() || body[openers.back()].op != Opcode::If ||
            map.else_idx[openers.back()] != kNoMatch) {
          throw util::ValidationError("else without matching if");
        }
        map.else_idx[openers.back()] = i;
        break;
      }
      case Opcode::End: {
        if (openers.empty()) {
          // The implicit function block's end: must be the last instruction.
          if (i + 1 != body.size()) {
            throw util::ValidationError("instructions after final end");
          }
          saw_function_end = true;
        } else {
          const auto opener = openers.back();
          openers.pop_back();
          map.end_idx[opener] = i;
          if (map.else_idx[opener] != kNoMatch) {
            map.end_idx[map.else_idx[opener]] = i;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  if (!openers.empty()) {
    throw util::ValidationError("unterminated block/loop/if");
  }
  if (!saw_function_end) {
    throw util::ValidationError("function body must end with `end`");
  }
  return map;
}

}  // namespace wasai::wasm
