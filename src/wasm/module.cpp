#include "wasm/module.hpp"

namespace wasai::wasm {

const FuncType& Module::function_type(std::uint32_t func_index) const {
  const std::uint32_t imported = num_imported_functions();
  if (func_index < imported) {
    return types.at(function_import(func_index).type_index);
  }
  const std::uint32_t local = func_index - imported;
  if (local >= functions.size()) {
    throw util::UsageError("function index " + std::to_string(func_index) +
                           " out of range");
  }
  return types.at(functions[local].type_index);
}

const Import& Module::function_import(std::uint32_t func_index) const {
  std::uint32_t n = 0;
  for (const auto& imp : imports) {
    if (imp.kind != ExternalKind::Function) continue;
    if (n == func_index) return imp;
    ++n;
  }
  throw util::UsageError("imported function index " +
                         std::to_string(func_index) + " out of range");
}

Function& Module::defined(std::uint32_t func_index) {
  const std::uint32_t imported = num_imported_functions();
  if (func_index < imported || func_index - imported >= functions.size()) {
    throw util::UsageError("function index " + std::to_string(func_index) +
                           " is not a defined function");
  }
  return functions[func_index - imported];
}

const Function& Module::defined(std::uint32_t func_index) const {
  return const_cast<Module*>(this)->defined(func_index);
}

std::optional<std::uint32_t> Module::find_export(std::string_view name) const {
  for (const auto& e : exports) {
    if (e.kind == ExternalKind::Function && e.name == name) return e.index;
  }
  return std::nullopt;
}

std::uint32_t Module::type_index_for(const FuncType& ft) {
  for (std::uint32_t i = 0; i < types.size(); ++i) {
    if (types[i] == ft) return i;
  }
  types.push_back(ft);
  return static_cast<std::uint32_t>(types.size() - 1);
}

}  // namespace wasai::wasm
