// Structured-control-flow analysis of a function body: matches each
// block/loop/if with its end (and else), so the interpreter and the symbolic
// replayer can jump without re-scanning.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/module.hpp"

namespace wasai::wasm {

constexpr std::uint32_t kNoMatch = 0xffffffff;

/// Per-instruction control metadata. Entries are meaningful only for
/// Block/Loop/If (end_idx / else_idx) and Else (end_idx).
struct ControlMap {
  /// For body[i] an opener (or else): index of the matching `end`.
  std::vector<std::uint32_t> end_idx;
  /// For body[i] == If: index of the matching `else`, or kNoMatch.
  std::vector<std::uint32_t> else_idx;
};

/// Build the map; throws ValidationError on unbalanced bodies.
ControlMap analyze_control(const std::vector<Instr>& body);

}  // namespace wasai::wasm
