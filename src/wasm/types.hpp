// Core type definitions of the WebAssembly MVP binary format (the subset
// EOSIO contracts are compiled against).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wasai::wasm {

/// Wasm value types. Numeric values equal their binary-format encodings.
enum class ValType : std::uint8_t {
  I32 = 0x7f,
  I64 = 0x7e,
  F32 = 0x7d,
  F64 = 0x7c,
};

/// Human-readable name ("i32", ...).
const char* to_string(ValType t);

/// Decode a value-type byte; throws DecodeError for unknown encodings.
ValType valtype_from_byte(std::uint8_t b);

/// A function signature: parameter and result types. The MVP allows at most
/// one result.
struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType&) const = default;
};

/// Resizable limits for memories and tables (unit: pages / elements).
struct Limits {
  std::uint32_t min = 0;
  std::optional<std::uint32_t> max;

  bool operator==(const Limits&) const = default;
};

/// A global variable's type: value type + mutability.
struct GlobalType {
  ValType type = ValType::I32;
  bool mutable_ = false;

  bool operator==(const GlobalType&) const = default;
};

/// Kinds of imports/exports.
enum class ExternalKind : std::uint8_t {
  Function = 0,
  Table = 1,
  Memory = 2,
  Global = 3,
};

constexpr std::uint32_t kWasmPageSize = 64 * 1024;
constexpr std::uint32_t kWasmMagic = 0x6d736100;  // "\0asm"
constexpr std::uint32_t kWasmVersion = 1;

}  // namespace wasai::wasm
