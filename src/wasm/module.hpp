// In-memory representation of a Wasm module — the unit deployed as an EOSIO
// smart contract and the unit the instrumenter rewrites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/instr.hpp"
#include "wasm/types.hpp"

namespace wasai::wasm {

struct Import {
  std::string module;  // import module name, e.g. "env"
  std::string field;   // imported symbol, e.g. "require_auth"
  ExternalKind kind = ExternalKind::Function;
  std::uint32_t type_index = 0;  // for functions: index into Module::types
  GlobalType global_type;        // for globals
  Limits limits;                 // for tables/memories
};

struct Function {
  std::uint32_t type_index = 0;
  /// Additional locals beyond the parameters, in declaration order.
  std::vector<ValType> locals;
  /// Body instructions including the terminating `end`.
  std::vector<Instr> body;
  /// Optional debug name (carried through instrumentation, not encoded).
  std::string name;
};

struct Table {
  Limits limits;
};

struct Memory {
  Limits limits;
};

struct Global {
  GlobalType type;
  /// MVP initializer: a single constant. Interpreted per type.
  std::uint64_t init_bits = 0;
};

struct Export {
  std::string name;
  ExternalKind kind = ExternalKind::Function;
  std::uint32_t index = 0;  // function-space index (imports first)
};

struct ElemSegment {
  std::uint32_t table_index = 0;
  std::uint32_t offset = 0;  // constant offset (MVP i32.const initializer)
  std::vector<std::uint32_t> func_indices;
};

struct DataSegment {
  std::uint32_t memory_index = 0;
  std::uint32_t offset = 0;  // constant offset
  std::vector<std::uint8_t> bytes;
};

/// A decoded module. Function index space = imported functions followed by
/// locally defined functions, as in the Wasm spec.
struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  std::vector<Function> functions;  // defined functions only
  std::vector<Table> tables;
  std::vector<Memory> memories;
  std::vector<Global> globals;
  std::vector<Export> exports;
  std::vector<ElemSegment> elements;
  std::vector<DataSegment> data;
  std::optional<std::uint32_t> start;

  /// Number of imported functions (the offset of defined functions in the
  /// function index space).
  [[nodiscard]] std::uint32_t num_imported_functions() const {
    std::uint32_t n = 0;
    for (const auto& imp : imports) {
      if (imp.kind == ExternalKind::Function) ++n;
    }
    return n;
  }

  [[nodiscard]] std::uint32_t num_functions() const {
    return num_imported_functions() +
           static_cast<std::uint32_t>(functions.size());
  }

  [[nodiscard]] bool is_imported_function(std::uint32_t func_index) const {
    return func_index < num_imported_functions();
  }

  /// Signature of any function in the index space (imported or defined).
  [[nodiscard]] const FuncType& function_type(std::uint32_t func_index) const;

  /// The i-th *function* import (skipping non-function imports).
  [[nodiscard]] const Import& function_import(std::uint32_t func_index) const;

  /// Defined function for a function-space index; throws for imports.
  [[nodiscard]] Function& defined(std::uint32_t func_index);
  [[nodiscard]] const Function& defined(std::uint32_t func_index) const;

  /// Find an exported function's index by name, if present.
  [[nodiscard]] std::optional<std::uint32_t> find_export(
      std::string_view name) const;

  /// Index of a matching type, adding it if absent.
  std::uint32_t type_index_for(const FuncType& ft);
};

}  // namespace wasai::wasm
