#include "wasm/opcode.hpp"

#include <array>

namespace wasai::wasm {

namespace {

constexpr ValType I32 = ValType::I32;
constexpr ValType I64 = ValType::I64;
constexpr ValType F32 = ValType::F32;
constexpr ValType F64 = ValType::F64;

struct Entry {
  bool known = false;
  OpInfo info{};
};

constexpr Entry make(const char* name, ImmKind imm, OpClass cls,
                     std::uint8_t bytes = 0, ValType operand = I32,
                     ValType result = I32, bool sext = false) {
  return Entry{true, OpInfo{name, imm, cls, bytes, operand, result, sext}};
}

constexpr std::array<Entry, 0xc0> build_table() {
  std::array<Entry, 0xc0> t{};
  auto set = [&](Opcode op, Entry e) { t[static_cast<std::size_t>(op)] = e; };

  using K = ImmKind;
  using C = OpClass;

  // Control
  set(Opcode::Unreachable, make("unreachable", K::None, C::Control));
  set(Opcode::Nop, make("nop", K::None, C::Control));
  set(Opcode::Block, make("block", K::BlockType, C::Control));
  set(Opcode::Loop, make("loop", K::BlockType, C::Control));
  set(Opcode::If, make("if", K::BlockType, C::Control));
  set(Opcode::Else, make("else", K::None, C::Control));
  set(Opcode::End, make("end", K::None, C::Control));
  set(Opcode::Br, make("br", K::LabelIdx, C::Control));
  set(Opcode::BrIf, make("br_if", K::LabelIdx, C::Control));
  set(Opcode::BrTable, make("br_table", K::BrTable, C::Control));
  set(Opcode::Return, make("return", K::None, C::Control));
  set(Opcode::Call, make("call", K::FuncIdx, C::Control));
  set(Opcode::CallIndirect, make("call_indirect", K::TypeIdx, C::Control));

  // Parametric
  set(Opcode::Drop, make("drop", K::None, C::Parametric));
  set(Opcode::Select, make("select", K::None, C::Parametric));

  // Variable
  set(Opcode::LocalGet, make("local.get", K::LocalIdx, C::Variable));
  set(Opcode::LocalSet, make("local.set", K::LocalIdx, C::Variable));
  set(Opcode::LocalTee, make("local.tee", K::LocalIdx, C::Variable));
  set(Opcode::GlobalGet, make("global.get", K::GlobalIdx, C::Variable));
  set(Opcode::GlobalSet, make("global.set", K::GlobalIdx, C::Variable));

  // Loads (operand field = result type pushed onto the stack)
  set(Opcode::I32Load, make("i32.load", K::MemArg, C::Load, 4, I32, I32));
  set(Opcode::I64Load, make("i64.load", K::MemArg, C::Load, 8, I64, I64));
  set(Opcode::F32Load, make("f32.load", K::MemArg, C::Load, 4, F32, F32));
  set(Opcode::F64Load, make("f64.load", K::MemArg, C::Load, 8, F64, F64));
  set(Opcode::I32Load8S,
      make("i32.load8_s", K::MemArg, C::Load, 1, I32, I32, true));
  set(Opcode::I32Load8U, make("i32.load8_u", K::MemArg, C::Load, 1, I32, I32));
  set(Opcode::I32Load16S,
      make("i32.load16_s", K::MemArg, C::Load, 2, I32, I32, true));
  set(Opcode::I32Load16U,
      make("i32.load16_u", K::MemArg, C::Load, 2, I32, I32));
  set(Opcode::I64Load8S,
      make("i64.load8_s", K::MemArg, C::Load, 1, I64, I64, true));
  set(Opcode::I64Load8U, make("i64.load8_u", K::MemArg, C::Load, 1, I64, I64));
  set(Opcode::I64Load16S,
      make("i64.load16_s", K::MemArg, C::Load, 2, I64, I64, true));
  set(Opcode::I64Load16U,
      make("i64.load16_u", K::MemArg, C::Load, 2, I64, I64));
  set(Opcode::I64Load32S,
      make("i64.load32_s", K::MemArg, C::Load, 4, I64, I64, true));
  set(Opcode::I64Load32U,
      make("i64.load32_u", K::MemArg, C::Load, 4, I64, I64));

  // Stores (operand field = value type popped from the stack)
  set(Opcode::I32Store, make("i32.store", K::MemArg, C::Store, 4, I32));
  set(Opcode::I64Store, make("i64.store", K::MemArg, C::Store, 8, I64));
  set(Opcode::F32Store, make("f32.store", K::MemArg, C::Store, 4, F32));
  set(Opcode::F64Store, make("f64.store", K::MemArg, C::Store, 8, F64));
  set(Opcode::I32Store8, make("i32.store8", K::MemArg, C::Store, 1, I32));
  set(Opcode::I32Store16, make("i32.store16", K::MemArg, C::Store, 2, I32));
  set(Opcode::I64Store8, make("i64.store8", K::MemArg, C::Store, 1, I64));
  set(Opcode::I64Store16, make("i64.store16", K::MemArg, C::Store, 2, I64));
  set(Opcode::I64Store32, make("i64.store32", K::MemArg, C::Store, 4, I64));

  set(Opcode::MemorySize, make("memory.size", K::MemIdx, C::Memory));
  set(Opcode::MemoryGrow, make("memory.grow", K::MemIdx, C::Memory));

  // Constants
  set(Opcode::I32Const, make("i32.const", K::I32, C::Const, 0, I32, I32));
  set(Opcode::I64Const, make("i64.const", K::I64, C::Const, 0, I64, I64));
  set(Opcode::F32Const, make("f32.const", K::F32, C::Const, 0, F32, F32));
  set(Opcode::F64Const, make("f64.const", K::F64, C::Const, 0, F64, F64));

  auto unary = [&](Opcode op, const char* n, ValType in, ValType out) {
    set(op, make(n, K::None, C::Unary, 0, in, out));
  };
  auto binary = [&](Opcode op, const char* n, ValType in, ValType out) {
    set(op, make(n, K::None, C::Binary, 0, in, out));
  };

  // i32 test/relational
  unary(Opcode::I32Eqz, "i32.eqz", I32, I32);
  binary(Opcode::I32Eq, "i32.eq", I32, I32);
  binary(Opcode::I32Ne, "i32.ne", I32, I32);
  binary(Opcode::I32LtS, "i32.lt_s", I32, I32);
  binary(Opcode::I32LtU, "i32.lt_u", I32, I32);
  binary(Opcode::I32GtS, "i32.gt_s", I32, I32);
  binary(Opcode::I32GtU, "i32.gt_u", I32, I32);
  binary(Opcode::I32LeS, "i32.le_s", I32, I32);
  binary(Opcode::I32LeU, "i32.le_u", I32, I32);
  binary(Opcode::I32GeS, "i32.ge_s", I32, I32);
  binary(Opcode::I32GeU, "i32.ge_u", I32, I32);

  // i64 test/relational (results are i32)
  unary(Opcode::I64Eqz, "i64.eqz", I64, I32);
  binary(Opcode::I64Eq, "i64.eq", I64, I32);
  binary(Opcode::I64Ne, "i64.ne", I64, I32);
  binary(Opcode::I64LtS, "i64.lt_s", I64, I32);
  binary(Opcode::I64LtU, "i64.lt_u", I64, I32);
  binary(Opcode::I64GtS, "i64.gt_s", I64, I32);
  binary(Opcode::I64GtU, "i64.gt_u", I64, I32);
  binary(Opcode::I64LeS, "i64.le_s", I64, I32);
  binary(Opcode::I64LeU, "i64.le_u", I64, I32);
  binary(Opcode::I64GeS, "i64.ge_s", I64, I32);
  binary(Opcode::I64GeU, "i64.ge_u", I64, I32);

  // f32/f64 relational
  binary(Opcode::F32Eq, "f32.eq", F32, I32);
  binary(Opcode::F32Ne, "f32.ne", F32, I32);
  binary(Opcode::F32Lt, "f32.lt", F32, I32);
  binary(Opcode::F32Gt, "f32.gt", F32, I32);
  binary(Opcode::F32Le, "f32.le", F32, I32);
  binary(Opcode::F32Ge, "f32.ge", F32, I32);
  binary(Opcode::F64Eq, "f64.eq", F64, I32);
  binary(Opcode::F64Ne, "f64.ne", F64, I32);
  binary(Opcode::F64Lt, "f64.lt", F64, I32);
  binary(Opcode::F64Gt, "f64.gt", F64, I32);
  binary(Opcode::F64Le, "f64.le", F64, I32);
  binary(Opcode::F64Ge, "f64.ge", F64, I32);

  // i32 arithmetic
  unary(Opcode::I32Clz, "i32.clz", I32, I32);
  unary(Opcode::I32Ctz, "i32.ctz", I32, I32);
  unary(Opcode::I32Popcnt, "i32.popcnt", I32, I32);
  binary(Opcode::I32Add, "i32.add", I32, I32);
  binary(Opcode::I32Sub, "i32.sub", I32, I32);
  binary(Opcode::I32Mul, "i32.mul", I32, I32);
  binary(Opcode::I32DivS, "i32.div_s", I32, I32);
  binary(Opcode::I32DivU, "i32.div_u", I32, I32);
  binary(Opcode::I32RemS, "i32.rem_s", I32, I32);
  binary(Opcode::I32RemU, "i32.rem_u", I32, I32);
  binary(Opcode::I32And, "i32.and", I32, I32);
  binary(Opcode::I32Or, "i32.or", I32, I32);
  binary(Opcode::I32Xor, "i32.xor", I32, I32);
  binary(Opcode::I32Shl, "i32.shl", I32, I32);
  binary(Opcode::I32ShrS, "i32.shr_s", I32, I32);
  binary(Opcode::I32ShrU, "i32.shr_u", I32, I32);
  binary(Opcode::I32Rotl, "i32.rotl", I32, I32);
  binary(Opcode::I32Rotr, "i32.rotr", I32, I32);

  // i64 arithmetic
  unary(Opcode::I64Clz, "i64.clz", I64, I64);
  unary(Opcode::I64Ctz, "i64.ctz", I64, I64);
  unary(Opcode::I64Popcnt, "i64.popcnt", I64, I64);
  binary(Opcode::I64Add, "i64.add", I64, I64);
  binary(Opcode::I64Sub, "i64.sub", I64, I64);
  binary(Opcode::I64Mul, "i64.mul", I64, I64);
  binary(Opcode::I64DivS, "i64.div_s", I64, I64);
  binary(Opcode::I64DivU, "i64.div_u", I64, I64);
  binary(Opcode::I64RemS, "i64.rem_s", I64, I64);
  binary(Opcode::I64RemU, "i64.rem_u", I64, I64);
  binary(Opcode::I64And, "i64.and", I64, I64);
  binary(Opcode::I64Or, "i64.or", I64, I64);
  binary(Opcode::I64Xor, "i64.xor", I64, I64);
  binary(Opcode::I64Shl, "i64.shl", I64, I64);
  binary(Opcode::I64ShrS, "i64.shr_s", I64, I64);
  binary(Opcode::I64ShrU, "i64.shr_u", I64, I64);
  binary(Opcode::I64Rotl, "i64.rotl", I64, I64);
  binary(Opcode::I64Rotr, "i64.rotr", I64, I64);

  // f32 arithmetic
  unary(Opcode::F32Abs, "f32.abs", F32, F32);
  unary(Opcode::F32Neg, "f32.neg", F32, F32);
  unary(Opcode::F32Ceil, "f32.ceil", F32, F32);
  unary(Opcode::F32Floor, "f32.floor", F32, F32);
  unary(Opcode::F32Trunc, "f32.trunc", F32, F32);
  unary(Opcode::F32Nearest, "f32.nearest", F32, F32);
  unary(Opcode::F32Sqrt, "f32.sqrt", F32, F32);
  binary(Opcode::F32Add, "f32.add", F32, F32);
  binary(Opcode::F32Sub, "f32.sub", F32, F32);
  binary(Opcode::F32Mul, "f32.mul", F32, F32);
  binary(Opcode::F32Div, "f32.div", F32, F32);
  binary(Opcode::F32Min, "f32.min", F32, F32);
  binary(Opcode::F32Max, "f32.max", F32, F32);
  binary(Opcode::F32Copysign, "f32.copysign", F32, F32);

  // f64 arithmetic
  unary(Opcode::F64Abs, "f64.abs", F64, F64);
  unary(Opcode::F64Neg, "f64.neg", F64, F64);
  unary(Opcode::F64Ceil, "f64.ceil", F64, F64);
  unary(Opcode::F64Floor, "f64.floor", F64, F64);
  unary(Opcode::F64Trunc, "f64.trunc", F64, F64);
  unary(Opcode::F64Nearest, "f64.nearest", F64, F64);
  unary(Opcode::F64Sqrt, "f64.sqrt", F64, F64);
  binary(Opcode::F64Add, "f64.add", F64, F64);
  binary(Opcode::F64Sub, "f64.sub", F64, F64);
  binary(Opcode::F64Mul, "f64.mul", F64, F64);
  binary(Opcode::F64Div, "f64.div", F64, F64);
  binary(Opcode::F64Min, "f64.min", F64, F64);
  binary(Opcode::F64Max, "f64.max", F64, F64);
  binary(Opcode::F64Copysign, "f64.copysign", F64, F64);

  // Conversions
  unary(Opcode::I32WrapI64, "i32.wrap_i64", I64, I32);
  unary(Opcode::I32TruncF32S, "i32.trunc_f32_s", F32, I32);
  unary(Opcode::I32TruncF32U, "i32.trunc_f32_u", F32, I32);
  unary(Opcode::I32TruncF64S, "i32.trunc_f64_s", F64, I32);
  unary(Opcode::I32TruncF64U, "i32.trunc_f64_u", F64, I32);
  unary(Opcode::I64ExtendI32S, "i64.extend_i32_s", I32, I64);
  unary(Opcode::I64ExtendI32U, "i64.extend_i32_u", I32, I64);
  unary(Opcode::I64TruncF32S, "i64.trunc_f32_s", F32, I64);
  unary(Opcode::I64TruncF32U, "i64.trunc_f32_u", F32, I64);
  unary(Opcode::I64TruncF64S, "i64.trunc_f64_s", F64, I64);
  unary(Opcode::I64TruncF64U, "i64.trunc_f64_u", F64, I64);
  unary(Opcode::F32ConvertI32S, "f32.convert_i32_s", I32, F32);
  unary(Opcode::F32ConvertI32U, "f32.convert_i32_u", I32, F32);
  unary(Opcode::F32ConvertI64S, "f32.convert_i64_s", I64, F32);
  unary(Opcode::F32ConvertI64U, "f32.convert_i64_u", I64, F32);
  unary(Opcode::F32DemoteF64, "f32.demote_f64", F64, F32);
  unary(Opcode::F64ConvertI32S, "f64.convert_i32_s", I32, F64);
  unary(Opcode::F64ConvertI32U, "f64.convert_i32_u", I32, F64);
  unary(Opcode::F64ConvertI64S, "f64.convert_i64_s", I64, F64);
  unary(Opcode::F64ConvertI64U, "f64.convert_i64_u", I64, F64);
  unary(Opcode::F64PromoteF32, "f64.promote_f32", F32, F64);
  unary(Opcode::I32ReinterpretF32, "i32.reinterpret_f32", F32, I32);
  unary(Opcode::I64ReinterpretF64, "i64.reinterpret_f64", F64, I64);
  unary(Opcode::F32ReinterpretI32, "f32.reinterpret_i32", I32, F32);
  unary(Opcode::F64ReinterpretI64, "f64.reinterpret_i64", I64, F64);

  return t;
}

const std::array<Entry, 0xc0> kTable = build_table();

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  if (idx >= kTable.size() || !kTable[idx].known) {
    throw util::DecodeError("unknown opcode byte 0x" + std::to_string(idx));
  }
  return kTable[idx].info;
}

bool is_known_opcode(std::uint8_t byte) {
  return byte < kTable.size() && kTable[byte].known;
}

const char* to_string(ValType t) {
  switch (t) {
    case ValType::I32:
      return "i32";
    case ValType::I64:
      return "i64";
    case ValType::F32:
      return "f32";
    case ValType::F64:
      return "f64";
  }
  return "?";
}

ValType valtype_from_byte(std::uint8_t b) {
  switch (b) {
    case 0x7f:
      return ValType::I32;
    case 0x7e:
      return ValType::I64;
    case 0x7d:
      return ValType::F32;
    case 0x7c:
      return ValType::F64;
    default:
      throw util::DecodeError("invalid value type byte " + std::to_string(b));
  }
}

}  // namespace wasai::wasm
