#include "wasm/decoder.hpp"

#include "util/leb128.hpp"

namespace wasai::wasm {

namespace {

using util::ByteReader;
using util::DecodeError;
using util::read_sleb;
using util::read_uleb;
using util::read_uleb32;

/// Total locals any single function may declare. The binary format lets a
/// six-byte body claim 2^32 locals; real-world modules stay far below this.
constexpr std::uint64_t kMaxLocals = 100'000;

/// A vector count claimed by the input. Every element consumes at least one
/// input byte, so a count beyond the remaining bytes is malformed — checking
/// before `reserve` keeps a corrupted count from demanding a multi-GB
/// allocation.
std::uint32_t read_count(ByteReader& r) {
  const auto n = read_uleb32(r);
  if (n > r.remaining()) {
    throw DecodeError("vector count " + std::to_string(n) +
                      " exceeds remaining input");
  }
  return n;
}

FuncType decode_functype(ByteReader& r) {
  if (r.u8() != 0x60) throw DecodeError("expected functype tag 0x60");
  FuncType ft;
  const auto nparams = read_count(r);
  ft.params.reserve(nparams);
  for (std::uint32_t i = 0; i < nparams; ++i) {
    ft.params.push_back(valtype_from_byte(r.u8()));
  }
  const auto nresults = read_uleb32(r);
  if (nresults > 1) throw DecodeError("MVP allows at most one result");
  for (std::uint32_t i = 0; i < nresults; ++i) {
    ft.results.push_back(valtype_from_byte(r.u8()));
  }
  return ft;
}

Limits decode_limits(ByteReader& r) {
  Limits lim;
  const auto flags = r.u8();
  lim.min = read_uleb32(r);
  if (flags == 1) {
    lim.max = read_uleb32(r);
  } else if (flags != 0) {
    throw DecodeError("invalid limits flags");
  }
  return lim;
}

/// MVP constant initializer: a single const instruction + end.
std::uint64_t decode_const_init(ByteReader& r, ValType expect) {
  const auto op = static_cast<Opcode>(r.u8());
  std::uint64_t bits = 0;
  switch (op) {
    case Opcode::I32Const:
      if (expect != ValType::I32) throw DecodeError("init type mismatch");
      bits = static_cast<std::uint64_t>(read_sleb(r, 32));
      break;
    case Opcode::I64Const:
      if (expect != ValType::I64) throw DecodeError("init type mismatch");
      bits = static_cast<std::uint64_t>(read_sleb(r, 64));
      break;
    case Opcode::F32Const:
      if (expect != ValType::F32) throw DecodeError("init type mismatch");
      bits = r.u32_le();
      break;
    case Opcode::F64Const:
      if (expect != ValType::F64) throw DecodeError("init type mismatch");
      bits = r.u64_le();
      break;
    default:
      throw DecodeError("unsupported initializer opcode");
  }
  if (static_cast<Opcode>(r.u8()) != Opcode::End) {
    throw DecodeError("initializer missing end");
  }
  return bits;
}

std::vector<Instr> decode_body(ByteReader& r) {
  std::vector<Instr> body;
  int depth = 1;  // implicit function block
  while (depth > 0) {
    Instr ins = decode_instr(r);
    switch (ins.op) {
      case Opcode::Block:
      case Opcode::Loop:
      case Opcode::If:
        ++depth;
        break;
      case Opcode::End:
        --depth;
        break;
      default:
        break;
    }
    body.push_back(std::move(ins));
  }
  return body;
}

}  // namespace

Instr decode_instr(ByteReader& r) {
  const std::uint8_t byte = r.u8();
  if (!is_known_opcode(byte)) {
    throw DecodeError("unknown opcode 0x" + std::to_string(byte));
  }
  Instr ins(static_cast<Opcode>(byte));
  const OpInfo& info = op_info(ins.op);
  switch (info.imm) {
    case ImmKind::None:
      break;
    case ImmKind::BlockType: {
      const std::uint8_t bt = r.u8();
      if (bt != kBlockVoid) valtype_from_byte(bt);  // validate
      ins.a = bt;
      break;
    }
    case ImmKind::LabelIdx:
    case ImmKind::FuncIdx:
    case ImmKind::LocalIdx:
    case ImmKind::GlobalIdx:
      ins.a = read_uleb32(r);
      break;
    case ImmKind::BrTable: {
      const auto count = read_count(r);
      ins.table.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ins.table.push_back(read_uleb32(r));
      }
      ins.a = read_uleb32(r);  // default target
      break;
    }
    case ImmKind::TypeIdx: {
      ins.a = read_uleb32(r);
      if (r.u8() != 0x00) throw DecodeError("call_indirect reserved byte");
      break;
    }
    case ImmKind::MemArg:
      ins.a = read_uleb32(r);  // align
      ins.b = read_uleb32(r);  // offset
      break;
    case ImmKind::MemIdx:
      if (r.u8() != 0x00) throw DecodeError("memory index reserved byte");
      break;
    case ImmKind::I32:
      ins.imm = static_cast<std::uint64_t>(read_sleb(r, 32));
      break;
    case ImmKind::I64:
      ins.imm = static_cast<std::uint64_t>(read_sleb(r, 64));
      break;
    case ImmKind::F32:
      ins.imm = r.u32_le();
      break;
    case ImmKind::F64:
      ins.imm = r.u64_le();
      break;
  }
  return ins;
}

Module decode(std::span<const std::uint8_t> binary, obs::Obs* obs) {
  const obs::Span span(obs, obs::span_name::kDecode);
  if (obs != nullptr) {
    obs->count("decode.modules");
    obs->count("decode.bytes", binary.size());
  }
  ByteReader r(binary);
  if (r.u32_le() != kWasmMagic) throw DecodeError("bad magic");
  if (r.u32_le() != kWasmVersion) throw DecodeError("unsupported version");

  Module m;
  std::vector<std::uint32_t> func_type_indices;
  int last_section = -1;

  while (!r.eof()) {
    const std::uint8_t section_id = r.u8();
    const auto section_size = read_uleb32(r);
    const auto section_bytes = r.bytes(section_size);
    ByteReader s(section_bytes);

    if (section_id != 0) {  // custom sections may appear anywhere
      if (section_id <= last_section) {
        throw DecodeError("section out of order: " +
                          std::to_string(section_id));
      }
      last_section = section_id;
    }

    switch (section_id) {
      case 0:  // custom: skipped
        break;
      case 1: {  // types
        const auto n = read_count(s);
        m.types.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          m.types.push_back(decode_functype(s));
        }
        break;
      }
      case 2: {  // imports
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          Import imp;
          imp.module = s.str(read_uleb32(s));
          imp.field = s.str(read_uleb32(s));
          imp.kind = static_cast<ExternalKind>(s.u8());
          switch (imp.kind) {
            case ExternalKind::Function:
              imp.type_index = read_uleb32(s);
              break;
            case ExternalKind::Table:
              if (s.u8() != 0x70) throw DecodeError("table elem type");
              imp.limits = decode_limits(s);
              break;
            case ExternalKind::Memory:
              imp.limits = decode_limits(s);
              break;
            case ExternalKind::Global:
              imp.global_type.type = valtype_from_byte(s.u8());
              imp.global_type.mutable_ = s.u8() != 0;
              break;
          }
          m.imports.push_back(std::move(imp));
        }
        break;
      }
      case 3: {  // function declarations
        const auto n = read_count(s);
        func_type_indices.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          func_type_indices.push_back(read_uleb32(s));
        }
        break;
      }
      case 4: {  // tables
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          if (s.u8() != 0x70) throw DecodeError("table elem type");
          m.tables.push_back(Table{decode_limits(s)});
        }
        break;
      }
      case 5: {  // memories
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          m.memories.push_back(Memory{decode_limits(s)});
        }
        break;
      }
      case 6: {  // globals
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          Global g;
          g.type.type = valtype_from_byte(s.u8());
          g.type.mutable_ = s.u8() != 0;
          g.init_bits = decode_const_init(s, g.type.type);
          m.globals.push_back(g);
        }
        break;
      }
      case 7: {  // exports
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          Export e;
          e.name = s.str(read_uleb32(s));
          e.kind = static_cast<ExternalKind>(s.u8());
          e.index = read_uleb32(s);
          m.exports.push_back(std::move(e));
        }
        break;
      }
      case 8:  // start
        m.start = read_uleb32(s);
        break;
      case 9: {  // element segments
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          ElemSegment seg;
          seg.table_index = read_uleb32(s);
          if (static_cast<Opcode>(s.u8()) != Opcode::I32Const) {
            throw DecodeError("element offset must be i32.const");
          }
          seg.offset = static_cast<std::uint32_t>(read_sleb(s, 32));
          if (static_cast<Opcode>(s.u8()) != Opcode::End) {
            throw DecodeError("element offset missing end");
          }
          const auto count = read_count(s);
          seg.func_indices.reserve(count);
          for (std::uint32_t j = 0; j < count; ++j) {
            seg.func_indices.push_back(read_uleb32(s));
          }
          m.elements.push_back(std::move(seg));
        }
        break;
      }
      case 10: {  // code
        const auto n = read_uleb32(s);
        if (n != func_type_indices.size()) {
          throw DecodeError("code/function section count mismatch");
        }
        m.functions.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto body_size = read_uleb32(s);
          ByteReader body_reader(s.bytes(body_size));
          Function fn;
          fn.type_index = func_type_indices[i];
          const auto nlocals = read_count(body_reader);
          for (std::uint32_t j = 0; j < nlocals; ++j) {
            const auto count = read_uleb32(body_reader);
            const auto type = valtype_from_byte(body_reader.u8());
            // Local groups are run-length encoded, so `count` is not bounded
            // by input size; cap the expanded total instead (locals bomb).
            if (count > kMaxLocals - fn.locals.size()) {
              throw DecodeError("function declares more than " +
                                std::to_string(kMaxLocals) + " locals");
            }
            fn.locals.insert(fn.locals.end(), count, type);
          }
          fn.body = decode_body(body_reader);
          if (!body_reader.eof()) {
            throw DecodeError("trailing bytes after function body");
          }
          m.functions.push_back(std::move(fn));
        }
        break;
      }
      case 11: {  // data segments
        const auto n = read_uleb32(s);
        for (std::uint32_t i = 0; i < n; ++i) {
          DataSegment seg;
          seg.memory_index = read_uleb32(s);
          if (static_cast<Opcode>(s.u8()) != Opcode::I32Const) {
            throw DecodeError("data offset must be i32.const");
          }
          seg.offset = static_cast<std::uint32_t>(read_sleb(s, 32));
          if (static_cast<Opcode>(s.u8()) != Opcode::End) {
            throw DecodeError("data offset missing end");
          }
          const auto len = read_uleb32(s);
          const auto bytes = s.bytes(len);
          seg.bytes.assign(bytes.begin(), bytes.end());
          m.data.push_back(std::move(seg));
        }
        break;
      }
      default:
        throw DecodeError("unknown section id " + std::to_string(section_id));
    }
    if (section_id != 0 && !s.eof()) {
      throw DecodeError("trailing bytes in section " +
                        std::to_string(section_id));
    }
  }

  if (!func_type_indices.empty() && m.functions.empty()) {
    throw DecodeError("function section without code section");
  }
  return m;
}

}  // namespace wasai::wasm
