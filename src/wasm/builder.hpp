// Programmatic module construction. The corpus generator uses this to emit
// contracts in the shapes the EOSIO C++ SDK produces (dispatcher +
// call_indirect + deserializer + action functions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wasm/module.hpp"

namespace wasai::wasm {

/// Builds a Module incrementally. Function imports must all be registered
/// before the first defined function so the function index space stays
/// stable (imports occupy the low indices).
class ModuleBuilder {
 public:
  /// Import a function; returns its function-space index.
  std::uint32_t import_func(const std::string& module,
                            const std::string& field, const FuncType& type);

  /// Declare a defined function (body set later via set_body); returns its
  /// function-space index. Forward declarations enable recursion.
  std::uint32_t declare_func(const FuncType& type, const std::string& name = "");

  /// Attach locals and body to a previously declared function.
  void set_body(std::uint32_t func_index, std::vector<ValType> locals,
                std::vector<Instr> body);

  /// Declare + define in one call.
  std::uint32_t add_func(const FuncType& type, std::vector<ValType> locals,
                         std::vector<Instr> body,
                         const std::string& name = "");

  void export_func(const std::string& name, std::uint32_t func_index);

  /// Single linear memory with `min_pages` initial pages.
  void add_memory(std::uint32_t min_pages, std::uint32_t max_pages = 0);

  /// Single funcref table of the given size.
  void add_table(std::uint32_t size);

  /// Element segment at constant offset.
  void add_elem(std::uint32_t offset, std::vector<std::uint32_t> funcs);

  /// Returns the global index.
  std::uint32_t add_global(ValType type, bool mutable_, std::uint64_t init);

  void add_data(std::uint32_t offset, std::vector<std::uint8_t> bytes);

  [[nodiscard]] const Module& module() const { return m_; }

  /// Index for a signature in the type section (adding it if new). Useful
  /// when emitting call_indirect.
  std::uint32_t type_index(const FuncType& type) {
    return m_.type_index_for(type);
  }
  [[nodiscard]] Module build() &&;

 private:
  Module m_;
  bool sealed_imports_ = false;
};

/// Concatenate instruction sequences (corpus templates compose with this).
std::vector<Instr> concat(std::initializer_list<std::vector<Instr>> parts);

}  // namespace wasai::wasm
