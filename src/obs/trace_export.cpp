#include "obs/trace_export.hpp"

#include <map>
#include <vector>

namespace wasai::obs {

namespace {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json num(double v) { return Json(v); }
Json num(std::uint64_t v) { return Json(static_cast<double>(v)); }

JsonObject event_common(const char* ph, double ts_us, std::uint32_t tid) {
  JsonObject ev;
  ev.emplace("cat", Json(std::string("wasai")));
  ev.emplace("ph", Json(std::string(ph)));
  ev.emplace("ts", num(ts_us));
  ev.emplace("pid", num(1.0));
  ev.emplace("tid", num(static_cast<double>(tid)));
  return ev;
}

}  // namespace

Json chrome_trace_json(const Registry& registry) {
  JsonArray events;
  for (const Obs* track : registry.tracks()) {
    // thread_name metadata gives each worker a labeled Perfetto track.
    JsonObject meta = event_common("M", 0, track->tid());
    meta.emplace("name", Json(std::string("thread_name")));
    JsonObject meta_args;
    meta_args.emplace("name", Json(track->label()));
    meta.emplace("args", Json(std::move(meta_args)));
    events.emplace_back(std::move(meta));

    for (const TraceEvent& ev : track->events()) {
      JsonObject out = event_common(
          ev.phase == EventPhase::Begin ? "B" : "E", ev.ts_us, track->tid());
      out.emplace("name", Json(std::string(ev.name)));
      if (!ev.arg.empty()) {
        JsonObject args;
        args.emplace("id", Json(ev.arg));
        out.emplace("args", Json(std::move(args)));
      }
      events.emplace_back(std::move(out));
    }
  }
  JsonObject doc;
  doc.emplace("traceEvents", Json(std::move(events)));
  doc.emplace("displayTimeUnit", Json(std::string("ms")));
  return Json(std::move(doc));
}

Json phase_totals_json(const PhaseTotals& totals) {
  JsonObject phases;
  for (const auto& [name, stat] : totals) {
    JsonObject entry;
    entry.emplace("count", num(stat.count));
    entry.emplace("total_ms", num(stat.total_us / 1000.0));
    entry.emplace("self_ms", num(stat.self_us / 1000.0));
    phases.emplace(name, Json(std::move(entry)));
  }
  return Json(std::move(phases));
}

Json metrics_json(const Registry& registry) {
  JsonObject out;
  out.emplace("phases", phase_totals_json(registry.aggregate_all()));

  JsonObject counters;
  for (const auto& [name, counter] : registry.counters()) {
    counters.emplace(name, num(counter->value()));
  }
  out.emplace("counters", Json(std::move(counters)));

  JsonObject histograms;
  for (const auto& [name, histogram] : registry.histograms()) {
    JsonObject entry;
    entry.emplace("count", num(histogram->count()));
    entry.emplace("total_ms", num(histogram->total_us() / 1000.0));
    entry.emplace("max_us", num(histogram->max_us()));
    JsonArray buckets;  // sparse: only non-empty buckets, as [le_us, count]
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count = histogram->bucket(i);
      if (count == 0) continue;
      JsonArray pair;
      pair.emplace_back(num(static_cast<double>(
          std::min(Histogram::bucket_upper_us(i),
                   static_cast<std::uint64_t>(1) << 53))));
      pair.emplace_back(num(count));
      buckets.emplace_back(std::move(pair));
    }
    entry.emplace("buckets", Json(std::move(buckets)));
    histograms.emplace(name, Json(std::move(entry)));
  }
  out.emplace("histograms", Json(std::move(histograms)));
  return Json(std::move(out));
}

std::optional<std::string> validate_chrome_trace(const util::Json& doc) {
  if (!doc.is_object()) return "document is not an object";
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing traceEvents array";
  }

  struct TrackState {
    std::vector<std::string> open;  // span-name stack
    double last_ts = 0;
  };
  std::map<double, TrackState> tracks;

  std::size_t index = 0;
  for (const Json& ev : events->as_array()) {
    const std::string at = "event " + std::to_string(index++);
    if (!ev.is_object()) return at + ": not an object";
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    const Json* ts = ev.find("ts");
    const Json* pid = ev.find("pid");
    const Json* tid = ev.find("tid");
    if (name == nullptr || !name->is_string()) return at + ": missing name";
    if (ph == nullptr || !ph->is_string()) return at + ": missing ph";
    if (ts == nullptr || !ts->is_number()) return at + ": missing ts";
    if (pid == nullptr || !pid->is_number()) return at + ": missing pid";
    if (tid == nullptr || !tid->is_number()) return at + ": missing tid";

    const std::string& phase = ph->as_string();
    if (phase == "M") continue;  // metadata (thread_name etc.)
    if (phase != "B" && phase != "E") {
      return at + ": unexpected ph '" + phase + "'";
    }
    if (!is_known_span(name->as_string())) {
      return at + ": unknown span name '" + name->as_string() + "'";
    }

    TrackState& track = tracks[tid->as_number()];
    if (ts->as_number() < track.last_ts) {
      return at + ": timestamp moved backwards on tid " +
             std::to_string(tid->as_number());
    }
    track.last_ts = ts->as_number();
    if (phase == "B") {
      track.open.push_back(name->as_string());
    } else {
      if (track.open.empty()) {
        return at + ": E event '" + name->as_string() + "' with no open span";
      }
      if (track.open.back() != name->as_string()) {
        return at + ": E event '" + name->as_string() +
               "' does not match open span '" + track.open.back() + "'";
      }
      track.open.pop_back();
    }
  }
  for (const auto& [tid, track] : tracks) {
    if (!track.open.empty()) {
      return "tid " + std::to_string(tid) + " ends with unclosed span '" +
             track.open.back() + "'";
    }
  }
  return std::nullopt;
}

}  // namespace wasai::obs
