// Exporters for the observability Registry:
//  * chrome_trace_json — Trace Event Format (B/E duration events, one
//    track per registered worker) loadable in chrome://tracing and
//    Perfetto;
//  * metrics_json / phase_totals_json — the aggregated `obs` block merged
//    into the campaign JSONL and the `wasai` summary;
//  * validate_chrome_trace — the schema gate CI runs on emitted traces
//    (matching B/E pairs per thread, monotonic timestamps, the fixed span
//    vocabulary).
#pragma once

#include <optional>
#include <string>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace wasai::obs {

/// Chrome trace-event document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
/// Every span becomes a B/E pair on its track's tid; tracks carry
/// thread_name metadata events. Timestamps are microseconds since the
/// registry epoch (the Trace Event Format's native unit).
util::Json chrome_trace_json(const Registry& registry);

/// Aggregated metrics block: per-phase totals over every track plus every
/// counter and histogram. Shape:
///   {"phases":{name:{"count","total_ms","self_ms"}},
///    "counters":{name:value},
///    "histograms":{name:{"count","total_ms","max_ms","buckets":[[le_us,n]..]}}}
util::Json metrics_json(const Registry& registry);

/// Just the per-phase totals (the per-contract JSONL `obs` block).
util::Json phase_totals_json(const PhaseTotals& totals);

/// Validate a parsed Chrome trace document. Checks: traceEvents array is
/// present; every event carries name/ph/ts/pid/tid; per tid the B/E events
/// nest properly (LIFO name matching, nothing left open), timestamps are
/// monotonically non-decreasing, and every duration-event name is in the
/// span vocabulary. Returns std::nullopt on success, else a description of
/// the first violation.
std::optional<std::string> validate_chrome_trace(const util::Json& doc);

}  // namespace wasai::obs
