// Unified observability layer: RAII phase spans, monotonic counters and
// log2-bucket latency histograms behind one per-campaign Registry. The
// paper's evaluation (Tables 4-6, Fig. 3) is a cost-breakdown argument —
// where fuzzing time goes across instrumentation, VM replay, symbolic
// state building and Z3 solving — and this layer is the measurement
// substrate every perf PR shares for before/after claims.
//
// Structure:
//  * Registry  — thread-safe owner of tracks, counters and histograms.
//                One per campaign (or per CLI invocation); all exports
//                (Chrome trace JSON, metrics blocks) read from it.
//  * Obs       — one per-thread *track* handle, created by
//                Registry::track(). Span begin/end events append to its
//                private log (single-writer, no lock on the hot path);
//                counter/histogram updates go to the shared registry
//                (atomics, safe from any thread).
//  * Span      — RAII phase marker. Constructing with a null Obs* is a
//                no-op: the runtime kill switch (--no-obs) simply passes
//                nullptr down the pipeline, so the instrumented code paths
//                stay compiled in and the seed streams stay byte-identical
//                whether observability is on or off.
//
// The span-name vocabulary is fixed (see span_name below and DESIGN.md);
// the Chrome-trace validator rejects events outside it, which keeps the
// per-phase breakdown comparable across PRs.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wasai::obs {

/// The fixed span vocabulary. Every phase the pipeline times is one of
/// these; the trace validator and the per-phase JSONL block both key on
/// them. Names are static strings so events can store bare pointers.
namespace span_name {
inline constexpr const char* kContract = "contract";      // one analyze()
inline constexpr const char* kLoad = "load";              // file read + ABI
inline constexpr const char* kInit = "init";              // harness build
inline constexpr const char* kStaticAnalyze = "static_analyze";  // pre-analysis
inline constexpr const char* kDecode = "decode";          // wasm::decode
inline constexpr const char* kInstrument = "instrument";  // hook injection
inline constexpr const char* kDeploy = "deploy";          // chain set_code
inline constexpr const char* kFuzz = "fuzz";              // the fuzz loop
inline constexpr const char* kExecute = "execute";        // one transaction
inline constexpr const char* kOracleScan = "oracle_scan"; // §3.5 detectors
inline constexpr const char* kReplay = "replay";          // symbolic replay
inline constexpr const char* kSolve = "solve_flips";      // Z3 flip solving
}  // namespace span_name

/// All vocabulary names, for validators and docs.
const std::vector<std::string>& span_vocabulary();
bool is_known_span(std::string_view name);

enum class EventPhase : std::uint8_t { Begin, End };

/// One half of a span. `name` must point at a static-duration string (the
/// vocabulary constants). Per-track logs are append-only in program order,
/// so B/E pairs are properly nested and timestamps are monotonic per track
/// by construction.
struct TraceEvent {
  const char* name = nullptr;
  EventPhase phase = EventPhase::Begin;
  double ts_us = 0;  // microseconds since the registry epoch
  std::string arg;   // optional annotation (e.g. contract id), Begin only
};

/// Monotonic counter. Updates are relaxed atomics — totals are exact once
/// writers are quiescent (post-join), which is when exports run.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucket latency histogram over microseconds. Bucket b counts
/// observations with floor(log2(us)) == b-1 (bucket 0: us < 1), so 48
/// buckets cover sub-microsecond through multi-hour latencies.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void observe_us(double us);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_us() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  [[nodiscard]] std::uint64_t max_us() const {
    return max_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i in microseconds (last bucket
  /// unbounded).
  static std::uint64_t bucket_upper_us(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Aggregated per-phase wall time over one span-log slice.
struct PhaseStat {
  std::uint64_t count = 0;
  double total_us = 0;  // inclusive (children counted)
  double self_us = 0;   // exclusive (children subtracted)
};
using PhaseTotals = std::map<std::string, PhaseStat>;

class Registry;

/// Per-thread track handle threaded down the pipeline (decoder,
/// instrumenter, chain, replayer, solver). Span events are single-writer:
/// only the owning thread may begin/end spans; counters and histograms
/// forward to the shared registry and are safe from any thread (the
/// parallel solver's workers use them without owning a track).
class Obs {
 public:
  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] Registry& registry() const { return *registry_; }

  /// Quarantine this track: the campaign watchdog calls this when it
  /// abandons a wedged worker thread. The zombie thread may keep appending
  /// span events (single-writer still holds — it IS the writer), so
  /// exporters must no longer read the log; Registry::tracks() filters
  /// abandoned tracks out, which also keeps the exported traces' telescoping
  /// self-time invariant intact (an abandoned log can end mid-span).
  void abandon() { abandoned_.store(true, std::memory_order_release); }
  [[nodiscard]] bool abandoned() const {
    return abandoned_.load(std::memory_order_acquire);
  }

  void begin(const char* name, std::string arg = {});
  void end(const char* name);

  /// Shared-registry metric updates (thread-safe).
  void count(const std::string& name, std::uint64_t delta = 1);
  void latency_us(const std::string& name, double us);

  /// Microseconds since the registry epoch (monotonic clock).
  [[nodiscard]] double now_us() const;

  /// Bookmark the event log; aggregate_since() folds the slice written
  /// after the bookmark into per-phase totals (used for the per-contract
  /// `obs` JSONL block). The slice must contain balanced B/E pairs, which
  /// RAII spans guarantee even on exception unwind.
  [[nodiscard]] std::size_t mark() const { return events_.size(); }
  [[nodiscard]] PhaseTotals aggregate_since(std::size_t mark) const;

 private:
  friend class Registry;
  Obs(Registry* registry, std::uint32_t tid, std::string label)
      : registry_(registry), tid_(tid), label_(std::move(label)) {}

  Registry* registry_;
  std::uint32_t tid_;
  std::string label_;
  std::vector<TraceEvent> events_;
  std::atomic<bool> abandoned_{false};
};

/// RAII phase span. A null `obs` makes every operation a no-op — the
/// kill-switch contract: identical control flow, zero recorded state.
class Span {
 public:
  Span(Obs* obs, const char* name, std::string arg = {}) : obs_(obs),
                                                           name_(name) {
    if (obs_ != nullptr) {
      begin_us_ = obs_->now_us();
      obs_->begin(name_, std::move(arg));
    }
  }
  ~Span() {
    if (obs_ != nullptr) obs_->end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Microseconds since construction (0 when disabled).
  [[nodiscard]] double elapsed_us() const {
    return obs_ != nullptr ? obs_->now_us() - begin_us_ : 0;
  }

 private:
  Obs* obs_;
  const char* name_;
  double begin_us_ = 0;
};

/// Thread-safe owner of every track, counter and histogram of one campaign
/// (or one CLI run). Track creation and metric registration take a mutex;
/// span recording and metric updates do not.
class Registry {
 public:
  Registry();

  /// Create a new track (one per worker thread). The returned handle is
  /// owned by the registry and valid for its lifetime.
  Obs& track(std::string label);

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Microseconds since the registry epoch (monotonic clock).
  [[nodiscard]] double now_us() const;

  // Snapshot access for exporters. Tracks' event logs must be quiescent
  // (workers joined); counters/histograms are always safe to read.
  [[nodiscard]] std::vector<const Obs*> tracks() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>>
  histograms() const;

  /// Per-phase totals over every track's full log (campaign-level rollup).
  [[nodiscard]] PhaseTotals aggregate_all() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Obs>> tracks_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Fold `totals` from a balanced event slice [begin, end).
PhaseTotals aggregate_events(const std::vector<TraceEvent>& events,
                             std::size_t begin, std::size_t end);

/// Merge per-contract totals into a campaign rollup.
void merge_totals(PhaseTotals& into, const PhaseTotals& from);

}  // namespace wasai::obs
