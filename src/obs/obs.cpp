#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace wasai::obs {

const std::vector<std::string>& span_vocabulary() {
  static const std::vector<std::string> kNames = {
      span_name::kContract,      span_name::kLoad,
      span_name::kInit,          span_name::kStaticAnalyze,
      span_name::kDecode,        span_name::kInstrument,
      span_name::kDeploy,        span_name::kFuzz,
      span_name::kExecute,       span_name::kOracleScan,
      span_name::kReplay,        span_name::kSolve,
  };
  return kNames;
}

bool is_known_span(std::string_view name) {
  const auto& vocab = span_vocabulary();
  return std::find(vocab.begin(), vocab.end(), name) != vocab.end();
}

void Histogram::observe_us(double us) {
  if (us < 0 || !std::isfinite(us)) us = 0;
  const auto v = static_cast<std::uint64_t>(us);
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(v), kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<std::uint64_t>(us * 1000.0),
                      std::memory_order_relaxed);
  std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_us_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_upper_us(std::size_t i) {
  if (i == 0) return 0;  // us < 1
  if (i >= kBuckets - 1) return ~0ull;
  return (1ull << i) - 1;
}

void Obs::begin(const char* name, std::string arg) {
  events_.push_back(TraceEvent{name, EventPhase::Begin, registry_->now_us(),
                               std::move(arg)});
}

void Obs::end(const char* name) {
  events_.push_back(TraceEvent{name, EventPhase::End, registry_->now_us(), {}});
}

void Obs::count(const std::string& name, std::uint64_t delta) {
  registry_->counter(name).add(delta);
}

void Obs::latency_us(const std::string& name, double us) {
  registry_->histogram(name).observe_us(us);
}

double Obs::now_us() const { return registry_->now_us(); }

PhaseTotals Obs::aggregate_since(std::size_t mark) const {
  return aggregate_events(events_, mark, events_.size());
}

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

Obs& Registry::track(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto tid = static_cast<std::uint32_t>(tracks_.size() + 1);
  tracks_.push_back(
      std::unique_ptr<Obs>(new Obs(this, tid, std::move(label))));
  return *tracks_.back();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

double Registry::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<const Obs*> Registry::tracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Obs*> out;
  out.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    // Abandoned tracks belong to watchdog-abandoned zombie threads that may
    // still be appending events; reading them would race, so exporters
    // never see them.
    if (t->abandoned()) continue;
    out.push_back(t.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

PhaseTotals Registry::aggregate_all() const {
  PhaseTotals totals;
  for (const Obs* track : tracks()) {
    merge_totals(totals, track->aggregate_since(0));
  }
  return totals;
}

PhaseTotals aggregate_events(const std::vector<TraceEvent>& events,
                             std::size_t begin, std::size_t end) {
  PhaseTotals totals;
  // Stack walk: self time = inclusive duration minus the inclusive
  // durations of direct children.
  struct Frame {
    const char* name;
    double begin_us;
    double child_us = 0;
  };
  std::vector<Frame> stack;
  for (std::size_t i = begin; i < end && i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.phase == EventPhase::Begin) {
      stack.push_back(Frame{ev.name, ev.ts_us});
      continue;
    }
    if (stack.empty()) continue;  // unbalanced tail: ignore the stray End
    const Frame frame = stack.back();
    stack.pop_back();
    const double dur = ev.ts_us - frame.begin_us;
    PhaseStat& stat = totals[frame.name];
    ++stat.count;
    stat.total_us += dur;
    stat.self_us += dur - frame.child_us;
    if (!stack.empty()) {
      stack.back().child_us += dur;
    }
  }
  return totals;
}

void merge_totals(PhaseTotals& into, const PhaseTotals& from) {
  for (const auto& [name, stat] : from) {
    PhaseStat& slot = into[name];
    slot.count += stat.count;
    slot.total_us += stat.total_us;
    slot.self_us += stat.self_us;
  }
}

}  // namespace wasai::obs
