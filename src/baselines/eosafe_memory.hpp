// EOSAFE's memory model (§3.2-C2): a mapping list of (address expression,
// value) pairs. Every load linearly scans the list to merge overlapping
// writes — the behaviour the paper identifies as the throughput bottleneck
// its concrete-address model replaces. Kept faithful here both for the
// EOSAFE baseline and for the memory-model ablation bench.
#pragma once

#include <vector>

#include "symbolic/symvalue.hpp"

namespace wasai::baselines {

class EosafeMemory {
 public:
  explicit EosafeMemory(symbolic::Z3Env& env) : env_(&env) {}

  /// Record a store of `size_bytes` at the (possibly symbolic) address.
  void store(const z3::expr& addr, const z3::expr& value,
             unsigned size_bytes);

  /// Load by scanning the write list newest-to-oldest for a syntactically
  /// matching address; unknown locations produce fresh variables.
  symbolic::SymValue load(const z3::expr& addr, unsigned size_bytes,
                          bool sign_extend, wasm::ValType result_type);

  [[nodiscard]] std::size_t entries() const { return writes_.size(); }

 private:
  struct Entry {
    z3::expr addr;
    unsigned size;
    z3::expr value;
  };

  symbolic::Z3Env* env_;
  std::vector<Entry> writes_;
};

}  // namespace wasai::baselines
