// Behavioural reproduction of EOSAFE (He et al., USENIX Security 2021),
// the static symbolic-execution baseline:
//   * a dispatcher pattern heuristic locates action functions — it only
//     recognises the standard SDK idiom (action compare + call_indirect),
//     so diverse dispatchers and obfuscation prologues defeat it (§4.2);
//   * per-action bounded symbolic execution over a list-based memory model;
//   * Fake Notif treats budget exhaustion as VULNERABLE (high recall, low
//     precision);
//   * Rollback is satisfiability-blind: any send_inline call flags the
//     contract, even behind unsatisfiable branches (50.5% precision);
//   * BlockinfoDep is not supported.
#pragma once

#include <optional>
#include <set>

#include "abi/abi_def.hpp"
#include "util/bytes.hpp"
#include "scanner/scanner.hpp"
#include "wasm/module.hpp"

namespace wasai::baselines {

struct EosafeOptions {
  std::size_t step_budget = 2500;   // total symbolic steps per contract
  std::size_t path_budget = 64;     // max completed paths per function
  unsigned solver_timeout_ms = 20;  // per feasibility query
};

struct EosafeReport {
  std::set<scanner::VulnType> found;
  bool dispatcher_matched = false;
  bool timed_out = false;

  [[nodiscard]] bool has(scanner::VulnType t) const {
    return found.contains(t);
  }
};

/// One dispatcher match: an action the heuristic could locate.
struct DispatchEntry {
  std::uint64_t action_name = 0;
  std::uint32_t func_index = 0;
  bool has_code_guard = false;  // a code == eosio.token check was seen
};

/// Exposed for unit tests: run only the dispatcher pattern heuristic.
std::vector<DispatchEntry> match_dispatcher(const wasm::Module& module);

class Eosafe {
 public:
  Eosafe(const util::Bytes& contract_wasm, abi::Abi abi,
         EosafeOptions options = {});

  EosafeReport run();

 private:
  EosafeOptions options_;
  wasm::Module module_;
  abi::Abi abi_;
};

}  // namespace wasai::baselines
