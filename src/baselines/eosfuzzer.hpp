// Behavioural reproduction of EOSFuzzer (Huang et al. 2020), the blind
// fuzzing baseline of the paper's evaluation: random seeds, no feedback,
// and the oracle flaws §4.2/§4.3 document —
//   * Fake EOS is flagged whenever ANY victim action executes successfully
//     after a counterfeit transfer (honeypot false positives), and also
//     whenever NO transaction of the whole campaign succeeded (the flaw
//     that collapses its precision to 50% under complicated verification);
//   * Fake Notif needs the forged notification to land AND a side effect
//     to be observed — random seeds rarely get that deep;
//   * MissAuth and Rollback have no oracle at all ("-" in the tables).
#pragma once

#include "engine/harness.hpp"
#include "engine/fuzzer.hpp"
#include "engine/mutator.hpp"
#include "scanner/scanner.hpp"

namespace wasai::baselines {

struct EosFuzzerOptions {
  int iterations = 48;
  std::uint64_t rng_seed = 1;
};

struct EosFuzzerReport {
  std::set<scanner::VulnType> found;
  std::size_t distinct_branches = 0;
  std::vector<engine::CoveragePoint> curve;
  std::size_t transactions = 0;
  bool any_success = false;

  [[nodiscard]] bool has(scanner::VulnType t) const {
    return found.contains(t);
  }
};

class EosFuzzer {
 public:
  EosFuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
            EosFuzzerOptions options = {});

  EosFuzzerReport run();

 private:
  EosFuzzerOptions options_;
  engine::ChainHarness harness_;
  engine::Mutator mutator_;
  std::vector<abi::Name> actions_;
};

}  // namespace wasai::baselines
