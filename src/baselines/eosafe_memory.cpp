#include "baselines/eosafe_memory.hpp"

namespace wasai::baselines {

using symbolic::SymValue;

void EosafeMemory::store(const z3::expr& addr, const z3::expr& value,
                         unsigned size_bytes) {
  writes_.push_back(Entry{addr.simplify(), size_bytes, value});
}

SymValue EosafeMemory::load(const z3::expr& addr, unsigned size_bytes,
                            bool sign_extend, wasm::ValType result_type) {
  const unsigned target_bits =
      (result_type == wasm::ValType::I32 || result_type == wasm::ValType::F32)
          ? 32
          : 64;
  const z3::expr key = addr.simplify();
  // Newest-to-oldest scan; syntactic equality is EOSAFE's match criterion
  // (aliasing through distinct expressions stays unresolved until the
  // solver runs — exactly the imprecision §3.2 describes).
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
    if (it->size == size_bytes && z3::eq(it->addr, key)) {
      z3::expr value = it->value;
      const unsigned have = value.get_sort().bv_size();
      if (have > target_bits) {
        value = value.extract(target_bits - 1, 0);
      } else if (have < target_bits) {
        value = sign_extend ? z3::sext(value, target_bits - have)
                            : z3::zext(value, target_bits - have);
      }
      return SymValue{result_type, value.simplify()};
    }
  }
  return SymValue{result_type, env_->fresh("eosafe_mem", target_bits)};
}

}  // namespace wasai::baselines
