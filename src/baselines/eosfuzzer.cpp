#include "baselines/eosfuzzer.hpp"

#include <chrono>
#include <unordered_set>

#include "scanner/facts.hpp"

namespace wasai::baselines {

using engine::Seed;
using scanner::PayloadMode;
using scanner::VulnType;

namespace {

std::vector<abi::Name> account_pool(const engine::HarnessNames& names) {
  return {names.attacker, names.victim, names.token, names.fake_token,
          names.fake_notif};
}

/// Did the victim perform a side effect in this trace (the profit evidence
/// EOSFuzzer's Fake Notif oracle looks for)?
bool has_side_effect(const scanner::TraceFacts& facts) {
  return facts.called_api("db_store_i64") ||
         facts.called_api("db_update_i64") ||
         facts.called_api("db_remove_i64") ||
         facts.called_api("send_inline");
}

}  // namespace

EosFuzzer::EosFuzzer(const util::Bytes& contract_wasm, abi::Abi abi,
                     EosFuzzerOptions options)
    : options_(options),
      harness_(contract_wasm, std::move(abi), engine::HarnessNames{}),
      mutator_(util::Rng(options.rng_seed),
               account_pool(harness_.names())) {
  for (const auto& def : harness_.contract_abi().actions) {
    actions_.push_back(def.name);
  }
}

EosFuzzerReport EosFuzzer::run() {
  EosFuzzerReport report;
  const auto start = std::chrono::steady_clock::now();
  std::unordered_set<std::uint64_t> branches;
  static const abi::ActionDef kTransferDef = abi::transfer_action_def();

  std::size_t rotation = 0;
  for (int i = 0; i < options_.iterations; ++i) {
    // Same payload schedule as WASAI's Engine, but seeds are pure random —
    // EOSFuzzer has no feedback phase.
    PayloadMode mode;
    switch (i % 6) {
      case 0:
        mode = PayloadMode::ValidTransfer;
        break;
      case 1:
        mode = PayloadMode::DirectFakeEos;
        break;
      case 2:
        mode = PayloadMode::FakeTokenTransfer;
        break;
      case 3:
        mode = PayloadMode::FakeNotifForward;
        break;
      default:
        mode = PayloadMode::Normal;
        break;
    }

    Seed seed;
    if (mode == PayloadMode::Normal && !actions_.empty()) {
      const abi::Name action = actions_[rotation++ % actions_.size()];
      const abi::ActionDef* def = harness_.contract_abi().find(action);
      seed = mutator_.random_seed(def != nullptr ? *def : kTransferDef);
    } else {
      seed = mutator_.random_seed(kTransferDef);
    }

    chain::TxResult result;
    switch (mode) {
      case PayloadMode::ValidTransfer:
        result = harness_.run_valid_transfer(seed);
        break;
      case PayloadMode::DirectFakeEos:
        result = harness_.run_direct_fake_eos(seed);
        break;
      case PayloadMode::FakeTokenTransfer:
        result = harness_.run_fake_token_transfer(seed);
        break;
      case PayloadMode::FakeNotifForward:
        result = harness_.run_fake_notif_forward(seed);
        break;
      case PayloadMode::Normal:
        result = harness_.run_normal(seed);
        break;
    }
    ++report.transactions;
    report.any_success |= result.success;

    for (const auto* trace : harness_.victim_traces()) {
      const auto facts = scanner::extract_facts(*trace, harness_.sites(),
                                                harness_.original());
      // Fake EOS: ANY successful victim execution after fake tokens.
      if (result.success && (mode == PayloadMode::DirectFakeEos ||
                             mode == PayloadMode::FakeTokenTransfer)) {
        report.found.insert(VulnType::FakeEos);
      }
      // Fake Notif: the forged notification landed with a side effect.
      if (result.success && mode == PayloadMode::FakeNotifForward &&
          has_side_effect(facts)) {
        report.found.insert(VulnType::FakeNotif);
      }
      // BlockinfoDep: same API oracle as WASAI — the difference is that
      // random seeds rarely reach the tapos call.
      if (facts.called_api("tapos_block_num") ||
          facts.called_api("tapos_block_prefix")) {
        report.found.insert(VulnType::BlockinfoDep);
      }
    }

    harness_.accumulate_branches(branches);
    report.curve.push_back(engine::CoveragePoint{
        i,
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count(),
        branches.size()});
  }

  // The documented oracle flaw: a campaign where nothing ever executed
  // successfully is reported as Fake EOS-positive.
  if (!report.any_success) report.found.insert(VulnType::FakeEos);

  report.distinct_branches = branches.size();
  return report;
}

}  // namespace wasai::baselines
