#include "baselines/eosafe.hpp"

#include <deque>

#include "baselines/eosafe_memory.hpp"
#include "symbolic/ops.hpp"
#include "wasm/control.hpp"
#include "wasm/decoder.hpp"

namespace wasai::baselines {

namespace {

using scanner::VulnType;
using symbolic::SymValue;
using symbolic::Z3Env;
using wasm::FuncType;
using wasm::Instr;
using wasm::kNoMatch;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

bool contains_var(const z3::expr& e, const std::string& name) {
  if (e.is_numeral()) return false;
  if (e.is_const()) return e.decl().name().str() == name;
  for (unsigned i = 0; i < e.num_args(); ++i) {
    if (contains_var(e.arg(i), name)) return true;
  }
  return false;
}

std::vector<std::uint32_t> table_image(const Module& m) {
  std::vector<std::uint32_t> table;
  if (!m.tables.empty()) table.assign(m.tables[0].limits.min, kNoMatch);
  for (const auto& seg : m.elements) {
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
      if (seg.offset + i < table.size()) {
        table[seg.offset + i] = seg.func_indices[i];
      }
    }
  }
  return table;
}

struct SeCtrl {
  std::uint32_t opener;
  std::uint32_t end_idx;
  bool is_loop;
  std::size_t height;
  std::uint8_t arity;
};

struct SeState {
  std::uint32_t pc = 0;
  std::vector<SymValue> stack;
  std::vector<SymValue> locals;
  std::vector<SeCtrl> ctrls;
  std::vector<z3::expr> constraints;
  EosafeMemory mem;
  bool auth_seen = false;

  explicit SeState(Z3Env& env) : mem(env) {}
};

void shrink_to(std::vector<SymValue>& v, std::size_t n) {
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(n), v.end());
}

/// Bounded DFS symbolic executor over a single function body.
class SeExplorer {
 public:
  SeExplorer(Z3Env& env, const Module& module, std::uint32_t func_index,
             const EosafeOptions& options, std::size_t& steps_used)
      : env_(env),
        module_(module),
        fn_(module.defined(func_index)),
        cmap_(wasm::analyze_control(fn_.body)),
        options_(options),
        steps_used_(steps_used),
        solver_(env.ctx()) {
    z3::params p(env.ctx());
    p.set("timeout", options.solver_timeout_ms);
    solver_.set(p);
  }

  void explore(std::vector<SymValue> params) {
    SeState init(env_);
    init.locals = std::move(params);
    for (const auto t : fn_.locals) {
      init.locals.push_back(SymValue{
          t, env_.bv(0, (t == ValType::I32 || t == ValType::F32) ? 32 : 64)});
    }
    worklist_.push_back(std::move(init));

    while (!worklist_.empty()) {
      if (steps_used_ >= options_.step_budget ||
          completed_paths_ >= options_.path_budget) {
        timed_out = true;
        return;
      }
      SeState state = std::move(worklist_.back());
      worklist_.pop_back();
      run_path(std::move(state));
    }
  }

  bool guard_found = false;          // i64 eq/ne over (to, self)
  bool effect_without_auth = false;  // MissAuth evidence
  bool timed_out = false;

 private:
  void run_path(SeState s) {
    for (;;) {
      if (++steps_used_ > options_.step_budget) {
        timed_out = true;
        return;
      }
      if (s.pc >= fn_.body.size()) break;
      if (!step(s)) break;
    }
    ++completed_paths_;
  }

  /// Returns false when the path ended (return/end/trap/prune).
  bool step(SeState& s) {
    const Instr& ins = fn_.body[s.pc];
    const auto& info = wasm::op_info(ins.op);
    switch (ins.op) {
      case Opcode::Nop:
        ++s.pc;
        return true;
      case Opcode::Unreachable:
        return false;
      case Opcode::Block:
      case Opcode::Loop:
        s.ctrls.push_back(SeCtrl{s.pc, cmap_.end_idx[s.pc],
                                 ins.op == Opcode::Loop, s.stack.size(),
                                 arity(ins)});
        ++s.pc;
        return true;
      case Opcode::If: {
        const SymValue cond = pop(s);
        const auto end = cmap_.end_idx[s.pc];
        const auto els = cmap_.else_idx[s.pc];
        const auto enter_then = [&](SeState& st) {
          st.ctrls.push_back(
              SeCtrl{st.pc, end, false, st.stack.size(), arity(ins)});
          ++st.pc;
        };
        const auto enter_else = [&](SeState& st) {
          if (els != kNoMatch) {
            st.ctrls.push_back(
                SeCtrl{st.pc, end, false, st.stack.size(), arity(ins)});
            st.pc = els + 1;
          } else {
            st.pc = end + 1;
          }
        };
        if (cond.is_concrete()) {
          if (cond.concrete().value() != 0) {
            enter_then(s);
          } else {
            enter_else(s);
          }
          return true;
        }
        // Fork: queue the else side, continue with the then side.
        SeState other = s;
        other.constraints.push_back(!env_.truthy(cond.e));
        enter_else(other);
        if (feasible(other)) worklist_.push_back(std::move(other));
        s.constraints.push_back(env_.truthy(cond.e));
        enter_then(s);
        return feasible(s);
      }
      case Opcode::Else: {
        if (s.ctrls.empty()) return false;
        const SeCtrl c = s.ctrls.back();
        s.ctrls.pop_back();
        s.pc = c.end_idx + 1;
        return true;
      }
      case Opcode::End:
        if (s.ctrls.empty()) return false;  // function end
        s.ctrls.pop_back();
        ++s.pc;
        return true;
      case Opcode::Br:
        return unwind(s, ins.a);
      case Opcode::BrIf: {
        const SymValue cond = pop(s);
        if (cond.is_concrete()) {
          if (cond.concrete().value() != 0) return unwind(s, ins.a);
          ++s.pc;
          return true;
        }
        // Fork: queue the taken side, continue fall-through first (this
        // is what unrolls symbolic-bound loops until the budget dies).
        SeState taken = s;
        taken.constraints.push_back(env_.truthy(cond.e));
        if (feasible(taken) && unwind(taken, ins.a)) {
          worklist_.push_back(std::move(taken));
        }
        s.constraints.push_back(!env_.truthy(cond.e));
        ++s.pc;
        return feasible(s);
      }
      case Opcode::BrTable: {
        const SymValue idx = pop(s);
        std::uint32_t v = 0;
        if (const auto c = idx.concrete()) {
          v = static_cast<std::uint32_t>(*c);
        }
        const std::uint32_t depth =
            v < ins.table.size() ? ins.table[v] : ins.a;
        return unwind(s, depth);
      }
      case Opcode::Return:
        return false;
      case Opcode::Drop:
        pop(s);
        ++s.pc;
        return true;
      case Opcode::Select: {
        const SymValue cond = pop(s);
        const SymValue v2 = pop(s);
        const SymValue v1 = pop(s);
        if (cond.is_concrete()) {
          push(s, cond.concrete().value() != 0 ? v1 : v2);
        } else {
          push(s, SymValue{v1.type,
                           z3::ite(env_.truthy(cond.e), v1.e, v2.e)});
        }
        ++s.pc;
        return true;
      }
      case Opcode::LocalGet:
        push(s, s.locals.at(ins.a));
        ++s.pc;
        return true;
      case Opcode::LocalSet:
        s.locals.at(ins.a) = pop(s);
        ++s.pc;
        return true;
      case Opcode::LocalTee:
        s.locals.at(ins.a) = s.stack.back();
        ++s.pc;
        return true;
      case Opcode::GlobalGet:
        push(s, SymValue{ValType::I64, env_.fresh("se_glob", 64)});
        ++s.pc;
        return true;
      case Opcode::GlobalSet:
        pop(s);
        ++s.pc;
        return true;
      case Opcode::MemorySize:
        push(s, SymValue{ValType::I32, env_.fresh("se_memsz", 32)});
        ++s.pc;
        return true;
      case Opcode::MemoryGrow:
        pop(s);
        push(s, SymValue{ValType::I32, env_.fresh("se_memgrow", 32)});
        ++s.pc;
        return true;
      case Opcode::Call:
        return do_call(s, ins.a);
      case Opcode::CallIndirect: {
        pop(s);  // element index
        const FuncType& ft = module_.types.at(ins.a);
        for (std::size_t k = 0; k < ft.params.size(); ++k) pop(s);
        for (const auto r : ft.results) {
          push(s, fresh_of(r, "se_indirect"));
        }
        ++s.pc;
        return true;
      }
      default:
        break;
    }
    switch (info.cls) {
      case wasm::OpClass::Const: {
        const unsigned bits =
            (info.result == ValType::I32 || info.result == ValType::F32)
                ? 32
                : 64;
        const std::uint64_t v =
            bits == 32 ? static_cast<std::uint32_t>(ins.imm) : ins.imm;
        push(s, SymValue{info.result, env_.bv(v, bits)});
        ++s.pc;
        return true;
      }
      case wasm::OpClass::Load: {
        const SymValue addr = pop(s);
        push(s, s.mem.load(addr.e + env_.bv(ins.b, 32), info.access_bytes,
                           info.sign_extend, info.result));
        ++s.pc;
        return true;
      }
      case wasm::OpClass::Store: {
        const SymValue value = pop(s);
        const SymValue addr = pop(s);
        s.mem.store(addr.e + env_.bv(ins.b, 32), value.e, info.access_bytes);
        ++s.pc;
        return true;
      }
      case wasm::OpClass::Unary: {
        const SymValue x = pop(s);
        push(s, symbolic::sym_unary(env_, ins.op, x));
        ++s.pc;
        return true;
      }
      case wasm::OpClass::Binary: {
        const SymValue rhs = pop(s);
        const SymValue lhs = pop(s);
        if (ins.op == Opcode::I64Eq || ins.op == Opcode::I64Ne) {
          const bool mentions_to = contains_var(lhs.e, "se_to") ||
                                   contains_var(rhs.e, "se_to");
          const bool mentions_self = contains_var(lhs.e, "se_self") ||
                                     contains_var(rhs.e, "se_self");
          if (mentions_to && mentions_self) guard_found = true;
        }
        push(s, symbolic::sym_binary(env_, ins.op, lhs, rhs));
        ++s.pc;
        return true;
      }
      default:
        return false;  // unsupported: abandon the path
    }
  }

  bool do_call(SeState& s, std::uint32_t target) {
    const FuncType& ft = module_.function_type(target);
    if (!module_.is_imported_function(target)) {
      // Defined callee: identity summary for unary helpers (keeps argument
      // taint through obfuscation decoders), fresh values otherwise.
      std::vector<SymValue> args;
      for (std::size_t k = 0; k < ft.params.size(); ++k) {
        args.push_back(pop(s));
      }
      if (ft.params.size() == 1 && ft.results.size() == 1 &&
          ft.params[0] == ft.results[0]) {
        push(s, args[0]);
      } else {
        for (const auto r : ft.results) push(s, fresh_of(r, "se_call"));
      }
      ++s.pc;
      return true;
    }

    const std::string& name = module_.function_import(target).field;
    std::vector<SymValue> args(ft.params.size(),
                               SymValue{ValType::I32, env_.bv(0, 32)});
    for (std::size_t k = ft.params.size(); k-- > 0;) args[k] = pop(s);

    if (name == "eosio_assert") {
      s.constraints.push_back(env_.truthy(args[0].e));
      ++s.pc;
      return feasible(s);
    }
    if (name == "require_auth" || name == "require_auth2") {
      s.auth_seen = true;
    } else if (name == "has_auth") {
      s.auth_seen = true;
    } else if (name == "send_inline" || name == "db_store_i64" ||
               name == "db_update_i64" || name == "db_remove_i64") {
      if (!s.auth_seen) effect_without_auth = true;
    }
    for (const auto r : ft.results) {
      push(s, fresh_of(r, "se_" + name));
    }
    ++s.pc;
    return true;
  }

  bool unwind(SeState& s, std::uint32_t depth) {
    if (depth >= s.ctrls.size()) return false;  // function label: return
    const std::size_t target = s.ctrls.size() - 1 - depth;
    const SeCtrl c = s.ctrls[target];
    if (c.is_loop) {
      s.ctrls.resize(target + 1);
      shrink_to(s.stack, c.height);
      s.pc = c.opener + 1;
    } else {
      for (std::uint8_t i = 0; i < c.arity; ++i) {
        s.stack[c.height + i] = s.stack[s.stack.size() - c.arity + i];
      }
      shrink_to(s.stack, c.height + c.arity);
      s.ctrls.resize(target);
      s.pc = c.end_idx + 1;
    }
    return true;
  }

  bool feasible(const SeState& s) {
    // Only the most recent constraints are checked — EOSAFE-style
    // under-approximation that keeps per-branch query cost bounded (deep
    // paths therefore stay "feasible" and eat budget, feeding the
    // timeout-means-vulnerable rule). The solver is reused via push/pop.
    const std::size_t window = 8;
    const std::size_t begin =
        s.constraints.size() > window ? s.constraints.size() - window : 0;
    solver_.push();
    for (std::size_t i = begin; i < s.constraints.size(); ++i) {
      solver_.add(s.constraints[i]);
    }
    const auto verdict = solver_.check();
    solver_.pop();
    return verdict != z3::unsat;  // unknown counts as feasible
  }

  SymValue fresh_of(ValType t, const std::string& prefix) {
    return SymValue{
        t, env_.fresh(prefix,
                      (t == ValType::I32 || t == ValType::F32) ? 32 : 64)};
  }

  static std::uint8_t arity(const Instr& ins) {
    return ins.a == wasm::kBlockVoid ? 0 : 1;
  }

  void push(SeState& s, SymValue v) { s.stack.push_back(std::move(v)); }

  SymValue pop(SeState& s) {
    if (s.stack.empty()) {
      // Malformed path bookkeeping; treat as an opaque value.
      return SymValue{ValType::I64, env_.fresh("se_underflow", 64)};
    }
    SymValue v = std::move(s.stack.back());
    s.stack.pop_back();
    return v;
  }

  Z3Env& env_;
  const Module& module_;
  const wasm::Function& fn_;
  wasm::ControlMap cmap_;
  const EosafeOptions& options_;
  std::size_t& steps_used_;
  std::vector<SeState> worklist_;
  std::size_t completed_paths_ = 0;
  z3::solver solver_;
};

/// Locate the eosponser by its transfer-shaped signature among the
/// call_indirect targets (works regardless of dispatcher obfuscation).
std::optional<std::uint32_t> locate_eosponser_by_signature(const Module& m) {
  const FuncType transfer_sig{
      {ValType::I64, ValType::I64, ValType::I64, ValType::I32, ValType::I32},
      {}};
  for (const auto f : table_image(m)) {
    if (f == kNoMatch) continue;
    if (m.function_type(f) == transfer_sig) return f;
  }
  return std::nullopt;
}

}  // namespace

std::vector<DispatchEntry> match_dispatcher(const Module& module) {
  const auto apply = module.find_export("apply");
  if (!apply || module.is_imported_function(*apply)) return {};
  const wasm::Function& fn = module.defined(*apply);
  const auto table = table_image(module);
  const std::uint64_t token = abi::name("eosio.token").value();

  std::vector<DispatchEntry> out;
  std::optional<DispatchEntry> cur;
  bool saw_compare = false;

  for (std::size_t i = 0; i < fn.body.size(); ++i) {
    const Instr& ins = fn.body[i];
    // The SDK's apply is loop-free and calls nothing before dispatching.
    if (ins.op == Opcode::Loop) return {};
    if (!saw_compare && ins.op == Opcode::Call &&
        !module.is_imported_function(ins.a)) {
      return {};
    }
    // Window: local.get 2; i64.const C; i64.ne; br_if
    if (i + 3 < fn.body.size() && ins.op == Opcode::LocalGet && ins.a == 2 &&
        fn.body[i + 1].op == Opcode::I64Const &&
        fn.body[i + 2].op == Opcode::I64Ne &&
        fn.body[i + 3].op == Opcode::BrIf) {
      saw_compare = true;
      cur = DispatchEntry{fn.body[i + 1].imm, 0, false};
      continue;
    }
    if (!cur) continue;
    // Code guard: a comparison of `code` (local 1) against eosio.token.
    if (ins.op == Opcode::LocalGet && ins.a == 1 &&
        i + 1 < fn.body.size() && fn.body[i + 1].op == Opcode::I64Const &&
        fn.body[i + 1].imm == token) {
      cur->has_code_guard = true;
    }
    // Target: i32.const j; call_indirect.
    if (ins.op == Opcode::CallIndirect && i > 0 &&
        fn.body[i - 1].op == Opcode::I32Const) {
      const auto elem = static_cast<std::uint32_t>(fn.body[i - 1].imm);
      if (elem < table.size() && table[elem] != kNoMatch) {
        cur->func_index = table[elem];
        out.push_back(*cur);
      }
      cur.reset();
    }
  }
  return out;
}

Eosafe::Eosafe(const util::Bytes& contract_wasm, abi::Abi abi,
               EosafeOptions options)
    : options_(options),
      module_(wasm::decode(contract_wasm)),
      abi_(std::move(abi)) {}

EosafeReport Eosafe::run() {
  EosafeReport report;
  Z3Env env;
  std::size_t steps_used = 0;

  // ---- Rollback: satisfiability-blind send_inline scan -----------------
  for (const auto& fn : module_.functions) {
    for (const auto& ins : fn.body) {
      if (ins.op == Opcode::Call && module_.is_imported_function(ins.a) &&
          module_.function_import(ins.a).field == "send_inline") {
        report.found.insert(VulnType::Rollback);
      }
    }
  }

  // ---- dispatcher heuristic ---------------------------------------------
  const auto entries = match_dispatcher(module_);
  report.dispatcher_matched = !entries.empty();
  const std::uint64_t transfer = abi::name("transfer").value();

  // ---- Fake EOS: pattern-level (needs the dispatcher) -------------------
  for (const auto& e : entries) {
    if (e.action_name == transfer && !e.has_code_guard) {
      report.found.insert(VulnType::FakeEos);
    }
  }

  // ---- Fake Notif: bounded SE in the eosponser --------------------------
  std::optional<std::uint32_t> eosponser =
      locate_eosponser_by_signature(module_);
  if (!eosponser) {
    for (const auto& e : entries) {
      if (e.action_name == transfer) eosponser = e.func_index;
    }
  }
  if (eosponser) {
    SeExplorer ex(env, module_, *eosponser, options_, steps_used);
    ex.explore({SymValue{ValType::I64, env.var("se_self", 64)},
                SymValue{ValType::I64, env.var("se_from", 64)},
                SymValue{ValType::I64, env.var("se_to", 64)},
                SymValue{ValType::I32, env.var("se_qty", 32)},
                SymValue{ValType::I32, env.var("se_memo", 32)}});
    report.timed_out |= ex.timed_out;
    if (ex.timed_out || !ex.guard_found) {
      report.found.insert(VulnType::FakeNotif);  // timeout => vulnerable
    }
  } else if (abi_.find(abi::Name(transfer)) != nullptr) {
    // An eosponser exists per the ABI but could not be analyzed: EOSAFE
    // reports the timeout default.
    report.timed_out = true;
    report.found.insert(VulnType::FakeNotif);
  }

  // ---- MissAuth: bounded SE per located non-transfer action -------------
  for (const auto& e : entries) {
    if (e.action_name == transfer) continue;
    const FuncType& ft = module_.function_type(e.func_index);
    std::vector<SymValue> params;
    params.push_back(SymValue{ValType::I64, env.var("se_self", 64)});
    for (std::size_t p = 1; p < ft.params.size(); ++p) {
      const unsigned bits = (ft.params[p] == ValType::I32 ||
                             ft.params[p] == ValType::F32)
                                ? 32
                                : 64;
      params.push_back(SymValue{
          ft.params[p], env.var("se_p" + std::to_string(p), bits)});
    }
    SeExplorer ex(env, module_, e.func_index, options_, steps_used);
    ex.explore(std::move(params));
    report.timed_out |= ex.timed_out;
    if (ex.effect_without_auth) {
      report.found.insert(VulnType::MissAuth);
    }
  }

  // BlockinfoDep is not supported by EOSAFE ("-" in the tables).
  return report;
}

}  // namespace wasai::baselines
