// Native contracts: C++-implemented accounts (eosio.token, adversary
// agents) that run against the same ApplyContext/Database machinery as
// deployed Wasm contracts.
#pragma once

#include "chain/apply_context.hpp"

namespace wasai::chain {

class NativeContract {
 public:
  virtual ~NativeContract() = default;

  /// Equivalent of void apply(receiver, code, action) for native code.
  virtual void apply(ApplyContext& ctx) = 0;
};

}  // namespace wasai::chain
