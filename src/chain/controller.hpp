// The local blockchain: accounts, contract deployment, transaction
// execution with EOSIO semantics — notifications keep the original `code`,
// inline actions revert with their transaction, deferred actions run as
// separate transactions (§2.1, §2.3.5).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "abi/abi_def.hpp"
#include "chain/action.hpp"
#include "chain/database.hpp"
#include "chain/native.hpp"
#include "chain/observer.hpp"
#include "eosvm/vm.hpp"
#include "obs/obs.hpp"
#include "wasm/module.hpp"

namespace wasai::chain {

class Controller {
 public:
  Controller();

  // ---- setup -----------------------------------------------------------
  void create_account(Name account);
  [[nodiscard]] bool account_exists(Name account) const;

  /// Deploy Wasm bytecode + ABI on an account (creates it if needed).
  /// The binary is decoded and validated here, like nodeos set_code.
  void deploy_contract(Name account, util::Bytes wasm_binary, abi::Abi abi);

  /// Deploy a native (C++) contract.
  void deploy_native(Name account, std::shared_ptr<NativeContract> contract);

  [[nodiscard]] const abi::Abi* contract_abi(Name account) const;
  [[nodiscard]] std::shared_ptr<const wasm::Module> contract_module(
      Name account) const;

  // ---- execution ---------------------------------------------------------
  TxResult push_transaction(const Transaction& tx);
  TxResult push_action(Action act);

  /// Run all currently queued deferred actions, each as its own
  /// transaction. Returns one result per deferred action.
  std::vector<TxResult> execute_deferred();
  [[nodiscard]] std::size_t pending_deferred() const {
    return deferred_.size();
  }

  // ---- state access ------------------------------------------------------
  Database& database(Name code) { return dbs_[code]; }
  [[nodiscard]] const Database* find_database(Name code) const;

  [[nodiscard]] std::uint32_t tapos_block_num() const { return block_num_; }
  [[nodiscard]] std::uint32_t tapos_block_prefix() const {
    return block_prefix_;
  }
  [[nodiscard]] std::uint64_t now_us() const { return time_us_; }

  void set_observer(ExecutionObserver* obs) { observer_ = obs; }
  [[nodiscard]] ExecutionObserver* observer() const { return observer_; }

  /// Observability track for this chain's thread (may be null = off).
  /// Transactions record `execute` spans; deployment records `deploy`
  /// spans wrapping the decode + validate work.
  void set_obs(obs::Obs* obs) { obs_ = obs; }
  [[nodiscard]] obs::Obs* obs() const { return obs_; }

  /// Toggle the VM fast path for subsequently executed actions. Flat code
  /// is built at deploy time either way; this only controls whether
  /// run_contract hands it to the Instance. Both paths are observably
  /// identical — the switch exists for A/B benchmarking (--no-fastpath).
  void set_fastpath(bool enabled) { fastpath_ = enabled; }
  [[nodiscard]] bool fastpath() const { return fastpath_; }

  /// Per-transaction execution limits.
  vm::ExecLimits limits;

  /// Maximum nesting depth of inline actions + notifications.
  int max_action_depth = 16;

 private:
  friend class ApplyContext;

  struct AccountRec {
    std::shared_ptr<const wasm::Module> module;  // Wasm contract, if any
    std::shared_ptr<const vm::FlatModule> flat;  // pre-flattened code
    abi::Abi abi;
    std::shared_ptr<NativeContract> native;  // native contract, if any
  };

  struct Snapshot {
    std::map<Name, Database> dbs;
    std::vector<Action> deferred;
  };

  void execute_action(const Action& act, Name receiver, bool notification,
                      bool from_inline, bool from_deferred, int depth,
                      vm::Vm& vm, TxResult& result);
  void run_contract(ApplyContext& ctx, vm::Vm& vm);
  void advance_block();

  std::map<Name, AccountRec> accounts_;
  std::map<Name, Database> dbs_;
  std::vector<Action> deferred_;
  ExecutionObserver* observer_ = nullptr;
  obs::Obs* obs_ = nullptr;
  bool fastpath_ = true;

  std::uint32_t block_num_ = 1000;
  std::uint32_t block_prefix_ = 0x5eed1e55;
  std::uint64_t time_us_ = 1'600'000'000'000'000ull;
};

}  // namespace wasai::chain
