#include "chain/chain_host.hpp"

#include <array>
#include <cstring>

#include "chain/controller.hpp"
#include "eosvm/instance.hpp"
#include "util/error.hpp"

namespace wasai::chain {

namespace {

using util::Trap;
using vm::Value;
using wasm::FuncType;
using wasm::ValType;

constexpr ValType I32 = ValType::I32;
constexpr ValType I64 = ValType::I64;

enum class Api : std::uint32_t {
  RequireAuth,
  HasAuth,
  RequireAuth2,
  EosioAssert,
  ReadActionData,
  ActionDataSize,
  CurrentReceiver,
  RequireRecipient,
  SendInline,
  SendDeferred,
  TaposBlockNum,
  TaposBlockPrefix,
  CurrentTime,
  DbStoreI64,
  DbFindI64,
  DbGetI64,
  DbUpdateI64,
  DbRemoveI64,
  DbNextI64,
  DbLowerboundI64,
  PrintI,
  Count,
};

struct ApiDef {
  std::string_view name;
  Api api;
  FuncType type;
};

const std::array<ApiDef, static_cast<std::size_t>(Api::Count)>& api_table() {
  static const std::array<ApiDef, static_cast<std::size_t>(Api::Count)> defs =
      {{
          {"require_auth", Api::RequireAuth, {{I64}, {}}},
          {"has_auth", Api::HasAuth, {{I64}, {I32}}},
          {"require_auth2", Api::RequireAuth2, {{I64, I64}, {}}},
          {"eosio_assert", Api::EosioAssert, {{I32, I32}, {}}},
          {"read_action_data", Api::ReadActionData, {{I32, I32}, {I32}}},
          {"action_data_size", Api::ActionDataSize, {{}, {I32}}},
          {"current_receiver", Api::CurrentReceiver, {{}, {I64}}},
          {"require_recipient", Api::RequireRecipient, {{I64}, {}}},
          {"send_inline", Api::SendInline, {{I32, I32}, {}}},
          {"send_deferred", Api::SendDeferred, {{I32, I64, I32, I32}, {}}},
          {"tapos_block_num", Api::TaposBlockNum, {{}, {I32}}},
          {"tapos_block_prefix", Api::TaposBlockPrefix, {{}, {I32}}},
          {"current_time", Api::CurrentTime, {{}, {I64}}},
          {"db_store_i64",
           Api::DbStoreI64,
           {{I64, I64, I64, I64, I32, I32}, {I32}}},
          {"db_find_i64", Api::DbFindI64, {{I64, I64, I64, I64}, {I32}}},
          {"db_get_i64", Api::DbGetI64, {{I32, I32, I32}, {I32}}},
          {"db_update_i64", Api::DbUpdateI64, {{I32, I64, I32, I32}, {}}},
          {"db_remove_i64", Api::DbRemoveI64, {{I32}, {}}},
          {"db_next_i64", Api::DbNextI64, {{I32, I32}, {I32}}},
          {"db_lowerbound_i64",
           Api::DbLowerboundI64,
           {{I64, I64, I64, I64}, {I32}}},
          {"printi", Api::PrintI, {{I64}, {}}},
      }};
  return defs;
}

/// Offset separating "env" bindings from forwarded hook bindings.
constexpr std::uint32_t kExtraBase = 0x10000;

std::string read_cstring(vm::Instance& inst, std::uint32_t ptr,
                         std::size_t max_len = 256) {
  std::string out;
  for (std::size_t i = 0; i < max_len; ++i) {
    const auto byte = inst.memory_at(ptr + i, 1)[0];
    if (byte == 0) break;
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

}  // namespace

ChainHost::ChainHost(ApplyContext& ctx, vm::HostInterface* extra)
    : ctx_(&ctx), extra_(extra) {}

bool ChainHost::is_library_api(std::string_view field) {
  for (const auto& def : api_table()) {
    if (def.name == field) return true;
  }
  return false;
}

std::uint32_t ChainHost::bind(std::string_view module, std::string_view field,
                              const wasm::FuncType& type) {
  if (module != "env") {
    if (extra_ == nullptr) {
      throw util::ValidationError("unresolved import " + std::string(module) +
                                  "." + std::string(field));
    }
    return kExtraBase + extra_->bind(module, field, type);
  }
  for (const auto& def : api_table()) {
    if (def.name == field) {
      if (def.type != type) {
        throw util::ValidationError("import signature mismatch for env." +
                                    std::string(field));
      }
      return static_cast<std::uint32_t>(def.api);
    }
  }
  throw util::ValidationError("unknown library API env." + std::string(field));
}

vm::HookSink* ChainHost::hook_sink(std::uint32_t binding,
                                   std::uint32_t& sink_binding) {
  if (binding >= kExtraBase && extra_ != nullptr) {
    return extra_->hook_sink(binding - kExtraBase, sink_binding);
  }
  return nullptr;
}

std::optional<Value> ChainHost::call_host(std::uint32_t binding,
                                          std::span<const Value> args,
                                          vm::Instance& instance) {
  if (binding >= kExtraBase) {
    return extra_->call_host(binding - kExtraBase, args, instance);
  }
  switch (static_cast<Api>(binding)) {
    case Api::RequireAuth:
      ctx_->require_auth(Name(args[0].u64()));
      return std::nullopt;
    case Api::HasAuth:
      return Value::i32(ctx_->has_auth(Name(args[0].u64())) ? 1 : 0);
    case Api::RequireAuth2:
      // Permission-level granularity is not modelled; actor check only.
      ctx_->require_auth(Name(args[0].u64()));
      return std::nullopt;
    case Api::EosioAssert:
      if (args[0].u32() == 0) {
        throw Trap("eosio_assert: " + read_cstring(instance, args[1].u32()));
      }
      return std::nullopt;
    case Api::ReadActionData: {
      const auto data = ctx_->action_data();
      const std::uint32_t ptr = args[0].u32();
      const std::size_t len =
          std::min<std::size_t>(args[1].u32(), data.size());
      if (len > 0) {
        auto dst = instance.memory_at(ptr, len);
        std::memcpy(dst.data(), data.data(), len);
      }
      return Value::i32(static_cast<std::uint32_t>(len));
    }
    case Api::ActionDataSize:
      return Value::i32(static_cast<std::uint32_t>(ctx_->action_data().size()));
    case Api::CurrentReceiver:
      return Value::i64(ctx_->receiver().value());
    case Api::RequireRecipient:
      ctx_->require_recipient(Name(args[0].u64()));
      return std::nullopt;
    case Api::SendInline: {
      const auto bytes = instance.memory_at(args[0].u32(), args[1].u32());
      ctx_->send_inline(unpack_action(bytes));
      return std::nullopt;
    }
    case Api::SendDeferred: {
      // (sender_id ptr, payer, packed action ptr, len); sender id unused.
      const auto bytes = instance.memory_at(args[2].u32(), args[3].u32());
      ctx_->send_deferred(unpack_action(bytes));
      return std::nullopt;
    }
    case Api::TaposBlockNum:
      return Value::i32(ctx_->tapos_block_num());
    case Api::TaposBlockPrefix:
      return Value::i32(ctx_->tapos_block_prefix());
    case Api::CurrentTime:
      return Value::i64(ctx_->current_time());
    case Api::DbStoreI64: {
      const auto bytes = instance.memory_at(args[4].u32(), args[5].u32());
      return Value::i32s(ctx_->db_store(
          args[0].u64(), args[1].u64(), args[3].u64(),
          util::Bytes(bytes.begin(), bytes.end())));
      // note: args[2] (payer) is not modelled
    }
    case Api::DbFindI64:
      return Value::i32s(ctx_->db_find(Name(args[0].u64()), args[1].u64(),
                                       args[2].u64(), args[3].u64()));
    case Api::DbGetI64: {
      const std::uint32_t len = args[2].u32();
      if (len == 0) {
        std::span<std::uint8_t> empty;
        return Value::i32s(ctx_->db_get(args[0].s32(), empty));
      }
      auto dst = instance.memory_at(args[1].u32(), len);
      return Value::i32s(ctx_->db_get(args[0].s32(), dst));
    }
    case Api::DbUpdateI64: {
      const auto bytes = instance.memory_at(args[2].u32(), args[3].u32());
      ctx_->db_update(args[0].s32(), util::Bytes(bytes.begin(), bytes.end()));
      return std::nullopt;
    }
    case Api::DbRemoveI64:
      ctx_->db_remove(args[0].s32());
      return std::nullopt;
    case Api::DbNextI64: {
      std::uint64_t primary = 0;
      const auto next = ctx_->db_next(args[0].s32(), primary);
      if (next >= 0) {
        auto dst = instance.memory_at(args[1].u32(), 8);
        std::memcpy(dst.data(), &primary, 8);
      }
      return Value::i32s(next);
    }
    case Api::DbLowerboundI64:
      return Value::i32s(ctx_->db_lowerbound(Name(args[0].u64()),
                                             args[1].u64(), args[2].u64(),
                                             args[3].u64()));
    case Api::PrintI:
      return std::nullopt;  // console output is a no-op in the simulator
    case Api::Count:
      break;
  }
  throw Trap("unknown host binding " + std::to_string(binding));
}

}  // namespace wasai::chain
