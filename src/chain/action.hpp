// Transactions and actions: the unit of execution in EOSIO (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abi/name.hpp"
#include "util/bytes.hpp"

namespace wasai::chain {

using abi::Name;

struct PermissionLevel {
  Name actor;
  Name permission;  // "active" by default

  bool operator==(const PermissionLevel&) const = default;
};

inline PermissionLevel active(Name actor) {
  return {actor, abi::name("active")};
}

/// One action: `name@account` with serialized parameters. Smart contracts
/// also create these at runtime via send_inline / send_deferred.
struct Action {
  Name account;  // the contract the action belongs to (the paper's `code`)
  Name name;     // action function name
  std::vector<PermissionLevel> authorization;
  util::Bytes data;
};

struct Transaction {
  std::vector<Action> actions;
};

/// Serialize an action into the packed format used by send_inline /
/// send_deferred (account, name, auth vector, data bytes).
util::Bytes pack_action(const Action& act);
Action unpack_action(std::span<const std::uint8_t> bytes);

/// How one contract execution came about, for reports and oracles.
struct ExecutedAction {
  Name receiver;  // the account whose code ran
  Name code;      // the action's account (the `code` parameter of apply)
  Name action;
  bool notification = false;  // ran because of require_recipient
  bool from_inline = false;   // queued by send_inline
  bool from_deferred = false;
};

/// Result of pushing one transaction.
struct TxResult {
  bool success = false;
  std::string error;  // trap message when !success
  std::vector<ExecutedAction> executed;
  std::uint64_t steps = 0;  // Wasm instructions interpreted

  [[nodiscard]] bool executed_on(Name receiver) const {
    for (const auto& e : executed) {
      if (e.receiver == receiver) return true;
    }
    return false;
  }
};

}  // namespace wasai::chain
