#include "chain/controller.hpp"

#include "chain/chain_host.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace wasai::chain {

using util::Trap;

Controller::Controller() = default;

void Controller::create_account(Name account) {
  accounts_.try_emplace(account);
}

bool Controller::account_exists(Name account) const {
  return accounts_.contains(account);
}

void Controller::deploy_contract(Name account, util::Bytes wasm_binary,
                                 abi::Abi abi) {
  const obs::Span span(obs_, obs::span_name::kDeploy);
  auto module =
      std::make_shared<wasm::Module>(wasm::decode(wasm_binary, obs_));
  wasm::validate(*module);
  if (!module->find_export("apply")) {
    throw util::ValidationError("contract has no apply export");
  }
  AccountRec& rec = accounts_[account];
  // Flatten once per deployed module; every action execution reuses it.
  rec.flat = vm::FlatModule::build(module);
  rec.module = std::move(module);
  rec.abi = std::move(abi);
  rec.native = nullptr;
}

void Controller::deploy_native(Name account,
                               std::shared_ptr<NativeContract> contract) {
  AccountRec& rec = accounts_[account];
  rec.native = std::move(contract);
  rec.module = nullptr;
  rec.flat = nullptr;
}

const abi::Abi* Controller::contract_abi(Name account) const {
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? nullptr : &it->second.abi;
}

std::shared_ptr<const wasm::Module> Controller::contract_module(
    Name account) const {
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? nullptr : it->second.module;
}

const Database* Controller::find_database(Name code) const {
  const auto it = dbs_.find(code);
  return it == dbs_.end() ? nullptr : &it->second;
}

TxResult Controller::push_transaction(const Transaction& tx) {
  const obs::Span span(obs_, obs::span_name::kExecute);
  if (obs_ != nullptr) obs_->count("execute.transactions");
  Snapshot snap{dbs_, deferred_};
  TxResult result;
  vm::Vm vm(limits);
  try {
    for (const auto& act : tx.actions) {
      execute_action(act, act.account, /*notification=*/false,
                     /*from_inline=*/false, /*from_deferred=*/false, 0, vm,
                     result);
    }
    result.success = true;
  } catch (const util::Error& e) {
    dbs_ = std::move(snap.dbs);
    deferred_ = std::move(snap.deferred);
    result.success = false;
    result.error = e.what();
  }
  result.steps = vm.steps();
  if (obs_ != nullptr) {
    obs_->count("execute.steps", result.steps);
    obs_->latency_us("execute.tx_us",
                     static_cast<std::uint64_t>(span.elapsed_us()));
  }
  advance_block();
  return result;
}

TxResult Controller::push_action(Action act) {
  Transaction tx;
  tx.actions.push_back(std::move(act));
  return push_transaction(tx);
}

std::vector<TxResult> Controller::execute_deferred() {
  std::vector<Action> pending = std::move(deferred_);
  deferred_.clear();
  std::vector<TxResult> results;
  results.reserve(pending.size());
  for (const auto& act : pending) {
    const obs::Span span(obs_, obs::span_name::kExecute);
    if (obs_ != nullptr) obs_->count("execute.transactions");
    Snapshot snap{dbs_, deferred_};
    TxResult result;
    vm::Vm vm(limits);
    try {
      execute_action(act, act.account, /*notification=*/false,
                     /*from_inline=*/false, /*from_deferred=*/true, 0, vm,
                     result);
      result.success = true;
    } catch (const util::Error& e) {
      dbs_ = std::move(snap.dbs);
      deferred_ = std::move(snap.deferred);
      result.success = false;
      result.error = e.what();
    }
    result.steps = vm.steps();
    if (obs_ != nullptr) {
      obs_->count("execute.steps", result.steps);
      obs_->latency_us("execute.tx_us",
                       static_cast<std::uint64_t>(span.elapsed_us()));
    }
    advance_block();
    results.push_back(std::move(result));
  }
  return results;
}

void Controller::execute_action(const Action& act, Name receiver,
                                bool notification, bool from_inline,
                                bool from_deferred, int depth, vm::Vm& vm,
                                TxResult& result) {
  if (depth > max_action_depth) {
    throw Trap("max inline action depth reached");
  }
  const auto it = accounts_.find(receiver);
  if (it == accounts_.end()) {
    if (notification) return;  // notifying a non-existent account is a no-op
    throw Trap("account " + receiver.to_string() + " does not exist");
  }

  result.executed.push_back(ExecutedAction{receiver, act.account, act.name,
                                           notification, from_inline,
                                           from_deferred});

  ApplyContext ctx(*this, act, receiver, notification);
  if (observer_ != nullptr) {
    observer_->on_action_begin(receiver, act.account, act.name);
  }
  try {
    if (it->second.native != nullptr) {
      it->second.native->apply(ctx);
    } else if (it->second.module != nullptr) {
      run_contract(ctx, vm);
    }
    // Accounts without code simply accept the action (plain wallets).
  } catch (...) {
    if (observer_ != nullptr) observer_->on_action_end(false);
    throw;
  }
  if (observer_ != nullptr) observer_->on_action_end(true);

  // Notifications first (they see the same action), then inline actions.
  for (const Name recipient : ctx.notified()) {
    execute_action(act, recipient, /*notification=*/true, from_inline,
                   from_deferred, depth + 1, vm, result);
  }
  for (const Action& inline_act : ctx.inline_actions()) {
    execute_action(inline_act, inline_act.account, /*notification=*/false,
                   /*from_inline=*/true, from_deferred, depth + 1, vm,
                   result);
  }
  for (const Action& deferred_act : ctx.deferred_actions()) {
    deferred_.push_back(deferred_act);
  }
}

void Controller::run_contract(ApplyContext& ctx, vm::Vm& vm) {
  const AccountRec& rec = accounts_.at(ctx.receiver());
  ChainHost host(ctx,
                 observer_ != nullptr ? observer_->hook_host() : nullptr);
  vm::Instance instance(rec.module, host, fastpath_ ? rec.flat : nullptr);
  const auto apply_fn = rec.module->find_export("apply");
  const std::vector<vm::Value> args = {
      vm::Value::i64(ctx.receiver().value()),
      vm::Value::i64(ctx.code().value()),
      vm::Value::i64(ctx.action_name().value()),
  };
  vm.invoke(instance, *apply_fn, args);
}

void Controller::advance_block() {
  ++block_num_;
  // Cheap deterministic mix for the prefix (stands in for the block hash).
  std::uint64_t x = (static_cast<std::uint64_t>(block_prefix_) << 32) |
                    block_num_;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  block_prefix_ = static_cast<std::uint32_t>(x);
  time_us_ += 500'000;  // one EOSIO block interval
}

}  // namespace wasai::chain
