// Adversary agent contracts used by the vulnerability oracles (§2.3).
#pragma once

#include "chain/native.hpp"

namespace wasai::chain {

/// The `fake.notif` agent of the Fake Notification exploit (§2.3.2): upon
/// being notified of a real eosio.token transfer it forwards the
/// notification to the victim. Because notifications keep the original
/// `code` (eosio.token), the victim's Fake-EOS guard is bypassed.
class ForwardNotifAgent : public NativeContract {
 public:
  ForwardNotifAgent(Name token_account, Name victim)
      : token_account_(token_account), victim_(victim) {}

  void apply(ApplyContext& ctx) override {
    if (ctx.is_notification() && ctx.code() == token_account_ &&
        ctx.action_name() == abi::name("transfer")) {
      ctx.require_recipient(victim_);
    }
  }

  void set_victim(Name victim) { victim_ = victim; }

 private:
  Name token_account_;
  Name victim_;
};

/// A passive account that accepts anything (used as a generic player).
class SinkAgent : public NativeContract {
 public:
  void apply(ApplyContext&) override {}
};

}  // namespace wasai::chain
