// Hook points the fuzzer uses to watch chain execution without the chain
// layer depending on the instrumentation layer.
#pragma once

#include "abi/name.hpp"
#include "eosvm/host.hpp"

namespace wasai::chain {

/// Installed on the Controller. `hook_host()` (if non-null) receives the
/// bindings of any import outside the "env" module — in practice the
/// `wasai.trace_*` hooks the instrumenter injects. The action callbacks
/// bracket each contract execution so the trace consumer can split events
/// per action, the way WASAI exports per-thread trace files (§3.3.1).
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  virtual void on_action_begin(abi::Name /*receiver*/, abi::Name /*code*/,
                               abi::Name /*action*/) {}
  virtual void on_action_end(bool /*ok*/) {}

  /// Secondary host for non-"env" imports (trace hooks). May return null
  /// when no instrumented contract is loaded.
  virtual vm::HostInterface* hook_host() { return nullptr; }
};

}  // namespace wasai::chain
