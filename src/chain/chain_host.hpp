// Maps the EOSVM library-API imports ("env" module) of a contract onto an
// ApplyContext. Imports from any other module (the instrumenter's "wasai"
// hooks) are forwarded to the observer's hook host.
#pragma once

#include <optional>
#include <string_view>

#include "chain/apply_context.hpp"
#include "eosvm/host.hpp"

namespace wasai::chain {

class ChainHost : public vm::HostInterface {
 public:
  /// `extra` (may be null) receives bindings for non-"env" imports; its
  /// binding ids are offset so both spaces coexist.
  ChainHost(ApplyContext& ctx, vm::HostInterface* extra);

  std::uint32_t bind(std::string_view module, std::string_view field,
                     const wasm::FuncType& type) override;

  std::optional<vm::Value> call_host(std::uint32_t binding,
                                     std::span<const vm::Value> args,
                                     vm::Instance& instance) override;

  /// Forward fast-dispatch resolution the same way call_host forwards
  /// calls: "env" APIs never short-circuit, offset bindings unwrap to the
  /// extra host (typically the instrumentation trace sink).
  vm::HookSink* hook_sink(std::uint32_t binding,
                          std::uint32_t& sink_binding) override;

  /// Names of the library APIs this host provides ("require_auth", ...).
  static bool is_library_api(std::string_view field);

 private:
  ApplyContext* ctx_;
  vm::HostInterface* extra_;
};

}  // namespace wasai::chain
