// Native implementation of the eosio.token contract (§2.1). Any account can
// run an instance of this code — including an attacker's fake.token issuing
// counterfeit "EOS" — which is exactly what the Fake EOS oracle exploits.
#pragma once

#include <string>

#include "abi/abi_def.hpp"
#include "abi/serializer.hpp"
#include "chain/native.hpp"

namespace wasai::chain {

class TokenContract : public NativeContract {
 public:
  void apply(ApplyContext& ctx) override;

  /// The token ABI: create/issue/transfer.
  static abi::Abi abi();

 private:
  void do_create(ApplyContext& ctx);
  void do_issue(ApplyContext& ctx);
  void do_transfer(ApplyContext& ctx);
};

// ---- action builders ----------------------------------------------------

Action token_create(Name token_account, Name issuer, abi::Asset max_supply);
Action token_issue(Name token_account, Name issuer, Name to,
                   abi::Asset quantity, const std::string& memo);
Action token_transfer(Name token_account, Name from, Name to,
                      abi::Asset quantity, const std::string& memo);

/// Read a balance directly from the token's database (0 if no row).
abi::Asset token_balance(const class Controller& chain, Name token_account,
                         Name owner, abi::Symbol symbol);

}  // namespace wasai::chain
