#include "chain/action.hpp"

#include "util/leb128.hpp"

namespace wasai::chain {

util::Bytes pack_action(const Action& act) {
  util::ByteWriter w;
  w.u64_le(act.account.value());
  w.u64_le(act.name.value());
  util::write_uleb(w, act.authorization.size());
  for (const auto& auth : act.authorization) {
    w.u64_le(auth.actor.value());
    w.u64_le(auth.permission.value());
  }
  util::write_uleb(w, act.data.size());
  w.bytes(act.data);
  return std::move(w).take();
}

Action unpack_action(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  Action act;
  act.account = Name(r.u64_le());
  act.name = Name(r.u64_le());
  const auto nauth = util::read_uleb32(r);
  act.authorization.reserve(nauth);
  for (std::uint32_t i = 0; i < nauth; ++i) {
    PermissionLevel p;
    p.actor = Name(r.u64_le());
    p.permission = Name(r.u64_le());
    act.authorization.push_back(p);
  }
  const auto len = util::read_uleb32(r);
  const auto data = r.bytes(len);
  act.data.assign(data.begin(), data.end());
  if (!r.eof()) throw util::DecodeError("trailing bytes in packed action");
  return act;
}

}  // namespace wasai::chain
