#include "chain/token.hpp"

#include <cstring>

#include "chain/controller.hpp"
#include "util/error.hpp"

namespace wasai::chain {

namespace {

using abi::Asset;
using abi::ParamType;
using abi::ParamValue;
using abi::Symbol;
using util::Bytes;
using util::Trap;

const std::uint64_t kAccountsTable = abi::name("accounts").value();
const std::uint64_t kStatTable = abi::name("stat").value();

std::uint64_t sym_code(Symbol s) { return s.value() >> 8; }

Bytes encode_asset(const Asset& a) {
  Bytes out(16);
  std::memcpy(out.data(), &a.amount, 8);
  const std::uint64_t sym = a.symbol.value();
  std::memcpy(out.data() + 8, &sym, 8);
  return out;
}

Asset decode_asset(const Bytes& bytes) {
  if (bytes.size() != 16) throw Trap("token: corrupt balance row");
  Asset a;
  std::memcpy(&a.amount, bytes.data(), 8);
  std::uint64_t sym = 0;
  std::memcpy(&sym, bytes.data() + 8, 8);
  a.symbol = Symbol(sym);
  return a;
}

struct Stat {
  std::int64_t supply = 0;
  std::int64_t max_supply = 0;
  std::uint64_t issuer = 0;
};

Bytes encode_stat(const Stat& s) {
  Bytes out(24);
  std::memcpy(out.data(), &s.supply, 8);
  std::memcpy(out.data() + 8, &s.max_supply, 8);
  std::memcpy(out.data() + 16, &s.issuer, 8);
  return out;
}

Stat decode_stat(const Bytes& bytes) {
  if (bytes.size() != 24) throw Trap("token: corrupt stat row");
  Stat s;
  std::memcpy(&s.supply, bytes.data(), 8);
  std::memcpy(&s.max_supply, bytes.data() + 8, 8);
  std::memcpy(&s.issuer, bytes.data() + 16, 8);
  return s;
}

const abi::ActionDef& create_def() {
  static const abi::ActionDef def{abi::name("create"),
                                  {ParamType::Name, ParamType::Asset}};
  return def;
}

const abi::ActionDef& issue_def() {
  static const abi::ActionDef def{
      abi::name("issue"),
      {ParamType::Name, ParamType::Asset, ParamType::String}};
  return def;
}

/// Direct database helpers (token code always operates on its own tables).
const Bytes* find_row(ApplyContext& ctx, std::uint64_t scope,
                      std::uint64_t table, std::uint64_t pk) {
  const Database* db = ctx.chain().find_database(ctx.receiver());
  return db ? db->find(TableKey{scope, table}, pk) : nullptr;
}

void upsert_row(ApplyContext& ctx, std::uint64_t scope, std::uint64_t table,
                std::uint64_t pk, Bytes value) {
  Database& db = ctx.chain().database(ctx.receiver());
  if (db.find(TableKey{scope, table}, pk) != nullptr) {
    db.update(TableKey{scope, table}, pk, std::move(value));
  } else {
    db.store(TableKey{scope, table}, pk, std::move(value));
  }
}

void add_balance(ApplyContext& ctx, Name owner, const Asset& delta) {
  const std::uint64_t pk = sym_code(delta.symbol);
  Asset balance{0, delta.symbol};
  if (const Bytes* row = find_row(ctx, owner.value(), kAccountsTable, pk)) {
    balance = decode_asset(*row);
  }
  balance.amount += delta.amount;
  if (balance.amount < 0) {
    throw Trap("token: overdrawn balance of " + owner.to_string());
  }
  upsert_row(ctx, owner.value(), kAccountsTable, pk, encode_asset(balance));
}

}  // namespace

abi::Abi TokenContract::abi() {
  abi::Abi out;
  out.actions = {create_def(), issue_def(), abi::transfer_action_def()};
  return out;
}

void TokenContract::apply(ApplyContext& ctx) {
  if (ctx.code() != ctx.receiver()) {
    return;  // notification from another contract: nothing to do
  }
  const Name action = ctx.action_name();
  if (action == abi::name("create")) {
    do_create(ctx);
  } else if (action == abi::name("issue")) {
    do_issue(ctx);
  } else if (action == abi::name("transfer")) {
    do_transfer(ctx);
  } else {
    throw Trap("token: unknown action " + action.to_string());
  }
}

void TokenContract::do_create(ApplyContext& ctx) {
  const auto values = abi::unpack(create_def(), ctx.action_data());
  const Name issuer = std::get<Name>(values[0]);
  const Asset max_supply = std::get<Asset>(values[1]);
  if (max_supply.amount <= 0) throw Trap("token: invalid max supply");
  const std::uint64_t pk = sym_code(max_supply.symbol);
  if (find_row(ctx, pk, kStatTable, pk) != nullptr) {
    throw Trap("token: symbol already exists");
  }
  upsert_row(ctx, pk, kStatTable, pk,
             encode_stat(Stat{0, max_supply.amount, issuer.value()}));
}

void TokenContract::do_issue(ApplyContext& ctx) {
  const auto values = abi::unpack(issue_def(), ctx.action_data());
  const Name to = std::get<Name>(values[0]);
  const Asset quantity = std::get<Asset>(values[1]);
  const std::uint64_t pk = sym_code(quantity.symbol);
  const Bytes* stat_row = find_row(ctx, pk, kStatTable, pk);
  if (stat_row == nullptr) {
    throw Trap("token: symbol does not exist");
  }
  Stat stat = decode_stat(*stat_row);
  ctx.require_auth(Name(stat.issuer));
  if (quantity.amount <= 0) throw Trap("token: must issue positive quantity");
  if (stat.supply + quantity.amount > stat.max_supply) {
    throw Trap("token: issue exceeds max supply");
  }
  stat.supply += quantity.amount;
  upsert_row(ctx, pk, kStatTable, pk, encode_stat(stat));
  add_balance(ctx, to, quantity);
  ctx.require_recipient(to);
}

void TokenContract::do_transfer(ApplyContext& ctx) {
  const auto values =
      abi::unpack(abi::transfer_action_def(), ctx.action_data());
  const Name from = std::get<Name>(values[0]);
  const Name to = std::get<Name>(values[1]);
  const Asset quantity = std::get<Asset>(values[2]);

  ctx.require_auth(from);
  if (from == to) throw Trap("token: cannot transfer to self");
  if (!ctx.chain().account_exists(to)) {
    throw Trap("token: destination account does not exist");
  }
  if (quantity.amount <= 0) {
    throw Trap("token: must transfer positive quantity");
  }
  const std::uint64_t pk = sym_code(quantity.symbol);
  if (find_row(ctx, pk, kStatTable, pk) == nullptr) {
    throw Trap("token: symbol does not exist");
  }
  add_balance(ctx, from, Asset{-quantity.amount, quantity.symbol});
  add_balance(ctx, to, quantity);
  // Notify both sides — steps ② and ③ of Figure 1.
  ctx.require_recipient(from);
  ctx.require_recipient(to);
}

Action token_create(Name token_account, Name issuer, abi::Asset max_supply) {
  Action act;
  act.account = token_account;
  act.name = abi::name("create");
  act.authorization = {active(token_account)};
  act.data = abi::pack(create_def(), {issuer, max_supply});
  return act;
}

Action token_issue(Name token_account, Name issuer, Name to,
                   abi::Asset quantity, const std::string& memo) {
  Action act;
  act.account = token_account;
  act.name = abi::name("issue");
  act.authorization = {active(issuer)};
  act.data = abi::pack(issue_def(), {to, quantity, memo});
  return act;
}

Action token_transfer(Name token_account, Name from, Name to,
                      abi::Asset quantity, const std::string& memo) {
  Action act;
  act.account = token_account;
  act.name = abi::name("transfer");
  act.authorization = {active(from)};
  act.data =
      abi::pack(abi::transfer_action_def(), {from, to, quantity, memo});
  return act;
}

abi::Asset token_balance(const Controller& chain, Name token_account,
                         Name owner, abi::Symbol symbol) {
  const Database* db = chain.find_database(token_account);
  if (db != nullptr) {
    if (const Bytes* row = db->find(
            TableKey{owner.value(), kAccountsTable}, sym_code(symbol))) {
      return decode_asset(*row);
    }
  }
  return abi::Asset{0, symbol};
}

}  // namespace wasai::chain
