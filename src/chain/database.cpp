#include "chain/database.hpp"

#include "util/error.hpp"

namespace wasai::chain {

void Database::store(TableKey tk, std::uint64_t primary, util::Bytes value) {
  auto& table = tables_[tk];
  const auto [it, inserted] = table.emplace(primary, std::move(value));
  if (!inserted) {
    throw util::UsageError("db store: primary key " + std::to_string(primary) +
                           " already exists");
  }
}

const util::Bytes* Database::find(TableKey tk, std::uint64_t primary) const {
  const auto t = tables_.find(tk);
  if (t == tables_.end()) return nullptr;
  const auto row = t->second.find(primary);
  return row == t->second.end() ? nullptr : &row->second;
}

void Database::update(TableKey tk, std::uint64_t primary, util::Bytes value) {
  auto t = tables_.find(tk);
  if (t == tables_.end()) throw util::UsageError("db update: no such table");
  auto row = t->second.find(primary);
  if (row == t->second.end()) {
    throw util::UsageError("db update: no such row");
  }
  row->second = std::move(value);
}

void Database::erase(TableKey tk, std::uint64_t primary) {
  auto t = tables_.find(tk);
  if (t == tables_.end() || t->second.erase(primary) == 0) {
    throw util::UsageError("db erase: no such row");
  }
  if (t->second.empty()) tables_.erase(t);
}

std::optional<std::uint64_t> Database::lower_bound(
    TableKey tk, std::uint64_t primary) const {
  const auto t = tables_.find(tk);
  if (t == tables_.end()) return std::nullopt;
  const auto it = t->second.lower_bound(primary);
  if (it == t->second.end()) return std::nullopt;
  return it->first;
}

std::optional<std::uint64_t> Database::next(TableKey tk,
                                            std::uint64_t primary) const {
  const auto t = tables_.find(tk);
  if (t == tables_.end()) return std::nullopt;
  const auto it = t->second.upper_bound(primary);
  if (it == t->second.end()) return std::nullopt;
  return it->first;
}

std::size_t Database::row_count() const {
  std::size_t n = 0;
  for (const auto& [_, rows] : tables_) n += rows.size();
  return n;
}

std::vector<TableKey> Database::table_keys() const {
  std::vector<TableKey> out;
  out.reserve(tables_.size());
  for (const auto& [tk, _] : tables_) out.push_back(tk);
  return out;
}

}  // namespace wasai::chain
