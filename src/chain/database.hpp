// The per-contract key-value database of EOSVM (§2.2): rows addressed by
// (code, scope, table, primary key). Snapshot/restore gives transactions
// their atomicity.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "abi/name.hpp"
#include "util/bytes.hpp"

namespace wasai::chain {

/// Identifies one table within a contract's database.
struct TableKey {
  std::uint64_t scope = 0;
  std::uint64_t table = 0;

  auto operator<=>(const TableKey&) const = default;
};

/// Database of a single contract (one per code account).
class Database {
 public:
  /// Insert a row; throws util::UsageError if the key already exists.
  void store(TableKey tk, std::uint64_t primary, util::Bytes value);

  /// Row lookup.
  [[nodiscard]] const util::Bytes* find(TableKey tk,
                                        std::uint64_t primary) const;

  /// Overwrite an existing row; throws if absent.
  void update(TableKey tk, std::uint64_t primary, util::Bytes value);

  /// Remove an existing row; throws if absent.
  void erase(TableKey tk, std::uint64_t primary);

  /// Smallest key >= primary in the table, if any.
  [[nodiscard]] std::optional<std::uint64_t> lower_bound(
      TableKey tk, std::uint64_t primary) const;

  /// Smallest key strictly greater than primary.
  [[nodiscard]] std::optional<std::uint64_t> next(TableKey tk,
                                                  std::uint64_t primary) const;

  [[nodiscard]] std::size_t row_count() const;
  [[nodiscard]] bool empty() const { return tables_.empty(); }

  /// All (scope, table) pairs present — the DBG builder walks these.
  [[nodiscard]] std::vector<TableKey> table_keys() const;

 private:
  std::map<TableKey, std::map<std::uint64_t, util::Bytes>> tables_;
};

}  // namespace wasai::chain
