// Per-(action, receiver) execution context — the object behind every
// library API a contract can call (§2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chain/action.hpp"
#include "chain/database.hpp"

namespace wasai::chain {

class Controller;

class ApplyContext {
 public:
  ApplyContext(Controller& chain, const Action& act, Name receiver,
               bool is_notification);

  [[nodiscard]] Name receiver() const { return receiver_; }
  /// The `code` parameter of void apply(): the account the action belongs
  /// to. During a notification this stays the original account — the
  /// property the Fake Notification attack abuses.
  [[nodiscard]] Name code() const { return act_->account; }
  [[nodiscard]] Name action_name() const { return act_->name; }
  [[nodiscard]] const Action& action() const { return *act_; }
  [[nodiscard]] bool is_notification() const { return is_notification_; }

  [[nodiscard]] std::span<const std::uint8_t> action_data() const {
    return act_->data;
  }

  // ---- authorization -------------------------------------------------
  [[nodiscard]] bool has_auth(Name account) const;
  /// Throws util::Trap ("missing authority") unless authorized.
  void require_auth(Name account) const;

  // ---- inter-contract communication -----------------------------------
  void require_recipient(Name account);
  void send_inline(Action act);
  void send_deferred(Action act);

  [[nodiscard]] const std::vector<Name>& notified() const { return notified_; }
  [[nodiscard]] const std::vector<Action>& inline_actions() const {
    return inline_actions_;
  }
  [[nodiscard]] const std::vector<Action>& deferred_actions() const {
    return deferred_actions_;
  }

  // ---- database (EOSIO db_*_i64 interface) ----------------------------
  /// Returns an iterator handle, always >= 0.
  std::int32_t db_store(std::uint64_t scope, std::uint64_t table,
                        std::uint64_t primary, util::Bytes value);
  /// Returns -1 when not found.
  std::int32_t db_find(Name code, std::uint64_t scope, std::uint64_t table,
                       std::uint64_t primary);
  std::int32_t db_lowerbound(Name code, std::uint64_t scope,
                             std::uint64_t table, std::uint64_t primary);
  /// Copy up to `out.size()` bytes of the row; returns the full row size.
  std::int32_t db_get(std::int32_t iterator, std::span<std::uint8_t> out);
  void db_update(std::int32_t iterator, util::Bytes value);
  void db_remove(std::int32_t iterator);
  /// Iterator after `iterator` within the same table; fills `primary`.
  std::int32_t db_next(std::int32_t iterator, std::uint64_t& primary);

  // ---- blockchain state ------------------------------------------------
  [[nodiscard]] std::uint32_t tapos_block_num() const;
  [[nodiscard]] std::uint32_t tapos_block_prefix() const;
  [[nodiscard]] std::uint64_t current_time() const;

  [[nodiscard]] Controller& chain() { return *chain_; }

 private:
  struct ItrEntry {
    Name code;
    std::uint64_t scope;
    std::uint64_t table;
    std::uint64_t primary;
  };

  std::int32_t add_iterator(Name code, std::uint64_t scope,
                            std::uint64_t table, std::uint64_t primary);
  const ItrEntry& iterator_at(std::int32_t handle) const;

  Controller* chain_;
  const Action* act_;
  Name receiver_;
  bool is_notification_;
  std::vector<Name> notified_;
  std::vector<Action> inline_actions_;
  std::vector<Action> deferred_actions_;
  std::vector<ItrEntry> iterators_;
};

}  // namespace wasai::chain
