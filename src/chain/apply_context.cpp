#include "chain/apply_context.hpp"

#include <algorithm>
#include <cstring>

#include "chain/controller.hpp"
#include "util/error.hpp"

namespace wasai::chain {

using util::Trap;

ApplyContext::ApplyContext(Controller& chain, const Action& act, Name receiver,
                           bool is_notification)
    : chain_(&chain),
      act_(&act),
      receiver_(receiver),
      is_notification_(is_notification) {}

bool ApplyContext::has_auth(Name account) const {
  return std::any_of(act_->authorization.begin(), act_->authorization.end(),
                     [&](const PermissionLevel& p) {
                       return p.actor == account;
                     });
}

void ApplyContext::require_auth(Name account) const {
  if (!has_auth(account)) {
    throw Trap("missing authority of " + account.to_string());
  }
}

void ApplyContext::require_recipient(Name account) {
  if (account == receiver_) return;
  if (std::find(notified_.begin(), notified_.end(), account) !=
      notified_.end()) {
    return;
  }
  notified_.push_back(account);
}

void ApplyContext::send_inline(Action act) {
  // EOSIO checks the sender is allowed to use the claimed authority; we
  // model the common case: a contract may authorize as itself or reuse an
  // authorizer of the triggering action.
  for (const auto& auth : act.authorization) {
    if (auth.actor != receiver_ && !has_auth(auth.actor)) {
      throw Trap("inline action declares unauthorized actor " +
                 auth.actor.to_string());
    }
  }
  inline_actions_.push_back(std::move(act));
}

void ApplyContext::send_deferred(Action act) {
  deferred_actions_.push_back(std::move(act));
}

std::int32_t ApplyContext::db_store(std::uint64_t scope, std::uint64_t table,
                                    std::uint64_t primary, util::Bytes value) {
  chain_->database(receiver_).store(TableKey{scope, table}, primary,
                                    std::move(value));
  return add_iterator(receiver_, scope, table, primary);
}

std::int32_t ApplyContext::db_find(Name code, std::uint64_t scope,
                                   std::uint64_t table,
                                   std::uint64_t primary) {
  const Database* db = chain_->find_database(code);
  if (db == nullptr || db->find(TableKey{scope, table}, primary) == nullptr) {
    return -1;
  }
  return add_iterator(code, scope, table, primary);
}

std::int32_t ApplyContext::db_lowerbound(Name code, std::uint64_t scope,
                                         std::uint64_t table,
                                         std::uint64_t primary) {
  const Database* db = chain_->find_database(code);
  if (db == nullptr) return -1;
  const auto key = db->lower_bound(TableKey{scope, table}, primary);
  if (!key) return -1;
  return add_iterator(code, scope, table, *key);
}

std::int32_t ApplyContext::db_get(std::int32_t iterator,
                                  std::span<std::uint8_t> out) {
  const ItrEntry& e = iterator_at(iterator);
  const Database* db = chain_->find_database(e.code);
  const util::Bytes* row =
      db ? db->find(TableKey{e.scope, e.table}, e.primary) : nullptr;
  if (row == nullptr) throw Trap("db_get: stale iterator");
  const auto n = std::min(out.size(), row->size());
  std::memcpy(out.data(), row->data(), n);
  return static_cast<std::int32_t>(row->size());
}

void ApplyContext::db_update(std::int32_t iterator, util::Bytes value) {
  const ItrEntry& e = iterator_at(iterator);
  if (e.code != receiver_) {
    throw Trap("db_update: cannot modify another contract's table");
  }
  chain_->database(receiver_).update(TableKey{e.scope, e.table}, e.primary,
                                     std::move(value));
}

void ApplyContext::db_remove(std::int32_t iterator) {
  const ItrEntry& e = iterator_at(iterator);
  if (e.code != receiver_) {
    throw Trap("db_remove: cannot modify another contract's table");
  }
  chain_->database(receiver_).erase(TableKey{e.scope, e.table}, e.primary);
}

std::int32_t ApplyContext::db_next(std::int32_t iterator,
                                   std::uint64_t& primary) {
  const ItrEntry& e = iterator_at(iterator);
  const Database* db = chain_->find_database(e.code);
  if (db == nullptr) return -1;
  const auto key = db->next(TableKey{e.scope, e.table}, e.primary);
  if (!key) return -1;
  primary = *key;
  return add_iterator(e.code, e.scope, e.table, *key);
}

std::uint32_t ApplyContext::tapos_block_num() const {
  return chain_->tapos_block_num();
}

std::uint32_t ApplyContext::tapos_block_prefix() const {
  return chain_->tapos_block_prefix();
}

std::uint64_t ApplyContext::current_time() const { return chain_->now_us(); }

std::int32_t ApplyContext::add_iterator(Name code, std::uint64_t scope,
                                        std::uint64_t table,
                                        std::uint64_t primary) {
  iterators_.push_back(ItrEntry{code, scope, table, primary});
  return static_cast<std::int32_t>(iterators_.size()) - 1;
}

const ApplyContext::ItrEntry& ApplyContext::iterator_at(
    std::int32_t handle) const {
  if (handle < 0 || static_cast<std::size_t>(handle) >= iterators_.size()) {
    throw Trap("invalid db iterator " + std::to_string(handle));
  }
  return iterators_[static_cast<std::size_t>(handle)];
}

}  // namespace wasai::chain
