#include "symbolic/solver_cache.hpp"

namespace wasai::symbolic {

void QueryDigest::absorb(util::Digest& d, const std::string& text) const {
  // Length framing keeps constraint boundaries unambiguous under
  // concatenation ("a" + "bc" vs "ab" + "c").
  d.u64(text.size());
  for (const char c : text) d.u8(static_cast<std::uint8_t>(c));
}

void QueryDigest::extend(const z3::expr& hold) {
  const std::string text = hold.to_string();
  absorb(primary_, text);
  absorb(secondary_, text);
}

QueryKey QueryDigest::flip_key(const z3::expr& flip) const {
  const std::string text = flip.to_string();
  util::Digest p = primary_;
  util::Digest s = secondary_;
  absorb(p, text);
  absorb(s, text);
  return QueryKey{p.value(), s.value()};
}

const CacheEntry* SolverCache::lookup(const QueryKey& key) {
  const auto it = map_.find(key.primary);
  if (it == map_.end() || it->second.key != key) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second.entry;
}

void SolverCache::insert(const QueryKey& key, CachedVerdict verdict,
                         ModelValues model) {
  const auto it = map_.find(key.primary);
  if (it != map_.end()) {
    it->second.key = key;
    it->second.entry = CacheEntry{verdict, std::move(model)};
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key.primary);
  map_.emplace(key.primary,
               Slot{key, CacheEntry{verdict, std::move(model)}, lru_.begin()});
  ++stats_.insertions;
  stats_.entries = map_.size();
}

}  // namespace wasai::symbolic
