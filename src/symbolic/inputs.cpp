#include "symbolic/inputs.hpp"

#include "util/error.hpp"

namespace wasai::symbolic {

using abi::ParamType;
using wasm::ValType;

InferredInputs infer_inputs(Z3Env& env, MemoryModel& mem,
                            const abi::ActionDef& def,
                            const std::vector<abi::ParamValue>& seed_params,
                            std::span<const vm::Value> concrete_args) {
  if (concrete_args.size() != def.params.size() + 1) {
    throw util::UsageError(
        "input inference: captured argument count " +
        std::to_string(concrete_args.size()) + " does not match signature " +
        def.name.to_string() + " (+self)");
  }
  if (seed_params.size() != def.params.size()) {
    throw util::UsageError("input inference: seed arity mismatch");
  }

  InferredInputs out;
  // μ_l[0]: the contract's own name (`this` in SDK-generated code).
  out.params.push_back(SymValue{ValType::I64,
                                env.bv(concrete_args[0].bits, 64)});

  for (std::uint32_t i = 0; i < def.params.size(); ++i) {
    const std::string base = "p" + std::to_string(i);
    const vm::Value& captured = concrete_args[i + 1];
    switch (def.params[i]) {
      case ParamType::Name:
      case ParamType::U64:
      case ParamType::I64: {
        z3::expr v = env.var(base, 64);
        out.params.push_back(SymValue{ValType::I64, v});
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::Whole, 0, v});
        break;
      }
      case ParamType::U32: {
        z3::expr v = env.var(base, 32);
        out.params.push_back(SymValue{ValType::I32, v});
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::Whole, 0, v});
        break;
      }
      case ParamType::F64: {
        z3::expr v = env.var(base, 64);
        out.params.push_back(SymValue{ValType::F64, v});
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::Whole, 0, v});
        break;
      }
      case ParamType::Asset: {
        // The Local slot holds the concrete pointer; the pointed-to 16
        // bytes become two symbolic 64-bit items (Table 2).
        const std::uint64_t ptr = captured.u32();
        out.params.push_back(
            SymValue{ValType::I32, env.bv(captured.u32(), 32)});
        z3::expr amount = env.var(base + "_amount", 64);
        z3::expr symbol = env.var(base + "_symbol", 64);
        mem.bind(ptr, amount, 8);
        mem.bind(ptr + 8, symbol, 8);
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::AssetAmount, 0, amount});
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::AssetSymbol, 0, symbol});
        break;
      }
      case ParamType::String: {
        // Layout: one length byte followed by the content bytes. Content
        // variables are created for the *current* seed's length; length
        // itself mutates through the random mutator, not the solver.
        const std::uint64_t ptr = captured.u32();
        out.params.push_back(
            SymValue{ValType::I32, env.bv(captured.u32(), 32)});
        z3::expr len = env.var(base + "_len", 8);
        mem.bind(ptr, len, 1);
        out.bindings.push_back(
            InputBinding{i, InputBinding::Kind::StringLen, 0, len});
        const auto& s = std::get<std::string>(seed_params[i]);
        for (std::uint32_t k = 0; k < s.size(); ++k) {
          z3::expr b = env.var(base + "_b" + std::to_string(k), 8);
          mem.bind(ptr + 1 + k, b, 1);
          out.bindings.push_back(
              InputBinding{i, InputBinding::Kind::StringByte, k, b});
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace wasai::symbolic
