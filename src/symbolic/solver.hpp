// Constraint flipping and solving (§3.4.4): negate each flippable
// conditional state, conjoin the path prefix, and ask Z3 for a model —
// each model becomes an adaptive seed.
#pragma once

#include "symbolic/replayer.hpp"

namespace wasai::symbolic {

struct SolverOptions {
  unsigned timeout_ms = 200;    // per-query budget (paper used 3,000 ms)
  std::size_t max_flips = 24;   // cap on flip targets per executed seed
};

struct AdaptiveSeeds {
  /// One mutated parameter vector per satisfiable flip.
  std::vector<std::vector<abi::ParamValue>> seeds;
  std::size_t queries = 0;
  std::size_t sat = 0;
  std::size_t unsat = 0;
  std::size_t unknown = 0;  // timeouts
};

/// Solve every flippable conditional of `replay` against the path prefix,
/// mapping each model back onto the executed seed's parameters through the
/// input bindings.
AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<abi::ParamValue>& seed_params,
                          const SolverOptions& opts = {});

}  // namespace wasai::symbolic
