// Constraint flipping and solving (§3.4.4): negate each flippable
// conditional state, conjoin the path prefix, and ask Z3 for a model —
// each model becomes an adaptive seed.
#pragma once

#include "symbolic/replayer.hpp"
#include "util/cancel.hpp"

namespace wasai::symbolic {

struct SolverOptions {
  unsigned timeout_ms = 200;    // per-query budget (paper used 3,000 ms)
  std::size_t max_flips = 24;   // cap on flip targets per executed seed
  /// Hard wall-clock cap per query. Z3's "timeout" parameter is a soft
  /// limit that the solver can overshoot; a query whose wall time exceeds
  /// this cap is accounted as `unknown` and its model discarded. 0 derives
  /// a generous default (10×timeout_ms + 1000) so the cap only fires on
  /// genuinely stuck queries, not on scheduler jitter — keeping the seed
  /// stream deterministic in practice.
  unsigned hard_timeout_ms = 0;
  /// Total wall budget for one solve_flips call; once exhausted, remaining
  /// flips are skipped (`aborted` is set). 0 = unlimited.
  unsigned wall_budget_ms = 0;
  /// Cooperative cancellation checked between queries (campaign deadlines).
  /// Not owned; may be null.
  const util::CancelToken* cancel = nullptr;

  [[nodiscard]] unsigned effective_hard_timeout_ms() const {
    return hard_timeout_ms != 0 ? hard_timeout_ms : 10 * timeout_ms + 1000;
  }
};

struct AdaptiveSeeds {
  /// One mutated parameter vector per satisfiable flip, in flip (i.e.
  /// serial path) order.
  std::vector<std::vector<abi::ParamValue>> seeds;
  std::size_t queries = 0;
  std::size_t sat = 0;
  std::size_t unsat = 0;
  std::size_t unknown = 0;  // timeouts and per-query wall overshoots
  double wall_ms = 0;       // total wall time spent solving
  bool aborted = false;     // stopped early (wall budget or cancellation)
};

/// Apply one solved binding onto a parameter vector. Shared by the serial
/// and parallel solvers so both map models onto seeds identically.
void apply_model_binding(std::vector<abi::ParamValue>& params,
                         const InputBinding& binding, std::uint64_t value);

/// Solve every flippable conditional of `replay` against the path prefix,
/// mapping each model back onto the executed seed's parameters through the
/// input bindings.
AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<abi::ParamValue>& seed_params,
                          const SolverOptions& opts = {});

}  // namespace wasai::symbolic
