// Constraint flipping and solving (§3.4.4): negate each flippable
// conditional state, conjoin the path prefix, and ask Z3 for a model —
// each model becomes an adaptive seed.
//
// Two serial strategies share one walk:
//  * incremental (default): a single walker z3::solver accumulates the
//    path prefix once — assert hold k, push, assert flip, serialize, pop,
//    continue — so one solve_flips call issues O(path) constraint
//    assertions; each serialized flip query is decided in a fresh context
//    (the exact procedure the parallel workers use). Checking directly on
//    the walker would avoid the serialization, but Z3's incremental engine
//    picks different models than a one-shot solver for the same query
//    (measured: the majority of sat models differ), which would break the
//    cross-mode seed parity this repo guarantees. The SMT-LIB2 round trip
//    is model-stable: fresh-context from_string reproduces the one-shot
//    models bit-for-bit.
//  * legacy (incremental = false): a fresh solver per flip re-asserts the
//    whole prefix, O(path²) assertions per call. Kept as the reference
//    implementation the parity tests and the perf bench compare against.
// An optional cross-iteration SolverCache short-circuits queries that were
// already decided in an earlier iteration (see solver_cache.hpp).
#pragma once

#include "symbolic/replayer.hpp"
#include "symbolic/solver_cache.hpp"
#include "util/cancel.hpp"

namespace wasai::symbolic {

struct SolverOptions {
  unsigned timeout_ms = 200;    // per-query budget (paper used 3,000 ms)
  std::size_t max_flips = 24;   // cap on flip targets per executed seed
  /// Incremental path-prefix solving (see header note). Off = legacy
  /// fresh-solver-per-flip; parity between the two is tested, and the perf
  /// bench toggles this knob.
  bool incremental = true;
  /// Cross-iteration query cache; not owned, may be null (= no caching).
  /// One cache must only ever see queries from one Z3Env.
  SolverCache* cache = nullptr;
  /// Hard wall-clock cap per query. Z3's "timeout" parameter is a soft
  /// limit that the solver can overshoot. Accounting for a query whose
  /// wall time exceeds this cap:
  ///  * verdict sat  -> counted as `sat_late`; the model is still discarded
  ///    (using it would make the seed stream timing-dependent);
  ///  * anything else -> counted as `unknown`.
  /// Overshot queries are never cached. 0 derives a generous default
  /// (10×timeout_ms + 1000) so the cap only fires on genuinely stuck
  /// queries, not on scheduler jitter — keeping the seed stream
  /// deterministic in practice.
  unsigned hard_timeout_ms = 0;
  /// Total wall budget for one solve_flips call; once exhausted, remaining
  /// flips are skipped (`aborted` is set). 0 = unlimited.
  unsigned wall_budget_ms = 0;
  /// Static flip gate (the pre-analysis branch table lowered onto site
  /// ids): a non-zero entry at PathStep.site marks that flip as provably
  /// futile — its condition can never depend on action input — and the
  /// walk skips the query entirely. A pruned flip still consumes a flip
  /// slot, so the schedule under max_flips is identical with and without
  /// the gate. Sites beyond the vector (or a null pointer) are never
  /// pruned. Not owned.
  const std::vector<std::uint8_t>* prune_flip_sites = nullptr;
  /// Opt-in prioritization (NOT schedule-neutral): pruned flips stop
  /// consuming max_flips slots, so the freed budget reaches deeper
  /// taint-reachable flip targets the cap would otherwise cut off. Off by
  /// default — turning it on changes the flip schedule whenever the cap
  /// binds.
  bool pruned_flips_free_budget = false;
  /// Cooperative cancellation checked between queries (campaign deadlines).
  /// Not owned; may be null.
  const util::CancelToken* cancel = nullptr;
  /// Observability track of the calling thread (may be null = off). The
  /// whole call is wrapped in a `solve_flips` span; per-query wall times
  /// feed the `solver.query_us` histogram. Parallel workers only touch the
  /// shared histogram/counters, never the track's span log.
  obs::Obs* obs = nullptr;

  [[nodiscard]] unsigned effective_hard_timeout_ms() const {
    return hard_timeout_ms != 0 ? hard_timeout_ms : 10 * timeout_ms + 1000;
  }
};

struct AdaptiveSeeds {
  /// One mutated parameter vector per satisfiable flip, in flip (i.e.
  /// serial path) order.
  std::vector<std::vector<abi::ParamValue>> seeds;
  /// Z3 check() calls actually issued (cache hits do not count).
  std::size_t queries = 0;
  // Verdict accounting: sat + sat_late + unsat + unknown covers every flip
  // attempted (whether answered by Z3 or by the cache).
  std::size_t sat = 0;
  std::size_t sat_late = 0;  // sat, but past the hard cap: model discarded
  std::size_t unsat = 0;
  std::size_t unknown = 0;   // timeouts and non-sat wall overshoots
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;  // flips that went to Z3 despite a cache
  /// Flips skipped by the static gate (prune_flip_sites). Not part of the
  /// sat/unsat/unknown partition: a pruned flip was never decided.
  std::size_t pruned = 0;
  double wall_ms = 0;            // total wall time spent solving
  bool aborted = false;  // stopped early (wall budget or cancellation)
};

/// Apply one solved binding onto a parameter vector. Shared by the serial
/// and parallel solvers so both map models onto seeds identically.
void apply_model_binding(std::vector<abi::ParamValue>& params,
                         const InputBinding& binding, std::uint64_t value);

/// Extract every zero-arity numeral interpretation of `model` as
/// (name, value) pairs — the representation the cache stores and both
/// solvers map back onto seeds.
ModelValues extract_model_values(const z3::model& model);

/// Apply extracted model values onto a copy of the seed parameters through
/// the input bindings; bindings whose variable the model does not mention
/// keep their executed-seed values.
std::vector<abi::ParamValue> seed_from_model_values(
    const std::vector<abi::ParamValue>& seed_params,
    const std::vector<InputBinding>& bindings, const ModelValues& values);

/// Outcome of one serialized flip query.
struct SmtQueryResult {
  enum class Verdict : std::uint8_t { Sat, Unsat, Unknown } verdict =
      Verdict::Unknown;
  ModelValues model;       // populated for sat within the hard cap
  bool overshoot = false;  // wall time exceeded hard_ms; model discarded
};

/// Decide one SMT-LIB2 query in a fresh Z3 context. The single solving
/// procedure behind both the serial incremental walk and the parallel
/// workers — using exactly one procedure everywhere is what makes the
/// emitted seed stream identical across modes. Safe to call from any
/// thread (the context is function-local).
SmtQueryResult solve_smt2_query(const std::string& smt2, unsigned timeout_ms,
                                double hard_ms);

/// Solve every flippable conditional of `replay` against the path prefix,
/// mapping each model back onto the executed seed's parameters through the
/// input bindings.
AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<abi::ParamValue>& seed_params,
                          const SolverOptions& opts = {});

}  // namespace wasai::symbolic
