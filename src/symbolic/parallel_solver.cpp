#include "symbolic/parallel_solver.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;
using Clock = std::chrono::steady_clock;

struct QueryResult {
  enum class Verdict { Sat, Unsat, Unknown } verdict = Verdict::Unknown;
  std::map<std::string, std::uint64_t> model;  // var name -> value
  bool attempted = false;  // false when skipped by budget/cancellation
};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Solve one SMT-LIB2 query in a worker-owned context. A result whose wall
/// time exceeds `hard_ms` is downgraded to Unknown — same accounting as the
/// serial solver, so the two stay in lockstep.
QueryResult solve_one(const std::string& smt2, unsigned timeout_ms,
                      double hard_ms) {
  QueryResult out;
  out.attempted = true;
  z3::context ctx;
  z3::solver solver(ctx);
  z3::params p(ctx);
  p.set("timeout", timeout_ms);
  solver.set(p);
  solver.from_string(smt2.c_str());
  const auto start = Clock::now();
  const auto verdict = solver.check();
  if (ms_since(start) > hard_ms) {
    return out;  // overshoot: Unknown, model discarded
  }
  if (verdict == z3::unsat) {
    out.verdict = QueryResult::Verdict::Unsat;
  } else if (verdict == z3::sat) {
    out.verdict = QueryResult::Verdict::Sat;
    z3::model model = solver.get_model();
    for (unsigned i = 0; i < model.size(); ++i) {
      const z3::func_decl decl = model.get_const_decl(i);
      if (decl.arity() != 0) continue;
      const z3::expr value = model.get_const_interp(decl);
      if (value.is_numeral()) {
        out.model.emplace(decl.name().str(), value.get_numeral_uint64());
      }
    }
  }
  return out;
}

}  // namespace

AdaptiveSeeds solve_flips_parallel(Z3Env& env, const ReplayResult& replay,
                                   const std::vector<ParamValue>& seed,
                                   const SolverOptions& options,
                                   unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto start = Clock::now();
  const double hard_ms = options.effective_hard_timeout_ms();

  // Export every flip query as SMT-LIB2 in the shared context, in serial
  // path order — queries[i] is flip i, and results[i] holds its verdict,
  // whichever worker solves it.
  std::vector<std::string> queries;
  std::size_t flips = 0;
  for (std::size_t k = 0;
       k < replay.path.size() && flips < options.max_flips; ++k) {
    const PathStep& step = replay.path[k];
    if (!step.can_flip || !step.flip) continue;
    ++flips;
    z3::solver exporter(env.ctx());
    for (std::size_t j = 0; j < k; ++j) {
      if (replay.path[j].hold) exporter.add(*replay.path[j].hold);
    }
    exporter.add(*step.flip);
    queries.push_back(exporter.to_smt2());
  }

  // Fan the queries out over the worker pool.
  AdaptiveSeeds out;
  std::vector<QueryResult> results(queries.size());
  std::size_t next = 0;
  bool stop = false;
  std::mutex mu;
  std::vector<std::thread> pool;
  const auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop || next >= queries.size()) return;
        if ((options.cancel != nullptr && options.cancel->expired()) ||
            (options.wall_budget_ms != 0 &&
             ms_since(start) >= options.wall_budget_ms)) {
          stop = true;
          return;
        }
        index = next++;
      }
      results[index] = solve_one(queries[index], options.timeout_ms, hard_ms);
    }
  };
  const unsigned n = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(queries.size(), 1)));
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  out.aborted = stop;

  // Map each model back onto the seed parameters by variable name, walking
  // results in flip order so the emitted seed sequence matches the serial
  // solver regardless of which worker finished first.
  for (const auto& result : results) {
    if (!result.attempted) continue;  // skipped by budget/cancellation
    ++out.queries;
    switch (result.verdict) {
      case QueryResult::Verdict::Unsat:
        ++out.unsat;
        break;
      case QueryResult::Verdict::Unknown:
        ++out.unknown;
        break;
      case QueryResult::Verdict::Sat: {
        ++out.sat;
        std::vector<ParamValue> mutated = seed;
        for (const auto& binding : replay.bindings) {
          const auto it = result.model.find(binding.var.decl().name().str());
          if (it == result.model.end()) continue;
          apply_model_binding(mutated, binding, it->second);
        }
        out.seeds.push_back(std::move(mutated));
        break;
      }
    }
  }
  out.wall_ms = ms_since(start);
  return out;
}

}  // namespace wasai::symbolic
