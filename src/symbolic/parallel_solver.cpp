#include "symbolic/parallel_solver.hpp"

#include <bit>
#include <future>
#include <map>
#include <thread>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;

struct QueryResult {
  enum class Verdict { Sat, Unsat, Unknown } verdict = Verdict::Unknown;
  std::map<std::string, std::uint64_t> model;  // var name -> value
};

/// Solve one SMT-LIB2 query in a worker-owned context.
QueryResult solve_one(const std::string& smt2, unsigned timeout_ms) {
  QueryResult out;
  z3::context ctx;
  z3::solver solver(ctx);
  z3::params p(ctx);
  p.set("timeout", timeout_ms);
  solver.set(p);
  solver.from_string(smt2.c_str());
  const auto verdict = solver.check();
  if (verdict == z3::unsat) {
    out.verdict = QueryResult::Verdict::Unsat;
  } else if (verdict == z3::sat) {
    out.verdict = QueryResult::Verdict::Sat;
    z3::model model = solver.get_model();
    for (unsigned i = 0; i < model.size(); ++i) {
      const z3::func_decl decl = model.get_const_decl(i);
      if (decl.arity() != 0) continue;
      const z3::expr value = model.get_const_interp(decl);
      if (value.is_numeral()) {
        out.model.emplace(decl.name().str(), value.get_numeral_uint64());
      }
    }
  }
  return out;
}

/// Name-keyed version of the serial solver's binding application.
void apply_named_binding(std::vector<ParamValue>& params,
                         const InputBinding& binding, std::uint64_t value) {
  ParamValue& p = params.at(binding.param_index);
  switch (binding.kind) {
    case InputBinding::Kind::Whole:
      if (std::holds_alternative<abi::Name>(p)) {
        p = abi::Name(value);
      } else if (std::holds_alternative<std::uint64_t>(p)) {
        p = value;
      } else if (std::holds_alternative<std::int64_t>(p)) {
        p = static_cast<std::int64_t>(value);
      } else if (std::holds_alternative<std::uint32_t>(p)) {
        p = static_cast<std::uint32_t>(value);
      } else if (std::holds_alternative<double>(p)) {
        p = std::bit_cast<double>(value);
      }
      break;
    case InputBinding::Kind::AssetAmount:
      std::get<abi::Asset>(p).amount = static_cast<std::int64_t>(value);
      break;
    case InputBinding::Kind::AssetSymbol:
      std::get<abi::Asset>(p).symbol = abi::Symbol(value);
      break;
    case InputBinding::Kind::StringLen: {
      auto& s = std::get<std::string>(p);
      s.resize(std::min<std::uint64_t>(value & 0xff, 64), 'a');
      break;
    }
    case InputBinding::Kind::StringByte: {
      auto& s = std::get<std::string>(p);
      if (binding.byte_index < s.size()) {
        s[binding.byte_index] = static_cast<char>(value & 0xff);
      }
      break;
    }
  }
}

}  // namespace

AdaptiveSeeds solve_flips_parallel(Z3Env& env, const ReplayResult& replay,
                                   const std::vector<ParamValue>& seed,
                                   const SolverOptions& options,
                                   unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // Export every flip query as SMT-LIB2 in the shared context.
  std::vector<std::string> queries;
  std::size_t flips = 0;
  for (std::size_t k = 0;
       k < replay.path.size() && flips < options.max_flips; ++k) {
    const PathStep& step = replay.path[k];
    if (!step.can_flip || !step.flip) continue;
    ++flips;
    z3::solver exporter(env.ctx());
    for (std::size_t j = 0; j < k; ++j) {
      if (replay.path[j].hold) exporter.add(*replay.path[j].hold);
    }
    exporter.add(*step.flip);
    queries.push_back(exporter.to_smt2());
  }

  // Fan the queries out over the worker pool.
  AdaptiveSeeds out;
  out.queries = queries.size();
  std::vector<QueryResult> results(queries.size());
  std::size_t next = 0;
  std::mutex mu;
  std::vector<std::thread> pool;
  const auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= queries.size()) return;
        index = next++;
      }
      results[index] = solve_one(queries[index], options.timeout_ms);
    }
  };
  const unsigned n = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(queries.size(), 1)));
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  // Map each model back onto the seed parameters by variable name.
  for (const auto& result : results) {
    switch (result.verdict) {
      case QueryResult::Verdict::Unsat:
        ++out.unsat;
        break;
      case QueryResult::Verdict::Unknown:
        ++out.unknown;
        break;
      case QueryResult::Verdict::Sat: {
        ++out.sat;
        std::vector<ParamValue> mutated = seed;
        for (const auto& binding : replay.bindings) {
          const auto it = result.model.find(binding.var.decl().name().str());
          if (it == result.model.end()) continue;
          apply_named_binding(mutated, binding, it->second);
        }
        out.seeds.push_back(std::move(mutated));
        break;
      }
    }
  }
  return out;
}

}  // namespace wasai::symbolic
