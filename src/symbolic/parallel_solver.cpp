#include "symbolic/parallel_solver.hpp"

#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;
using Clock = std::chrono::steady_clock;

/// One flip query as seen by the coordinator: answered by the
/// cross-iteration cache during the pre-pass, deduplicated against an
/// identical earlier query of the same batch, or exported as SMT-LIB2 text
/// for a worker to solve. The cache entry is copied by value: merge-time
/// insert() calls can LRU-evict the cache slot a pointer would dangle into.
struct PendingFlip {
  QueryKey key;                  // meaningful only with a cache
  bool pruned = false;           // statically futile: never dispatched
  std::optional<CacheEntry> hit; // engaged: answered by the cache
  /// Index of an identical query earlier in this batch. Duplicates are not
  /// dispatched; the merge resolves them the way the serial walk would —
  /// from the cache once the first instance's verdict lands there, or by an
  /// inline re-query when it does not (overshoot/unknown are never cached).
  std::optional<std::size_t> dup_of;
  std::string smt2;              // exported query (dispatched misses only)
};

/// One worker outcome: the shared query result plus whether the worker got
/// to it at all before the budget/cancellation gate fired.
struct QueryResult {
  SmtQueryResult result;
  bool attempted = false;  // false when skipped by budget/cancellation
};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

AdaptiveSeeds solve_flips_parallel(Z3Env& env, const ReplayResult& replay,
                                   const std::vector<ParamValue>& seed,
                                   const SolverOptions& options,
                                   unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Only the coordinator thread owns the span log; workers record their
  // per-query wall times through the (thread-safe) shared histogram.
  const obs::Span span(options.obs, obs::span_name::kSolve);
  const auto start = Clock::now();
  const double hard_ms = options.effective_hard_timeout_ms();

  // Coordinator pre-pass: walk the path once with a single exporter solver
  // (prefix holds asserted as they are passed; each flip exported from a
  // push() scope), so exporting is O(path) assertions instead of the old
  // O(path²) re-assert. Flips the cross-iteration cache already decided are
  // answered here and never reach a worker; the exporter itself is
  // materialized lazily on the first miss so an all-hits walk never pays
  // Z3 internalization. flips[i] is flip i in serial path order, whichever
  // worker solves it.
  std::vector<PendingFlip> flips;
  std::optional<z3::solver> exporter;
  std::vector<const z3::expr*> prefix;
  QueryDigest digest;
  // Intra-batch dedup (cache mode only): primary digest -> index of the
  // first pending miss with that key. The serial walk answers a repeated
  // (prefix, flip) query from the cache entry its first instance inserted;
  // dispatching both copies here would instead give each a timing-dependent
  // verdict of its own (one can overshoot the hard cap while the other
  // lands sat), diverging from the serial seed stream.
  std::unordered_map<std::uint64_t, std::size_t> first_by_key;
  std::size_t slots_used = 0;  // flips counted against max_flips
  for (std::size_t k = 0;
       k < replay.path.size() && slots_used < options.max_flips; ++k) {
    const PathStep& step = replay.path[k];
    if (step.can_flip && step.flip) {
      PendingFlip pending;
      // Statically futile flips consume their slot (unless the opt-in
      // prioritization knob frees it) but are neither cached nor
      // dispatched — the same schedule the serial walk produces under its
      // gate.
      if (options.prune_flip_sites != nullptr &&
          step.site < options.prune_flip_sites->size() &&
          (*options.prune_flip_sites)[step.site] != 0) {
        pending.pruned = true;
        if (!options.pruned_flips_free_budget) ++slots_used;
        flips.push_back(std::move(pending));
        if (step.hold) {
          prefix.push_back(&*step.hold);
          if (exporter.has_value()) exporter->add(*step.hold);
          if (options.cache != nullptr) digest.extend(*step.hold);
        }
        continue;
      }
      ++slots_used;
      if (options.cache != nullptr) {
        pending.key = digest.flip_key(*step.flip);
        if (const CacheEntry* hit = options.cache->lookup(pending.key)) {
          pending.hit = *hit;
        } else {
          const auto first = first_by_key.find(pending.key.primary);
          if (first != first_by_key.end() &&
              flips[first->second].key == pending.key) {
            pending.dup_of = first->second;
          } else {
            first_by_key.emplace(pending.key.primary, flips.size());
          }
        }
      }
      if (!pending.hit.has_value() && !pending.dup_of.has_value()) {
        if (!exporter.has_value()) {
          exporter.emplace(env.ctx());
          for (const z3::expr* hold : prefix) exporter->add(*hold);
        }
        exporter->push();
        exporter->add(*step.flip);
        pending.smt2 = exporter->to_smt2();
        exporter->pop();
      }
      flips.push_back(std::move(pending));
    }
    if (step.hold) {
      prefix.push_back(&*step.hold);
      if (exporter.has_value()) exporter->add(*step.hold);
      if (options.cache != nullptr) digest.extend(*step.hold);
    }
  }

  // Fan the cache misses out over the worker pool (first instances only —
  // duplicates are resolved at merge time).
  AdaptiveSeeds out;
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < flips.size(); ++i) {
    if (!flips[i].pruned && !flips[i].hit.has_value() &&
        !flips[i].dup_of.has_value()) {
      miss_indices.push_back(i);
    }
  }
  std::vector<QueryResult> results(flips.size());
  std::size_t next = 0;
  bool stop = false;
  std::mutex mu;
  std::vector<std::thread> pool;
  const auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop || next >= miss_indices.size()) return;
        if ((options.cancel != nullptr && options.cancel->expired()) ||
            (options.wall_budget_ms != 0 &&
             ms_since(start) >= options.wall_budget_ms)) {
          stop = true;
          return;
        }
        index = miss_indices[next++];
      }
      const auto query_begin = Clock::now();
      results[index] = QueryResult{
          solve_smt2_query(flips[index].smt2, options.timeout_ms, hard_ms),
          true};
      if (options.obs != nullptr) {
        options.obs->count("solver.queries");
        options.obs->latency_us("solver.query_us",
                                ms_since(query_begin) * 1000.0);
      }
    }
  };
  const unsigned n = std::min<unsigned>(
      threads,
      static_cast<unsigned>(std::max<std::size_t>(miss_indices.size(), 1)));
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  out.aborted = stop;

  // Merge in flip order so the emitted seed sequence matches the serial
  // solver regardless of which worker finished first. Freshly solved
  // sat/unsat verdicts feed the cache for later iterations.
  const auto consume_cached = [&](const CacheEntry& entry) {
    ++out.cache_hits;
    if (options.obs != nullptr) options.obs->count("solver.cache_hits");
    if (entry.verdict == CachedVerdict::Sat) {
      ++out.sat;
      out.seeds.push_back(
          seed_from_model_values(seed, replay.bindings, entry.model));
    } else {
      ++out.unsat;
    }
  };
  const auto consume_solved = [&](const SmtQueryResult& result,
                                  const QueryKey& key) {
    ++out.queries;
    if (options.cache != nullptr) ++out.cache_misses;
    if (result.overshoot) {
      // Same sat_late/unknown split as the serial solver; never cached.
      if (result.verdict == SmtQueryResult::Verdict::Sat) {
        ++out.sat_late;
      } else {
        ++out.unknown;
      }
      return;
    }
    switch (result.verdict) {
      case SmtQueryResult::Verdict::Unsat:
        ++out.unsat;
        if (options.cache != nullptr) {
          options.cache->insert(key, CachedVerdict::Unsat);
        }
        break;
      case SmtQueryResult::Verdict::Unknown:
        ++out.unknown;
        break;
      case SmtQueryResult::Verdict::Sat: {
        ++out.sat;
        out.seeds.push_back(
            seed_from_model_values(seed, replay.bindings, result.model));
        if (options.cache != nullptr) {
          options.cache->insert(key, CachedVerdict::Sat,
                                ModelValues(result.model));
        }
        break;
      }
    }
  };
  for (std::size_t i = 0; i < flips.size(); ++i) {
    const PendingFlip& pending = flips[i];
    if (pending.pruned) {
      ++out.pruned;
      if (options.obs != nullptr) options.obs->count("solver.flips_pruned");
      continue;
    }
    if (pending.dup_of.has_value()) {
      // An identical query earlier in this batch (its merge step ran
      // already — dup_of < i). Resolve exactly as the serial walk would on
      // its second encounter: the first instance's sat/unsat verdict is in
      // the cache now, so this is a hit; if the first instance overshot or
      // came back unknown (never cached), serial re-issues the query, and
      // so do we — inline on the coordinator, behind the same gates the
      // serial walk applies between queries.
      if (const CacheEntry* entry = options.cache->lookup(pending.key)) {
        consume_cached(*entry);
        continue;
      }
      if ((options.cancel != nullptr && options.cancel->expired()) ||
          (options.wall_budget_ms != 0 &&
           ms_since(start) >= options.wall_budget_ms)) {
        out.aborted = true;
        break;
      }
      const auto query_begin = Clock::now();
      const SmtQueryResult requeried = solve_smt2_query(
          flips[*pending.dup_of].smt2, options.timeout_ms, hard_ms);
      if (options.obs != nullptr) {
        options.obs->count("solver.queries");
        options.obs->latency_us("solver.query_us",
                                ms_since(query_begin) * 1000.0);
      }
      consume_solved(requeried, pending.key);
      continue;
    }
    if (!pending.hit.has_value() && !results[i].attempted) {
      // Workers drain misses in flip order, so the first unattempted miss
      // is the budget/cancellation abort point; stopping here matches the
      // serial walk, which emits nothing past its abort break.
      break;
    }
    if (pending.hit.has_value()) {
      consume_cached(*pending.hit);
      continue;
    }
    consume_solved(results[i].result, pending.key);
  }
  out.wall_ms = ms_since(start);
  return out;
}

}  // namespace wasai::symbolic
