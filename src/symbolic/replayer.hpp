// The EOSVM simulator (§3.4.3): replays a captured trace through the
// operational semantics of Table 3, building symbolic machine states and
// collecting the conditional states whose constraints the flipper negates.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "instrument/trace.hpp"
#include "obs/obs.hpp"
#include "symbolic/inputs.hpp"
#include "symbolic/memory_model.hpp"
#include "wasm/module.hpp"

namespace wasai::symbolic {

/// Raised when the trace and module disagree (corrupt trace, wrong site
/// table). The fuzzer skips symbolic feedback for that run.
class ReplayError : public util::Error {
 public:
  explicit ReplayError(const std::string& what)
      : util::Error("replay: " + what) {}
};

/// One conditional state (§3.1): a br_if/if branch or an eosio_assert.
struct PathStep {
  std::uint32_t site;
  bool is_assert = false;
  bool can_flip = false;     // condition depends on symbolic input
  bool taken = false;        // concrete direction (branches)
  std::optional<z3::expr> hold;  // constraint satisfied by this trace
  std::optional<z3::expr> flip;  // constraint for the unexplored side
};

/// One library-API invocation observed in the trace.
struct ApiCall {
  std::string name;
  std::uint32_t site = 0;
  std::vector<SymValue> args;
  std::optional<vm::Value> ret;  // captured by call_post
  bool completed = false;
};

/// Concrete operand pair of an executed i64.eq / i64.ne — inspected by the
/// Fake Notif guard oracle (§3.5).
struct ComparisonRecord {
  std::uint32_t site;
  std::uint64_t lhs;
  std::uint64_t rhs;
};

struct ReplayResult {
  std::vector<PathStep> path;
  std::vector<ApiCall> api_calls;
  std::vector<std::uint32_t> function_chain;  // defined functions, in order
  std::vector<ComparisonRecord> i64_comparisons;
  std::vector<InputBinding> bindings;
  bool trapped = false;
  bool completed_scope = false;  // the action function returned normally
  std::size_t events_replayed = 0;
};

/// Where the dispatcher hands control to the action function.
struct ActionCallSite {
  std::uint32_t func_index;   // action function, original index space
  std::size_t begin_event;    // index of its FunctionBegin in the trace
  std::vector<vm::Value> concrete_args;  // captured by call_pre hooks
};

/// §3.4.2's dispatcher analysis: find the first call_indirect (or direct
/// call to a defined function) made by apply() and resolve its target.
/// When `expected_params` is given (ABI parameter count + self), candidates
/// with a different signature — e.g. obfuscation helpers invoked from
/// apply — are skipped.
std::optional<ActionCallSite> locate_action_call(
    const instrument::ActionTrace& trace, const instrument::SiteTable& sites,
    const wasm::Module& module,
    std::optional<std::size_t> expected_params = std::nullopt);

/// Symbolic machine state exposed to a ReplayObserver, snapshotted BEFORE
/// the replayed instruction mutates it. Spans alias live machine state and
/// are only valid during the callback.
struct ReplayStepView {
  instrument::EventKind kind = instrument::EventKind::Instr;
  std::uint32_t site = 0;            // site id of the replayed event
  std::uint32_t func_index = 0;      // original function of the site
  std::uint32_t instr_index = 0;     // instruction index within its body
  std::span<const SymValue> stack;   // full symbolic stack (action-relative)
  std::size_t frame_stack_base = 0;  // current frame's stack base
  std::span<const SymValue> locals;  // current frame's Local section
  std::span<const SymValue> globals;
};

/// Observes the symbolic machine as the trace replays. The differential
/// oracle pairs these snapshots with the concrete ExecProbe stream; normal
/// fuzzing passes no observer.
class ReplayObserver {
 public:
  virtual ~ReplayObserver() = default;
  /// Fired for every Instr / CallDirect / CallIndirect event, i.e. exactly
  /// once per original instruction the action executed.
  virtual void on_event(const ReplayStepView& view) = 0;
  /// Fired once after the last event, with the final memory model and
  /// global state.
  virtual void on_finish(const MemoryModel& memory,
                         std::span<const SymValue> globals) = 0;
};

/// Replay `trace` starting at the action function identified by `site`.
/// `module` must be the ORIGINAL (uninstrumented) module. A non-null `obs`
/// wraps the replay in a `replay` phase span and counts replayed events.
ReplayResult replay(Z3Env& env, const wasm::Module& module,
                    const instrument::SiteTable& sites,
                    const instrument::ActionTrace& trace,
                    const ActionCallSite& site, const abi::ActionDef& def,
                    const std::vector<abi::ParamValue>& seed_params,
                    ReplayObserver* observer = nullptr,
                    obs::Obs* obs = nullptr);

}  // namespace wasai::symbolic
