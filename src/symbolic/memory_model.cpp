#include "symbolic/memory_model.hpp"

namespace wasai::symbolic {

void MemoryModel::store(std::uint64_t addr, const SymValue& value,
                        unsigned size_bytes) {
  // Fast path: concrete values split into byte constants directly (the
  // common case when replaying deserialized data).
  if (const auto concrete = value.concrete()) {
    for (unsigned i = 0; i < size_bytes; ++i) {
      bytes_.insert_or_assign(addr + i,
                              env_->bv((*concrete >> (i * 8)) & 0xff, 8));
    }
    return;
  }
  // Widen the expression so byte extraction is uniform.
  z3::expr e = value.e;
  if (e.get_sort().bv_size() < size_bytes * 8) {
    e = z3::zext(e, size_bytes * 8 - e.get_sort().bv_size());
  }
  for (unsigned i = 0; i < size_bytes; ++i) {
    const z3::expr byte = e.extract(i * 8 + 7, i * 8);
    bytes_.insert_or_assign(addr + i, byte.simplify());
  }
}

void MemoryModel::bind(std::uint64_t addr, const z3::expr& value,
                       unsigned size_bytes) {
  for (unsigned i = 0; i < size_bytes; ++i) {
    bytes_.insert_or_assign(addr + i, value.extract(i * 8 + 7, i * 8));
  }
}

z3::expr MemoryModel::byte_at(std::uint64_t addr) {
  const auto it = bytes_.find(addr);
  if (it != bytes_.end()) return it->second;
  // Symbolic load object ⟨a, 1⟩: unknown memory content at a concrete
  // address. Recorded so repeated loads observe a consistent value.
  ++unknown_loads_;
  z3::expr fresh =
      env_->var("mem_" + std::to_string(addr), 8);
  bytes_.emplace(addr, fresh);
  return fresh;
}

SymValue MemoryModel::load(std::uint64_t addr, unsigned size_bytes,
                           bool sign_extend, wasm::ValType result_type) {
  const unsigned target_bits =
      (result_type == wasm::ValType::I32 || result_type == wasm::ValType::F32)
          ? 32
          : 64;
  const unsigned have = size_bytes * 8;

  // Fast path: all bytes present and concrete.
  bool all_concrete = true;
  std::uint64_t raw = 0;
  for (unsigned i = 0; i < size_bytes && all_concrete; ++i) {
    const auto it = bytes_.find(addr + i);
    if (it == bytes_.end() || !it->second.is_numeral()) {
      all_concrete = false;
    } else {
      raw |= it->second.get_numeral_uint64() << (i * 8);
    }
  }
  if (all_concrete) {
    if (sign_extend && have < 64) {
      raw = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(raw << (64 - have)) >>
          (64 - have));
    }
    if (target_bits == 32) raw = static_cast<std::uint32_t>(raw);
    return SymValue{result_type, env_->bv(raw, target_bits)};
  }

  z3::expr value = byte_at(addr);
  for (unsigned i = 1; i < size_bytes; ++i) {
    value = z3::concat(byte_at(addr + i), value);  // little-endian
  }
  if (have < target_bits) {
    value = sign_extend ? z3::sext(value, target_bits - have)
                        : z3::zext(value, target_bits - have);
  }
  return SymValue{result_type, value.simplify()};
}

bool has_variables(const z3::expr& e) {
  if (e.is_numeral()) return false;
  if (e.is_const()) return true;  // uninterpreted constant (a variable)
  for (unsigned i = 0; i < e.num_args(); ++i) {
    if (has_variables(e.arg(i))) return true;
  }
  return false;
}

}  // namespace wasai::symbolic
