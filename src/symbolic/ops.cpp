#include "symbolic/ops.hpp"

#include "eosvm/vm.hpp"

namespace wasai::symbolic {

namespace {

using wasm::Opcode;
using wasm::ValType;

vm::Value to_concrete(const SymValue& v) {
  return vm::Value{v.type, v.concrete().value()};
}

/// Concrete fallback: evaluate with the interpreter's semantics when all
/// operands are concrete; otherwise return a fresh unconstrained variable.
SymValue fallback_unary(Z3Env& env, Opcode op, const SymValue& x) {
  const auto& info = wasm::op_info(op);
  const unsigned bits =
      (info.result == ValType::I32 || info.result == ValType::F32) ? 32 : 64;
  if (x.is_concrete()) {
    const vm::Value r = vm::eval_unary_op(op, to_concrete(x));
    return SymValue{info.result, env.bv(r.bits, bits)};
  }
  return SymValue{info.result, env.fresh(info.name, bits)};
}

SymValue fallback_binary(Z3Env& env, Opcode op, const SymValue& a,
                         const SymValue& b) {
  const auto& info = wasm::op_info(op);
  const unsigned bits =
      (info.result == ValType::I32 || info.result == ValType::F32) ? 32 : 64;
  if (a.is_concrete() && b.is_concrete()) {
    const vm::Value r =
        vm::eval_binary_op(op, to_concrete(a), to_concrete(b));
    return SymValue{info.result, env.bv(r.bits, bits)};
  }
  return SymValue{info.result, env.fresh(info.name, bits)};
}

z3::expr masked_shift(Z3Env& env, const z3::expr& amount, unsigned bits) {
  return amount & env.bv(bits - 1, bits);
}

z3::expr rotl_expr(Z3Env& env, const z3::expr& a, const z3::expr& n,
                   unsigned bits) {
  const z3::expr k = masked_shift(env, n, bits);
  return z3::shl(a, k) | z3::lshr(a, env.bv(bits, bits) - k);
}

z3::expr rotr_expr(Z3Env& env, const z3::expr& a, const z3::expr& n,
                   unsigned bits) {
  const z3::expr k = masked_shift(env, n, bits);
  return z3::lshr(a, k) | z3::shl(a, env.bv(bits, bits) - k);
}

}  // namespace

SymValue sym_unary(Z3Env& env, Opcode op, const SymValue& x) {
  const auto& info = wasm::op_info(op);
  switch (op) {
    case Opcode::I32Eqz:
    case Opcode::I64Eqz:
      return {ValType::I32,
              env.bool_to_bv32(x.e == env.bv(0, x.bits())).simplify()};
    case Opcode::I32WrapI64:
      return {ValType::I32, x.e.extract(31, 0).simplify()};
    case Opcode::I64ExtendI32S:
      return {ValType::I64, z3::sext(x.e, 32).simplify()};
    case Opcode::I64ExtendI32U:
      return {ValType::I64, z3::zext(x.e, 32).simplify()};
    case Opcode::I32ReinterpretF32:
      return {ValType::I32, x.e};
    case Opcode::I64ReinterpretF64:
      return {ValType::I64, x.e};
    case Opcode::F32ReinterpretI32:
      return {ValType::F32, x.e};
    case Opcode::F64ReinterpretI64:
      return {ValType::F64, x.e};
    default:
      // clz/ctz/popcnt and all float unaries/conversions: concrete
      // evaluation or fresh variable.
      return fallback_unary(env, op, x);
  }
  (void)info;
}

SymValue sym_binary(Z3Env& env, Opcode op, const SymValue& a,
                    const SymValue& b) {
  const auto& info = wasm::op_info(op);
  const auto bv32 = [&](const z3::expr& cond) {
    return SymValue{ValType::I32, env.bool_to_bv32(cond).simplify()};
  };
  const auto arith = [&](const z3::expr& e) {
    return SymValue{info.result, e.simplify()};
  };
  switch (op) {
    // relational (i32/i64)
    case Opcode::I32Eq:
    case Opcode::I64Eq:
      return bv32(a.e == b.e);
    case Opcode::I32Ne:
    case Opcode::I64Ne:
      return bv32(a.e != b.e);
    case Opcode::I32LtS:
    case Opcode::I64LtS:
      return bv32(a.e < b.e);
    case Opcode::I32LtU:
    case Opcode::I64LtU:
      return bv32(z3::ult(a.e, b.e));
    case Opcode::I32GtS:
    case Opcode::I64GtS:
      return bv32(a.e > b.e);
    case Opcode::I32GtU:
    case Opcode::I64GtU:
      return bv32(z3::ugt(a.e, b.e));
    case Opcode::I32LeS:
    case Opcode::I64LeS:
      return bv32(a.e <= b.e);
    case Opcode::I32LeU:
    case Opcode::I64LeU:
      return bv32(z3::ule(a.e, b.e));
    case Opcode::I32GeS:
    case Opcode::I64GeS:
      return bv32(a.e >= b.e);
    case Opcode::I32GeU:
    case Opcode::I64GeU:
      return bv32(z3::uge(a.e, b.e));
    // arithmetic / bitwise
    case Opcode::I32Add:
    case Opcode::I64Add:
      return arith(a.e + b.e);
    case Opcode::I32Sub:
    case Opcode::I64Sub:
      return arith(a.e - b.e);
    case Opcode::I32Mul:
    case Opcode::I64Mul:
      return arith(a.e * b.e);
    case Opcode::I32DivS:
    case Opcode::I64DivS:
      return arith(a.e / b.e);  // bvsdiv
    case Opcode::I32DivU:
    case Opcode::I64DivU:
      return arith(z3::udiv(a.e, b.e));
    case Opcode::I32RemS:
    case Opcode::I64RemS:
      return arith(z3::srem(a.e, b.e));
    case Opcode::I32RemU:
    case Opcode::I64RemU:
      return arith(z3::urem(a.e, b.e));
    case Opcode::I32And:
    case Opcode::I64And:
      return arith(a.e & b.e);
    case Opcode::I32Or:
    case Opcode::I64Or:
      return arith(a.e | b.e);
    case Opcode::I32Xor:
    case Opcode::I64Xor:
      return arith(a.e ^ b.e);
    case Opcode::I32Shl:
    case Opcode::I64Shl:
      return arith(z3::shl(a.e, masked_shift(env, b.e, a.bits())));
    case Opcode::I32ShrS:
    case Opcode::I64ShrS:
      return arith(z3::ashr(a.e, masked_shift(env, b.e, a.bits())));
    case Opcode::I32ShrU:
    case Opcode::I64ShrU:
      return arith(z3::lshr(a.e, masked_shift(env, b.e, a.bits())));
    case Opcode::I32Rotl:
    case Opcode::I64Rotl:
      return arith(rotl_expr(env, a.e, b.e, a.bits()));
    case Opcode::I32Rotr:
    case Opcode::I64Rotr:
      return arith(rotr_expr(env, a.e, b.e, a.bits()));
    default:
      // Float arithmetic and comparisons.
      return fallback_binary(env, op, a, b);
  }
}

}  // namespace wasai::symbolic
