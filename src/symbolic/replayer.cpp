#include "symbolic/replayer.hpp"

#include <map>

#include "symbolic/ops.hpp"
#include "wasm/control.hpp"

namespace wasai::symbolic {

namespace {

using instrument::ActionTrace;
using instrument::EventKind;
using instrument::SiteTable;
using instrument::TraceEvent;
using wasm::FuncType;
using wasm::Instr;
using wasm::kNoMatch;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

struct Ctrl {
  bool is_loop;
  std::size_t height;
  std::uint8_t arity;
};

/// vector<SymValue>::resize requires default construction (z3::expr has
/// none); shrinking via erase avoids that.
void shrink_to(std::vector<SymValue>& v, std::size_t n) {
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(n), v.end());
}

struct Frame {
  std::uint32_t func_index;
  const wasm::Function* fn;
  std::vector<SymValue> locals;
  std::size_t stack_base;
  std::size_t ctrl_base;
  std::uint8_t result_arity;
};

struct PendingCall {
  std::uint32_t site;
  bool is_import;
  std::size_t api_index = 0;           // import: index into api_calls
  std::vector<SymValue> args;          // defined callee: invocation args
  const FuncType* type = nullptr;
};

class ReplayMachine {
 public:
  ReplayMachine(Z3Env& env, const Module& module, const SiteTable& sites,
                const ActionTrace& trace, const ActionCallSite& call_site,
                const abi::ActionDef& def,
                const std::vector<abi::ParamValue>& seed_params,
                ReplayObserver* observer)
      : env_(env),
        module_(module),
        sites_(sites),
        trace_(trace),
        call_site_(call_site),
        observer_(observer),
        mem_(env) {
    // Table image for resolving call_indirect targets.
    std::uint32_t table_size = 0;
    if (!module.tables.empty()) table_size = module.tables[0].limits.min;
    table_.assign(table_size, wasm::kNoMatch);
    for (const auto& seg : module.elements) {
      for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
        table_.at(seg.offset + i) = seg.func_indices[i];
      }
    }
    for (const auto& g : module.globals) {
      globals_.push_back(SymValue{
          g.type.type,
          env_.bv(g.init_bits,
                  (g.type.type == ValType::I32 || g.type.type == ValType::F32)
                      ? 32
                      : 64)});
    }
    InferredInputs inputs = infer_inputs(env_, mem_, def, seed_params,
                                         call_site.concrete_args);
    root_params_ = std::move(inputs.params);
    result_.bindings = std::move(inputs.bindings);
  }

  ReplayResult run() {
    for (std::size_t i = call_site_.begin_event; i < trace_.events.size();
         ++i) {
      if (done_) break;
      step(trace_.events[i], i == call_site_.begin_event);
      ++result_.events_replayed;
    }
    finalize();
    if (observer_ != nullptr) observer_->on_finish(mem_, globals_);
    return std::move(result_);
  }

 private:
  void step(const TraceEvent& ev, bool is_root_begin) {
    if (observer_ != nullptr && !frames_.empty() &&
        (ev.kind == EventKind::Instr || ev.kind == EventKind::CallDirect ||
         ev.kind == EventKind::CallIndirect)) {
      const auto& info = sites_.at(ev.site);
      ReplayStepView view;
      view.kind = ev.kind;
      view.site = ev.site;
      view.func_index = info.func_index;
      view.instr_index = info.instr_index;
      view.stack = stack_;
      view.frame_stack_base = frames_.back().stack_base;
      view.locals = frames_.back().locals;
      view.globals = globals_;
      observer_->on_event(view);
    }
    switch (ev.kind) {
      case EventKind::FunctionBegin:
        on_function_begin(ev, is_root_begin);
        break;
      case EventKind::Instr:
        on_instr(ev);
        break;
      case EventKind::CallDirect: {
        const Instr& ins = instr_at(ev.site);
        begin_call(ev.site, ins.a);
        break;
      }
      case EventKind::CallIndirect: {
        const std::uint32_t elem = ev.val(0).u32();
        if (elem >= table_.size() || table_[elem] == wasm::kNoMatch) {
          throw ReplayError("call_indirect to invalid element");
        }
        pop();  // the element index operand
        begin_call(ev.site, table_[elem]);
        break;
      }
      case EventKind::CallArg:
        break;  // used only by locate_action_call
      case EventKind::CallPost:
        on_call_post(ev);
        break;
    }
  }

  void on_function_begin(const TraceEvent& ev, bool is_root_begin) {
    const std::uint32_t func_index = ev.site;
    const wasm::Function& fn = module_.defined(func_index);
    const FuncType& ft = module_.types.at(fn.type_index);
    result_.function_chain.push_back(func_index);

    Frame frame;
    frame.func_index = func_index;
    frame.fn = &fn;
    frame.stack_base = stack_.size();
    frame.ctrl_base = ctrls_.size();
    frame.result_arity = static_cast<std::uint8_t>(ft.results.size());

    if (is_root_begin) {
      if (func_index != call_site_.func_index) {
        throw ReplayError("unexpected root function");
      }
      frame.locals = root_params_;
    } else {
      if (pending_.empty() || pending_.back().is_import) {
        throw ReplayError("function_begin without a pending call");
      }
      frame.locals = pending_.back().args;
    }
    if (frame.locals.size() != ft.params.size()) {
      throw ReplayError("argument count mismatch entering function " +
                        std::to_string(func_index));
    }
    for (const auto t : fn.locals) {
      frame.locals.push_back(SymValue{
          t, env_.bv(0, (t == ValType::I32 || t == ValType::F32) ? 32 : 64)});
    }
    frames_.push_back(std::move(frame));
  }

  void on_instr(const TraceEvent& ev) {
    const Instr& ins = instr_at(ev.site);
    const auto& info = wasm::op_info(ins.op);
    switch (ins.op) {
      case Opcode::Nop:
        return;
      case Opcode::Unreachable:
        result_.trapped = true;
        done_ = true;
        return;
      case Opcode::Block:
      case Opcode::Loop:
        ctrls_.push_back(Ctrl{ins.op == Opcode::Loop, stack_.size(),
                              block_arity(ins)});
        return;
      case Opcode::If: {
        const SymValue cond = pop();
        const bool taken = ev.val(0).truthy();
        record_branch(ev.site, cond, taken);
        const bool has_else = else_index(ev.site) != kNoMatch;
        if (taken || has_else) {
          ctrls_.push_back(Ctrl{false, stack_.size(), block_arity(ins)});
        }
        return;
      }
      case Opcode::Else:
        if (ctrls_.empty()) throw ReplayError("else without control frame");
        ctrls_.pop_back();
        return;
      case Opcode::End:
        if (ctrls_.size() == cur().ctrl_base) {
          pop_frame();
        } else {
          ctrls_.pop_back();
        }
        return;
      case Opcode::Br:
        unwind(ins.a);
        return;
      case Opcode::BrIf: {
        const SymValue cond = pop();
        const bool taken = ev.val(0).truthy();
        record_branch(ev.site, cond, taken);
        if (taken) unwind(ins.a);
        return;
      }
      case Opcode::BrTable: {
        const SymValue idx = pop();
        const std::uint32_t v = ev.val(0).u32();
        if (has_variables(idx.e)) {
          PathStep step;
          step.site = ev.site;
          step.hold = (idx.e == env_.bv(v, idx.bits()));
          step.can_flip = false;
          result_.path.push_back(std::move(step));
        }
        const std::uint32_t depth =
            v < ins.table.size() ? ins.table[v] : ins.a;
        unwind(depth);
        return;
      }
      case Opcode::Return:
        pop_frame();
        return;
      case Opcode::Drop:
        pop();
        return;
      case Opcode::Select: {
        const SymValue cond = pop();
        const SymValue v2 = pop();
        const SymValue v1 = pop();
        if (cond.is_concrete()) {
          push(cond.concrete().value() != 0 ? v1 : v2);
        } else {
          push(SymValue{v1.type,
                        z3::ite(env_.truthy(cond.e), v1.e, v2.e).simplify()});
        }
        return;
      }
      case Opcode::LocalGet:
        push(local(ins.a));
        return;
      case Opcode::LocalSet:
        local(ins.a) = pop();
        return;
      case Opcode::LocalTee:
        local(ins.a) = top();
        return;
      case Opcode::GlobalGet:
        push(globals_.at(ins.a));
        return;
      case Opcode::GlobalSet:
        globals_.at(ins.a) = pop();
        return;
      case Opcode::MemorySize:
        // Table 3: balance the stack with the default EOSIO memory size.
        push(SymValue{ValType::I32, env_.bv(4096, 32)});
        return;
      case Opcode::MemoryGrow:
        pop();
        push(SymValue{ValType::I32, env_.bv(4096, 32)});
        return;
      default:
        break;
    }
    switch (info.cls) {
      case wasm::OpClass::Const: {
        const unsigned bits =
            (info.result == ValType::I32 || info.result == ValType::F32)
                ? 32
                : 64;
        const std::uint64_t v =
            bits == 32 ? static_cast<std::uint32_t>(ins.imm) : ins.imm;
        push(SymValue{info.result, env_.bv(v, bits)});
        return;
      }
      case wasm::OpClass::Load: {
        pop();  // symbolic address expression (concrete one is in the trace)
        const std::uint64_t addr =
            static_cast<std::uint64_t>(ev.val(0).u32()) + ins.b;
        push(mem_.load(addr, info.access_bytes, info.sign_extend,
                       info.result));
        return;
      }
      case wasm::OpClass::Store: {
        const SymValue value = pop();
        pop();  // symbolic address
        const std::uint64_t addr =
            static_cast<std::uint64_t>(ev.val(0).u32()) + ins.b;
        mem_.store(addr, value, info.access_bytes);
        return;
      }
      case wasm::OpClass::Unary: {
        const SymValue x = pop();
        push(sym_unary(env_, ins.op, x));
        return;
      }
      case wasm::OpClass::Binary: {
        if ((ins.op == Opcode::I64Eq || ins.op == Opcode::I64Ne) &&
            ev.nvals == 2) {
          result_.i64_comparisons.push_back(
              ComparisonRecord{ev.site, ev.val(0).u64(), ev.val(1).u64()});
        }
        const SymValue rhs = pop();
        const SymValue lhs = pop();
        push(sym_binary(env_, ins.op, lhs, rhs));
        return;
      }
      default:
        throw ReplayError(std::string("unhandled instruction ") + info.name);
    }
  }

  void begin_call(std::uint32_t site, std::uint32_t target) {
    const FuncType& ft = module_.function_type(target);
    std::vector<SymValue> args;
    args.resize(ft.params.size(),
                SymValue{ValType::I32, env_.bv(0, 32)});  // placeholder
    for (std::size_t k = ft.params.size(); k-- > 0;) args[k] = pop();

    PendingCall pc;
    pc.site = site;
    pc.type = &ft;
    if (module_.is_imported_function(target)) {
      pc.is_import = true;
      ApiCall api;
      api.name = module_.function_import(target).field;
      api.site = site;
      api.args = args;
      result_.api_calls.push_back(std::move(api));
      pc.api_index = result_.api_calls.size() - 1;
    } else {
      pc.is_import = false;
      pc.args = std::move(args);
    }
    pending_.push_back(std::move(pc));
  }

  void on_call_post(const TraceEvent& ev) {
    if (pending_.empty()) throw ReplayError("call_post without pending call");
    PendingCall pc = std::move(pending_.back());
    pending_.pop_back();
    if (pc.site != ev.site) throw ReplayError("call_post site mismatch");
    if (pc.is_import) {
      ApiCall& api = result_.api_calls[pc.api_index];
      api.completed = true;
      if (ev.nvals > 0) {
        api.ret = ev.val(0);
        push(lift(env_, ev.val(0)));  // returns from library APIs (§3.4.3)
      }
      if (api.name == "eosio_assert") {
        // The assertion passed on this trace: its condition is a path
        // constraint that must keep holding (§3.4.4).
        add_assert_step(api, /*passed=*/true);
      }
    }
    // Defined callees already pushed their results when their frame ended.
  }

  void add_assert_step(const ApiCall& api, bool passed) {
    if (api.args.empty()) return;
    const z3::expr& cond = api.args[0].e;
    if (!has_variables(cond)) return;
    PathStep step;
    step.site = api.site;
    step.is_assert = true;
    if (passed) {
      step.hold = env_.truthy(cond);
      step.can_flip = false;
      step.taken = true;
    } else {
      step.flip = env_.truthy(cond);
      step.can_flip = true;
      step.taken = false;
    }
    result_.path.push_back(std::move(step));
  }

  void record_branch(std::uint32_t site, const SymValue& cond, bool taken) {
    if (!has_variables(cond.e)) return;
    PathStep step;
    step.site = site;
    step.taken = taken;
    const z3::expr t = env_.truthy(cond.e);
    step.hold = taken ? t : !t;
    step.flip = taken ? !t : t;
    step.can_flip = true;
    result_.path.push_back(std::move(step));
  }

  void pop_frame() {
    Frame& f = frames_.back();
    const std::uint8_t arity = f.result_arity;
    for (std::uint8_t i = 0; i < arity; ++i) {
      stack_[f.stack_base + i] = stack_[stack_.size() - arity + i];
    }
    shrink_to(stack_, f.stack_base + arity);
    ctrls_.resize(f.ctrl_base);
    frames_.pop_back();
    if (frames_.empty()) {
      result_.completed_scope = true;
      done_ = true;
    }
  }

  void unwind(std::uint32_t depth) {
    const auto target =
        static_cast<std::int64_t>(ctrls_.size()) - 1 - depth;
    if (target < static_cast<std::int64_t>(cur().ctrl_base)) {
      pop_frame();
      return;
    }
    const Ctrl c = ctrls_[static_cast<std::size_t>(target)];
    if (c.is_loop) {
      ctrls_.resize(static_cast<std::size_t>(target) + 1);
      shrink_to(stack_, c.height);
    } else {
      for (std::uint8_t i = 0; i < c.arity; ++i) {
        stack_[c.height + i] = stack_[stack_.size() - c.arity + i];
      }
      shrink_to(stack_, c.height + c.arity);
      ctrls_.resize(static_cast<std::size_t>(target));
    }
  }

  void finalize() {
    if (!done_) {
      // The trace ended inside the scope: the action trapped. If the last
      // pending call is a failed eosio_assert with a symbolic condition,
      // flipping it is the paper's assert rule: μ̂s[0] == 1 must hold.
      result_.trapped = true;
      if (!pending_.empty() && pending_.back().is_import) {
        ApiCall& api = result_.api_calls[pending_.back().api_index];
        if (api.name == "eosio_assert") add_assert_step(api, false);
      }
    }
    if (!trace_.completed) result_.trapped = true;
  }

  // ---- helpers --------------------------------------------------------

  const Instr& instr_at(std::uint32_t site) {
    const auto& info = sites_.at(site);
    const wasm::Function& fn = module_.defined(info.func_index);
    if (!frames_.empty() && frames_.back().func_index != info.func_index) {
      throw ReplayError("event does not belong to the executing function");
    }
    return fn.body.at(info.instr_index);
  }

  std::uint32_t else_index(std::uint32_t site) {
    const auto& info = sites_.at(site);
    auto [it, inserted] = cmaps_.try_emplace(info.func_index);
    if (inserted) {
      it->second =
          wasm::analyze_control(module_.defined(info.func_index).body);
    }
    return it->second.else_idx.at(info.instr_index);
  }

  Frame& cur() {
    if (frames_.empty()) throw ReplayError("no active frame");
    return frames_.back();
  }

  SymValue& local(std::uint32_t idx) {
    Frame& f = cur();
    if (idx >= f.locals.size()) throw ReplayError("local index out of range");
    return f.locals[idx];
  }

  void push(SymValue v) { stack_.push_back(std::move(v)); }

  SymValue pop() {
    if (stack_.size() <= (frames_.empty() ? 0 : cur().stack_base)) {
      throw ReplayError("symbolic stack underflow");
    }
    SymValue v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  }

  SymValue& top() {
    if (stack_.empty()) throw ReplayError("symbolic stack empty");
    return stack_.back();
  }

  static std::uint8_t block_arity(const Instr& ins) {
    return ins.a == wasm::kBlockVoid ? 0 : 1;
  }

  Z3Env& env_;
  const Module& module_;
  const SiteTable& sites_;
  const ActionTrace& trace_;
  const ActionCallSite& call_site_;
  ReplayObserver* observer_;

  MemoryModel mem_;
  ReplayResult result_;
  std::vector<SymValue> stack_;
  std::vector<Ctrl> ctrls_;
  std::vector<Frame> frames_;
  std::vector<PendingCall> pending_;
  std::vector<SymValue> globals_;
  std::vector<std::uint32_t> table_;
  std::vector<SymValue> root_params_;
  std::map<std::uint32_t, wasm::ControlMap> cmaps_;
  bool done_ = false;
};

}  // namespace

std::optional<ActionCallSite> locate_action_call(
    const ActionTrace& trace, const SiteTable& sites, const Module& module,
    std::optional<std::size_t> expected_params) {
  const auto apply_index = module.find_export("apply");
  if (!apply_index) return std::nullopt;

  // Table image for call_indirect resolution.
  std::vector<std::uint32_t> table;
  if (!module.tables.empty()) {
    table.assign(module.tables[0].limits.min, wasm::kNoMatch);
  }
  for (const auto& seg : module.elements) {
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i) {
      if (seg.offset + i < table.size()) {
        table[seg.offset + i] = seg.func_indices[i];
      }
    }
  }

  // Arguments captured for the current call site (call_pre events).
  std::vector<vm::Value> args;
  std::uint32_t args_site = wasm::kNoMatch;

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    if (ev.kind == EventKind::CallArg) {
      if (ev.site != args_site) {
        args.clear();
        args_site = ev.site;
      }
      args.push_back(ev.val(0));
      continue;
    }
    if (ev.kind != EventKind::CallDirect &&
        ev.kind != EventKind::CallIndirect) {
      continue;
    }
    const auto& info = sites.at(ev.site);
    if (info.func_index != *apply_index) continue;

    std::uint32_t target = wasm::kNoMatch;
    if (ev.kind == EventKind::CallIndirect) {
      const std::uint32_t elem = ev.val(0).u32();
      if (elem < table.size()) target = table[elem];
    } else {
      target = module.defined(info.func_index).body[info.instr_index].a;
    }
    if (target == wasm::kNoMatch || module.is_imported_function(target)) {
      continue;
    }
    if (expected_params &&
        module.function_type(target).params.size() != *expected_params) {
      continue;  // helper invoked from apply, not the action function
    }
    // Find the FunctionBegin of the callee right after this event.
    for (std::size_t j = i + 1; j < trace.events.size(); ++j) {
      const TraceEvent& next = trace.events[j];
      if (next.kind == EventKind::FunctionBegin) {
        if (next.site != target) break;
        ActionCallSite out;
        out.func_index = target;
        out.begin_event = j;
        out.concrete_args = (args_site == ev.site) ? args
                                                   : std::vector<vm::Value>{};
        return out;
      }
      if (next.kind != EventKind::CallArg) break;
    }
  }
  return std::nullopt;
}

ReplayResult replay(Z3Env& env, const Module& module, const SiteTable& sites,
                    const ActionTrace& trace, const ActionCallSite& site,
                    const abi::ActionDef& def,
                    const std::vector<abi::ParamValue>& seed_params,
                    ReplayObserver* observer, obs::Obs* obs) {
  const obs::Span span(obs, obs::span_name::kReplay);
  ReplayMachine machine(env, module, sites, trace, site, def, seed_params,
                        observer);
  ReplayResult result = machine.run();
  if (obs != nullptr) {
    obs->count("replay.runs");
    obs->count("replay.events", result.events_replayed);
  }
  return result;
}

}  // namespace wasai::symbolic
