// Input inference (§3.4.2, Table 2): builds the symbolic Local section of
// the action function directly from the calling convention, so symbolic
// execution can start there and skip the dispatcher/deserializer paths.
#pragma once

#include <span>
#include <vector>

#include "abi/abi_def.hpp"
#include "eosvm/value.hpp"
#include "symbolic/memory_model.hpp"

namespace wasai::symbolic {

/// Connects a solver variable back to the seed parameter it mutates.
struct InputBinding {
  enum class Kind : std::uint8_t {
    Whole,        // the parameter is the 64/32-bit value itself
    AssetAmount,  // 64-bit amount of an asset parameter
    AssetSymbol,  // 64-bit symbol of an asset parameter
    StringLen,    // the 8-bit length byte of a string parameter
    StringByte,   // one content byte of a string parameter
  };

  std::uint32_t param_index;
  Kind kind;
  std::uint32_t byte_index;  // for StringByte
  z3::expr var;
};

struct InferredInputs {
  /// Initial symbolic values for the action function's parameters:
  /// locals[0] = self (concrete), locals[1 + i] = parameter i (symbolic
  /// scalar, or the concrete pointer for asset/string parameters whose
  /// content was bound into the memory model).
  std::vector<SymValue> params;
  std::vector<InputBinding> bindings;
};

/// `concrete_args` are the runtime invocation arguments captured by the
/// call_pre hooks: [self, p0, p1, ...]. `seed_params` is the executed seed
/// ρ (string lengths are taken from it). Throws util::UsageError when the
/// argument count does not match the ABI signature + self.
InferredInputs infer_inputs(Z3Env& env, MemoryModel& mem,
                            const abi::ActionDef& def,
                            const std::vector<abi::ParamValue>& seed_params,
                            std::span<const vm::Value> concrete_args);

}  // namespace wasai::symbolic
