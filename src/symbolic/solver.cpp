#include "symbolic/solver.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

void apply_model_binding(std::vector<ParamValue>& params,
                         const InputBinding& b, std::uint64_t value) {
  ParamValue& p = params.at(b.param_index);
  switch (b.kind) {
    case InputBinding::Kind::Whole:
      if (std::holds_alternative<abi::Name>(p)) {
        p = abi::Name(value);
      } else if (std::holds_alternative<std::uint64_t>(p)) {
        p = value;
      } else if (std::holds_alternative<std::int64_t>(p)) {
        p = static_cast<std::int64_t>(value);
      } else if (std::holds_alternative<std::uint32_t>(p)) {
        p = static_cast<std::uint32_t>(value);
      } else if (std::holds_alternative<double>(p)) {
        p = std::bit_cast<double>(value);
      }
      break;
    case InputBinding::Kind::AssetAmount:
      std::get<abi::Asset>(p).amount = static_cast<std::int64_t>(value);
      break;
    case InputBinding::Kind::AssetSymbol:
      std::get<abi::Asset>(p).symbol = abi::Symbol(value);
      break;
    case InputBinding::Kind::StringLen: {
      auto& s = std::get<std::string>(p);
      // Lengths are clamped; bytes beyond the executed length were not
      // symbolic, so they are padded (the paper's §4.4 false-positive
      // analysis stems from exactly this limitation).
      const std::size_t target = std::min<std::uint64_t>(value & 0xff, 64);
      s.resize(target, 'a');
      break;
    }
    case InputBinding::Kind::StringByte: {
      auto& s = std::get<std::string>(p);
      if (b.byte_index < s.size()) {
        s[b.byte_index] = static_cast<char>(value & 0xff);
      }
      break;
    }
  }
}

ModelValues extract_model_values(const z3::model& model) {
  ModelValues out;
  out.reserve(model.size());
  for (unsigned i = 0; i < model.size(); ++i) {
    const z3::func_decl decl = model.get_const_decl(i);
    if (decl.arity() != 0) continue;
    const z3::expr value = model.get_const_interp(decl);
    if (value.is_numeral()) {
      out.emplace_back(decl.name().str(), value.get_numeral_uint64());
    }
  }
  return out;
}

std::vector<ParamValue> seed_from_model_values(
    const std::vector<ParamValue>& seed_params,
    const std::vector<InputBinding>& bindings, const ModelValues& values) {
  std::vector<ParamValue> mutated = seed_params;
  for (const auto& binding : bindings) {
    // Mutate only the parameters the model actually mentions;
    // unconstrained variables keep their executed-seed values.
    const std::string name = binding.var.decl().name().str();
    const auto it =
        std::find_if(values.begin(), values.end(),
                     [&](const auto& nv) { return nv.first == name; });
    if (it == values.end()) continue;
    apply_model_binding(mutated, binding, it->second);
  }
  return mutated;
}

SmtQueryResult solve_smt2_query(const std::string& smt2, unsigned timeout_ms,
                                double hard_ms) {
  SmtQueryResult out;
  z3::context ctx;
  z3::solver solver(ctx);
  z3::params p(ctx);
  p.set("timeout", timeout_ms);
  solver.set(p);
  solver.from_string(smt2.c_str());
  const auto start = Clock::now();
  const auto verdict = solver.check();
  if (verdict == z3::unsat) {
    out.verdict = SmtQueryResult::Verdict::Unsat;
  } else if (verdict == z3::sat) {
    out.verdict = SmtQueryResult::Verdict::Sat;
  }
  if (ms_since(start) > hard_ms) {
    out.overshoot = true;  // model discarded; verdict kept for accounting
    return out;
  }
  if (verdict == z3::sat) {
    out.model = extract_model_values(solver.get_model());
  }
  return out;
}

AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<ParamValue>& seed_params,
                          const SolverOptions& opts) {
  const obs::Span span(opts.obs, obs::span_name::kSolve);
  AdaptiveSeeds out;
  std::size_t flips_attempted = 0;
  const auto start = Clock::now();
  const double hard_ms = opts.effective_hard_timeout_ms();

  // Incremental mode: one walker solver accumulates holds across the whole
  // walk; each flip is serialized from a push() scope and decided in a
  // fresh context (see the header note on why the walker never check()s
  // itself). The walker is materialized lazily on the first cache miss —
  // asserting holds into a Z3 solver costs internalization work, and a
  // walk whose flips are all answered by the cache should not pay it.
  // Legacy mode re-asserts the prefix into a fresh solver per flip.
  std::optional<z3::solver> walker;
  QueryDigest digest;                   // rolling prefix digest (cache keys)
  std::vector<const z3::expr*> prefix;  // holds walked so far

  const auto push_hold = [&](const PathStep& step) {
    if (step.hold) {
      prefix.push_back(&*step.hold);
      if (walker.has_value()) walker->add(*step.hold);
      if (opts.cache != nullptr) digest.extend(*step.hold);
    }
  };
  const auto statically_pruned = [&](const PathStep& step) {
    return opts.prune_flip_sites != nullptr &&
           step.site < opts.prune_flip_sites->size() &&
           (*opts.prune_flip_sites)[step.site] != 0;
  };

  for (std::size_t k = 0; k < replay.path.size(); ++k) {
    const PathStep& step = replay.path[k];
    if (step.can_flip && step.flip) {
      if (flips_attempted >= opts.max_flips) break;

      // The per-query "timeout" parameter is only a soft limit; these
      // wall-clock gates are what actually bound one solve_flips call.
      if (opts.cancel != nullptr && opts.cancel->expired()) {
        out.aborted = true;
        break;
      }
      if (opts.wall_budget_ms != 0 && ms_since(start) >= opts.wall_budget_ms) {
        out.aborted = true;
        break;
      }
      // The static pre-analysis proved this condition cannot depend on
      // action input: no model could change the seed, so skip the query.
      // The flip slot is still consumed (unless the opt-in prioritization
      // knob frees it), keeping the schedule under max_flips identical
      // with and without the gate.
      if (statically_pruned(step)) {
        if (!opts.pruned_flips_free_budget) ++flips_attempted;
        ++out.pruned;
        if (opts.obs != nullptr) opts.obs->count("solver.flips_pruned");
        push_hold(step);
        continue;
      }
      ++flips_attempted;

      QueryKey key;
      const CacheEntry* hit = nullptr;
      if (opts.cache != nullptr) {
        key = digest.flip_key(*step.flip);
        hit = opts.cache->lookup(key);
      }
      if (hit != nullptr) {
        ++out.cache_hits;
        if (opts.obs != nullptr) opts.obs->count("solver.cache_hits");
        if (hit->verdict == CachedVerdict::Sat) {
          ++out.sat;
          out.seeds.push_back(
              seed_from_model_values(seed_params, replay.bindings,
                                     hit->model));
        } else {
          ++out.unsat;
        }
      } else {
        if (opts.cache != nullptr) ++out.cache_misses;
        ++out.queries;

        const auto query_begin = Clock::now();
        SmtQueryResult result;
        if (opts.incremental) {
          if (!walker.has_value()) {
            walker.emplace(env.ctx());
            for (const z3::expr* hold : prefix) walker->add(*hold);
          }
          walker->push();
          walker->add(*step.flip);
          const std::string smt2 = walker->to_smt2();
          walker->pop();
          result = solve_smt2_query(smt2, opts.timeout_ms, hard_ms);
        } else {
          z3::solver solver(env.ctx());
          z3::params p(env.ctx());
          p.set("timeout", opts.timeout_ms);
          solver.set(p);
          // Path prefix must stay feasible (§3.4.4: AND of prior
          // constraints).
          for (const z3::expr* hold : prefix) solver.add(*hold);
          solver.add(*step.flip);
          const auto query_start = Clock::now();
          const auto verdict = solver.check();
          if (verdict == z3::unsat) {
            result.verdict = SmtQueryResult::Verdict::Unsat;
          } else if (verdict == z3::sat) {
            result.verdict = SmtQueryResult::Verdict::Sat;
          }
          if (ms_since(query_start) > hard_ms) {
            result.overshoot = true;
          } else if (verdict == z3::sat) {
            result.model = extract_model_values(solver.get_model());
          }
        }

        if (opts.obs != nullptr) {
          opts.obs->count("solver.queries");
          opts.obs->latency_us("solver.query_us",
                               ms_since(query_begin) * 1000.0);
        }
        if (result.overshoot) {
          // Z3 overshot its soft timeout badly enough that the result is no
          // longer worth the budget it consumed. The model (if any) is
          // discarded so the seed stream stays timing-independent, and the
          // outcome is never cached — see SolverOptions::hard_timeout_ms
          // for the sat_late/unknown split.
          if (result.verdict == SmtQueryResult::Verdict::Sat) {
            ++out.sat_late;
          } else {
            ++out.unknown;
          }
        } else if (result.verdict == SmtQueryResult::Verdict::Sat) {
          ++out.sat;
          out.seeds.push_back(seed_from_model_values(seed_params,
                                                     replay.bindings,
                                                     result.model));
          if (opts.cache != nullptr) {
            opts.cache->insert(key, CachedVerdict::Sat,
                               std::move(result.model));
          }
        } else if (result.verdict == SmtQueryResult::Verdict::Unsat) {
          ++out.unsat;
          if (opts.cache != nullptr) {
            opts.cache->insert(key, CachedVerdict::Unsat);
          }
        } else {
          ++out.unknown;
        }
      }
    }
    push_hold(step);
  }
  out.wall_ms = ms_since(start);
  return out;
}

}  // namespace wasai::symbolic
