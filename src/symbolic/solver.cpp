#include "symbolic/solver.hpp"

#include <bit>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;

std::uint64_t eval_var(z3::model& model, const z3::expr& var) {
  const z3::expr v = model.eval(var, /*model_completion=*/true);
  return v.get_numeral_uint64();
}

/// Apply one solved binding onto the parameter vector.
void apply_binding(std::vector<ParamValue>& params, const InputBinding& b,
                   std::uint64_t value) {
  ParamValue& p = params.at(b.param_index);
  switch (b.kind) {
    case InputBinding::Kind::Whole:
      if (std::holds_alternative<abi::Name>(p)) {
        p = abi::Name(value);
      } else if (std::holds_alternative<std::uint64_t>(p)) {
        p = value;
      } else if (std::holds_alternative<std::int64_t>(p)) {
        p = static_cast<std::int64_t>(value);
      } else if (std::holds_alternative<std::uint32_t>(p)) {
        p = static_cast<std::uint32_t>(value);
      } else if (std::holds_alternative<double>(p)) {
        p = std::bit_cast<double>(value);
      }
      break;
    case InputBinding::Kind::AssetAmount:
      std::get<abi::Asset>(p).amount = static_cast<std::int64_t>(value);
      break;
    case InputBinding::Kind::AssetSymbol:
      std::get<abi::Asset>(p).symbol = abi::Symbol(value);
      break;
    case InputBinding::Kind::StringLen: {
      auto& s = std::get<std::string>(p);
      // Lengths are clamped; bytes beyond the executed length were not
      // symbolic, so they are padded (the paper's §4.4 false-positive
      // analysis stems from exactly this limitation).
      const std::size_t target = std::min<std::uint64_t>(value & 0xff, 64);
      s.resize(target, 'a');
      break;
    }
    case InputBinding::Kind::StringByte: {
      auto& s = std::get<std::string>(p);
      if (b.byte_index < s.size()) {
        s[b.byte_index] = static_cast<char>(value & 0xff);
      }
      break;
    }
  }
}

}  // namespace

AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<ParamValue>& seed_params,
                          const SolverOptions& opts) {
  AdaptiveSeeds out;
  std::size_t flips_attempted = 0;

  for (std::size_t k = 0;
       k < replay.path.size() && flips_attempted < opts.max_flips; ++k) {
    const PathStep& step = replay.path[k];
    if (!step.can_flip || !step.flip) continue;
    ++flips_attempted;
    ++out.queries;

    z3::solver solver(env.ctx());
    z3::params p(env.ctx());
    p.set("timeout", opts.timeout_ms);
    solver.set(p);
    // Path prefix must stay feasible (§3.4.4: AND of prior constraints).
    for (std::size_t j = 0; j < k; ++j) {
      if (replay.path[j].hold) solver.add(*replay.path[j].hold);
    }
    solver.add(*step.flip);

    const auto verdict = solver.check();
    if (verdict == z3::sat) {
      ++out.sat;
      z3::model model = solver.get_model();
      std::vector<ParamValue> mutated = seed_params;
      for (const auto& binding : replay.bindings) {
        // Mutate only the parameters the constraints actually mention;
        // unconstrained variables keep their executed-seed values.
        if (!model.has_interp(binding.var.decl())) continue;
        apply_binding(mutated, binding, eval_var(model, binding.var));
      }
      out.seeds.push_back(std::move(mutated));
    } else if (verdict == z3::unsat) {
      ++out.unsat;
    } else {
      ++out.unknown;
    }
  }
  return out;
}

}  // namespace wasai::symbolic
