#include "symbolic/solver.hpp"

#include <bit>
#include <chrono>

namespace wasai::symbolic {

namespace {

using abi::ParamValue;
using Clock = std::chrono::steady_clock;

std::uint64_t eval_var(z3::model& model, const z3::expr& var) {
  const z3::expr v = model.eval(var, /*model_completion=*/true);
  return v.get_numeral_uint64();
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

void apply_model_binding(std::vector<ParamValue>& params,
                         const InputBinding& b, std::uint64_t value) {
  ParamValue& p = params.at(b.param_index);
  switch (b.kind) {
    case InputBinding::Kind::Whole:
      if (std::holds_alternative<abi::Name>(p)) {
        p = abi::Name(value);
      } else if (std::holds_alternative<std::uint64_t>(p)) {
        p = value;
      } else if (std::holds_alternative<std::int64_t>(p)) {
        p = static_cast<std::int64_t>(value);
      } else if (std::holds_alternative<std::uint32_t>(p)) {
        p = static_cast<std::uint32_t>(value);
      } else if (std::holds_alternative<double>(p)) {
        p = std::bit_cast<double>(value);
      }
      break;
    case InputBinding::Kind::AssetAmount:
      std::get<abi::Asset>(p).amount = static_cast<std::int64_t>(value);
      break;
    case InputBinding::Kind::AssetSymbol:
      std::get<abi::Asset>(p).symbol = abi::Symbol(value);
      break;
    case InputBinding::Kind::StringLen: {
      auto& s = std::get<std::string>(p);
      // Lengths are clamped; bytes beyond the executed length were not
      // symbolic, so they are padded (the paper's §4.4 false-positive
      // analysis stems from exactly this limitation).
      const std::size_t target = std::min<std::uint64_t>(value & 0xff, 64);
      s.resize(target, 'a');
      break;
    }
    case InputBinding::Kind::StringByte: {
      auto& s = std::get<std::string>(p);
      if (b.byte_index < s.size()) {
        s[b.byte_index] = static_cast<char>(value & 0xff);
      }
      break;
    }
  }
}

AdaptiveSeeds solve_flips(Z3Env& env, const ReplayResult& replay,
                          const std::vector<ParamValue>& seed_params,
                          const SolverOptions& opts) {
  AdaptiveSeeds out;
  std::size_t flips_attempted = 0;
  const auto start = Clock::now();
  const double hard_ms = opts.effective_hard_timeout_ms();

  for (std::size_t k = 0;
       k < replay.path.size() && flips_attempted < opts.max_flips; ++k) {
    const PathStep& step = replay.path[k];
    if (!step.can_flip || !step.flip) continue;

    // The per-query "timeout" parameter below is only a soft limit; these
    // wall-clock gates are what actually bound one solve_flips call.
    if (opts.cancel != nullptr && opts.cancel->expired()) {
      out.aborted = true;
      break;
    }
    if (opts.wall_budget_ms != 0 && ms_since(start) >= opts.wall_budget_ms) {
      out.aborted = true;
      break;
    }

    ++flips_attempted;
    ++out.queries;

    z3::solver solver(env.ctx());
    z3::params p(env.ctx());
    p.set("timeout", opts.timeout_ms);
    solver.set(p);
    // Path prefix must stay feasible (§3.4.4: AND of prior constraints).
    for (std::size_t j = 0; j < k; ++j) {
      if (replay.path[j].hold) solver.add(*replay.path[j].hold);
    }
    solver.add(*step.flip);

    const auto query_start = Clock::now();
    const auto verdict = solver.check();
    const double query_ms = ms_since(query_start);

    if (query_ms > hard_ms) {
      // Z3 overshot its soft timeout badly enough that the result is no
      // longer worth the budget it consumed; account it as unknown so the
      // fuzz iteration moves on instead of compounding the overrun.
      ++out.unknown;
    } else if (verdict == z3::sat) {
      ++out.sat;
      z3::model model = solver.get_model();
      std::vector<ParamValue> mutated = seed_params;
      for (const auto& binding : replay.bindings) {
        // Mutate only the parameters the constraints actually mention;
        // unconstrained variables keep their executed-seed values.
        if (!model.has_interp(binding.var.decl())) continue;
        apply_model_binding(mutated, binding, eval_var(model, binding.var));
      }
      out.seeds.push_back(std::move(mutated));
    } else if (verdict == z3::unsat) {
      ++out.unsat;
    } else {
      ++out.unknown;
    }
  }
  out.wall_ms = ms_since(start);
  return out;
}

}  // namespace wasai::symbolic
