// The WASAI memory model (§3.4.1): a byte-granular store keyed by the
// CONCRETE addresses observed in the runtime traces. Loads of bytes never
// written return "symbolic load objects" ⟨a, s⟩ — fresh variables standing
// for the unknown memory content — which flow into path constraints and are
// resolved by the SMT solver.
#pragma once

#include <unordered_map>

#include "symbolic/symvalue.hpp"

namespace wasai::symbolic {

class MemoryModel {
 public:
  explicit MemoryModel(Z3Env& env) : env_(&env) {}

  /// Δ.store(μm, addr, size, val): split `value` into bytes and record them
  /// at [addr, addr+size).
  void store(std::uint64_t addr, const SymValue& value, unsigned size_bytes);

  /// Δ.load(μm, addr, size): concatenate the recorded bytes; unknown bytes
  /// become fresh variables (and are recorded so later loads agree).
  /// The result is extended to the requested value type.
  SymValue load(std::uint64_t addr, unsigned size_bytes, bool sign_extend,
                wasm::ValType result_type);

  /// Pre-place a symbolic value at a concrete address (input inference uses
  /// this to bind asset/string parameter content to seed variables).
  void bind(std::uint64_t addr, const z3::expr& value, unsigned size_bytes);

  [[nodiscard]] std::size_t bytes_tracked() const { return bytes_.size(); }

  /// Every byte the model has an expression for (stored, bound, or created
  /// by an unknown load). The differential oracle concretizes these and
  /// compares them against the concrete machine's final memory image.
  [[nodiscard]] const std::unordered_map<std::uint64_t, z3::expr>&
  tracked_bytes() const {
    return bytes_;
  }

  /// Count of symbolic load objects created so far.
  [[nodiscard]] std::size_t unknown_loads() const { return unknown_loads_; }

 private:
  z3::expr byte_at(std::uint64_t addr);

  Z3Env* env_;
  std::unordered_map<std::uint64_t, z3::expr> bytes_;
  std::size_t unknown_loads_ = 0;
};

}  // namespace wasai::symbolic
