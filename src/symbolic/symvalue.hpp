// Symbolic values: Wasm stack slots represented as Z3 bitvectors. Floats
// are modelled as bit patterns; symbolic float arithmetic falls back to
// fresh variables (the corpus never branches on symbolic float math, and
// the fuzzer tolerates unconstrained seeds).
#pragma once

#include <z3++.h>

#include <optional>
#include <string>

#include "eosvm/value.hpp"
#include "wasm/types.hpp"

namespace wasai::symbolic {

/// Z3 environment shared by one analysis (context + helper constructors).
class Z3Env {
 public:
  z3::context& ctx() { return ctx_; }

  /// Bitvector constant of the given width.
  z3::expr bv(std::uint64_t value, unsigned bits) {
    return ctx_.bv_val(static_cast<std::uint64_t>(value), bits);
  }

  /// Fresh named bitvector variable.
  z3::expr var(const std::string& name, unsigned bits) {
    return ctx_.bv_const(name.c_str(), bits);
  }

  /// bool -> i32-style 0/1 bitvector.
  z3::expr bool_to_bv32(const z3::expr& b) {
    return z3::ite(b, bv(1, 32), bv(0, 32));
  }

  /// i32-style truthiness: value != 0.
  z3::expr truthy(const z3::expr& e) {
    return e != bv(0, e.get_sort().bv_size());
  }

  /// Fresh variable with a unique generated name.
  z3::expr fresh(const std::string& prefix, unsigned bits) {
    return var(prefix + "_" + std::to_string(fresh_counter_++), bits);
  }

 private:
  z3::context ctx_;
  std::uint64_t fresh_counter_ = 0;
};

/// One Wasm stack slot under symbolic execution.
struct SymValue {
  wasm::ValType type;
  z3::expr e;

  [[nodiscard]] unsigned bits() const { return e.get_sort().bv_size(); }

  [[nodiscard]] bool is_concrete() const { return e.is_numeral(); }

  /// Numeric value when concrete.
  [[nodiscard]] std::optional<std::uint64_t> concrete() const {
    if (!e.is_numeral()) return std::nullopt;
    return e.get_numeral_uint64();
  }
};

/// Lift a concrete runtime value into a SymValue.
inline SymValue lift(Z3Env& env, const vm::Value& v) {
  const unsigned bits =
      (v.type == wasm::ValType::I32 || v.type == wasm::ValType::F32) ? 32
                                                                     : 64;
  return SymValue{v.type, env.bv(v.bits, bits)};
}

/// True when the expression mentions any uninterpreted constant (i.e. it
/// depends on symbolic input or unknown memory).
bool has_variables(const z3::expr& e);

}  // namespace wasai::symbolic
