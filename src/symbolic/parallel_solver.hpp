// Parallel constraint solving (§3.4.4): "we collect the target constraints
// together and solve them in parallel. Thus we can solve more constraints
// at the same time and generate more adaptive seeds before reaching the
// timeout." Queries are exported as SMT-LIB2 text and each worker thread
// solves in its own Z3 context (contexts are not thread-shareable).
//
// Exporting is prefix-sharded: a single coordinator-side solver walks the
// path once, accumulating holds and serializing each flip from a push()
// scope, so one call issues O(path) assertions (the legacy exporter
// re-asserted the prefix per flip, O(path²)). With a SolverOptions::cache,
// already-decided flips are answered in the coordinator pre-pass and never
// reach a worker; freshly solved sat/unsat verdicts are inserted at merge
// time. Identical flip queries inside the SAME call are deduplicated in
// the pre-pass: only the first instance is dispatched, and each duplicate
// is resolved at merge time exactly as the serial walk would — from the
// cache when the first instance's verdict was cacheable, by an inline
// re-query on the coordinator otherwise — so verdicts, counters and the
// emitted seed stream match the serial walk even when two racing workers
// would have timed the same query differently. On budget/cancel abort the
// merge stops at the first unattempted flip — like the serial walk,
// nothing past the abort point is emitted — but the abort position itself
// is timing-dependent in both modes (the serial walk gates every flip, the
// parallel pool gates worker claims), so aborted calls carry no cross-mode
// parity guarantee.
#pragma once

#include "symbolic/solver.hpp"

namespace wasai::symbolic {

/// Drop-in parallel variant of solve_flips. `threads` = 0 picks the
/// hardware concurrency. Deterministic: results are collected indexed by
/// flip id and seeds are emitted in serial path order, so
/// `AdaptiveSeeds.seeds` is identical for any `threads` value (and matches
/// the serial solver) as long as no query hits its timeout/wall cap.
AdaptiveSeeds solve_flips_parallel(Z3Env& env, const ReplayResult& replay,
                                   const std::vector<abi::ParamValue>& seed,
                                   const SolverOptions& options = {},
                                   unsigned threads = 0);

}  // namespace wasai::symbolic
