// Cross-iteration flip-query dedup (the concolic loop's §3.4.4 hot path):
// every fuzz iteration replays a trace and flips each branch, and most of
// those (prefix, flip) pairs were already decided in an earlier iteration —
// the trace shapes recur as the seed pool converges. The cache keys each
// query by a digest of its printed constraint set and stores the verdict
// plus the satisfying model bindings, so a repeated flip costs a hash
// lookup instead of a Z3 call.
//
// Determinism note: keys are digests of the RAW printed constraints, not an
// alpha-renamed normal form. Z3's model choice depends on symbol names, so
// two alpha-equivalent queries with different variable names can have
// different models; sharing a cached model between them would make a cached
// run diverge from an uncached one. Replay variable names are deterministic
// per trace shape ("p0", "p1_amount", "mem_<addr>" — see inputs.cpp and
// memory_model.cpp), so recurring queries are textually identical and the
// raw-text key already dedups everything that is safe to dedup.
#pragma once

#include <z3++.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/digest.hpp"

namespace wasai::symbolic {

/// Model bindings of a sat query: (variable name, value) in Z3 model
/// declaration order. Small enough that linear lookup beats a map.
using ModelValues = std::vector<std::pair<std::string, std::uint64_t>>;

/// 128-bit cache key: the primary FNV-1a digest plus a salted second
/// FNV-1a stream over the same constraint text (same non-cryptographic
/// hash family, different seed — the streams are correlated, not an
/// independent hash pair). The secondary digest is a best-effort guard
/// against a primary collision silently returning a wrong verdict — a
/// mismatch is treated as a miss.
struct QueryKey {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;

  bool operator==(const QueryKey&) const = default;
};

/// Rolling digest over the printed path-prefix constraints. The fuzzer's
/// walk extends it once per hold (each constraint is printed exactly once),
/// and flip_key() forks the prefix state with the flip constraint's text to
/// produce the key of one (prefix, flip) query in O(|flip|).
class QueryDigest {
 public:
  /// Absorb the next path-prefix constraint.
  void extend(const z3::expr& hold);

  /// Key of the query "prefix so far AND flip". Does not mutate the prefix.
  [[nodiscard]] QueryKey flip_key(const z3::expr& flip) const;

 private:
  void absorb(util::Digest& d, const std::string& text) const;

  util::Digest primary_;
  util::Digest secondary_{make_secondary()};

  static util::Digest make_secondary() {
    util::Digest d;
    d.u64(0x5eedcafef00dull);  // distinct stream salt
    return d;
  }
};

enum class CachedVerdict : std::uint8_t { Sat, Unsat };

struct CacheEntry {
  CachedVerdict verdict = CachedVerdict::Unsat;
  ModelValues model;  // empty unless verdict == Sat
};

struct SolverCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t insertions = 0;
  std::size_t entries = 0;
};

/// Bounded LRU map from query key to solved verdict + model. One instance
/// per Fuzzer (one Z3Env); NOT thread-safe — the parallel solver consults
/// it from the coordinating thread only (pre-pass / merge), never from
/// workers. Only Sat and Unsat verdicts are cached: unknown and overshoot
/// outcomes are timing artifacts that a later attempt may decide.
class SolverCache {
 public:
  explicit SolverCache(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the entry or nullptr, counting a hit or miss and refreshing
  /// the entry's LRU position.
  const CacheEntry* lookup(const QueryKey& key);

  /// Record a solved query, evicting the least-recently-used entry when at
  /// capacity. Re-inserting an existing key refreshes value and position.
  void insert(const QueryKey& key, CachedVerdict verdict,
              ModelValues model = {});

  [[nodiscard]] const SolverCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    QueryKey key;
    CacheEntry entry;
    std::list<std::uint64_t>::iterator lru;  // position in lru_
  };

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Slot> map_;  // keyed by primary digest
  std::list<std::uint64_t> lru_;  // most-recent first, holds primary keys
  SolverCacheStats stats_;
};

}  // namespace wasai::symbolic
