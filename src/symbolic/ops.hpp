// Symbolic counterparts of the Wasm numeric instructions (Table 3's unary /
// binary rows). Integer ops map directly onto Z3 bitvector theory; float
// ops evaluate concretely when both operands are concrete and degrade to
// fresh variables otherwise.
#pragma once

#include "symbolic/symvalue.hpp"
#include "wasm/opcode.hpp"

namespace wasai::symbolic {

SymValue sym_unary(Z3Env& env, wasm::Opcode op, const SymValue& x);
SymValue sym_binary(Z3Env& env, wasm::Opcode op, const SymValue& lhs,
                    const SymValue& rhs);

}  // namespace wasai::symbolic
