#include "testgen/minimize.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "testgen/oracle.hpp"
#include "util/error.hpp"

namespace wasai::testgen {

namespace {

/// Flattened statement coordinates: (action index, statement index).
std::vector<std::pair<std::size_t, std::size_t>> statement_ids(
    const ModuleSpec& spec) {
  std::vector<std::pair<std::size_t, std::size_t>> ids;
  for (std::size_t a = 0; a < spec.actions.size(); ++a) {
    for (std::size_t s = 0; s < spec.actions[a].statements.size(); ++s) {
      ids.emplace_back(a, s);
    }
  }
  return ids;
}

/// Copy of `spec` without the statements whose flattened position falls in
/// [begin, end).
ModuleSpec without_range(
    const ModuleSpec& spec,
    const std::vector<std::pair<std::size_t, std::size_t>>& ids,
    std::size_t begin, std::size_t end) {
  ModuleSpec out = spec;
  for (auto& action : out.actions) action.statements.clear();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i >= begin && i < end) continue;
    const auto [a, s] = ids[i];
    out.actions[a].statements.push_back(spec.actions[a].statements[s]);
  }
  return out;
}

}  // namespace

MinimizeResult minimize(const ModuleSpec& failing, const Predicate& pred,
                        std::size_t max_tests) {
  MinimizeResult res;
  res.spec = failing;

  const auto test = [&](const ModuleSpec& cand) {
    if (res.tests >= max_tests) return false;
    ++res.tests;
    return pred(cand);
  };

  // Phase 1: drop whole actions. Actions never call each other (only
  // helpers, which stay), so any subset is self-contained.
  bool changed = true;
  while (changed && res.spec.actions.size() > 1 && res.tests < max_tests) {
    changed = false;
    for (std::size_t i = 0; i < res.spec.actions.size(); ++i) {
      ModuleSpec cand = res.spec;
      cand.actions.erase(cand.actions.begin() +
                         static_cast<std::ptrdiff_t>(i));
      if (test(cand)) {
        res.spec = std::move(cand);
        changed = true;
        break;
      }
    }
  }

  // Phase 2: ddmin over the flattened statement list.
  auto ids = statement_ids(res.spec);
  std::size_t chunk = (ids.size() + 1) / 2;
  while (chunk >= 1 && !ids.empty() && res.tests < max_tests) {
    bool reduced = false;
    for (std::size_t start = 0; start < ids.size(); start += chunk) {
      ModuleSpec cand = without_range(res.spec, ids, start,
                                      std::min(start + chunk, ids.size()));
      if (test(cand)) {
        res.spec = std::move(cand);
        ids = statement_ids(res.spec);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;
      chunk /= 2;
    }
  }
  return res;
}

bool oracle_fails(const ModuleSpec& spec) {
  try {
    return !check_module(materialize(spec)).ok();
  } catch (const util::Error&) {
    // A spec that cannot even materialize is not a usable reproducer.
    return false;
  }
}

}  // namespace wasai::testgen
