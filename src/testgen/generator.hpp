// Seeded generator of well-typed random Wasm contracts for differential
// testing. A module is first drawn as a ModuleSpec — a statement-list IR
// whose every subset still lowers to a VALID module — and then lowered
// through corpus::ContractBuilder so each module carries the eosio-style
// apply dispatcher, action entry points and multi-function call graph the
// replayer's calling-convention analysis (§3.4.2) expects.
//
// Generated code observes one discipline: operations the symbolic replayer
// models only by concrete fallback (float arithmetic, clz/ctz/popcnt,
// int→float conversions) are never applied to values derived from action
// parameters, so a replay under fully-concrete inputs must concretize to
// exactly the interpreter's state — any mismatch is a real soundness bug
// in the codec, interpreter, instrumenter or replayer.
#pragma once

#include <cstdint>
#include <vector>

#include "abi/abi_def.hpp"
#include "wasm/module.hpp"

namespace wasai::testgen {

/// Scratch slots the prologue initialises (8 bytes each, at kScratchRegion).
constexpr std::uint32_t kNumSlots = 12;

/// One minimizer-granularity unit: an instruction sequence with net-zero
/// stack effect that is valid at any statement position.
struct Statement {
  std::vector<wasm::Instr> code;
};

/// A pure helper function (no memory/global access; may call lower-indexed
/// helpers). Always a single result.
struct HelperSpec {
  wasm::FuncType type;
  std::vector<wasm::Instr> body;  // ends with End
};

struct GlobalSpec {
  wasm::ValType type;
  std::uint64_t init = 0;
};

struct ActionSpec {
  abi::ActionDef def;
  std::vector<abi::ParamValue> seed;  // concrete inputs the oracle executes
  std::vector<wasm::ValType> extra_locals;
  std::vector<Statement> statements;
};

struct ModuleSpec {
  std::uint64_t seed = 0;
  std::vector<GlobalSpec> globals;
  std::vector<HelperSpec> helpers;
  std::vector<ActionSpec> actions;
};

struct Generated {
  ModuleSpec spec;
  wasm::Module module;
  abi::Abi abi;
};

/// Deterministically draw a random module specification from `seed`.
ModuleSpec generate_spec(std::uint64_t seed);

/// Deterministically lower a spec to a module + ABI. Dropping statements or
/// whole actions from a spec keeps it materializable, which is what lets
/// the delta-minimizer shrink divergent modules structurally instead of
/// byte-wise.
Generated materialize(const ModuleSpec& spec);

Generated generate(std::uint64_t seed);

}  // namespace wasai::testgen
