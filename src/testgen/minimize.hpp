// Structural delta-minimization of divergent modules: because every subset
// of a ModuleSpec's actions/statements still materializes to a valid
// module, shrinking happens on the spec IR (ddmin over statements) instead
// of byte-wise on the binary.
#pragma once

#include <functional>

#include "testgen/generator.hpp"

namespace wasai::testgen {

/// Returns true while the candidate spec still reproduces the failure.
using Predicate = std::function<bool(const ModuleSpec&)>;

struct MinimizeResult {
  ModuleSpec spec;
  std::size_t tests = 0;  // predicate evaluations spent
};

/// Greedily drop whole actions, then ddmin the flattened statement list.
/// Helpers, globals and the slot prologue are never touched (helpers keep
/// call indices stable; the prologue keeps loads well-defined).
MinimizeResult minimize(const ModuleSpec& failing, const Predicate& pred,
                        std::size_t max_tests = 200);

/// The standard predicate: materialize + differential check still fails.
bool oracle_fails(const ModuleSpec& spec);

}  // namespace wasai::testgen
