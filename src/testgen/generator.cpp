#include "testgen/generator.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <string>

#include "corpus/contract_builder.hpp"
#include "util/rng.hpp"

namespace wasai::testgen {

namespace {

using abi::ParamType;
using corpus::kActionBuf;
using corpus::kMsgRegion;
using corpus::kScratchRegion;
using util::Rng;
using wasm::FuncType;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;

constexpr std::uint64_t kPrologueSalt = 0x70726f6c6f677565ULL;  // "prologue"

/// A typed expression under construction: instructions that push exactly
/// one value, plus whether that value may depend on symbolic input
/// ("tainted"). Fallback-only ops (float arithmetic, clz/ctz/popcnt,
/// int→float conversion) are restricted to untainted operands.
struct Expr {
  std::vector<Instr> code;
  bool tainted = false;
};

void append(std::vector<Instr>& out, const std::vector<Instr>& part) {
  out.insert(out.end(), part.begin(), part.end());
}

struct LocalInfo {
  ValType type;
  bool tainted = false;
  bool writable = false;  // only extra general locals are set targets
};

/// Per-action generation context: tracks the taint of every mutable
/// location so fallback ops stay on concrete-origin data.
struct Ctx {
  Rng rng;
  const corpus::EnvImports* env = nullptr;
  const std::vector<HelperSpec>* helpers = nullptr;
  std::uint32_t first_helper_index = 0;

  std::vector<LocalInfo> locals;
  std::vector<GlobalSpec>* globals = nullptr;
  std::vector<bool> global_taint;
  std::vector<bool> slot_taint;  // kNumSlots, false after the prologue

  struct PtrParam {
    std::uint32_t local;   // local holding the (concrete) pointer
    std::uint32_t addr;    // its static address inside kActionBuf
    std::uint32_t length;  // bytes of bound symbolic content
  };
  std::vector<PtrParam> assets;          // 16 bound bytes each
  std::optional<PtrParam> string_param;  // 1 bound length byte

  std::uint32_t counter_base = 0;  // loop counters live at the local tail
  std::uint32_t counters_free = 0;
};

std::uint32_t slot_addr(std::uint32_t slot) {
  return kScratchRegion + 8 * slot;
}

std::uint32_t natural_align(Opcode op) {
  return static_cast<std::uint32_t>(
      std::countr_zero(static_cast<unsigned>(wasm::op_info(op).access_bytes)));
}

/// Emit a load of `target`, exercising both plain-const and
/// const+offset-immediate memarg forms.
void emit_load(Ctx& c, std::vector<Instr>& out, Opcode op,
               std::uint32_t target) {
  std::uint32_t imm = 0;
  if (c.rng.chance(0.4)) {
    imm = static_cast<std::uint32_t>(c.rng.below(65));
  }
  out.push_back(wasm::i32_const(static_cast<std::int32_t>(target - imm)));
  out.push_back(wasm::mem_load(op, imm, natural_align(op)));
}

Expr gen_expr(Ctx& c, ValType want, int depth);

// ---------------------------------------------------------------- leaves

Expr const_leaf(Ctx& c, ValType want) {
  Expr e;
  switch (want) {
    case ValType::I32:
      e.code.push_back(wasm::i32_const(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(c.rng.next()))));
      break;
    case ValType::I64:
      e.code.push_back(wasm::i64_const_u(c.rng.next()));
      break;
    case ValType::F32:
      e.code.push_back(wasm::f32_const(
          static_cast<float>(c.rng.range(-100000, 100000)) * 0.25f));
      break;
    case ValType::F64:
      e.code.push_back(wasm::f64_const(
          static_cast<double>(c.rng.range(-100000000, 100000000)) * 0.125));
      break;
  }
  return e;
}

std::vector<std::uint32_t> locals_of_type(const Ctx& c, ValType t) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < c.locals.size(); ++i) {
    if (c.locals[i].type == t) out.push_back(i);
  }
  return out;
}

/// Load of the wanted type from a scratch slot (concrete-origin unless a
/// tainted store hit the slot) — covers all 14 load widths over time.
Expr slot_load(Ctx& c, ValType want) {
  static const std::vector<Opcode> i32_loads = {
      Opcode::I32Load, Opcode::I32Load8S, Opcode::I32Load8U,
      Opcode::I32Load16S, Opcode::I32Load16U};
  static const std::vector<Opcode> i64_loads = {
      Opcode::I64Load,    Opcode::I64Load8S,  Opcode::I64Load8U,
      Opcode::I64Load16S, Opcode::I64Load16U, Opcode::I64Load32S,
      Opcode::I64Load32U};
  Opcode op;
  switch (want) {
    case ValType::I32:
      op = c.rng.pick(i32_loads);
      break;
    case ValType::I64:
      op = c.rng.pick(i64_loads);
      break;
    case ValType::F32:
      op = Opcode::F32Load;
      break;
    default:
      op = Opcode::F64Load;
      break;
  }
  const auto& info = wasm::op_info(op);
  const auto slot = static_cast<std::uint32_t>(c.rng.below(kNumSlots));
  const auto inner = static_cast<std::uint32_t>(
      c.rng.below(8 - info.access_bytes + 1));
  Expr e;
  e.tainted = c.slot_taint[slot];
  emit_load(c, e.code, op, slot_addr(slot) + inner);
  return e;
}

/// Load from a bound parameter region (asset amount/symbol bytes or the
/// string length byte). Always tainted; always concretizable because the
/// replayer pre-binds these bytes to input variables.
std::optional<Expr> param_region_load(Ctx& c, ValType want) {
  if (want == ValType::F32) return std::nullopt;
  if (want == ValType::F64 && c.assets.empty()) return std::nullopt;
  if ((want == ValType::I32 || want == ValType::I64) && c.assets.empty() &&
      !c.string_param.has_value()) {
    return std::nullopt;
  }

  Expr e;
  e.tainted = true;
  if (want == ValType::I64 && !c.assets.empty() && c.rng.chance(0.7)) {
    const auto& a = c.rng.pick(c.assets);
    const std::uint32_t field = c.rng.chance(0.5) ? 0 : 8;
    if (c.rng.chance(0.5)) {
      e.code.push_back(wasm::local_get(a.local));
      e.code.push_back(wasm::mem_load(Opcode::I64Load, field, 3));
    } else {
      e.code.push_back(
          wasm::i32_const(static_cast<std::int32_t>(a.addr + field)));
      e.code.push_back(wasm::mem_load(Opcode::I64Load, 0, 3));
    }
    return e;
  }
  if (want == ValType::F64 && !c.assets.empty()) {
    // Reinterpreting the asset amount as f64 keeps the value symbolic but
    // fully modelled (bit-pattern identity).
    const auto& a = c.rng.pick(c.assets);
    e.code.push_back(wasm::local_get(a.local));
    e.code.push_back(wasm::mem_load(Opcode::I64Load, 0, 3));
    e.code.emplace_back(Opcode::F64ReinterpretI64);
    return e;
  }
  // Narrow integer view of a bound region.
  if (c.string_param.has_value() && (c.assets.empty() || c.rng.chance(0.4))) {
    e.code.push_back(wasm::local_get(c.string_param->local));
    e.code.push_back(wasm::mem_load(Opcode::I32Load8U, 0, 0));
  } else {
    const auto& a = c.rng.pick(c.assets);
    static const std::vector<Opcode> narrow = {
        Opcode::I32Load8S, Opcode::I32Load8U, Opcode::I32Load16S,
        Opcode::I32Load16U, Opcode::I32Load};
    const Opcode op = c.rng.pick(narrow);
    const auto& info = wasm::op_info(op);
    const auto inner = static_cast<std::uint32_t>(
        c.rng.below(16 - info.access_bytes + 1));
    e.code.push_back(wasm::local_get(a.local));
    e.code.push_back(wasm::mem_load(op, inner, natural_align(op)));
  }
  if (want == ValType::I64) e.code.emplace_back(Opcode::I64ExtendI32U);
  return e;
}

/// Library-API call usable inside an expression: the replayer lifts the
/// concrete return from the trace, so the result is untainted.
std::optional<Expr> api_leaf(Ctx& c, ValType want) {
  Expr e;
  if (want == ValType::I32) {
    switch (c.rng.below(3)) {
      case 0:
        e.code.push_back(wasm::call(c.env->tapos_block_num));
        break;
      case 1:
        e.code.push_back(wasm::call(c.env->action_data_size));
        break;
      default: {
        Expr arg = gen_expr(c, ValType::I64, 0);
        e.code = std::move(arg.code);
        e.code.push_back(wasm::call(c.env->has_auth));
        break;
      }
    }
    return e;
  }
  if (want == ValType::I64) {
    e.code.push_back(wasm::call(
        c.rng.chance(0.5) ? c.env->current_time : c.env->current_receiver));
    return e;
  }
  return std::nullopt;
}

Expr gen_leaf(Ctx& c, ValType want) {
  const double roll = c.rng.uniform();
  if (roll < 0.30) return const_leaf(c, want);
  if (roll < 0.50) {
    const auto candidates = locals_of_type(c, want);
    if (!candidates.empty()) {
      const std::uint32_t idx = c.rng.pick(candidates);
      Expr e;
      e.code.push_back(wasm::local_get(idx));
      e.tainted = c.locals[idx].tainted;
      return e;
    }
  }
  if (roll < 0.62 && c.globals != nullptr) {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t i = 0; i < c.globals->size(); ++i) {
      if ((*c.globals)[i].type == want) candidates.push_back(i);
    }
    if (!candidates.empty()) {
      const std::uint32_t idx = c.rng.pick(candidates);
      Expr e;
      e.code.push_back(wasm::global_get(idx));
      e.tainted = c.global_taint[idx];
      return e;
    }
  }
  if (roll < 0.72) {
    if (auto e = param_region_load(c, want)) return *e;
  }
  if (roll < 0.80) {
    if (auto e = api_leaf(c, want)) return *e;
  }
  return slot_load(c, want);
}

// ------------------------------------------------------------- operators

/// Wrap a divisor so it is concretely in [1, mask]: (d & mask) | 1.
void guard_divisor(std::vector<Instr>& out, ValType t) {
  if (t == ValType::I32) {
    out.push_back(wasm::i32_const(0x7fff));
    out.emplace_back(Opcode::I32And);
    out.push_back(wasm::i32_const(1));
    out.emplace_back(Opcode::I32Or);
  } else {
    out.push_back(wasm::i64_const(0x7fff));
    out.emplace_back(Opcode::I64And);
    out.push_back(wasm::i64_const(1));
    out.emplace_back(Opcode::I64Or);
  }
}

Expr int_binary(Ctx& c, ValType want, int depth) {
  const bool is32 = want == ValType::I32;
  static const std::vector<Opcode> i32_ops = {
      Opcode::I32Add,  Opcode::I32Sub,  Opcode::I32Mul,  Opcode::I32And,
      Opcode::I32Or,   Opcode::I32Xor,  Opcode::I32Shl,  Opcode::I32ShrS,
      Opcode::I32ShrU, Opcode::I32Rotl, Opcode::I32Rotr, Opcode::I32DivS,
      Opcode::I32DivU, Opcode::I32RemS, Opcode::I32RemU};
  static const std::vector<Opcode> i64_ops = {
      Opcode::I64Add,  Opcode::I64Sub,  Opcode::I64Mul,  Opcode::I64And,
      Opcode::I64Or,   Opcode::I64Xor,  Opcode::I64Shl,  Opcode::I64ShrS,
      Opcode::I64ShrU, Opcode::I64Rotl, Opcode::I64Rotr, Opcode::I64DivS,
      Opcode::I64DivU, Opcode::I64RemS, Opcode::I64RemU};
  const Opcode op = is32 ? c.rng.pick(i32_ops) : c.rng.pick(i64_ops);
  Expr lhs = gen_expr(c, want, depth - 1);
  Expr rhs = gen_expr(c, want, depth - 1);
  Expr e;
  e.code = std::move(lhs.code);
  append(e.code, rhs.code);
  const bool division =
      op == Opcode::I32DivS || op == Opcode::I32DivU ||
      op == Opcode::I32RemS || op == Opcode::I32RemU ||
      op == Opcode::I64DivS || op == Opcode::I64DivU ||
      op == Opcode::I64RemS || op == Opcode::I64RemU;
  if (division) guard_divisor(e.code, want);
  e.code.emplace_back(op);
  e.tainted = lhs.tainted || rhs.tainted;
  return e;
}

/// i32-producing comparison over a random operand type. Float comparisons
/// are concrete-fallback in the replayer, so they require untainted sides.
Expr comparison(Ctx& c, int depth) {
  static const std::vector<Opcode> i32_cmp = {
      Opcode::I32Eq,  Opcode::I32Ne,  Opcode::I32LtS, Opcode::I32LtU,
      Opcode::I32GtS, Opcode::I32GtU, Opcode::I32LeS, Opcode::I32LeU,
      Opcode::I32GeS, Opcode::I32GeU};
  static const std::vector<Opcode> i64_cmp = {
      Opcode::I64Eq,  Opcode::I64Ne,  Opcode::I64LtS, Opcode::I64LtU,
      Opcode::I64GtS, Opcode::I64GtU, Opcode::I64LeS, Opcode::I64LeU,
      Opcode::I64GeS, Opcode::I64GeU};
  static const std::vector<Opcode> f64_cmp = {
      Opcode::F64Eq, Opcode::F64Ne, Opcode::F64Lt,
      Opcode::F64Gt, Opcode::F64Le, Opcode::F64Ge};
  static const std::vector<Opcode> f32_cmp = {
      Opcode::F32Eq, Opcode::F32Ne, Opcode::F32Lt,
      Opcode::F32Gt, Opcode::F32Le, Opcode::F32Ge};

  const double roll = c.rng.uniform();
  Expr e;
  if (roll < 0.40) {
    Expr a = gen_expr(c, ValType::I32, depth - 1);
    Expr b = gen_expr(c, ValType::I32, depth - 1);
    e.code = std::move(a.code);
    append(e.code, b.code);
    e.code.emplace_back(c.rng.pick(i32_cmp));
    e.tainted = a.tainted || b.tainted;
  } else if (roll < 0.80) {
    Expr a = gen_expr(c, ValType::I64, depth - 1);
    Expr b = gen_expr(c, ValType::I64, depth - 1);
    e.code = std::move(a.code);
    append(e.code, b.code);
    e.code.emplace_back(c.rng.pick(i64_cmp));
    e.tainted = a.tainted || b.tainted;
  } else {
    // Untainted float comparison: sides built from concrete-origin data.
    const bool wide = c.rng.chance(0.5);
    const ValType ft = wide ? ValType::F64 : ValType::F32;
    Expr a = gen_expr(c, ft, 0);
    Expr b = gen_expr(c, ft, 0);
    if (a.tainted || b.tainted) {
      // A tainted leaf slipped in (tainted slot/local): fall back to eqz.
      Expr x = gen_expr(c, ValType::I32, depth - 1);
      e.code = std::move(x.code);
      e.code.emplace_back(Opcode::I32Eqz);
      e.tainted = x.tainted;
      return e;
    }
    e.code = std::move(a.code);
    append(e.code, b.code);
    e.code.emplace_back(wide ? c.rng.pick(f64_cmp) : c.rng.pick(f32_cmp));
  }
  return e;
}

Expr float_arith(Ctx& c, ValType want, int depth) {
  const bool wide = want == ValType::F64;
  static const std::vector<Opcode> f32_ops = {
      Opcode::F32Add, Opcode::F32Sub, Opcode::F32Mul, Opcode::F32Div,
      Opcode::F32Min, Opcode::F32Max, Opcode::F32Copysign};
  static const std::vector<Opcode> f64_ops = {
      Opcode::F64Add, Opcode::F64Sub, Opcode::F64Mul, Opcode::F64Div,
      Opcode::F64Min, Opcode::F64Max, Opcode::F64Copysign};
  Expr a = gen_expr(c, want, depth - 1);
  Expr b = gen_expr(c, want, depth - 1);
  if (a.tainted || b.tainted) {
    // Taint discipline: float arithmetic is concrete-fallback in the
    // replayer, so keep only the first operand instead.
    Expr e;
    e.code = std::move(a.code);
    append(e.code, b.code);
    e.code.emplace_back(Opcode::Drop);
    e.tainted = a.tainted || b.tainted;
    return e;
  }
  Expr e;
  e.code = std::move(a.code);
  append(e.code, b.code);
  e.code.emplace_back(wide ? c.rng.pick(f64_ops) : c.rng.pick(f32_ops));
  return e;
}

Expr unary(Ctx& c, ValType want, int depth) {
  Expr e;
  switch (want) {
    case ValType::I32: {
      const double roll = c.rng.uniform();
      if (roll < 0.25) {
        Expr x = gen_expr(c, ValType::I64, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(Opcode::I32WrapI64);
        e.tainted = x.tainted;
      } else if (roll < 0.45) {
        const bool wide = c.rng.chance(0.5);
        Expr x = gen_expr(c, wide ? ValType::I64 : ValType::I32, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(wide ? Opcode::I64Eqz : Opcode::I32Eqz);
        e.tainted = x.tainted;
      } else if (roll < 0.65) {
        Expr x = gen_expr(c, ValType::F32, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(Opcode::I32ReinterpretF32);
        e.tainted = x.tainted;
      } else {
        // clz/ctz/popcnt: concrete fallback — untainted operand required.
        Expr x = gen_expr(c, ValType::I32, 0);
        if (x.tainted) return x;
        static const std::vector<Opcode> bits = {
            Opcode::I32Clz, Opcode::I32Ctz, Opcode::I32Popcnt};
        e.code = std::move(x.code);
        e.code.emplace_back(c.rng.pick(bits));
      }
      return e;
    }
    case ValType::I64: {
      const double roll = c.rng.uniform();
      if (roll < 0.40) {
        Expr x = gen_expr(c, ValType::I32, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(c.rng.chance(0.5) ? Opcode::I64ExtendI32S
                                              : Opcode::I64ExtendI32U);
        e.tainted = x.tainted;
      } else if (roll < 0.65) {
        Expr x = gen_expr(c, ValType::F64, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(Opcode::I64ReinterpretF64);
        e.tainted = x.tainted;
      } else {
        Expr x = gen_expr(c, ValType::I64, 0);
        if (x.tainted) return x;
        static const std::vector<Opcode> bits = {
            Opcode::I64Clz, Opcode::I64Ctz, Opcode::I64Popcnt};
        e.code = std::move(x.code);
        e.code.emplace_back(c.rng.pick(bits));
      }
      return e;
    }
    case ValType::F32: {
      const double roll = c.rng.uniform();
      if (roll < 0.35) {
        Expr x = gen_expr(c, ValType::I32, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(Opcode::F32ReinterpretI32);
        e.tainted = x.tainted;
        return e;
      }
      Expr x = gen_expr(c, ValType::F32, 0);
      if (x.tainted) return x;
      if (roll < 0.55) {
        static const std::vector<Opcode> fl = {
            Opcode::F32Abs,   Opcode::F32Neg,     Opcode::F32Ceil,
            Opcode::F32Floor, Opcode::F32Nearest, Opcode::F32Sqrt};
        e.code = std::move(x.code);
        e.code.emplace_back(c.rng.pick(fl));
        return e;
      }
      if (roll < 0.80) {
        Expr y = gen_expr(c, ValType::F64, 0);
        if (y.tainted) return x;
        e.code = std::move(y.code);
        e.code.emplace_back(Opcode::F32DemoteF64);
        return e;
      }
      Expr i = gen_expr(c, ValType::I32, 0);
      if (i.tainted) return x;
      e.code = std::move(i.code);
      e.code.emplace_back(c.rng.chance(0.5) ? Opcode::F32ConvertI32S
                                            : Opcode::F32ConvertI32U);
      return e;
    }
    default: {  // F64
      const double roll = c.rng.uniform();
      if (roll < 0.35) {
        Expr x = gen_expr(c, ValType::I64, depth - 1);
        e.code = std::move(x.code);
        e.code.emplace_back(Opcode::F64ReinterpretI64);
        e.tainted = x.tainted;
        return e;
      }
      Expr x = gen_expr(c, ValType::F64, 0);
      if (x.tainted) return x;
      if (roll < 0.55) {
        static const std::vector<Opcode> fl = {
            Opcode::F64Abs,   Opcode::F64Neg,     Opcode::F64Ceil,
            Opcode::F64Floor, Opcode::F64Nearest, Opcode::F64Sqrt};
        e.code = std::move(x.code);
        e.code.emplace_back(c.rng.pick(fl));
        return e;
      }
      if (roll < 0.80) {
        Expr y = gen_expr(c, ValType::F32, 0);
        if (y.tainted) return x;
        e.code = std::move(y.code);
        e.code.emplace_back(Opcode::F64PromoteF32);
        return e;
      }
      Expr i = gen_expr(c, ValType::I64, 0);
      if (i.tainted) return x;
      e.code = std::move(i.code);
      e.code.emplace_back(c.rng.chance(0.5) ? Opcode::F64ConvertI64S
                                            : Opcode::F64ConvertI64U);
      return e;
    }
  }
}

Expr helper_call(Ctx& c, ValType want, int depth) {
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i < c.helpers->size(); ++i) {
    const auto& h = (*c.helpers)[i];
    if (!h.type.results.empty() && h.type.results[0] == want) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return gen_leaf(c, want);
  const std::uint32_t h = c.rng.pick(candidates);
  Expr e;
  for (const ValType pt : (*c.helpers)[h].type.params) {
    Expr arg = gen_expr(c, pt, depth - 1);
    append(e.code, arg.code);
    e.tainted = e.tainted || arg.tainted;
  }
  e.code.push_back(wasm::call(c.first_helper_index + h));
  return e;
}

Expr select_expr(Ctx& c, ValType want, int depth) {
  Expr v1 = gen_expr(c, want, depth - 1);
  Expr v2 = gen_expr(c, want, depth - 1);
  Expr cond = gen_expr(c, ValType::I32, depth - 1);
  Expr e;
  e.code = std::move(v1.code);
  append(e.code, v2.code);
  append(e.code, cond.code);
  e.code.emplace_back(Opcode::Select);
  e.tainted = v1.tainted || v2.tainted || cond.tainted;
  return e;
}

Expr gen_expr(Ctx& c, ValType want, int depth) {
  if (depth <= 0) return gen_leaf(c, want);
  const double roll = c.rng.uniform();
  if (want == ValType::I32) {
    if (roll < 0.30) return int_binary(c, want, depth);
    if (roll < 0.55) return comparison(c, depth);
    if (roll < 0.70) return unary(c, want, depth);
    if (roll < 0.80) return helper_call(c, want, depth);
    if (roll < 0.88) return select_expr(c, want, depth);
    return gen_leaf(c, want);
  }
  if (want == ValType::I64) {
    if (roll < 0.40) return int_binary(c, want, depth);
    if (roll < 0.60) return unary(c, want, depth);
    if (roll < 0.72) return helper_call(c, want, depth);
    if (roll < 0.82) return select_expr(c, want, depth);
    return gen_leaf(c, want);
  }
  // floats
  if (roll < 0.35) return float_arith(c, want, depth);
  if (roll < 0.60) return unary(c, want, depth);
  if (roll < 0.72) return select_expr(c, want, depth);
  return gen_leaf(c, want);
}

// ------------------------------------------------------------ statements

void gen_statements(Ctx& c, std::vector<Instr>& out, int depth, int budget);

/// One of the 9 store widths into a scratch slot; updates slot taint.
void stmt_store(Ctx& c, std::vector<Instr>& out) {
  static const std::vector<Opcode> stores = {
      Opcode::I32Store, Opcode::I32Store8, Opcode::I32Store16,
      Opcode::I64Store, Opcode::I64Store8, Opcode::I64Store16,
      Opcode::I64Store32, Opcode::F32Store, Opcode::F64Store};
  const Opcode op = c.rng.pick(stores);
  const auto& info = wasm::op_info(op);
  const auto slot = static_cast<std::uint32_t>(c.rng.below(kNumSlots));
  const auto inner = static_cast<std::uint32_t>(
      c.rng.below(8 - info.access_bytes + 1));
  const std::uint32_t target = slot_addr(slot) + inner;

  std::uint32_t imm = 0;
  if (c.rng.chance(0.4)) {
    imm = static_cast<std::uint32_t>(c.rng.below(65));
  }
  out.push_back(wasm::i32_const(static_cast<std::int32_t>(target - imm)));
  ValType vt;
  switch (op) {
    case Opcode::I32Store:
    case Opcode::I32Store8:
    case Opcode::I32Store16:
      vt = ValType::I32;
      break;
    case Opcode::F32Store:
      vt = ValType::F32;
      break;
    case Opcode::F64Store:
      vt = ValType::F64;
      break;
    default:
      vt = ValType::I64;
      break;
  }
  Expr value = gen_expr(c, vt, 2);
  append(out, value.code);
  out.push_back(wasm::mem_store(op, imm, natural_align(op)));
  if (value.tainted) c.slot_taint[slot] = true;
}

void stmt_local_set(Ctx& c, std::vector<Instr>& out) {
  std::vector<std::uint32_t> writable;
  for (std::uint32_t i = 0; i < c.locals.size(); ++i) {
    if (c.locals[i].writable) writable.push_back(i);
  }
  if (writable.empty()) {
    out.emplace_back(Opcode::Nop);
    return;
  }
  const std::uint32_t idx = c.rng.pick(writable);
  Expr value = gen_expr(c, c.locals[idx].type, 2);
  append(out, value.code);
  if (c.rng.chance(0.3)) {
    out.push_back(wasm::local_tee(idx));
    out.emplace_back(Opcode::Drop);
  } else {
    out.push_back(wasm::local_set(idx));
  }
  // Taint is a may-analysis over all paths (this statement may sit in a
  // conditionally-skipped region), so it only ever accumulates.
  c.locals[idx].tainted = c.locals[idx].tainted || value.tainted;
}

void stmt_global_set(Ctx& c, std::vector<Instr>& out) {
  if (c.globals == nullptr || c.globals->empty()) {
    out.emplace_back(Opcode::Nop);
    return;
  }
  const auto idx = static_cast<std::uint32_t>(c.rng.below(c.globals->size()));
  Expr value = gen_expr(c, (*c.globals)[idx].type, 2);
  append(out, value.code);
  out.push_back(wasm::global_set(idx));
  c.global_taint[idx] = c.global_taint[idx] || value.tainted;
}

/// eosio_assert((E | 1), msg): the condition is nonzero by construction,
/// so the action never traps, while symbolic Es exercise the replayer's
/// assert-hold path constraints.
void stmt_assert(Ctx& c, std::vector<Instr>& out) {
  Expr cond = gen_expr(c, ValType::I32, 2);
  append(out, cond.code);
  out.push_back(wasm::i32_const(1));
  out.emplace_back(Opcode::I32Or);
  out.push_back(wasm::i32_const(static_cast<std::int32_t>(kMsgRegion)));
  out.push_back(wasm::call(c.env->eosio_assert));
}

void stmt_api(Ctx& c, std::vector<Instr>& out) {
  Expr v = gen_expr(c, ValType::I64, 2);
  append(out, v.code);
  switch (c.rng.below(3)) {
    case 0:
      out.push_back(wasm::call(c.env->printi));
      break;
    case 1:
      out.push_back(wasm::call(c.env->require_recipient));
      break;
    default:
      out.push_back(wasm::call(c.env->require_auth));
      break;
  }
}

void stmt_if(Ctx& c, std::vector<Instr>& out, int depth) {
  Expr cond = gen_expr(c, ValType::I32, 2);
  append(out, cond.code);
  out.push_back(wasm::if_());
  gen_statements(c, out, depth - 1, 1 + static_cast<int>(c.rng.below(3)));
  if (c.rng.chance(0.5)) {
    out.emplace_back(Opcode::Else);
    gen_statements(c, out, depth - 1, 1 + static_cast<int>(c.rng.below(3)));
  }
  out.emplace_back(Opcode::End);
}

void stmt_loop(Ctx& c, std::vector<Instr>& out, int depth) {
  if (c.counters_free == 0) {
    stmt_if(c, out, depth);
    return;
  }
  --c.counters_free;
  const std::uint32_t counter = c.counter_base + c.counters_free;
  const auto iterations = static_cast<std::int32_t>(1 + c.rng.below(4));
  // A later iteration observes state written by an earlier one, so inside a
  // loop body every mutable location must be assumed tainted — otherwise a
  // concrete-fallback op generated at the top of the body could receive a
  // symbolic value carried around the back edge.
  for (auto& l : c.locals) {
    if (l.writable) l.tainted = true;
  }
  std::fill(c.global_taint.begin(), c.global_taint.end(), true);
  std::fill(c.slot_taint.begin(), c.slot_taint.end(), true);
  out.push_back(wasm::i32_const(iterations));
  out.push_back(wasm::local_set(counter));
  out.push_back(wasm::loop());
  gen_statements(c, out, depth - 1, 1 + static_cast<int>(c.rng.below(3)));
  out.push_back(wasm::local_get(counter));
  out.push_back(wasm::i32_const(1));
  out.emplace_back(Opcode::I32Sub);
  out.push_back(wasm::local_tee(counter));
  out.push_back(wasm::br_if(0));
  out.emplace_back(Opcode::End);
}

void stmt_br_table(Ctx& c, std::vector<Instr>& out, int depth) {
  out.push_back(wasm::block());
  out.push_back(wasm::block());
  out.push_back(wasm::block());
  Expr idx = gen_expr(c, ValType::I32, 2);
  append(out, idx.code);
  Instr bt(Opcode::BrTable);
  bt.table = {0, 1};
  bt.a = 2;  // default depth
  out.push_back(bt);
  out.emplace_back(Opcode::End);
  gen_statements(c, out, depth - 1, 1);
  out.emplace_back(Opcode::End);
  gen_statements(c, out, depth - 1, 1);
  out.emplace_back(Opcode::End);
}

void stmt_block_skip(Ctx& c, std::vector<Instr>& out, int depth) {
  out.push_back(wasm::block());
  gen_statements(c, out, depth - 1, 1);
  Expr cond = gen_expr(c, ValType::I32, 2);
  append(out, cond.code);
  out.push_back(wasm::br_if(0));
  gen_statements(c, out, depth - 1, 1);
  out.emplace_back(Opcode::End);
}

void stmt_drop(Ctx& c, std::vector<Instr>& out) {
  static const std::vector<ValType> types = {ValType::I32, ValType::I64,
                                             ValType::F32, ValType::F64};
  Expr v = gen_expr(c, c.rng.pick(types), 3);
  append(out, v.code);
  out.emplace_back(Opcode::Drop);
}

void stmt_guarded_return(Ctx& c, std::vector<Instr>& out) {
  Expr cond = gen_expr(c, ValType::I32, 1);
  append(out, cond.code);
  out.push_back(wasm::if_());
  out.emplace_back(Opcode::Return);
  out.emplace_back(Opcode::End);
}

void gen_statement(Ctx& c, std::vector<Instr>& out, int depth) {
  const double roll = c.rng.uniform();
  if (roll < 0.22) {
    stmt_store(c, out);
  } else if (roll < 0.36) {
    stmt_local_set(c, out);
  } else if (roll < 0.44) {
    stmt_global_set(c, out);
  } else if (roll < 0.52) {
    stmt_assert(c, out);
  } else if (roll < 0.60) {
    stmt_api(c, out);
  } else if (roll < 0.68 && depth > 0) {
    stmt_if(c, out, depth);
  } else if (roll < 0.75 && depth > 0) {
    stmt_loop(c, out, depth);
  } else if (roll < 0.81 && depth > 0) {
    stmt_br_table(c, out, depth);
  } else if (roll < 0.87 && depth > 0) {
    stmt_block_skip(c, out, depth);
  } else if (roll < 0.95) {
    stmt_drop(c, out);
  } else if (roll < 0.97) {
    stmt_guarded_return(c, out);
  } else {
    out.emplace_back(Opcode::Nop);
  }
}

void gen_statements(Ctx& c, std::vector<Instr>& out, int depth, int budget) {
  for (int i = 0; i < budget; ++i) gen_statement(c, out, depth);
}

// --------------------------------------------------------------- helpers

/// Helper bodies treat every parameter as tainted and use only replayer-
/// modelled integer ops, so a helper's result expression is always exact.
Expr helper_expr(Rng& rng, const FuncType& type,
                 const std::vector<HelperSpec>& lower,
                 std::uint32_t first_helper_index, ValType want, int depth) {
  Expr e;
  e.tainted = true;
  if (depth <= 0 || rng.chance(0.2)) {
    if (!type.params.empty() && rng.chance(0.7)) {
      const auto p = static_cast<std::uint32_t>(rng.below(type.params.size()));
      e.code.push_back(wasm::local_get(p));
      const ValType pt = type.params[p];
      if (pt == ValType::I32 && want == ValType::I64) {
        e.code.emplace_back(rng.chance(0.5) ? Opcode::I64ExtendI32S
                                            : Opcode::I64ExtendI32U);
      } else if (pt == ValType::I64 && want == ValType::I32) {
        e.code.emplace_back(Opcode::I32WrapI64);
      }
      return e;
    }
    if (want == ValType::I32) {
      e.code.push_back(wasm::i32_const(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rng.next()))));
    } else {
      e.code.push_back(wasm::i64_const_u(rng.next()));
    }
    return e;
  }
  const double roll = rng.uniform();
  if (roll < 0.25 && !lower.empty()) {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t i = 0; i < lower.size(); ++i) {
      if (lower[i].type.results[0] == want) candidates.push_back(i);
    }
    if (!candidates.empty()) {
      const std::uint32_t h = rng.pick(candidates);
      for (const ValType pt : lower[h].type.params) {
        Expr arg = helper_expr(rng, type, lower, first_helper_index, pt,
                               depth - 1);
        append(e.code, arg.code);
      }
      e.code.push_back(wasm::call(first_helper_index + h));
      return e;
    }
  }
  static const std::vector<Opcode> i32_ops = {
      Opcode::I32Add, Opcode::I32Sub, Opcode::I32Mul, Opcode::I32And,
      Opcode::I32Or,  Opcode::I32Xor, Opcode::I32Shl, Opcode::I32ShrU,
      Opcode::I32Rotl};
  static const std::vector<Opcode> i64_ops = {
      Opcode::I64Add, Opcode::I64Sub, Opcode::I64Mul, Opcode::I64And,
      Opcode::I64Or,  Opcode::I64Xor, Opcode::I64Shl, Opcode::I64ShrU,
      Opcode::I64Rotr};
  Expr a = helper_expr(rng, type, lower, first_helper_index, want, depth - 1);
  Expr b = helper_expr(rng, type, lower, first_helper_index, want, depth - 1);
  e.code = std::move(a.code);
  append(e.code, b.code);
  e.code.emplace_back(want == ValType::I32 ? rng.pick(i32_ops)
                                           : rng.pick(i64_ops));
  return e;
}

HelperSpec gen_helper(Rng& rng, const std::vector<HelperSpec>& lower,
                      std::uint32_t first_helper_index) {
  HelperSpec h;
  const auto nparams = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < nparams; ++i) {
    h.type.params.push_back(rng.chance(0.5) ? ValType::I32 : ValType::I64);
  }
  h.type.results.push_back(rng.chance(0.5) ? ValType::I32 : ValType::I64);
  Expr body = helper_expr(rng, h.type, lower, first_helper_index,
                          h.type.results[0], 3);
  h.body = std::move(body.code);
  h.body.emplace_back(Opcode::End);
  return h;
}

// --------------------------------------------------------------- actions

struct ParamDraw {
  std::vector<ParamType> types;
  std::vector<abi::ParamValue> seed;
};

ParamDraw draw_params(Rng& rng) {
  ParamDraw out;
  const auto n = rng.below(5);  // 0..4 scalar/asset params
  for (std::uint64_t i = 0; i < n; ++i) {
    switch (rng.below(6)) {
      case 0:
        out.types.push_back(ParamType::Name);
        out.seed.emplace_back(abi::name(rng.name_chars(8)));
        break;
      case 1:
        out.types.push_back(ParamType::U64);
        out.seed.emplace_back(rng.next());
        break;
      case 2:
        out.types.push_back(ParamType::I64);
        out.seed.emplace_back(static_cast<std::int64_t>(rng.next()));
        break;
      case 3:
        out.types.push_back(ParamType::U32);
        out.seed.emplace_back(static_cast<std::uint32_t>(rng.next()));
        break;
      case 4:
        out.types.push_back(ParamType::F64);
        out.seed.emplace_back(static_cast<double>(rng.range(-1000000,
                                                            1000000)) *
                              0.5);
        break;
      default:
        out.types.push_back(ParamType::Asset);
        out.seed.emplace_back(abi::Asset{rng.range(0, 1'000'000'000),
                                         abi::eos_symbol()});
        break;
    }
  }
  if (rng.chance(0.35)) {
    out.types.push_back(ParamType::String);
    out.seed.emplace_back(rng.name_chars(1 + rng.below(20)));
  }
  return out;
}

ActionSpec gen_action(Rng rng, const corpus::EnvImports& env,
                      std::vector<GlobalSpec>& globals,
                      const std::vector<HelperSpec>& helpers,
                      std::uint32_t first_helper_index,
                      const std::string& name) {
  ActionSpec a;
  a.def.name = abi::name(name);
  ParamDraw params = draw_params(rng);
  a.def.params = params.types;
  a.seed = std::move(params.seed);

  constexpr std::uint32_t kMaxLoops = 2;
  a.extra_locals = {ValType::I32, ValType::I32, ValType::I64,
                    ValType::I64, ValType::F32, ValType::F64};
  for (std::uint32_t i = 0; i < kMaxLoops; ++i) {
    a.extra_locals.push_back(ValType::I32);
  }

  Ctx c;
  c.rng = rng;
  c.env = &env;
  c.helpers = &helpers;
  c.first_helper_index = first_helper_index;
  c.globals = &globals;
  c.global_taint.assign(globals.size(), false);
  c.slot_taint.assign(kNumSlots, false);

  // Local table: self + params + general extras + loop counters.
  c.locals.push_back(LocalInfo{ValType::I64, false, false});  // self
  for (std::size_t i = 0; i < a.def.params.size(); ++i) {
    const ValType lt = corpus::ContractBuilder::local_type(a.def.params[i]);
    const auto local_idx = static_cast<std::uint32_t>(c.locals.size());
    const bool pointer = a.def.params[i] == ParamType::Asset ||
                         a.def.params[i] == ParamType::String;
    // Pointer locals are concrete; scalar params are symbolic input.
    c.locals.push_back(LocalInfo{lt, !pointer, false});
    if (pointer) {
      Ctx::PtrParam p;
      p.local = local_idx;
      p.addr = kActionBuf + corpus::ContractBuilder::param_offset(a.def, i);
      p.length = a.def.params[i] == ParamType::Asset ? 16 : 1;
      if (a.def.params[i] == ParamType::Asset) {
        c.assets.push_back(p);
      } else {
        c.string_param = p;
      }
    }
  }
  const auto extras_base = static_cast<std::uint32_t>(c.locals.size());
  for (std::size_t i = 0; i + kMaxLoops < a.extra_locals.size(); ++i) {
    c.locals.push_back(LocalInfo{a.extra_locals[i], false, true});
  }
  c.counter_base = extras_base + 6;
  c.counters_free = kMaxLoops;
  for (std::uint32_t i = 0; i < kMaxLoops; ++i) {
    c.locals.push_back(LocalInfo{ValType::I32, false, false});
  }

  const int top_level = 4 + static_cast<int>(c.rng.below(7));
  for (int i = 0; i < top_level; ++i) {
    Statement s;
    gen_statement(c, s.code, 2);
    a.statements.push_back(std::move(s));
  }
  return a;
}

}  // namespace

ModuleSpec generate_spec(std::uint64_t seed) {
  ModuleSpec spec;
  spec.seed = seed;
  Rng rng(seed);

  // Env-import indices and the index of the first defined function are
  // fixed by ContractBuilder's deterministic import block.
  corpus::ContractBuilder layout;
  const corpus::EnvImports env = layout.env();
  const std::uint32_t base = layout.raw().module().num_imported_functions();

  const auto nglobals = rng.below(4);
  static const std::vector<ValType> gtypes = {ValType::I32, ValType::I64,
                                              ValType::F64};
  for (std::uint64_t i = 0; i < nglobals; ++i) {
    GlobalSpec g;
    g.type = rng.pick(gtypes);
    g.init = g.type == ValType::F64
                 ? std::uint64_t{0x4010000000000000ULL}  // 4.0
                 : rng.next();
    if (g.type == ValType::I32) g.init = static_cast<std::uint32_t>(g.init);
    spec.globals.push_back(g);
  }

  const auto nhelpers = rng.below(4);
  for (std::uint64_t i = 0; i < nhelpers; ++i) {
    Rng hr = rng.fork(0x68656c70 + i);  // "help"
    spec.helpers.push_back(gen_helper(hr, spec.helpers, base));
  }

  const auto nactions = 1 + rng.below(2);
  for (std::uint64_t i = 0; i < nactions; ++i) {
    const std::string name =
        std::string(1, static_cast<char>('a' + i)) + rng.name_chars(6);
    spec.actions.push_back(gen_action(rng.fork(0xac710000 + i), env,
                                      spec.globals, spec.helpers, base,
                                      name));
  }
  return spec;
}

Generated materialize(const ModuleSpec& spec) {
  corpus::ContractBuilder cb;
  for (std::size_t i = 0; i < spec.helpers.size(); ++i) {
    cb.raw().add_func(spec.helpers[i].type, {}, spec.helpers[i].body,
                      "h" + std::to_string(i));
  }
  for (const GlobalSpec& g : spec.globals) {
    cb.raw().add_global(g.type, true, g.init);
  }

  // The prologue initialises every scratch slot so loads in statement code
  // read model-tracked bytes; it is part of materialization (never subject
  // to minimization) so statement subsets keep their load semantics.
  Rng prologue_rng(spec.seed ^ kPrologueSalt);
  std::vector<Instr> prologue;
  for (std::uint32_t s = 0; s < kNumSlots; ++s) {
    prologue.push_back(
        wasm::i32_const(static_cast<std::int32_t>(slot_addr(s))));
    prologue.push_back(wasm::i64_const_u(prologue_rng.next()));
    prologue.push_back(wasm::mem_store(Opcode::I64Store, 0, 3));
  }

  for (const ActionSpec& a : spec.actions) {
    std::vector<Instr> body = prologue;
    for (const Statement& s : a.statements) append(body, s.code);
    body.emplace_back(Opcode::End);
    corpus::ActionOptions opts;
    cb.add_action(a.def, a.extra_locals, std::move(body), opts);
  }

  Generated out;
  out.spec = spec;
  out.abi = cb.abi();
  out.module = std::move(cb).build_module(corpus::DispatcherStyle::Standard);
  return out;
}

Generated generate(std::uint64_t seed) {
  return materialize(generate_spec(seed));
}

}  // namespace wasai::testgen
