#include "testgen/oracle.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "util/error.hpp"

#include "abi/serializer.hpp"
#include "corpus/contract_builder.hpp"
#include "eosvm/vm.hpp"
#include "instrument/instrumenter.hpp"
#include "instrument/trace_sink.hpp"
#include "symbolic/replayer.hpp"
#include "util/digest.hpp"
#include "wasm/decoder.hpp"
#include "wasm/encoder.hpp"
#include "wasm/validator.hpp"

namespace wasai::testgen {

namespace {

using symbolic::SymValue;
using vm::Value;
using wasm::ValType;

// --------------------------------------------------------------- test host

/// Deterministic host for oracle runs. Binding ids at/above kSinkBase are
/// delegated to the trace sink (the "wasai" hook imports of instrumented
/// modules); everything below dispatches by import name.
class TestgenHost : public vm::HostInterface {
 public:
  TestgenHost(std::uint64_t self, util::Bytes action_data,
              vm::HostInterface* sink)
      : self_(self), data_(std::move(action_data)), sink_(sink) {}

  std::uint32_t bind(std::string_view module, std::string_view field,
                     const wasm::FuncType& type) override {
    if (module != "env") {
      if (sink_ == nullptr) {
        throw util::ValidationError("testgen host: unexpected import module " +
                                    std::string(module));
      }
      return kSinkBase + sink_->bind(module, field, type);
    }
    names_.emplace_back(field);
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  vm::HookSink* hook_sink(std::uint32_t binding,
                          std::uint32_t& sink_binding) override {
    // Forward hook resolution so the trace sink's imports dispatch directly
    // on the VM fast path, exactly as they do under the chain controller.
    if (binding >= kSinkBase && sink_ != nullptr) {
      return sink_->hook_sink(binding - kSinkBase, sink_binding);
    }
    return nullptr;
  }

  std::optional<Value> call_host(std::uint32_t binding,
                                 std::span<const Value> args,
                                 vm::Instance& instance) override {
    if (binding >= kSinkBase) {
      return sink_->call_host(binding - kSinkBase, args, instance);
    }
    const std::string& name = names_.at(binding);
    if (name == "eosio_assert") {
      if (!args[0].truthy()) {
        throw util::Trap("eosio_assert: " + read_cstring(instance,
                                                         args[1].u32()));
      }
      return std::nullopt;
    }
    if (name == "read_action_data") {
      const std::uint32_t ptr = args[0].u32();
      const auto len = std::min<std::size_t>(args[1].u32(), data_.size());
      if (len > 0) {
        auto dst = instance.memory_at(ptr, len);
        std::copy_n(data_.data(), len, dst.begin());
      }
      return Value::i32(static_cast<std::uint32_t>(len));
    }
    if (name == "action_data_size") {
      return Value::i32(static_cast<std::uint32_t>(data_.size()));
    }
    if (name == "current_receiver") return Value::i64(self_);
    if (name == "has_auth") return Value::i32(1);
    if (name == "tapos_block_num") return Value::i32(3141);
    if (name == "tapos_block_prefix") return Value::i32(59265);
    if (name == "current_time") return Value::i64(1'700'000'000'000'000ULL);
    if (name == "db_store_i64") return Value::i32(0);
    if (name == "db_find_i64" || name == "db_next_i64" ||
        name == "db_lowerbound_i64") {
      return Value::i32s(-1);
    }
    if (name == "db_get_i64") return Value::i32(0);
    // require_auth, require_auth2, require_recipient, send_inline,
    // send_deferred, db_update_i64, db_remove_i64, printi: void no-ops.
    return std::nullopt;
  }

 private:
  static constexpr std::uint32_t kSinkBase = 0x4000'0000;

  static std::string read_cstring(vm::Instance& instance, std::uint32_t ptr) {
    std::string out;
    for (std::uint32_t i = 0; i < 256; ++i) {
      const auto b = instance.memory_at(ptr + i, 1)[0];
      if (b == 0) break;
      out.push_back(static_cast<char>(b));
    }
    return out;
  }

  std::uint64_t self_;
  util::Bytes data_;
  vm::HostInterface* sink_;
  std::vector<std::string> names_;
};

// ----------------------------------------------------------- probe records

/// One probe snapshot. Values live in the owning Recorder's shared arena
/// (offset + length), not in per-record vectors: snapshotting every executed
/// instruction with three heap allocations apiece dominated oracle runtime.
struct ProbeRecord {
  std::uint32_t func = 0;
  std::uint32_t pc = 0;
  std::size_t frame_base = 0;
  std::size_t stack_off = 0;
  std::size_t stack_len = 0;
  std::size_t locals_off = 0;
  std::size_t locals_len = 0;
  std::size_t globals_off = 0;
};

class Recorder : public vm::ExecProbe {
 public:
  explicit Recorder(std::uint32_t num_globals) : num_globals_(num_globals) {}

  void on_instr(const vm::ExecProbeView& view, vm::Instance& inst) override {
    ProbeRecord r;
    r.func = view.func_index;
    r.pc = view.pc;
    r.frame_base = view.frame_stack_base;
    r.stack_off = arena_.size();
    r.stack_len = view.stack.size();
    arena_.insert(arena_.end(), view.stack.begin(), view.stack.end());
    r.locals_off = arena_.size();
    r.locals_len = view.locals.size();
    arena_.insert(arena_.end(), view.locals.begin(), view.locals.end());
    r.globals_off = arena_.size();
    for (std::uint32_t g = 0; g < num_globals_; ++g) {
      arena_.push_back(inst.global(g));
    }
    records.push_back(r);
  }

  [[nodiscard]] std::span<const Value> stack(const ProbeRecord& r) const {
    return {arena_.data() + r.stack_off, r.stack_len};
  }
  [[nodiscard]] std::span<const Value> locals(const ProbeRecord& r) const {
    return {arena_.data() + r.locals_off, r.locals_len};
  }
  [[nodiscard]] std::span<const Value> globals(const ProbeRecord& r) const {
    return {arena_.data() + r.globals_off, num_globals_};
  }

  std::vector<ProbeRecord> records;

 private:
  std::uint32_t num_globals_;
  std::vector<Value> arena_;
};

// ------------------------------------------------------------ concretizer

std::uint64_t mask_to(std::uint64_t v, unsigned bits) {
  return bits >= 64 ? v : (v & ((std::uint64_t{1} << bits) - 1));
}

std::uint64_t whole_binding_value(const abi::ParamValue& p) {
  if (const auto* n = std::get_if<abi::Name>(&p)) return n->value();
  if (const auto* u = std::get_if<std::uint64_t>(&p)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&p)) {
    return static_cast<std::uint64_t>(*i);
  }
  if (const auto* u32 = std::get_if<std::uint32_t>(&p)) return *u32;
  if (const auto* d = std::get_if<double>(&p)) {
    return std::bit_cast<std::uint64_t>(*d);
  }
  throw util::UsageError("testgen: pointer parameter bound as Whole");
}

std::uint64_t binding_value(const symbolic::InputBinding& b,
                            const std::vector<abi::ParamValue>& seed) {
  using Kind = symbolic::InputBinding::Kind;
  const abi::ParamValue& p = seed.at(b.param_index);
  switch (b.kind) {
    case Kind::Whole:
      return whole_binding_value(p);
    case Kind::AssetAmount:
      return static_cast<std::uint64_t>(std::get<abi::Asset>(p).amount);
    case Kind::AssetSymbol:
      return std::get<abi::Asset>(p).symbol.value();
    case Kind::StringLen:
      return std::get<std::string>(p).size();
    case Kind::StringByte:
      return static_cast<std::uint8_t>(
          std::get<std::string>(p).at(b.byte_index));
  }
  return 0;
}

/// Substitutes every input variable with its concrete seed value and
/// simplifies; a fully-concrete replay must reduce every state expression
/// to a numeral this way.
class Concretizer {
 public:
  Concretizer(symbolic::Z3Env& env,
              const std::vector<symbolic::InputBinding>& bindings,
              const std::vector<abi::ParamValue>& seed)
      : src_(env.ctx()), dst_(env.ctx()) {
    for (const auto& b : bindings) {
      src_.push_back(b.var);
      dst_.push_back(env.bv(mask_to(binding_value(b, seed),
                                    b.var.get_sort().bv_size()),
                            b.var.get_sort().bv_size()));
    }
  }

  std::optional<std::uint64_t> eval(const z3::expr& e) {
    z3::expr r = z3::expr(e).substitute(src_, dst_).simplify();
    if (!r.is_numeral()) return std::nullopt;
    return r.get_numeral_uint64();
  }

 private:
  z3::expr_vector src_;
  z3::expr_vector dst_;
};

// ----------------------------------------------------------- diff observer

/// A symbolic value whose comparison must wait for the input bindings
/// (available only once replay() returns).
struct PendingCompare {
  z3::expr e;
  std::uint64_t expected;
  unsigned bits;
  std::string where;
};

/// Pairs each replayed event with the corresponding concrete probe record.
/// Alignment is 1:1 and contiguous: the instrumenter hooks every original
/// instruction, so the replayed event stream mirrors the probe stream from
/// the action function's entry until it returns.
class DiffObserver : public symbolic::ReplayObserver {
 public:
  DiffObserver(const Recorder& recorder, std::size_t start,
               std::size_t stack_offset, ActionCheck& check,
               std::vector<Divergence>& divergences)
      : recorder_(recorder),
        cursor_(start),
        stack_offset_(stack_offset),
        check_(&check),
        divergences_(&divergences) {}

  void on_event(const symbolic::ReplayStepView& view) override {
    if (cursor_ >= recorder_.records.size()) {
      diverge("replay event at site " + std::to_string(view.site) +
              " has no concrete counterpart");
      return;
    }
    const ProbeRecord& rec = recorder_.records[cursor_++];
    const auto stack = recorder_.stack(rec);
    const auto locals = recorder_.locals(rec);
    const auto globals = recorder_.globals(rec);
    ++check_->events_compared;
    const std::string at = "func " + std::to_string(view.func_index) +
                           " instr " + std::to_string(view.instr_index);
    if (rec.func != view.func_index || rec.pc != view.instr_index) {
      diverge("control divergence: concrete at func " +
              std::to_string(rec.func) + " instr " + std::to_string(rec.pc) +
              ", replay at " + at);
      return;
    }
    if (stack.size() < stack_offset_ ||
        stack.size() - stack_offset_ != view.stack.size()) {
      diverge(at + ": stack height " +
              std::to_string(stack.size() - stack_offset_) +
              " concrete vs " + std::to_string(view.stack.size()) + " replay");
      return;
    }
    if (rec.frame_base - stack_offset_ != view.frame_stack_base) {
      diverge(at + ": frame base mismatch");
      return;
    }
    for (std::size_t i = 0; i < view.stack.size(); ++i) {
      compare(view.stack[i], stack[stack_offset_ + i],
              at + " stack[" + std::to_string(i) + "]");
    }
    if (locals.size() != view.locals.size()) {
      diverge(at + ": locals count mismatch");
    } else {
      for (std::size_t i = 0; i < view.locals.size(); ++i) {
        compare(view.locals[i], locals[i],
                at + " local[" + std::to_string(i) + "]");
      }
    }
    if (globals.size() != view.globals.size()) {
      diverge(at + ": globals count mismatch");
    } else {
      for (std::size_t i = 0; i < view.globals.size(); ++i) {
        compare(view.globals[i], globals[i],
                at + " global[" + std::to_string(i) + "]");
      }
    }
  }

  void on_finish(const symbolic::MemoryModel& memory,
                 std::span<const SymValue> globals) override {
    for (const auto& [addr, e] : memory.tracked_bytes()) {
      final_bytes_.emplace_back(addr, e);
    }
    final_globals_.assign(globals.begin(), globals.end());
  }

  /// Deferred symbolic comparisons plus the final-state snapshot; resolved
  /// by the oracle once bindings are known.
  std::vector<PendingCompare> pending;
  std::vector<std::pair<std::uint64_t, z3::expr>> final_bytes_;
  std::vector<SymValue> final_globals_;

  void compare(const SymValue& sym, const Value& conc,
               const std::string& where) {
    ++check_->values_compared;
    const unsigned bits = sym.bits();
    const std::uint64_t expected = mask_to(conc.bits, bits);
    if (const auto v = sym.concrete()) {
      if (*v != expected) {
        diverge(where + ": concrete " + std::to_string(expected) +
                " vs replay " + std::to_string(*v));
      }
      return;
    }
    pending.push_back(PendingCompare{sym.e, expected, bits, where});
  }

  void diverge(const std::string& what) {
    ++check_->divergences;
    if (divergences_->size() < kMaxReported) {
      divergences_->push_back(Divergence{check_->action, what});
    }
  }

 private:
  static constexpr std::size_t kMaxReported = 32;

  const Recorder& recorder_;
  std::size_t cursor_;
  std::size_t stack_offset_;
  ActionCheck* check_;
  std::vector<Divergence>* divergences_;
};

// ---------------------------------------------------------------- plumbing

std::uint32_t apply_index(const wasm::Module& m) {
  const auto idx = m.find_export("apply");
  if (!idx.has_value()) {
    throw util::UsageError("testgen: module has no apply export");
  }
  return *idx;
}

/// Execute apply(self, self, action) and report whether it completed.
bool run_apply(vm::Vm& vm, vm::Instance& inst, std::uint64_t self,
               std::uint64_t action, std::string* trap_message) {
  const Value args[3] = {Value::i64(self), Value::i64(self),
                         Value::i64(action)};
  try {
    vm.invoke(inst, apply_index(inst.module()), args);
    return true;
  } catch (const util::Trap& t) {
    if (trap_message != nullptr) *trap_message = t.what();
    return false;
  }
}

void check_action(const std::shared_ptr<const wasm::Module>& original,
                  const std::shared_ptr<const wasm::Module>& instrumented,
                  const std::shared_ptr<const vm::FlatModule>& instr_flat,
                  const instrument::SiteTable& sites, const ActionSpec& spec,
                  std::uint64_t self, OracleResult& out, util::Digest& digest) {
  ActionCheck check;
  check.action = spec.def.name.to_string();
  const util::Bytes data = abi::pack(spec.def, spec.seed);
  const auto num_globals =
      static_cast<std::uint32_t>(original->globals.size());

  // Run A: the ORIGINAL module under a per-instruction probe.
  TestgenHost host_a(self, data, nullptr);
  vm::Instance inst_a(original, host_a);
  Recorder recorder(num_globals);
  vm::Vm vm_a;
  vm_a.set_probe(&recorder);
  std::string trap_a;
  const bool ok_a = run_apply(vm_a, inst_a, self, spec.def.name.value(),
                              &trap_a);
  if (!ok_a) {
    out.error = "concrete execution trapped (" + check.action + "): " + trap_a;
    out.actions.push_back(check);
    return;
  }

  // Run B: the INSTRUMENTED module on the VM fast path, capturing the
  // trace. Run A stays on the legacy interpreter, so every oracle action is
  // also a legacy-vs-fastpath differential check.
  instrument::TraceSink sink;
  TestgenHost host_b(self, data, &sink);
  vm::Instance inst_b(instrumented, host_b, instr_flat);
  vm::Vm vm_b;
  sink.on_action_begin(abi::Name(self), abi::Name(self), spec.def.name);
  std::string trap_b;
  const bool ok_b = run_apply(vm_b, inst_b, self, spec.def.name.value(),
                              &trap_b);
  sink.on_action_end(ok_b);
  if (!ok_b) {
    out.error =
        "instrumented execution trapped (" + check.action + "): " + trap_b;
    out.actions.push_back(check);
    return;
  }
  const instrument::ActionTrace& trace = sink.actions().front();

  const auto site = symbolic::locate_action_call(trace, sites, *original,
                                                 1 + spec.def.params.size());
  if (!site.has_value()) {
    out.error = "locate_action_call failed (" + check.action + ")";
    out.actions.push_back(check);
    return;
  }

  // Alignment origin: the first probe record inside the action function.
  std::size_t start = recorder.records.size();
  for (std::size_t i = 0; i < recorder.records.size(); ++i) {
    if (recorder.records[i].func == site->func_index &&
        recorder.records[i].pc == 0) {
      start = i;
      break;
    }
  }
  if (start == recorder.records.size()) {
    out.error = "action entry not found in probe stream (" + check.action +
                ")";
    out.actions.push_back(check);
    return;
  }
  const std::size_t stack_offset = recorder.records[start].stack_len;

  symbolic::Z3Env env;
  DiffObserver observer(recorder, start, stack_offset, check,
                        out.divergences);
  symbolic::ReplayResult replayed;
  try {
    replayed = symbolic::replay(env, *original, sites, trace, *site, spec.def,
                                spec.seed, &observer);
  } catch (const symbolic::ReplayError& e) {
    out.error = std::string("replay failed (") + check.action +
                "): " + e.what();
    out.actions.push_back(check);
    return;
  }
  if (!replayed.completed_scope || replayed.trapped) {
    out.error = "replay did not complete the action scope (" + check.action +
                ")";
    out.actions.push_back(check);
    return;
  }

  // Resolve the deferred symbolic comparisons now that bindings exist.
  Concretizer conc(env, replayed.bindings, spec.seed);
  for (const auto& p : observer.pending) {
    const auto v = conc.eval(p.e);
    if (!v.has_value()) {
      ++check.unknown_values;
      if (out.divergences.size() < 32) {
        out.divergences.push_back(
            Divergence{check.action, p.where + ": not concretizable"});
      }
      continue;
    }
    if (*v != p.expected) {
      ++check.divergences;
      if (out.divergences.size() < 32) {
        out.divergences.push_back(Divergence{
            check.action, p.where + ": concrete " +
                              std::to_string(p.expected) + " vs replay " +
                              std::to_string(*v)});
      }
    }
  }

  // Final-state comparison: every byte the memory model tracked must match
  // the interpreter's final memory image, and globals must agree.
  for (const auto& [addr, e] : observer.final_bytes_) {
    ++check.values_compared;
    const auto v = conc.eval(e);
    const std::uint8_t actual = inst_a.memory_at(addr, 1)[0];
    if (!v.has_value()) {
      ++check.unknown_values;
      continue;
    }
    if (static_cast<std::uint8_t>(*v) != actual) {
      ++check.divergences;
      if (out.divergences.size() < 32) {
        out.divergences.push_back(Divergence{
            check.action, "final memory[" + std::to_string(addr) +
                              "]: concrete " + std::to_string(actual) +
                              " vs replay " + std::to_string(*v)});
      }
    }
  }
  if (observer.final_globals_.size() == num_globals) {
    const std::size_t already_resolved = observer.pending.size();
    for (std::uint32_t g = 0; g < num_globals; ++g) {
      observer.compare(observer.final_globals_[g], inst_a.global(g),
                       "final global[" + std::to_string(g) + "]");
    }
    // compare() queues symbolic values; resolve the newly queued tail.
    for (std::size_t i = already_resolved; i < observer.pending.size(); ++i) {
      const auto& p = observer.pending[i];
      const auto v = conc.eval(p.e);
      if (!v.has_value()) {
        ++check.unknown_values;
      } else if (*v != p.expected) {
        ++check.divergences;
        if (out.divergences.size() < 32) {
          out.divergences.push_back(Divergence{
              check.action, p.where + ": concrete " +
                                std::to_string(p.expected) + " vs replay " +
                                std::to_string(*v)});
        }
      }
    }
  } else {
    ++check.divergences;
    out.divergences.push_back(
        Divergence{check.action, "final globals count mismatch"});
  }

  // Fold run A's final state into the batch fingerprint.
  digest.u64(spec.def.name.value());
  digest.u64(recorder.records.size());
  for (std::uint32_t g = 0; g < num_globals; ++g) {
    digest.u64(inst_a.global(g).bits);
  }
  const auto mem = inst_a.memory_at(0, inst_a.memory_size());
  digest.bytes(mem);

  out.actions.push_back(check);
}

}  // namespace

OracleResult check_module(const Generated& gen) {
  OracleResult out;
  util::Digest digest;
  try {
    // (1) codec round-trip: encode → decode → encode must be byte-identical
    // and both sides must validate.
    const util::Bytes bytes = wasm::encode(gen.module);
    const wasm::Module decoded = wasm::decode(bytes);
    const util::Bytes bytes2 = wasm::encode(decoded);
    wasm::validate(gen.module);
    wasm::validate(decoded);
    out.roundtrip_ok = (bytes == bytes2);
    if (!out.roundtrip_ok) {
      out.error = "encode/decode round-trip is not byte-identical";
      return out;
    }

    // (2)+(3) concrete execution vs instrumented trace replay, per action.
    const instrument::Instrumented instrumented =
        instrument::instrument(gen.module);
    auto original = std::make_shared<const wasm::Module>(gen.module);
    auto instr_mod =
        std::make_shared<const wasm::Module>(instrumented.module);
    const auto instr_flat = vm::FlatModule::build(instr_mod);
    const std::uint64_t self = abi::name("testgen").value();
    for (const ActionSpec& action : gen.spec.actions) {
      check_action(original, instr_mod, instr_flat, instrumented.sites,
                   action, self, out, digest);
      if (!out.error.empty()) break;
    }
  } catch (const util::Error& e) {
    out.error = e.what();
  }
  out.state_digest = digest.value();
  return out;
}

OracleResult check_seed(std::uint64_t seed) {
  return check_module(generate(seed));
}

}  // namespace wasai::testgen
