// The differential oracle: each generated module is (1) round-tripped
// through the codec, (2) executed concretely in eosvm under a
// per-instruction probe, (3) traced through the instrumentation pipeline and
// replayed symbolically with fully-concrete inputs. Since every input is
// concrete, the replayer's state must concretize to exactly the
// interpreter's state at every original instruction — a divergence is a
// real soundness bug in the codec, interpreter, instrumenter or replayer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testgen/generator.hpp"

namespace wasai::testgen {

/// One concrete/symbolic mismatch (or structural misalignment).
struct Divergence {
  std::string action;  // action name
  std::string what;    // human-readable description with location
};

/// Per-action comparison statistics.
struct ActionCheck {
  std::string action;
  std::size_t events_compared = 0;
  std::size_t values_compared = 0;
  /// Symbolic values that did not reduce to a numeral under full input
  /// substitution (replayer lost precision where it should not have).
  std::size_t unknown_values = 0;
  std::size_t divergences = 0;
};

struct OracleResult {
  bool roundtrip_ok = false;  // decode∘encode byte-identity + validation
  std::vector<ActionCheck> actions;
  std::vector<Divergence> divergences;
  /// FNV-1a digest over the concrete machine's final state across all
  /// actions (memory, globals, instruction count) — the batch
  /// reproducibility fingerprint.
  std::uint64_t state_digest = 0;
  std::string error;  // nonempty on harness failure (trap, locate, replay)

  [[nodiscard]] bool ok() const {
    return roundtrip_ok && error.empty() && divergences.empty() &&
           unknown_values() == 0;
  }
  [[nodiscard]] std::size_t unknown_values() const {
    std::size_t n = 0;
    for (const auto& a : actions) n += a.unknown_values;
    return n;
  }
};

/// Run the full differential check on a materialized module.
OracleResult check_module(const Generated& gen);

/// generate(seed) + check_module.
OracleResult check_seed(std::uint64_t seed);

}  // namespace wasai::testgen
