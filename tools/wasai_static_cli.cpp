// wasai-static: inspect and validate the static pre-analysis pass.
//
//   wasai-static dump <contract.wasm> [--table]
//   wasai-static check <corpus-dir> [--iterations N] [--seed N]
//
// `dump` runs the call graph + CFG + dataflow pass over one module and
// prints the StaticReport as JSON (--table embeds the full per-site branch
// classification table).
//
// `check` is the soundness gate CI runs over a generated testgen corpus:
// every `<stem>.wasm` + `<stem>.abi` pair is fuzzed twice — static
// pre-analysis on and off — and the two runs must agree exactly (findings,
// adaptive seeds, coverage, transactions and the serialized bytes of the
// final captured traces), with zero oracle-gate violations. Any divergence
// means the static pass pruned something the dynamic stages needed, i.e. a
// conservatism-contract bug; exit 1. The per-corpus totals it prints show
// how much work the gate actually removed (pruned flips, skipped replays).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "abi/abi_json.hpp"
#include "analysis/report.hpp"
#include "campaign/campaign.hpp"
#include "instrument/trace_io.hpp"
#include "util/digest.hpp"
#include "wasai/wasai.hpp"
#include "wasm/decoder.hpp"

namespace {

using namespace wasai;

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return util::Bytes(s.begin(), s.end());
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wasai-static dump <contract.wasm> [--table]\n"
               "  wasai-static check <corpus-dir> [--iterations N] "
               "[--seed N]\n");
  return 2;
}

int cmd_dump(int argc, char** argv) {
  if (argc < 3) return usage();
  bool include_table = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table") == 0) {
      include_table = true;
    } else {
      return usage();
    }
  }
  const auto bytes = read_file(argv[2]);
  const wasm::Module module = wasm::decode(bytes);
  const analysis::StaticReport report = analysis::analyze_module(module);
  std::printf("%s\n",
              util::dump_json(analysis::report_to_json(report, include_table))
                  .c_str());
  return 0;
}

/// Everything one fuzzing run must reproduce for the A/B comparison.
struct RunOutcome {
  std::size_t adaptive_seeds = 0;
  std::size_t distinct_branches = 0;
  std::size_t transactions = 0;
  std::string findings;
  std::uint64_t trace_digest = 0;
  std::size_t flips_pruned = 0;
  std::size_t replays_skipped = 0;
  std::size_t gate_violations = 0;

  [[nodiscard]] bool agrees(const RunOutcome& other) const {
    return adaptive_seeds == other.adaptive_seeds &&
           distinct_branches == other.distinct_branches &&
           transactions == other.transactions && findings == other.findings &&
           trace_digest == other.trace_digest;
  }
};

RunOutcome run_one(const util::Bytes& wasm_bytes, const abi::Abi& contract_abi,
                   bool static_analysis, int iterations, std::uint64_t seed) {
  engine::FuzzOptions options;
  options.iterations = iterations;
  options.rng_seed = seed;
  options.static_analysis = static_analysis;
  engine::Fuzzer fuzzer(wasm_bytes, contract_abi, options);
  const auto report = fuzzer.run();
  RunOutcome out;
  out.adaptive_seeds = report.adaptive_seeds;
  out.distinct_branches = report.distinct_branches;
  out.transactions = report.transactions;
  for (const auto& finding : report.scan.findings) {
    out.findings += scanner::to_string(finding.type);
    out.findings += ';';
  }
  util::Digest digest;
  digest.bytes(
      instrument::serialize_traces(fuzzer.harness().sink().actions()));
  out.trace_digest = digest.value();
  out.flips_pruned = report.flips_pruned;
  out.replays_skipped = report.replays_skipped;
  out.gate_violations = report.oracle_gate_violations;
  return out;
}

int cmd_check(int argc, char** argv) {
  if (argc < 3) return usage();
  int iterations = 16;
  std::uint64_t seed = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      return usage();
    }
  }

  const auto inputs = campaign::scan_directory(argv[2]);
  if (inputs.empty()) {
    throw util::UsageError(std::string(argv[2]) +
                           " holds no .wasm/.abi contract pairs");
  }
  std::printf("wasai-static: checking %zu contracts (%d iterations each)\n",
              inputs.size(), iterations);

  std::size_t violations = 0;
  std::size_t total_pruned = 0;
  std::size_t total_replays_skipped = 0;
  for (const auto& input : inputs) {
    const auto wasm_bytes = read_file(input.wasm_path);
    const auto abi_bytes = read_file(input.abi_path);
    const abi::Abi contract_abi =
        abi::abi_from_json(std::string(abi_bytes.begin(), abi_bytes.end()));
    // A wrong prune is deterministic — it diverges on every attempt. A Z3
    // query sitting on its soft timeout is not: its verdict (and thus the
    // adaptive-seed count) can flip run to run with the static pass off
    // too. Retrying the A/B pair separates the two: only a divergence that
    // survives every attempt is charged as a soundness violation.
    constexpr int kAttempts = 3;
    RunOutcome gated;
    RunOutcome plain;
    bool agreed = false;
    bool skipped = false;
    for (int attempt = 0; attempt < kAttempts && !agreed; ++attempt) {
      try {
        gated = run_one(wasm_bytes, contract_abi, /*static_analysis=*/true,
                        iterations, seed);
        plain = run_one(wasm_bytes, contract_abi, /*static_analysis=*/false,
                        iterations, seed);
      } catch (const util::Error& e) {
        // Contracts the pipeline rejects outright (bad wasm, no apply)
        // teach the soundness gate nothing; skip, matching the campaign's
        // per-contract fault isolation.
        std::printf("  skip %s: %s\n", input.id.c_str(), e.what());
        skipped = true;
        break;
      }
      if (gated.gate_violations != 0) {
        ++violations;
        std::printf("SOUNDNESS VIOLATION %s: %zu findings fired against a "
                    "statically impossible verdict\n",
                    input.id.c_str(), gated.gate_violations);
        skipped = true;  // charged already; no A/B retry needed
        break;
      }
      agreed = gated.agrees(plain);
      if (!agreed && attempt + 1 < kAttempts) {
        std::printf("  retry %s: static on/off diverged (solver timing?)\n",
                    input.id.c_str());
      }
    }
    if (skipped) continue;
    total_pruned += gated.flips_pruned;
    total_replays_skipped += gated.replays_skipped;
    if (!agreed) {
      ++violations;
      std::printf(
          "SOUNDNESS VIOLATION %s: static on/off diverged on every attempt "
          "(seeds %zu/%zu, branches %zu/%zu, txns %zu/%zu, findings "
          "\"%s\"/\"%s\", trace %016llx/%016llx)\n",
          input.id.c_str(), gated.adaptive_seeds, plain.adaptive_seeds,
          gated.distinct_branches, plain.distinct_branches,
          gated.transactions, plain.transactions, gated.findings.c_str(),
          plain.findings.c_str(),
          static_cast<unsigned long long>(gated.trace_digest),
          static_cast<unsigned long long>(plain.trace_digest));
    }
  }
  std::printf(
      "wasai-static: %zu violations over %zu contracts "
      "(%zu flips pruned, %zu replays skipped by the gate)\n",
      violations, inputs.size(), total_pruned, total_replays_skipped);
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "dump") == 0) return cmd_dump(argc, argv);
    if (std::strcmp(argv[1], "check") == 0) return cmd_check(argc, argv);
    return usage();
  } catch (const wasai::util::Error& e) {
    std::fprintf(stderr, "wasai-static: %s\n", e.what());
    return 2;
  }
}
