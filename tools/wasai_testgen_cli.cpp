// wasai-testgen: seeded generation and differential checking of random
// Wasm contracts.
//
//   wasai-testgen generate --seed S [--count N] [--out-dir DIR]
//   wasai-testgen check [--seed S | --seed-from-run-id] [--modules N]
//                       [--dump-dir DIR]
//   wasai-testgen minimize --seed S [--dump-dir DIR]
//
// `check` draws one module seed per module from a base-seed RNG, runs the
// differential oracle on each, and exits nonzero if any module diverges;
// failing modules are delta-minimized and dumped as reproducer .wasm +
// .seed files under --dump-dir. Runs are byte-for-byte reproducible from
// the base seed (the final line prints the batch digest).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "abi/abi_json.hpp"
#include "testgen/minimize.hpp"
#include "testgen/oracle.hpp"
#include "util/digest.hpp"
#include "util/rng.hpp"
#include "wasm/encoder.hpp"

namespace {

using namespace wasai;

struct Options {
  std::string command;
  std::uint64_t seed = 1;
  bool seed_from_run_id = false;
  std::size_t count = 200;
  std::string out_dir = ".";
  std::string dump_dir;
};

int usage() {
  std::cerr
      << "usage: wasai-testgen <generate|check|minimize> [options]\n"
         "  generate --seed S [--count N] [--out-dir DIR]\n"
         "  check    [--seed S | --seed-from-run-id] [--modules N]"
         " [--dump-dir DIR]\n"
         "  minimize --seed S [--dump-dir DIR]\n";
  return 2;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw util::UsageError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--seed-from-run-id") {
      opt.seed_from_run_id = true;
    } else if (arg == "--count" || arg == "--modules") {
      opt.count = std::stoull(next());
    } else if (arg == "--out-dir") {
      opt.out_dir = next();
    } else if (arg == "--dump-dir") {
      opt.dump_dir = next();
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  if (opt.seed_from_run_id) {
    // CI reproducibility: derive the base seed from the run id so every CI
    // run explores fresh modules while staying replayable locally.
    const char* run_id = std::getenv("GITHUB_RUN_ID");
    opt.seed = run_id != nullptr ? std::strtoull(run_id, nullptr, 10) : 1;
    if (opt.seed == 0) opt.seed = 1;
  }
  return opt.command == "generate" || opt.command == "check" ||
         opt.command == "minimize";
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw util::UsageError("cannot write " + path.string());
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Dump a reproducer: the (minimized) module binary plus the seed that
/// regenerates the full original.
void dump_reproducer(const std::string& dir, std::uint64_t module_seed,
                     const testgen::ModuleSpec& spec) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  const std::string stem = "divergence_" + std::to_string(module_seed);
  const auto gen = testgen::materialize(spec);
  write_file(std::filesystem::path(dir) / (stem + ".wasm"),
             wasm::encode(gen.module));
  std::ofstream seed_file(std::filesystem::path(dir) / (stem + ".seed"));
  seed_file << module_seed << "\n";
  std::cerr << "  reproducer: " << dir << "/" << stem << ".wasm (seed "
            << module_seed << ")\n";
}

int cmd_generate(const Options& opt) {
  std::filesystem::create_directories(opt.out_dir);
  util::Rng base(opt.seed);
  for (std::size_t i = 0; i < opt.count; ++i) {
    const std::uint64_t module_seed = base.next();
    const auto gen = testgen::generate(module_seed);
    const auto stem = "testgen_" + std::to_string(module_seed);
    const auto path =
        std::filesystem::path(opt.out_dir) / (stem + ".wasm");
    write_file(path, wasm::encode(gen.module));
    // Sibling .abi so the output directory is directly consumable by
    // `wasai-campaign run` (scan_directory pairs <stem>.wasm + <stem>.abi).
    const std::string abi_json = abi::abi_to_json(gen.abi);
    write_file(std::filesystem::path(opt.out_dir) / (stem + ".abi"),
               std::span(reinterpret_cast<const std::uint8_t*>(
                             abi_json.data()),
                         abi_json.size()));
    std::cout << path.string() << "\n";
  }
  return 0;
}

int cmd_check(const Options& opt) {
  util::Rng base(opt.seed);
  util::Digest batch;
  std::size_t failures = 0;
  std::size_t events = 0;
  std::size_t values = 0;
  for (std::size_t i = 0; i < opt.count; ++i) {
    const std::uint64_t module_seed = base.next();
    const auto gen = testgen::generate(module_seed);
    const auto result = testgen::check_module(gen);
    batch.u64(module_seed);
    batch.u64(result.state_digest);
    for (const auto& a : result.actions) {
      events += a.events_compared;
      values += a.values_compared;
    }
    if (result.ok()) continue;
    ++failures;
    std::cerr << "FAIL module seed " << module_seed << ": "
              << (result.error.empty()
                      ? std::to_string(result.divergences.size()) +
                            " divergence(s), " +
                            std::to_string(result.unknown_values()) +
                            " unknown value(s)"
                      : result.error)
              << "\n";
    for (const auto& d : result.divergences) {
      std::cerr << "  [" << d.action << "] " << d.what << "\n";
    }
    const auto minimized =
        testgen::minimize(gen.spec, testgen::oracle_fails);
    std::cerr << "  minimized to " << minimized.spec.actions.size()
              << " action(s) after " << minimized.tests << " tests\n";
    dump_reproducer(opt.dump_dir, module_seed, minimized.spec);
  }
  std::cout << "checked " << opt.count << " modules, " << failures
            << " failure(s), " << events << " events / " << values
            << " values compared\n";
  std::cout << "batch digest " << batch.hex() << " (seed " << opt.seed
            << ")\n";
  return failures == 0 ? 0 : 1;
}

int cmd_minimize(const Options& opt) {
  const auto gen = testgen::generate(opt.seed);
  const auto result = testgen::check_module(gen);
  if (result.ok()) {
    std::cout << "module seed " << opt.seed << " passes; nothing to minimize\n";
    return 0;
  }
  const auto minimized = testgen::minimize(gen.spec, testgen::oracle_fails);
  std::size_t statements = 0;
  for (const auto& a : minimized.spec.actions) {
    statements += a.statements.size();
  }
  std::cout << "minimized seed " << opt.seed << " to "
            << minimized.spec.actions.size() << " action(s) / " << statements
            << " statement(s) in " << minimized.tests << " tests\n";
  dump_reproducer(opt.dump_dir.empty() ? "." : opt.dump_dir, opt.seed,
                  minimized.spec);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse(argc, argv, opt)) return usage();
    if (opt.command == "generate") return cmd_generate(opt);
    if (opt.command == "check") return cmd_check(opt);
    return cmd_minimize(opt);
  } catch (const std::exception& e) {
    std::cerr << "wasai-testgen: " << e.what() << "\n";
    return 2;
  }
}
