// The `wasai-campaign` tool: batch-analyze a directory of contracts
// (`<stem>.wasm` + `<stem>.abi` pairs) with per-contract fault isolation.
//
//   wasai-campaign run <corpus-dir> [options]
//   wasai-campaign check-trace <trace.json>
//
// Options (run):
//   --jobs N          worker threads (default 1; 0 = hardware concurrency)
//   --iterations N    fuzzing rounds per contract (default 48)
//   --seed N          RNG seed shared by every contract (default 1)
//   --deadline-ms N   wall-clock budget per contract (default 0 = none)
//   --hung-grace N    watchdog factor: abandon a contract exceeding
//                     deadline-ms * N as `hung` (default 4; needs a
//                     deadline to be active)
//   --retries N       total attempts per contract (default 2)
//   --parallel        solve flip constraints on a worker pool
//   --no-incremental  legacy per-flip prefix re-assertion (perf baseline)
//   --no-solver-cache disable the cross-iteration flip query cache
//   --solver-cache-capacity N
//                     cached verdicts kept per contract (default 4096)
//   --no-fastpath     legacy VM interpreter (A/B perf baseline)
//   --fuzz-shards N   batch-synchronous sharded fuzzing inside each
//                     contract, over N cloned chain snapshots (composes
//                     with --jobs; 1 matches the serial loop byte for byte)
//   --no-static       disable the static pre-analysis pass (per-record
//                     `static` blocks disappear; findings are identical)
//   --static-prioritize
//                     statically pruned flips free their budget slots
//                     (opt-in: changes the flip schedule)
//   --out FILE        JSONL records destination (default: stdout)
//   --resume FILE     checkpoint/resume: parse FILE as a previous run's
//                     record stream (tolerating a torn final line), skip
//                     contracts whose content digest it already records,
//                     and rewrite FILE as kept + new records. Implies
//                     --out FILE; the summary covers the merged set.
//   --summary FILE    aggregate summary JSON destination (default: stderr)
//   --findings-only   emit the stable findings projection instead of full
//                     records (byte-identical across --jobs values)
//   --trace-out FILE  write a Chrome trace-event JSON of the campaign (one
//                     track per worker; load in chrome://tracing/Perfetto)
//   --no-obs          observability kill switch: spans/counters become
//                     no-ops; records drop the `obs` block but are
//                     otherwise byte-identical (same seeds, same findings)
//
// Signals: SIGINT/SIGTERM trip a campaign-wide cancel token. Workers stop
// claiming contracts; in-flight contracts drain through their cooperative
// deadline and are recorded with status `interrupted`; records and the
// (partial) summary are still written, so a later --resume of the record
// file picks up exactly where the shutdown left off.
//
// `check-trace` parses a trace produced by --trace-out and validates it
// (matching B/E pairs per track, monotonic timestamps, known span names);
// exit 0 = valid, 1 = rejected. CI gates the obs-trace artifact on it.
//
// Exit status: 0 when the campaign ran (even if every contract errored),
// 2 on usage errors. Per-contract faults are data, not process failures.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "campaign/report.hpp"
#include "campaign/resume.hpp"
#include "obs/trace_export.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

/// Campaign-wide shutdown token, created before the handlers are installed.
/// The handler only performs async-signal-safe work: CancelToken::cancel()
/// is a lock-free atomic store, and the progress note goes through write(2).
std::shared_ptr<util::CancelToken> g_shutdown;

extern "C" void handle_shutdown_signal(int) {
  if (g_shutdown != nullptr) g_shutdown->cancel();
  static const char msg[] =
      "\nwasai-campaign: shutdown requested; draining in-flight contracts "
      "(repeat records as `interrupted`, unclaimed contracts left for "
      "--resume)\n";
  const ssize_t rc = ::write(2, msg, sizeof(msg) - 1);
  (void)rc;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wasai-campaign run <corpus-dir> [--jobs N] [--iterations N]\n"
      "        [--seed N] [--deadline-ms N] [--hung-grace N] [--retries N]\n"
      "        [--parallel] [--no-incremental] [--no-solver-cache]\n"
      "        [--solver-cache-capacity N] [--no-fastpath]\n"
      "        [--fuzz-shards N] [--no-static] [--static-prioritize]\n"
      "        [--out FILE] [--resume FILE] [--summary FILE]\n"
      "        [--findings-only] [--trace-out FILE] [--no-obs]\n"
      "  wasai-campaign check-trace <trace.json>\n");
  return 2;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string corpus_dir = argv[2];

  campaign::CampaignOptions options;
  std::string out_path;
  std::string resume_path;
  std::string summary_path;
  std::string trace_path;
  bool findings_only = false;
  bool no_obs = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      options.fuzz.iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.fuzz.rng_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--hung-grace" && i + 1 < argc) {
      options.hung_grace = std::atof(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      options.max_attempts = std::atoi(argv[++i]);
    } else if (arg == "--parallel") {
      options.fuzz.parallel_solving = true;
    } else if (arg == "--no-incremental") {
      options.fuzz.solver.incremental = false;
    } else if (arg == "--no-solver-cache") {
      options.fuzz.solver_cache = false;
    } else if (arg == "--solver-cache-capacity" && i + 1 < argc) {
      options.fuzz.solver_cache_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-fastpath") {
      options.fuzz.vm_fastpath = false;
    } else if (arg == "--fuzz-shards" && i + 1 < argc) {
      options.fuzz.fuzz_shards = std::atoi(argv[++i]);
    } else if (arg == "--no-static") {
      options.fuzz.static_analysis = false;
    } else if (arg == "--static-prioritize") {
      options.fuzz.static_prioritize = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--summary" && i + 1 < argc) {
      summary_path = argv[++i];
    } else if (arg == "--findings-only") {
      findings_only = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--no-obs") {
      no_obs = true;
    } else {
      return usage();
    }
  }
  if (!trace_path.empty() && no_obs) {
    // Fail before the campaign runs, not after it has burned the budget.
    throw util::UsageError("--trace-out requires observability (--no-obs)");
  }
  if (!resume_path.empty() && findings_only) {
    // The findings projection carries no digests, so it cannot seed a
    // resume; mixing the two would write a stream --resume cannot read.
    throw util::UsageError("--findings-only cannot be combined with --resume");
  }
  if (!resume_path.empty() && !out_path.empty() && out_path != resume_path) {
    throw util::UsageError(
        "--resume appends to the resumed file; drop --out or point it at "
        "the same path");
  }

  // ---- checkpoint/resume: fold in the previous run's record stream ------
  campaign::ResumeState resume;
  if (!resume_path.empty()) {
    resume = campaign::load_resume_state(resume_path);
    out_path = resume_path;
    options.skip_digests = resume.skip_digests;
    std::fprintf(stderr,
                 "wasai-campaign: resuming from %s: %zu records kept, %zu "
                 "re-analyzed%s\n",
                 resume_path.c_str(), resume.kept_records.size(),
                 resume.dropped,
                 resume.torn_tail ? ", torn final line discarded" : "");
  }

  const auto inputs = campaign::scan_directory(corpus_dir);
  std::fprintf(stderr, "wasai-campaign: %zu contracts in %s, %u jobs\n",
               inputs.size(), corpus_dir.c_str(),
               options.jobs == 0 ? 0u : options.jobs);

  // ---- graceful shutdown: SIGINT/SIGTERM cancel, workers drain ----------
  g_shutdown = util::CancelToken::with_deadline(0);
  options.cancel = g_shutdown;
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);

  // Observability is on by default (the spans are nanoseconds per contract);
  // --no-obs passes a null registry so every span/counter no-ops. The
  // registry lives on the heap because a watchdog-abandoned zombie thread
  // may still append to its (quarantined) track after the campaign returns:
  // if any contract hung, the registry is deliberately leaked at exit
  // rather than freed under a live writer.
  auto* registry = new obs::Registry;
  if (!no_obs) options.obs = registry;

  campaign::CampaignRunner runner(options);
  auto report = runner.run(inputs);

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path, std::ios::trunc);
    if (!trace_file) throw util::UsageError("cannot open " + trace_path);
    trace_file << util::dump_json(obs::chrome_trace_json(*registry)) << '\n';
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) throw util::UsageError("cannot open " + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;
  if (findings_only) {
    util::JsonlWriter writer(out);
    for (const auto& record : report.records) {
      writer.write(campaign::findings_to_json(record));
    }
  } else {
    // Kept lines are replayed byte-for-byte (not re-serialized), so a
    // resumed stream is byte-identical to an uninterrupted run's stream
    // modulo the records that were actually re-analyzed.
    for (const auto& line : resume.kept_lines) out << line << '\n';
    campaign::write_records_jsonl(out, report);
  }

  // The summary covers the merged record set on resume; wall time and the
  // per-phase rollup describe this run only (the previous run's are gone).
  if (!resume.kept_records.empty()) {
    std::vector<campaign::ContractRecord> merged = resume.kept_records;
    merged.insert(merged.end(), report.records.begin(), report.records.end());
    campaign::CampaignSummary merged_summary =
        campaign::summarize_records(merged);
    merged_summary.skipped = report.summary.skipped;
    merged_summary.wall_ms = report.summary.wall_ms;
    merged_summary.phases = report.summary.phases;
    report.summary = std::move(merged_summary);
  }

  // With observability on, the summary's `obs` block is upgraded from the
  // per-phase rollup to the full metrics document (phases + counters +
  // histograms).
  util::JsonObject summary_obj =
      campaign::summary_to_json(report.summary).as_object();
  if (!no_obs) {
    summary_obj["obs"] = obs::metrics_json(*registry);
  }
  const std::string summary =
      util::dump_json(util::Json(std::move(summary_obj)));
  if (summary_path.empty()) {
    std::fprintf(stderr, "%s\n", summary.c_str());
  } else {
    std::ofstream summary_file(summary_path, std::ios::trunc);
    if (!summary_file) {
      throw util::UsageError("cannot open " + summary_path);
    }
    summary_file << summary << '\n';
  }
  if (report.summary.hung == 0) {
    delete registry;  // no zombies: safe to free
  }
  return 0;
}

int cmd_check_trace(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) throw util::UsageError(std::string("cannot open ") + argv[2]);
  std::ostringstream ss;
  ss << in.rdbuf();
  const util::Json doc = util::parse_json(ss.str());
  if (const auto problem = obs::validate_chrome_trace(doc)) {
    std::fprintf(stderr, "wasai-campaign: invalid trace: %s\n",
                 problem->c_str());
    return 1;
  }
  std::size_t events = 0;
  if (const util::Json* arr = doc.find("traceEvents")) {
    events = arr->as_array().size();
  }
  std::fprintf(stderr, "wasai-campaign: trace ok (%zu events)\n", events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
    if (std::strcmp(argv[1], "check-trace") == 0) {
      return cmd_check_trace(argc, argv);
    }
    return usage();
  } catch (const wasai::util::Error& e) {
    std::fprintf(stderr, "wasai-campaign: %s\n", e.what());
    return 2;
  }
}
