// The `wasai-campaign` tool: batch-analyze a directory of contracts
// (`<stem>.wasm` + `<stem>.abi` pairs) with per-contract fault isolation.
//
//   wasai-campaign run <corpus-dir> [options]
//
// Options:
//   --jobs N          worker threads (default 1; 0 = hardware concurrency)
//   --iterations N    fuzzing rounds per contract (default 48)
//   --seed N          RNG seed shared by every contract (default 1)
//   --deadline-ms N   wall-clock budget per contract (default 0 = none)
//   --retries N       total attempts per contract (default 2)
//   --parallel        solve flip constraints on a worker pool
//   --no-incremental  legacy per-flip prefix re-assertion (perf baseline)
//   --no-solver-cache disable the cross-iteration flip query cache
//   --solver-cache-capacity N
//                     cached verdicts kept per contract (default 4096)
//   --out FILE        JSONL records destination (default: stdout)
//   --summary FILE    aggregate summary JSON destination (default: stderr)
//   --findings-only   emit the stable findings projection instead of full
//                     records (byte-identical across --jobs values)
//
// Exit status: 0 when the campaign ran (even if every contract errored),
// 2 on usage errors. Per-contract faults are data, not process failures.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "campaign/report.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wasai-campaign run <corpus-dir> [--jobs N] [--iterations N]\n"
      "        [--seed N] [--deadline-ms N] [--retries N] [--parallel]\n"
      "        [--no-incremental] [--no-solver-cache]\n"
      "        [--solver-cache-capacity N]\n"
      "        [--out FILE] [--summary FILE] [--findings-only]\n");
  return 2;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string corpus_dir = argv[2];

  campaign::CampaignOptions options;
  std::string out_path;
  std::string summary_path;
  bool findings_only = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      options.fuzz.iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.fuzz.rng_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      options.max_attempts = std::atoi(argv[++i]);
    } else if (arg == "--parallel") {
      options.fuzz.parallel_solving = true;
    } else if (arg == "--no-incremental") {
      options.fuzz.solver.incremental = false;
    } else if (arg == "--no-solver-cache") {
      options.fuzz.solver_cache = false;
    } else if (arg == "--solver-cache-capacity" && i + 1 < argc) {
      options.fuzz.solver_cache_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--summary" && i + 1 < argc) {
      summary_path = argv[++i];
    } else if (arg == "--findings-only") {
      findings_only = true;
    } else {
      return usage();
    }
  }

  const auto inputs = campaign::scan_directory(corpus_dir);
  std::fprintf(stderr, "wasai-campaign: %zu contracts in %s, %u jobs\n",
               inputs.size(), corpus_dir.c_str(),
               options.jobs == 0 ? 0u : options.jobs);

  campaign::CampaignRunner runner(options);
  const auto report = runner.run(inputs);

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) throw util::UsageError("cannot open " + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;
  if (findings_only) {
    util::JsonlWriter writer(out);
    for (const auto& record : report.records) {
      writer.write(campaign::findings_to_json(record));
    }
  } else {
    campaign::write_records_jsonl(out, report);
  }

  const std::string summary =
      util::dump_json(campaign::summary_to_json(report.summary));
  if (summary_path.empty()) {
    std::fprintf(stderr, "%s\n", summary.c_str());
  } else {
    std::ofstream summary_file(summary_path, std::ios::trunc);
    if (!summary_file) {
      throw util::UsageError("cannot open " + summary_path);
    }
    summary_file << summary << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
    return usage();
  } catch (const wasai::util::Error& e) {
    std::fprintf(stderr, "wasai-campaign: %s\n", e.what());
    return 2;
  }
}
