// The `wasai-campaign` tool: batch-analyze a directory of contracts
// (`<stem>.wasm` + `<stem>.abi` pairs) with per-contract fault isolation.
//
//   wasai-campaign run <corpus-dir> [options]
//   wasai-campaign check-trace <trace.json>
//
// Options (run):
//   --jobs N          worker threads (default 1; 0 = hardware concurrency)
//   --iterations N    fuzzing rounds per contract (default 48)
//   --seed N          RNG seed shared by every contract (default 1)
//   --deadline-ms N   wall-clock budget per contract (default 0 = none)
//   --retries N       total attempts per contract (default 2)
//   --parallel        solve flip constraints on a worker pool
//   --no-incremental  legacy per-flip prefix re-assertion (perf baseline)
//   --no-solver-cache disable the cross-iteration flip query cache
//   --solver-cache-capacity N
//                     cached verdicts kept per contract (default 4096)
//   --out FILE        JSONL records destination (default: stdout)
//   --summary FILE    aggregate summary JSON destination (default: stderr)
//   --findings-only   emit the stable findings projection instead of full
//                     records (byte-identical across --jobs values)
//   --trace-out FILE  write a Chrome trace-event JSON of the campaign (one
//                     track per worker; load in chrome://tracing/Perfetto)
//   --no-obs          observability kill switch: spans/counters become
//                     no-ops; records drop the `obs` block but are
//                     otherwise byte-identical (same seeds, same findings)
//
// `check-trace` parses a trace produced by --trace-out and validates it
// (matching B/E pairs per track, monotonic timestamps, known span names);
// exit 0 = valid, 1 = rejected. CI gates the obs-trace artifact on it.
//
// Exit status: 0 when the campaign ran (even if every contract errored),
// 2 on usage errors. Per-contract faults are data, not process failures.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "campaign/report.hpp"
#include "obs/trace_export.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace wasai;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wasai-campaign run <corpus-dir> [--jobs N] [--iterations N]\n"
      "        [--seed N] [--deadline-ms N] [--retries N] [--parallel]\n"
      "        [--no-incremental] [--no-solver-cache]\n"
      "        [--solver-cache-capacity N]\n"
      "        [--out FILE] [--summary FILE] [--findings-only]\n"
      "        [--trace-out FILE] [--no-obs]\n"
      "  wasai-campaign check-trace <trace.json>\n");
  return 2;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string corpus_dir = argv[2];

  campaign::CampaignOptions options;
  std::string out_path;
  std::string summary_path;
  std::string trace_path;
  bool findings_only = false;
  bool no_obs = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      options.fuzz.iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.fuzz.rng_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      options.max_attempts = std::atoi(argv[++i]);
    } else if (arg == "--parallel") {
      options.fuzz.parallel_solving = true;
    } else if (arg == "--no-incremental") {
      options.fuzz.solver.incremental = false;
    } else if (arg == "--no-solver-cache") {
      options.fuzz.solver_cache = false;
    } else if (arg == "--solver-cache-capacity" && i + 1 < argc) {
      options.fuzz.solver_cache_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--summary" && i + 1 < argc) {
      summary_path = argv[++i];
    } else if (arg == "--findings-only") {
      findings_only = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--no-obs") {
      no_obs = true;
    } else {
      return usage();
    }
  }
  if (!trace_path.empty() && no_obs) {
    // Fail before the campaign runs, not after it has burned the budget.
    throw util::UsageError("--trace-out requires observability (--no-obs)");
  }

  const auto inputs = campaign::scan_directory(corpus_dir);
  std::fprintf(stderr, "wasai-campaign: %zu contracts in %s, %u jobs\n",
               inputs.size(), corpus_dir.c_str(),
               options.jobs == 0 ? 0u : options.jobs);

  // Observability is on by default (the spans are nanoseconds per contract);
  // --no-obs passes a null registry so every span/counter no-ops.
  obs::Registry registry;
  if (!no_obs) options.obs = &registry;

  campaign::CampaignRunner runner(options);
  const auto report = runner.run(inputs);

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path, std::ios::trunc);
    if (!trace_file) throw util::UsageError("cannot open " + trace_path);
    trace_file << util::dump_json(obs::chrome_trace_json(registry)) << '\n';
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) throw util::UsageError("cannot open " + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;
  if (findings_only) {
    util::JsonlWriter writer(out);
    for (const auto& record : report.records) {
      writer.write(campaign::findings_to_json(record));
    }
  } else {
    campaign::write_records_jsonl(out, report);
  }

  // With observability on, the summary's `obs` block is upgraded from the
  // per-phase rollup to the full metrics document (phases + counters +
  // histograms).
  util::JsonObject summary_obj =
      campaign::summary_to_json(report.summary).as_object();
  if (!no_obs) {
    summary_obj["obs"] = obs::metrics_json(registry);
  }
  const std::string summary =
      util::dump_json(util::Json(std::move(summary_obj)));
  if (summary_path.empty()) {
    std::fprintf(stderr, "%s\n", summary.c_str());
  } else {
    std::ofstream summary_file(summary_path, std::ios::trunc);
    if (!summary_file) {
      throw util::UsageError("cannot open " + summary_path);
    }
    summary_file << summary << '\n';
  }
  return 0;
}

int cmd_check_trace(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) throw util::UsageError(std::string("cannot open ") + argv[2]);
  std::ostringstream ss;
  ss << in.rdbuf();
  const util::Json doc = util::parse_json(ss.str());
  if (const auto problem = obs::validate_chrome_trace(doc)) {
    std::fprintf(stderr, "wasai-campaign: invalid trace: %s\n",
                 problem->c_str());
    return 1;
  }
  std::size_t events = 0;
  if (const util::Json* arr = doc.find("traceEvents")) {
    events = arr->as_array().size();
  }
  std::fprintf(stderr, "wasai-campaign: trace ok (%zu events)\n", events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
    if (std::strcmp(argv[1], "check-trace") == 0) {
      return cmd_check_trace(argc, argv);
    }
    return usage();
  } catch (const wasai::util::Error& e) {
    std::fprintf(stderr, "wasai-campaign: %s\n", e.what());
    return 2;
  }
}
